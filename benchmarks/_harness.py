"""Shared helpers for the figure/table benchmarks.

Scaling note: the paper's experiments run up to 10⁸ vertices on clusters;
the benches default to laptop-friendly scales (a few thousand vertices).
Every scale constant lives here so a larger machine can turn them up in one
place; the *shapes* the benches assert and print are stable across scales
(the paper's own Fig. 6 shows that for these families).

Smoke mode (``pytest benchmarks --smoke``, used by the CI bench-smoke job)
shrinks every scale knob so each figure script runs one small experiment in
seconds.  Shape assertions are skipped at smoke scale (they are meaningless
there); the point is to exercise every experiment end-to-end per commit and
publish the recorded JSON results as a trackable artifact.  Benches report
their result payloads through :func:`record_result`; the benchmarks
``conftest`` writes them to ``$BENCH_RESULTS_DIR/results.json``.
"""

import os

from repro.core import AdaptiveConfig, run_to_convergence
from repro.datasets import build_dataset
from repro.partitioning import balanced_capacities, make_partitioner
from repro.utils import mean_and_error

# One knob for overall bench heaviness.
SMOKE = False          # flipped by `pytest benchmarks --smoke`
SCALE = 0.06           # fraction of published |V| for catalog datasets
MIN_VERTICES = 1500    # floor: k=9 needs room for meaningful partitions
MAX_VERTICES = 6000    # hard cap per dataset
PARTITIONS = 9         # the paper's k
REPEATS = 3            # paper uses n=10; 3 keeps the suite fast
MAX_ITERATIONS = 600

_RESULTS = {}


def enable_smoke():
    """Shrink every scale knob for the per-commit CI smoke pass."""
    global SMOKE, SCALE, MIN_VERTICES, MAX_VERTICES, REPEATS, MAX_ITERATIONS
    SMOKE = True
    SCALE = 0.01
    MIN_VERTICES = 300
    MAX_VERTICES = 900
    REPEATS = 1
    MAX_ITERATIONS = 120


def pick(full, smoke):
    """Pick a bench-local scale constant by mode."""
    return smoke if SMOKE else full


def host_cores():
    """CPU cores visible to this bench run (1 when undetectable)."""
    return os.cpu_count() or 1


def parallel_floor_applies(workers):
    """Whether a parallel-speedup floor is meaningful on this host.

    Speedup assertions against an inline baseline presume at least
    ``workers`` cores; on smaller hosts a parallel executor only adds
    scheduling overhead, so the floor would measure the machine, not
    the code.  Benches must still *run* their parallel legs and assert
    timeline identity everywhere — only the wall-clock floor is gated.
    """
    return host_cores() >= workers


def record_result(name, payload, phases=None):
    """Stash one figure's JSON-serialisable results for the CI artifact.

    ``phases`` is the optional ``{phase: seconds}`` breakdown from
    :meth:`repro.obs.MetricsRegistry.phase_seconds` — where the reference
    run's wall-clock went — recorded under the payload's ``"phases"`` key.
    Mapping payloads also record the host's core count under ``"cores"``
    so trajectory consumers can tell a gated speedup floor from a failed
    one (list-shaped payloads — bare table rows — are stored as-is).
    """
    if isinstance(payload, dict):
        payload = {**payload, "cores": host_cores()}
    if phases:
        payload = {**payload, "phases": dict(phases)}
    _RESULTS[name] = payload


def recorded_results():
    """All results recorded so far (figure name → payload)."""
    return dict(_RESULTS)


def scaled_dataset(name, seed=0):
    """Catalog dataset at bench scale (clamped to [MIN, MAX] vertices)."""
    from repro.datasets import CATALOG

    spec = CATALOG[name]
    target = min(
        MAX_VERTICES,
        max(MIN_VERTICES, round(spec.paper_vertices * SCALE)),
    )
    scale = target / spec.paper_vertices
    return build_dataset(name, scale=scale, seed=seed, max_vertices=MAX_VERTICES)


def initial_state(graph, strategy, seed=0, k=PARTITIONS, slack=1.10):
    """Initial partitioning via a named strategy with paper capacities."""
    caps = balanced_capacities(graph.num_vertices, k, slack)
    return make_partitioner(strategy, seed=seed).partition(graph, k, list(caps))


def converge(graph, state, seed=0, willingness=0.5, quiet_window=30,
             max_iterations=None):
    """Run the adaptive algorithm to convergence; returns (runner, timeline)."""
    if max_iterations is None:
        max_iterations = MAX_ITERATIONS
    config = AdaptiveConfig(
        willingness=willingness, seed=seed, quiet_window=quiet_window
    )
    return run_to_convergence(
        graph, state, config, max_iterations=max_iterations
    )


def repeated_convergence(dataset, strategy, repeats=None, willingness=0.5,
                         quiet_window=30, max_iterations=None):
    """Repeat (build → initial partition → converge); returns summary dict.

    Mirrors the paper's "mean of n repetitions ... errors ... estimated
    error in the mean" reporting.
    """
    if repeats is None:
        repeats = REPEATS
    if max_iterations is None:
        max_iterations = MAX_ITERATIONS
    initial_ratios = []
    final_ratios = []
    convergence_times = []
    for rep in range(repeats):
        graph = scaled_dataset(dataset, seed=rep)
        state = initial_state(graph, strategy, seed=rep)
        initial_ratios.append(state.cut_ratio())
        runner, _ = converge(
            graph, state, seed=rep, willingness=willingness,
            quiet_window=quiet_window, max_iterations=max_iterations,
        )
        final_ratios.append(state.cut_ratio())
        convergence_times.append(
            runner.convergence_time
            if runner.convergence_time is not None
            else max_iterations
        )
    initial_mean, initial_err = mean_and_error(initial_ratios)
    final_mean, final_err = mean_and_error(final_ratios)
    conv_mean, conv_err = mean_and_error(convergence_times)
    return {
        "dataset": dataset,
        "strategy": strategy,
        "initial_cut_ratio": initial_mean,
        "initial_err": initial_err,
        "final_cut_ratio": final_mean,
        "final_err": final_err,
        "convergence_time": conv_mean,
        "convergence_err": conv_err,
    }


def metis_reference(dataset, seed=0, k=PARTITIONS):
    """Cut ratio of the centralised multilevel partitioner (the METIS line)."""
    graph = scaled_dataset(dataset, seed=seed)
    state = make_partitioner("METIS", seed=seed).partition(graph, k)
    return state.cut_ratio()
