"""Ablation benches for design choices and the paper's future-work
extensions (DESIGN.md §5).

Not a paper figure — these quantify: (1) the migration-heuristic choice the
paper says it made after evaluating "multiple heuristics"; (2) the
edge-balance extension (§6 future work); (3) hot-spot-aware capacities
(§6 future work).
"""

from repro.analysis import format_table
from repro.core import (
    AdaptiveConfig,
    EdgeBalance,
    HotspotBalance,
    VertexBalance,
    run_to_convergence,
)
from repro.core.heuristic import HEURISTICS, make_heuristic
from repro.generators import mesh_3d, powerlaw_cluster_graph
from repro.partitioning import HashPartitioner, balanced_capacities

from benchmarks import _harness
from benchmarks._harness import pick, record_result

K = 9
MESH_SIDE = pick(12, 7)
HOTSPOT_SIDE = pick(10, 6)
PLAW_VERTICES = pick(2500, 400)
MAX_ITER = pick(500, 120)


def _hash_state(graph, slack=1.10):
    caps = balanced_capacities(graph.num_vertices, K, slack)
    return HashPartitioner().partition(graph, K, list(caps))


def _heuristic_ablation():
    rows = []
    for name in sorted(HEURISTICS):
        graph = mesh_3d(MESH_SIDE)
        state = _hash_state(graph)
        config = AdaptiveConfig(
            seed=0, heuristic=make_heuristic(name), quiet_window=30
        )
        runner, timeline = run_to_convergence(
            graph, state, config, max_iterations=MAX_ITER
        )
        rows.append(
            [
                name,
                state.cut_ratio(),
                runner.convergence_time
                if runner.convergence_time is not None
                else MAX_ITER,
                timeline.total_migrations(),
            ]
        )
    return rows


def _balance_ablation():
    rows = []
    for policy_name, policy in (
        ("vertex", VertexBalance()),
        ("edge", EdgeBalance()),
    ):
        graph = powerlaw_cluster_graph(PLAW_VERTICES, m=3, seed=0)
        caps = policy.capacities(graph, K)
        state = HashPartitioner().partition(graph, K, list(caps))
        config = AdaptiveConfig(seed=0, balance=policy, quiet_window=30)
        runner, _ = run_to_convergence(
            graph, state, config, max_iterations=pick(400, 120)
        )
        loads = runner.loads
        sizes = state.sizes
        edge_loads = [0.0] * K
        for v, pid in state.assignment_items():
            edge_loads[pid] += graph.degree(v)
        mean_edge = sum(edge_loads) / K
        rows.append(
            [
                policy_name,
                state.cut_ratio(),
                max(sizes) / (sum(sizes) / K),
                max(edge_loads) / mean_edge,
            ]
        )
    return rows


def _hotspot_ablation():
    # A hot worker (10x activity) should shed vertices under HotspotBalance.
    graph = mesh_3d(HOTSPOT_SIDE)
    policy = HotspotBalance(max_shrink=0.3)
    caps = policy.capacities(graph, K)
    state = HashPartitioner().partition(graph, K, list(caps))
    hot_worker = 0
    activity = [10.0 if pid == hot_worker else 1.0 for pid in range(K)]
    policy.observe_activity(activity)
    size_before = state.size(hot_worker)
    config = AdaptiveConfig(seed=0, balance=policy, quiet_window=30)
    run_to_convergence(graph, state, config, max_iterations=300)
    return {
        "before": size_before,
        "after": state.size(hot_worker),
        "mean_after": sum(state.sizes) / K,
    }


def test_ablation_heuristics(run_once, capsys):
    rows = run_once(_heuristic_ablation)
    record_result("ablation_heuristics", rows)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["heuristic", "final cut ratio", "convergence time",
                 "total migrations"],
                rows,
                title="Ablation: migration heuristic (64k-scaled mesh, HSH "
                "start)",
            )
        )
    if _harness.SMOKE:
        return  # shape assertions are meaningless at smoke scale
    by_name = {r[0]: r for r in rows}
    # the paper's greedy rule is at least as good as the alternatives on cuts
    greedy_cut = by_name["greedy"][1]
    for name, row in by_name.items():
        assert greedy_cut <= row[1] + 0.08, name


def test_ablation_balance_policies(run_once, capsys):
    rows = run_once(_balance_ablation)
    record_result("ablation_balance", rows)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["policy", "cut ratio", "vertex imbalance", "edge imbalance"],
                rows,
                title="Ablation: balance policy on a power-law graph",
            )
        )
    if _harness.SMOKE:
        return  # shape assertions are meaningless at smoke scale
    by_name = {r[0]: r for r in rows}
    # edge balancing gives a more even edge distribution than vertex balancing
    assert by_name["edge"][3] <= by_name["vertex"][3] + 0.05


def test_ablation_hotspot(run_once, capsys):
    result = run_once(_hotspot_ablation)
    record_result("ablation_hotspot", result)
    with capsys.disabled():
        print()
        print(
            "Ablation: hot-spot balancing — hot worker size "
            f"{result['before']} -> {result['after']} "
            f"(fleet mean {result['mean_after']:.1f})"
        )
    if _harness.SMOKE:
        return  # shape assertions are meaningless at smoke scale
    # the hot worker sheds load relative to the fleet mean
    assert result["after"] <= result["before"]
    assert result["after"] <= result["mean_after"] * 1.05
