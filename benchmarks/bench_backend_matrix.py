"""Backend matrix — Fig. 6-style adaptive-sweep scaling on both graph
backends (adjacency-set ``Graph`` vs integer-interned ``CompactGraph``),
asserting bit-identical timelines and reporting the compact speedup.

The compact backend routes the runner's per-iteration decision pass through
:class:`repro.core.sweep.CompactSweeper` (one vectorised histogram pass over
the CSR mirror instead of a dict per vertex) and batch-applies each round's
admitted moves.  Round semantics are preserved exactly — same candidate
order, same RNG stream, same tie-breaks — so the timelines must match
entry-for-entry, and the speedup is pure substrate.

Asserted at full scale: ≥3× on the 100k-vertex mesh sweep (the ISSUE's
acceptance bar), plus timeline identity at every size.
"""

import math
import time

from repro.analysis import format_table
from repro.core import AdaptiveConfig, AdaptiveRunner
from repro.generators import mesh_with_vertex_count, powerlaw_cluster_graph
from repro.graph import CompactGraph, Graph, as_compact
from repro.partitioning import HashPartitioner, balanced_capacities

from benchmarks import _harness
from benchmarks._harness import PARTITIONS, pick, record_result

MESH_SIZES = pick([10_000, 30_000, 100_000], [1_000, 2_000])
PLAW_SIZES = pick([10_000, 30_000], [1_000])
ITERATIONS = pick(20, 8)  # fixed sweep window: identical work on both sides
TIMING_REPEATS = pick(2, 1)  # wall-clock = min over repeats (noise rejection)
SPEEDUP_TARGET = 3.0      # asserted at the largest mesh size, full scale only


def _runner(graph, seed=0):
    caps = balanced_capacities(graph.num_vertices, PARTITIONS, 1.10)
    state = HashPartitioner().partition(graph, PARTITIONS, list(caps))
    return AdaptiveRunner(graph, state, AdaptiveConfig(seed=seed))


def _time_sweep(graph, iterations, seed=0):
    """Best wall-clock over TIMING_REPEATS identical sweeps + last runner."""
    best = None
    runner = None
    for _ in range(TIMING_REPEATS):
        runner = _runner(graph, seed=seed)
        start = time.perf_counter()
        for _ in range(iterations):
            runner.step()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, runner


def _measure(make_graph, size):
    dense = make_graph(size, Graph)
    compact = make_graph(size, CompactGraph)
    dense_time, dense_runner = _time_sweep(dense, ITERATIONS)
    compact_time, compact_runner = _time_sweep(compact, ITERATIONS)
    assert list(dense_runner.timeline) == list(compact_runner.timeline), (
        f"timelines diverged at |V|={size}"
    )
    assert (
        compact_runner.state.cut_edges
        == compact_runner.state.recompute_cut_edges()
    )
    return {
        "vertices": dense.num_vertices,
        "edges": dense.num_edges,
        "dense_s": dense_time,
        "compact_s": compact_time,
        "speedup": dense_time / compact_time,
        "final_cut_ratio": compact_runner.state.cut_ratio(),
    }


def _mesh(size, graph_cls):
    return mesh_with_vertex_count(size, graph_cls=graph_cls)


def _plaw(size, graph_cls):
    return powerlaw_cluster_graph(
        size, m=max(1, round(math.log(size) / 2)), seed=0, graph_cls=graph_cls
    )


def _experiment():
    return {
        "mesh": [_measure(_mesh, size) for size in MESH_SIZES],
        "plaw": [_measure(_plaw, size) for size in PLAW_SIZES],
    }


def test_backend_matrix(run_once, capsys):
    results = run_once(_experiment)
    record_result("backend_matrix", results)
    with capsys.disabled():
        for family, rows in results.items():
            print()
            print(
                format_table(
                    ["|V|", "|E|", "dense s", "compact s", "speedup"],
                    [
                        [
                            r["vertices"],
                            r["edges"],
                            r["dense_s"],
                            r["compact_s"],
                            r["speedup"],
                        ]
                        for r in rows
                    ],
                    title=(
                        f"Backend matrix ({family}): {ITERATIONS}-iteration "
                        "adaptive sweep, identical timelines"
                    ),
                )
            )
    if _harness.SMOKE:
        return  # equivalence asserted above; speedup is meaningless at toy scale
    # The acceptance bar: ≥3x on the 100k-vertex mesh sweep.
    headline = results["mesh"][-1]
    assert headline["speedup"] >= SPEEDUP_TARGET, headline
    # The compact backend must never be slower anywhere in the matrix.
    for family, rows in results.items():
        for row in rows:
            assert row["speedup"] > 1.0, (family, row)
