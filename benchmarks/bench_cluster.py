"""Cluster executor matrix: the sharded layer's wall-clock claim.

The workload is the paper's superstep-heavy regime: the cardiac FEM kernel
(FitzHugh–Nagumo reaction–diffusion, sub-cycled so per-vertex CPU dominates
messaging — §"each vertex computes more than 32 differential equations") on
a 3-D mesh, with the background partitioner adapting underneath.  The same
run executes on every executor backend:

* ``inline`` — the serial reference;
* ``thread`` — GIL-bound for pure-Python compute (expected ≈ inline);
* ``process`` — four persistent worker processes with shard affinity.

Asserted at full scale: ``process`` clears **≥2×** over ``inline``
(the ISSUE acceptance bar), and every backend's superstep timeline is
**bit-identical** (the tests enforce the same invariant on the golden
scenarios; the bench re-checks it on the heavy workload).  The speedup
assertion additionally requires the machine to have at least
``PROCESS_WORKERS`` cores — parallel speedup on a single-core box is
physics, not a regression — mirroring how smoke scale skips shape
assertions.
"""

import time

from repro.analysis import format_table
from repro.apps.fem_simulation import CombinedCardiacFemSimulation
from repro.cluster import Coordinator, make_executor
from repro.generators import mesh_3d
from repro.graph.backend import to_backend
from repro.obs import MetricsRegistry
from repro.pregel.system import PregelConfig

from benchmarks import _harness
from benchmarks._harness import pick, record_result

MESH_SIDE = pick(16, 6)          # 16³ = 4096 vertices, ~11.5k edges
SUBSTEPS = pick(200, 4)          # reaction sub-cycles per superstep
SUPERSTEPS = pick(12, 4)
PARTITIONS = 8
PROCESS_WORKERS = 4
SPEEDUP_TARGET = 2.0             # asserted at full scale only

EXECUTOR_SPECS = [
    ("inline", None),
    ("thread", pick(PROCESS_WORKERS, 2)),
    ("process", pick(PROCESS_WORKERS, 2)),
]


def _build_system(executor_name, workers, registry):
    graph = to_backend(mesh_3d(MESH_SIDE), "compact")
    # The combined variant folds diffusion messages per worker (the Pregel
    # combiner idiom), so cross-process traffic is per-worker-pair, not
    # per-edge — the configuration a real deployment would run.
    program = CombinedCardiacFemSimulation(
        substeps=SUBSTEPS, stimulus_vertices={0}
    )
    config = PregelConfig(num_workers=PARTITIONS, seed=0, quiet_window=10)
    return Coordinator(
        graph,
        program,
        config,
        executor=make_executor(executor_name, workers),
        metrics_registry=registry,
    )


def _timed_run(executor_name, workers):
    """Build (untimed), run SUPERSTEPS supersteps (timed), return a row.

    Construction stays outside the timer: shard build + worker spawn is a
    one-time cost, and the claim under test is per-superstep throughput.
    """
    registry = MetricsRegistry()
    system = _build_system(executor_name, workers, registry)
    try:
        start = time.perf_counter()
        reports = system.run(SUPERSTEPS)
        elapsed = time.perf_counter() - start
        timeline = [
            (
                r.superstep,
                r.migrations_announced,
                r.cut_edges,
                tuple(r.sizes),
                r.computed_vertices,
                tuple(r.per_worker_compute),
                r.traffic.local_messages,
                r.traffic.remote_messages,
                r.traffic.compute_units,
            )
            for r in reports
        ]
        return {
            "executor": executor_name,
            "workers": workers,
            "seconds": elapsed,
            "per_superstep_ms": 1000.0 * elapsed / SUPERSTEPS,
            "timeline": timeline,
            "final_values_sample": sorted(system.values.items())[:5],
            "phases": registry.phase_seconds(),
        }
    finally:
        system.close()


def _experiment():
    rows = [_timed_run(name, workers) for name, workers in EXECUTOR_SPECS]
    inline_row = rows[0]
    for row in rows[1:]:
        assert row["timeline"] == inline_row["timeline"], (
            f"{row['executor']} timeline diverged from inline"
        )
        assert row["final_values_sample"] == inline_row["final_values_sample"]
    phases = inline_row["phases"]  # where the reference run's time went
    for row in rows:
        row["speedup_vs_inline"] = inline_row["seconds"] / row["seconds"]
        del row["timeline"]  # asserted above; too bulky for the artifact
        del row["final_values_sample"]
        del row["phases"]
    return {
        "phases": phases,
        "mesh_side": MESH_SIDE,
        "vertices": MESH_SIDE ** 3,
        "substeps": SUBSTEPS,
        "supersteps": SUPERSTEPS,
        "partitions": PARTITIONS,
        "rows": rows,
    }


def test_cluster_executor_matrix(run_once, capsys):
    results = run_once(_experiment)
    record_result(
        "cluster_executors", results, phases=results.pop("phases")
    )
    with capsys.disabled():
        print()
        print(
            format_table(
                ["executor", "workers", "seconds", "ms/superstep", "speedup"],
                [
                    [
                        r["executor"],
                        r["workers"] or 1,
                        f"{r['seconds']:.2f}",
                        f"{r['per_superstep_ms']:.1f}",
                        f"{r['speedup_vs_inline']:.2f}x",
                    ]
                    for r in results["rows"]
                ],
                title=(
                    f"Sharded FEM workload ({results['vertices']} vertices, "
                    f"{results['substeps']} ODE sub-cycles, identical "
                    "timelines asserted)"
                ),
            )
        )
    if _harness.SMOKE:
        return  # toy scale: IPC overhead drowns the compute signal
    if not _harness.parallel_floor_applies(PROCESS_WORKERS):
        return  # too few cores: parallel speedup is physically unavailable
    process_row = next(
        r for r in results["rows"] if r["executor"] == "process"
    )
    assert process_row["speedup_vs_inline"] >= SPEEDUP_TARGET, process_row
