"""Shard-local decisions: the coordinator's serial-bottleneck claim.

Before the decision refactor, every superstep's migration decisions —
one neighbour-histogram + heuristic evaluation per active vertex — ran in
the coordinator between barriers, a serial section that grows with graph
size and defeats the point of sharding.  With ``decisions="shard"`` the
shards evaluate their own residents (vectorised over each shard block) and
the coordinator's decision work shrinks to slicing the active set and
arbitrating quota over the returned proposals: O(active + proposals),
independent of edge count.

This bench runs the identical 100k-vertex adaptation workload (a 3-D FEM
mesh settling from a hash partitioning, a light vertex program so the
decision phase is the signal) in both modes and compares the *coordinator's
measured decision wall-time* (``SuperstepReport.decision_seconds``).

Asserted, including at smoke scale (the bar is the ISSUE acceptance
criterion, relaxed for the CI smoke artifact exactly like
``bench_scale.py``):

* both modes replay **bit-identical** superstep timelines — the knob moves
  work, never results;
* coordinator-side decision time drops **≥5×** at full scale (**≥2.5×**
  at smoke scale).

The host graph uses the adjacency backend — the pregel engine's default —
where centralised decisions run the portable per-vertex path; the shards
vectorise over their blocks regardless of the host backend, which is
exactly the decentralisation dividend the paper's worker-local design
buys.  A compact-backend pair (where the coordinator path is itself
vectorised) is recorded in the artifact for reference.
"""

import time

from repro.analysis import format_table
from repro.cluster import Coordinator, InlineExecutor
from repro.generators import mesh_3d
from repro.graph.backend import to_backend
from repro.obs import MetricsRegistry
from repro.pregel.system import PregelConfig
from repro.pregel.vertex import VertexProgram

from benchmarks import _harness
from benchmarks._harness import pick, record_result

MESH_SIDE = pick(47, 22)         # 47³ ≈ 104k vertices; smoke: 22³ ≈ 10.6k
SUPERSTEPS = pick(10, 5)
PARTITIONS = 8
SPEEDUP_TARGET = 5.0             # full-scale bar (ISSUE acceptance)
SMOKE_SPEEDUP_TARGET = 2.5       # smoke-scaled bar (CI artifact job)


class _Sensor(VertexProgram):
    """A near-idle program: the decision phase is the measured signal."""

    name = "sensor"

    def initial_value(self, vertex_id, graph):
        return 0

    def compute(self, ctx, messages):
        pass

    def compute_cost(self, ctx, messages):
        return 1.0


def _timed_run(decisions, backend):
    graph = mesh_3d(MESH_SIDE)
    if backend == "compact":
        graph = to_backend(graph, "compact")
    config = PregelConfig(
        num_workers=PARTITIONS, seed=0, quiet_window=10, decisions=decisions
    )
    registry = MetricsRegistry()
    with Coordinator(
        graph, _Sensor(), config, executor=InlineExecutor(),
        metrics_registry=registry,
    ) as system:
        start = time.perf_counter()
        reports = system.run(SUPERSTEPS)
        elapsed = time.perf_counter() - start
        return {
            "decisions": decisions,
            "backend": backend,
            "seconds": elapsed,
            "decision_seconds": sum(r.decision_seconds for r in reports),
            "migrations": sum(r.migrations_announced for r in reports),
            "phases": registry.phase_seconds(),
            "timeline": [
                (
                    r.superstep,
                    r.migrations_requested,
                    r.migrations_announced,
                    r.migrations_blocked,
                    r.cut_edges,
                    tuple(r.sizes),
                    r.computed_vertices,
                )
                for r in reports
            ],
        }


def _experiment():
    pairs = {}
    phases = None
    for backend in ("adjacency", "compact"):
        shard = _timed_run("shard", backend)
        coordinator = _timed_run("coordinator", backend)
        assert shard["timeline"] == coordinator["timeline"], (
            f"decision modes diverged on the {backend} backend"
        )
        assert shard["migrations"] > 0, "no adaptation measured"
        if backend == "adjacency":
            phases = shard["phases"]  # the headline run's breakdown
        for row in (shard, coordinator):
            del row["timeline"]  # asserted above; too bulky for the artifact
            del row["phases"]
        pairs[backend] = {
            "shard": shard,
            "coordinator": coordinator,
            "decision_speedup": (
                coordinator["decision_seconds"] / shard["decision_seconds"]
            ),
        }
    return {
        "mesh_side": MESH_SIDE,
        "vertices": MESH_SIDE ** 3,
        "supersteps": SUPERSTEPS,
        "partitions": PARTITIONS,
        "pairs": pairs,
        "phases": phases,
    }


def test_decision_phase_decentralisation(run_once, capsys):
    results = run_once(_experiment)
    record_result("decision_phase", results, phases=results.pop("phases"))
    with capsys.disabled():
        print()
        rows = []
        for backend, pair in results["pairs"].items():
            for mode in ("coordinator", "shard"):
                row = pair[mode]
                rows.append(
                    [
                        backend,
                        mode,
                        f"{row['seconds']:.2f}",
                        f"{1000.0 * row['decision_seconds']:.1f}",
                        row["migrations"],
                    ]
                )
            rows.append(
                [backend, "-> decision speedup",
                 f"{pair['decision_speedup']:.1f}x", "", ""]
            )
        print(
            format_table(
                ["backend", "decisions", "total s", "decision ms", "migr"],
                rows,
                title=(
                    f"Decision-phase decentralisation "
                    f"({results['vertices']} vertices, identical timelines "
                    "asserted)"
                ),
            )
        )
    target = SMOKE_SPEEDUP_TARGET if _harness.SMOKE else SPEEDUP_TARGET
    speedup = results["pairs"]["adjacency"]["decision_speedup"]
    assert speedup >= target, (
        f"coordinator decision time dropped only {speedup:.1f}x "
        f"(target {target}x)"
    )
