"""Figure 1 — effect of the willingness-to-move s on convergence time and
cut ratio (64kcube and epinions, 9 partitions).

Paper shape: the cut ratio is statistically flat across s; convergence time
is high at low s (few migrations per iteration), dips in the middle, and
rises again towards s = 1 (neighbour chasing wastes migrations) — most
visibly on the social graph.  s = 0 never converges to a better cut at all.
"""

from repro.analysis import format_table
from repro.utils import mean_and_error

from benchmarks import _harness
from benchmarks._harness import (
    MAX_ITERATIONS,
    converge,
    initial_state,
    pick,
    record_result,
    scaled_dataset,
)

S_VALUES = pick([0.1, 0.3, 0.5, 0.7, 0.9, 1.0], [0.1, 0.5, 1.0])
REPEATS = pick(2, 1)
DATASETS = ["64kcube", "epinion"]


def _sweep():
    results = {}
    for dataset in DATASETS:
        rows = []
        for s in S_VALUES:
            conv_times = []
            ratios = []
            for rep in range(REPEATS):
                graph = scaled_dataset(dataset, seed=rep)
                state = initial_state(graph, "HSH", seed=rep)
                runner, _ = converge(
                    graph, state, seed=rep, willingness=s,
                    max_iterations=MAX_ITERATIONS,
                )
                conv_times.append(
                    runner.convergence_time
                    if runner.convergence_time is not None
                    else MAX_ITERATIONS
                )
                ratios.append(state.cut_ratio())
            ct, ct_err = mean_and_error(conv_times)
            cr, cr_err = mean_and_error(ratios)
            rows.append([s, ct, ct_err, cr, cr_err])
        results[dataset] = rows
    return results


def test_fig1_willingness_sweep(run_once, capsys):
    results = run_once(_sweep)
    record_result("fig1_willingness", results)
    with capsys.disabled():
        for dataset, rows in results.items():
            print()
            print(
                format_table(
                    ["s", "convergence time", "±", "cut ratio", "±"],
                    rows,
                    title=f"Figure 1 ({dataset}): willingness to move",
                )
            )
    if _harness.SMOKE:
        return  # shape assertions are meaningless at smoke scale
    for dataset, rows in results.items():
        ratios = [r[3] for r in rows]
        # paper: "no statistical difference in the number of cuts ...
        # regardless of the value of s"
        assert max(ratios) - min(ratios) < 0.15, dataset
        # intermediate s converges no slower than the extremes
        by_s = {r[0]: r[1] for r in rows}
        assert by_s[0.5] <= max(by_s[0.1], by_s[1.0]) + 1, dataset
