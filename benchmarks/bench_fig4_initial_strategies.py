"""Figure 4 — cut ratio after the iterative algorithm from four initial
partitioning strategies, vs the METIS reference line (64kcube & epinions,
9 partitions, capacity 110 % of balanced load).

Paper shape: HSH/RND/MNN start terribly and improve by 0.2–0.4; DGR starts
near-METIS and improves only slightly; the iterative result approaches (but
does not beat) the centralised METIS line.
"""

from repro.analysis import format_table

from benchmarks import _harness
from benchmarks._harness import metis_reference, record_result, repeated_convergence

DATASETS = ["64kcube", "epinion"]
STRATEGIES = ["DGR", "HSH", "MNN", "RND"]


def _experiment():
    results = {}
    for dataset in DATASETS:
        rows = []
        for strategy in STRATEGIES:
            summary = repeated_convergence(dataset, strategy)
            rows.append(summary)
        results[dataset] = {
            "rows": rows,
            "metis": metis_reference(dataset),
        }
    return results


def test_fig4_initial_strategies(run_once, capsys):
    results = run_once(_experiment)
    record_result("fig4_initial_strategies", results)
    with capsys.disabled():
        for dataset, payload in results.items():
            table = [
                [
                    s["strategy"],
                    s["initial_cut_ratio"],
                    s["final_cut_ratio"],
                    s["final_err"],
                ]
                for s in payload["rows"]
            ]
            print()
            print(
                format_table(
                    ["strategy", "initial cuts", "iterative cuts", "±"],
                    table,
                    title=(
                        f"Figure 4 ({dataset}): initial vs iterative cut "
                        f"ratio; METIS line = {payload['metis']:.3f}"
                    ),
                )
            )
    if _harness.SMOKE:
        return  # shape assertions are meaningless at smoke scale
    for dataset, payload in results.items():
        by_strategy = {s["strategy"]: s for s in payload["rows"]}
        # poor starts improve substantially
        for strategy in ("HSH", "RND", "MNN"):
            s = by_strategy[strategy]
            improvement = s["initial_cut_ratio"] - s["final_cut_ratio"]
            assert improvement > 0.10, (dataset, strategy)
        # DGR improves the least of the four
        dgr_gain = (
            by_strategy["DGR"]["initial_cut_ratio"]
            - by_strategy["DGR"]["final_cut_ratio"]
        )
        for strategy in ("HSH", "RND", "MNN"):
            gain = (
                by_strategy[strategy]["initial_cut_ratio"]
                - by_strategy[strategy]["final_cut_ratio"]
            )
            assert dgr_gain <= gain + 0.05, (dataset, strategy)
        # the centralised reference stays at or below the iterative result
        finals = [s["final_cut_ratio"] for s in payload["rows"]]
        assert payload["metis"] <= min(finals) + 0.10, dataset
