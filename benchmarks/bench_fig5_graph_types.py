"""Figure 5 — final cut ratio per graph after the iterative heuristic over
four initial strategies (eight graphs from Table 1).

Paper shape: FEM graphs end with clearly lower cut ratios than dense
synthetic power-law graphs (plc*, which even METIS struggles with), and the
final quality is largely insensitive to the initial strategy.
"""

from repro.analysis import format_table

from benchmarks import _harness
from benchmarks._harness import pick, record_result, repeated_convergence

DATASETS = pick(
    [
        "1e4", "3elt", "4elt", "64kcube",
        "plc1000", "plc10000", "epinion", "wikivote",
    ],
    ["1e4", "plc1000", "epinion"],
)
FEM = {"1e4", "3elt", "4elt", "64kcube"}
DENSE_PLC = {"plc1000", "plc10000"}
STRATEGIES = ["DGR", "HSH", "MNN", "RND"]


def _experiment():
    results = {}
    for dataset in DATASETS:
        finals = {}
        initials = {}
        for strategy in STRATEGIES:
            summary = repeated_convergence(dataset, strategy, repeats=pick(2, 1))
            finals[strategy] = summary["final_cut_ratio"]
            initials[strategy] = summary["initial_cut_ratio"]
        results[dataset] = {"finals": finals, "initials": initials}
    return results


def test_fig5_graph_types(run_once, capsys):
    results = run_once(_experiment)
    record_result("fig5_graph_types", results)
    rows = [
        [dataset] + [results[dataset]["finals"][s] for s in STRATEGIES]
        for dataset in DATASETS
    ]
    with capsys.disabled():
        print()
        print(
            format_table(
                ["graph"] + STRATEGIES,
                rows,
                title="Figure 5: iterative-algorithm cut ratio per graph "
                "and initial strategy",
            )
        )
    if _harness.SMOKE:
        return  # shape assertions are meaningless at smoke scale
    fem_means = [
        sum(results[d]["finals"].values()) / len(STRATEGIES)
        for d in DATASETS
        if d in FEM
    ]
    plc_means = [
        sum(results[d]["finals"].values()) / len(STRATEGIES)
        for d in DATASETS
        if d in DENSE_PLC
    ]
    # FEMs partition better than the dense power-law family
    assert max(fem_means) < min(plc_means)
    # the heuristic "can improve the partitioning quality of a wide range
    # of graphs": never worse than the start, for every pair
    for dataset in DATASETS:
        for strategy in STRATEGIES:
            initial = results[dataset]["initials"][strategy]
            final = results[dataset]["finals"][strategy]
            assert final <= initial + 0.02, (dataset, strategy)
    # the two unstructured random-ish starts (HSH, RND) land close together
    # (MNN is deliberately adversarial and may settle in worse local optima
    # on small 2-D grids; DGR starts lower — the paper's Fig. 5 bars spread
    # likewise)
    for dataset in DATASETS:
        finals = results[dataset]["finals"]
        assert abs(finals["HSH"] - finals["RND"]) < 0.25, dataset
