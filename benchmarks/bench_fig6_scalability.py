"""Figure 6 — cut ratio and convergence time vs graph size, for a family of
meshes and a family of power-law graphs (9 partitions, s = 0.5).

Paper shape: mesh convergence time grows slowly (O(log N)-ish) while its
cut ratio holds or slightly improves with size; power-law convergence time
grows more slowly still and its cut ratio stays almost constant (slightly
degrading).  Sizes here are scaled down from the paper's 1e3–3e5 range.
"""

import math

from repro.analysis import format_table
from repro.generators import mesh_with_vertex_count, powerlaw_cluster_graph
from repro.partitioning import HashPartitioner, balanced_capacities

from benchmarks import _harness
from benchmarks._harness import PARTITIONS, converge, pick, record_result

SIZES = pick([1000, 2000, 4000, 8000, 16000], [500, 1000])
MAX_ITERATIONS = pick(800, 120)


def _run_family(make_graph):
    rows = []
    for size in SIZES:
        graph = make_graph(size)
        caps = balanced_capacities(graph.num_vertices, PARTITIONS)
        state = HashPartitioner().partition(graph, PARTITIONS, list(caps))
        runner, _ = converge(graph, state, seed=0, max_iterations=MAX_ITERATIONS)
        conv = runner.convergence_time
        rows.append(
            [
                graph.num_vertices,
                state.cut_ratio(),
                conv if conv is not None else MAX_ITERATIONS,
            ]
        )
    return rows


def _experiment():
    mesh_rows = _run_family(mesh_with_vertex_count)
    plaw_rows = _run_family(
        lambda n: powerlaw_cluster_graph(
            n, m=max(1, round(math.log(n) / 2)), seed=0
        )
    )
    return {"mesh": mesh_rows, "plaw": plaw_rows}


def test_fig6_scalability(run_once, capsys):
    results = run_once(_experiment)
    record_result("fig6_scalability", results)
    with capsys.disabled():
        for family, rows in results.items():
            print()
            print(
                format_table(
                    ["|V|", "cut ratio", "convergence time"],
                    rows,
                    title=f"Figure 6 ({family} family): scalability",
                )
            )
    if _harness.SMOKE:
        return  # shape assertions are meaningless at smoke scale
    for family, rows in results.items():
        sizes = [r[0] for r in rows]
        ratios = [r[1] for r in rows]
        times = [r[2] for r in rows]
        # convergence time grows sub-linearly: a 16x size increase must not
        # produce a 16x time increase (paper reports O(log N) for meshes)
        growth = times[-1] / max(times[0], 1)
        assert growth < (sizes[-1] / sizes[0]) / 2, family
        # cut quality does not collapse with size
        assert max(ratios) - min(ratios) < 0.25, family
    # power-law graphs stay harder to cut than meshes at every size
    for mesh_row, plaw_row in zip(results["mesh"], results["plaw"]):
        assert mesh_row[1] < plaw_row[1]
