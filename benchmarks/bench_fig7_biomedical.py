"""Figure 7 — the biomedical use case: cuts, migrations and normalised
time-per-iteration while (a) re-arranging an initial hash partitioning and
(b) absorbing a forest-fire load peak of +10 % vertices/edges.

Paper shape (100 M-vertex FEM, 63 workers; here a scaled mesh on simulated
workers): starting from hash the cut count drops dramatically while a burst
of migrations decays exponentially; time-per-iteration (normalised to the
static-hash baseline) spikes with the migration burst, then falls to about
half the baseline (the paper reports ~2× faster steady state and a ~50 %
cut reduction).  The +10 % forest-fire injection produces a smaller spike
in cuts/migrations/time that is rapidly absorbed.
"""

from repro.analysis import CostModel, calibrate_compute_weight, format_series
from repro.apps import CardiacFemSimulation
from repro.generators import forest_fire_expansion, mesh_3d
from repro.pregel import PregelConfig, PregelSystem
from repro.utils import mean

from benchmarks import _harness
from benchmarks._harness import pick, record_result

MESH_SIDE = pick(13, 7)  # 2 197 vertices (paper: 1e8; self-similar family)
WORKERS = 9
PHASE1_SUPERSTEPS = pick(70, 20)
PHASE2_SUPERSTEPS = pick(60, 15)
BASELINE_SUPERSTEPS = pick(12, 6)
COMPUTE_FRACTION = 0.17  # paper: >80 % messaging, ~17 % CPU under hash


def _build_system(adaptive, seed=0):
    graph = mesh_3d(MESH_SIDE)
    program = CardiacFemSimulation(stimulus_vertices={0})
    config = PregelConfig(
        num_workers=WORKERS, adaptive=adaptive, seed=seed, quiet_window=30
    )
    return graph, PregelSystem(graph, program, config)


def _experiment():
    # Static-hash baseline: calibrate the cost model so compute is ~17 % of
    # a baseline superstep, then measure the mean baseline time.
    _, static = _build_system(adaptive=False)
    static_reports = static.run(BASELINE_SUPERSTEPS)
    model = calibrate_compute_weight(
        CostModel(), static_reports[-1].traffic, COMPUTE_FRACTION
    )
    baseline_time = mean(
        model.time_of(r.traffic) for r in static_reports[2:]
    )

    graph, system = _build_system(adaptive=True)
    phase1 = system.run(PHASE1_SUPERSTEPS)
    events, _ = forest_fire_expansion(
        graph, int(0.10 * graph.num_vertices), seed=1
    )
    system.inject_events(events)
    phase2 = system.run(PHASE2_SUPERSTEPS)

    def series(reports):
        return {
            "cuts": [r.cut_edges for r in reports],
            "migrations": [r.traffic.migrations for r in reports],
            "time": [model.time_of(r.traffic) / baseline_time for r in reports],
            "supersteps": [r.superstep for r in reports],
        }

    return {"phase1": series(phase1), "phase2": series(phase2)}


def test_fig7_biomedical(run_once, capsys):
    results = run_once(_experiment)
    record_result("fig7_biomedical", results)
    with capsys.disabled():
        for phase, label in (("phase1", "(a) hash re-arrangement"),
                             ("phase2", "(b) +10% forest-fire peak")):
            data = results[phase]
            print()
            print(f"Figure 7 {label}")
            print(format_series("  cuts", data["supersteps"], data["cuts"],
                                precision=0, max_points=15))
            print(format_series("  migrations", data["supersteps"],
                                data["migrations"], precision=0, max_points=15))
            print(format_series("  time (norm.)", data["supersteps"],
                                data["time"], max_points=15))

    if _harness.SMOKE:
        return  # shape assertions are meaningless at smoke scale
    p1, p2 = results["phase1"], results["phase2"]
    # (a) cuts drop by ~half or better from the hash start
    assert p1["cuts"][-1] < 0.6 * p1["cuts"][0]
    # (a) migration burst decays towards zero
    assert max(p1["migrations"][:10]) > 0
    assert sum(p1["migrations"][-5:]) <= sum(p1["migrations"][:5])
    # (a) time spikes early (migration overhead) then ends below baseline
    assert max(p1["time"][:10]) > p1["time"][-1]
    assert p1["time"][-1] < 0.9  # faster than static hash at steady state
    # (b) injection spikes cuts above the settled level, then absorbed
    settled_cuts = p1["cuts"][-1]
    assert max(p2["cuts"][:5]) > settled_cuts
    assert p2["cuts"][-1] < max(p2["cuts"][:5])
    # (b) the peak is absorbed: time returns below baseline
    assert p2["time"][-1] < 1.0
