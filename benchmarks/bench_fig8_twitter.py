"""Figure 8 — Twitter use case: throughput and superstep time while
processing a day's mention stream with TunkRank, on two paired clusters
(adaptive vs static hash), including a worker failure + recovery dip.

Paper shape (London tweets, one day, after 4 days warm-up): the adaptive
cluster's superstep time is several times lower than the static cluster's
(0.5 s vs 2.5 s) and less variable; a worker failure causes a visible
transient.  Here the stream is synthetic and time is modelled, but the
same three phenomena are asserted.
"""

from repro.analysis import CostModel, format_series
from repro.apps import TunkRank
from repro.generators import TweetStreamConfig, generate_tweet_stream
from repro.graph import Graph, batch_by_time
from repro.pregel import FaultPlan, PregelConfig, PregelSystem
from repro.utils import RunningStats

from benchmarks import _harness
from benchmarks._harness import pick, record_result

DURATION = pick(6 * 3600.0, 3600.0)  # paper: 24 h; scaled for the bench
WINDOW = 300.0             # stream batching window
SUPERSTEPS_PER_WINDOW = pick(4, 2)  # continuous computation outpaces the feed
MEAN_RATE = 1.0            # mentions/second
NUM_USERS = pick(1500, 300)
WARMUP_SUPERSTEPS = pick(40, 8)  # paper warm-up: 4 days of running
FAILURE_SUPERSTEP = pick(60, 6)  # scheduled worker failure on both clusters


def _run_cluster(adaptive, stream):
    fault = FaultPlan().add(WARMUP_SUPERSTEPS + FAILURE_SUPERSTEP, 1)
    system = PregelSystem(
        Graph(),
        TunkRank(),
        PregelConfig(num_workers=9, adaptive=adaptive, seed=0),
        fault_plan=fault,
    )
    model = CostModel(recovery_penalty=0.0)
    # Warm-up on the first window's worth of traffic.
    first_events = stream.events_between(0.0, WINDOW)
    system.inject_events(first_events)
    for _ in range(WARMUP_SUPERSTEPS):
        system.run_superstep()
    times = []
    rates = []
    hours = []
    for start, events in batch_by_time(stream, window=WINDOW):
        if start < WINDOW:
            continue  # consumed by warm-up
        system.inject_events(events)
        window_times = []
        for _ in range(SUPERSTEPS_PER_WINDOW):
            report = system.run_superstep()
            window_times.append(model.time_of(report.traffic))
        times.append(sum(window_times) / len(window_times))
        rates.append(len(events) / WINDOW)
        hours.append(start / 3600.0)
    return hours, rates, times


def _experiment():
    stream = generate_tweet_stream(
        TweetStreamConfig(
            duration=DURATION, mean_rate=MEAN_RATE, num_users=NUM_USERS,
            seed=0, burst_at=DURATION * 0.6,
        )
    )
    hours, rates, adaptive_times = _run_cluster(True, stream)
    _, __, static_times = _run_cluster(False, stream)
    return {
        "hours": hours,
        "rates": rates,
        "adaptive": adaptive_times,
        "static": static_times,
    }


def test_fig8_twitter_stream(run_once, capsys):
    results = run_once(_experiment)
    record_result("fig8_twitter", results)
    hours = results["hours"]
    with capsys.disabled():
        print()
        print("Figure 8: Twitter stream, superstep time (model units)")
        print(format_series("  tweets/s", hours, results["rates"],
                            precision=2, max_points=12))
        print(format_series("  static(hash)", hours, results["static"],
                            precision=1, max_points=12))
        print(format_series("  adaptive", hours, results["adaptive"],
                            precision=1, max_points=12))

    if _harness.SMOKE:
        return  # shape assertions are meaningless at smoke scale
    # The paper measured after 4 days of continuous running; assert on the
    # steady-state second half of the (much shorter) bench day.
    half = len(results["adaptive"]) // 2
    adaptive = RunningStats()
    static = RunningStats()
    for t in results["adaptive"][half:]:
        adaptive.add(t)
    for t in results["static"][half:]:
        static.add(t)
    # adaptive is substantially faster at steady state (paper: ~5x)
    assert adaptive.mean < static.mean / 1.3
    # and less variable relative to its own mean
    assert adaptive.stdev / max(adaptive.mean, 1e-9) <= (
        static.stdev / max(static.mean, 1e-9)
    ) * 1.5
