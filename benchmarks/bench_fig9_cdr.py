"""Figure 9 — mobile-network (CDR) use case: weekly cut ratio and
time-per-iteration for the maximal-clique workload over a month of call
data, dynamic (adaptive) vs static clusters.

Paper shape: the adaptive cluster holds a stable, low cut ratio across all
four weeks while the static cluster's stays high and degrades; the adaptive
time-per-iteration is consistently less than ~50 % of the static one, with
the gap widening over the weeks.  The clique computation freezes the
topology, so each week's changes apply as one buffered batch — the paper's
hardest adaptation regime.
"""

from repro.analysis import CostModel, format_table
from repro.apps import MaximalCliqueFinder
from repro.apps.maximal_clique import MAX_CLIQUE_AGGREGATOR
from repro.generators import CdrStreamConfig, generate_cdr_stream
from repro.graph import Graph
from repro.pregel import MaxAggregator, PregelConfig, PregelSystem
from repro.utils import mean

from benchmarks import _harness
from benchmarks._harness import pick, record_result

SUBSCRIBERS = pick(1200, 250)
WEEKS = pick(4, 2)
SUPERSTEPS_PER_WEEK = pick(40, 10)  # identical schedule on both clusters
MEASURE_TAIL = pick(10, 4)          # steady-state supersteps measured per week


def _run_cluster(adaptive, stream, boundaries):
    system = PregelSystem(
        Graph(),
        MaximalCliqueFinder(),
        PregelConfig(num_workers=9, adaptive=adaptive, seed=0),
    )
    system.aggregators.register(MAX_CLIQUE_AGGREGATOR, MaxAggregator)
    model = CostModel()
    weekly = []
    previous = 0.0
    for week, boundary in enumerate(boundaries[1:] + [stream.end_time + 1.0]):
        # Buffered batch: all of this week's changes land at one barrier,
        # then the clique computation keeps cycling (gossip/detect) while —
        # on the dynamic cluster — the partitioner adapts in the background.
        system.inject_events(stream.events_between(previous, boundary))
        reports = system.run(SUPERSTEPS_PER_WEEK)
        tail = reports[-MEASURE_TAIL:]
        iteration_time = mean(model.time_of(r.traffic) for r in tail)
        weekly.append(
            {
                "week": week + 1,
                "cut_ratio": reports[-1].cut_ratio,
                "time_per_iteration": iteration_time,
                "max_clique": system.aggregators.previous(
                    MAX_CLIQUE_AGGREGATOR
                ),
            }
        )
        previous = boundary
    return weekly


def _experiment():
    stream, boundaries = generate_cdr_stream(
        CdrStreamConfig(
            initial_subscribers=SUBSCRIBERS, num_weeks=WEEKS, seed=0
        )
    )
    return {
        "dynamic": _run_cluster(True, stream, boundaries),
        "static": _run_cluster(False, stream, boundaries),
    }


def test_fig9_cdr_weekly(run_once, capsys):
    results = run_once(_experiment)
    record_result("fig9_cdr", results)
    rows = []
    for dyn, sta in zip(results["dynamic"], results["static"]):
        rows.append(
            [
                f"week{dyn['week']}",
                dyn["cut_ratio"],
                sta["cut_ratio"],
                dyn["time_per_iteration"],
                sta["time_per_iteration"],
            ]
        )
    with capsys.disabled():
        print()
        print(
            format_table(
                ["week", "cuts dynamic", "cuts static",
                 "time dynamic", "time static"],
                rows,
                title="Figure 9: CDR use case, weekly cuts and "
                "time-per-iteration (model units)",
            )
        )
        cliques = [w["max_clique"] for w in results["dynamic"]]
        print(f"max clique per week (dynamic cluster): {cliques}")

    if _harness.SMOKE:
        return  # shape assertions are meaningless at smoke scale
    dynamic = results["dynamic"]
    static = results["static"]
    for dyn, sta in zip(dynamic, static):
        # adaptive keeps fewer cuts and runs iterations faster, every week
        assert dyn["cut_ratio"] < sta["cut_ratio"], dyn["week"]
        assert dyn["time_per_iteration"] < sta["time_per_iteration"], dyn["week"]
    # adaptive cut ratio stays stable across the month
    dyn_ratios = [w["cut_ratio"] for w in dynamic]
    assert max(dyn_ratios) - min(dyn_ratios) < 0.2
    # the paper's headline: less than ~50 % time per iteration (relaxed 0.8)
    total_dynamic = sum(w["time_per_iteration"] for w in dynamic)
    total_static = sum(w["time_per_iteration"] for w in static)
    assert total_dynamic < 0.8 * total_static
