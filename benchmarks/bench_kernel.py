"""Batched vertex kernels: the numpy fast path's wall-clock claim.

The workload is the kernel sweet spot: PageRank on a ring lattice (every
vertex mails every neighbour each superstep, so the per-superstep work is
one dense gather/scatter), run on one worker so the single-thread kernel
speedup is the isolated signal.  The same scenario runs three ways:

* **scalar** — ``REPRO_BATCH_KERNEL=off``, the per-vertex reference loop;
* **batched** — the numpy block kernel (``compute_batch``);
* **plain** — a PageRank subclass that *opts out* (``compute_batch =
  None``), measuring what non-batched programs pay for the dispatch check.

Asserted, at every scale:

* all three superstep timelines and final value maps are **bit-identical**
  (the kernel is an optimisation, never semantics) — and the thread leg's
  timeline matches its inline baseline;
* batched clears **≥3×** over scalar at full scale (≥2× smoke);
* the dispatch check costs non-batched programs **<2%** of their
  wall-clock.  A/B deltas at that margin are scheduler noise, so the bar
  is enforced bench_obs-style by extrapolation: microbenchmark the actual
  dispatch site (one attribute read + ``is not None`` branch), multiply by
  a generous over-count of how often a run hits it (2× the computed-vertex
  total, though the check really runs once per *block*), and compare that
  against the plain run's wall-clock.

Asserted only on ≥4-core hosts (see ``_harness.parallel_floor_applies``),
at full scale: a 4-thread executor clears **≥1.5×** over inline on the
batched kernel — the numpy reductions release the GIL, so threads scale
where pure-Python compute cannot.

Timing methodology: construction and a warmup superstep stay outside the
timer, and the garbage collector is frozen (``gc.freeze`` + ``gc.disable``)
around the timed region, pyperf-style — generational GC walks this
big-heap process on every bulk allocation, penalising exactly the
allocation pattern under test; freezing removes that machine-dependent
noise from both legs symmetrically.  Each leg reports its best of
``BEST_OF`` runs.
"""

import gc
import os
import time

from repro.analysis import format_table
from repro.apps.pagerank import PageRank
from repro.cluster import Coordinator, InlineExecutor, make_executor
from repro.generators import ring_lattice
from repro.obs import MetricsRegistry
from repro.pregel.system import PregelConfig

from benchmarks import _harness
from benchmarks._harness import pick, record_result

N_VERTICES = pick(100_000, 8_000)
DEGREE = 8                       # ring lattice: 8 neighbours per vertex
WARMUP_SUPERSTEPS = 1
TIMED_SUPERSTEPS = 4
BEST_OF = 3
KERNEL_FLOOR = pick(3.0, 2.0)    # batched vs scalar, single thread
THREAD_WORKERS = 4
THREAD_FLOOR = 1.5               # thread(4) vs inline, ≥4-core hosts only
DISPATCH_CEILING = 0.02          # opt-out programs: <2% for the check
MICROBENCH_ROUNDS = 200_000


class _ScalarPageRank(PageRank):
    """PageRank that opts out of the batch kernel (dispatch-cost probe)."""

    compute_batch = None


def _timed_run(kernel, num_workers=1, executor_factory=InlineExecutor,
               program_factory=PageRank):
    """Build (untimed), warm up, run TIMED_SUPERSTEPS gc-frozen, return a row.

    Construction and the first superstep stay outside the timer: shard
    build is a one-time cost and superstep 1 has no inbox, so the claim
    under test — steady-state per-superstep throughput — starts at
    superstep 2.
    """
    previous = os.environ.get("REPRO_BATCH_KERNEL")
    os.environ["REPRO_BATCH_KERNEL"] = kernel
    try:
        registry = MetricsRegistry()
        config = PregelConfig(num_workers=num_workers, seed=7, adaptive=False)
        with Coordinator(
            ring_lattice(N_VERTICES, DEGREE),
            program_factory(),
            config,
            executor=executor_factory(),
            metrics_registry=registry,
        ) as system:
            for _ in range(WARMUP_SUPERSTEPS):
                system.run_superstep()
            gc.collect()
            gc.freeze()
            gc.disable()
            try:
                start = time.perf_counter()
                reports = [
                    system.run_superstep() for _ in range(TIMED_SUPERSTEPS)
                ]
                elapsed = time.perf_counter() - start
            finally:
                gc.enable()
                gc.unfreeze()
            timeline = tuple(
                (
                    r.superstep,
                    r.migrations_announced,
                    r.cut_edges,
                    tuple(r.sizes),
                    r.computed_vertices,
                    tuple(r.per_worker_compute),
                    r.traffic.local_messages,
                    r.traffic.remote_messages,
                    r.traffic.compute_units,
                )
                for r in reports
            )
            return {
                "seconds": elapsed,
                "timeline": timeline,
                "values": dict(system.values),
                "computed_vertices": sum(r.computed_vertices for r in reports),
                "batched_blocks": registry.counter(
                    "kernel.batched_blocks"
                ).value,
                "phases": registry.phase_seconds(),
            }
    finally:
        if previous is None:
            os.environ.pop("REPRO_BATCH_KERNEL", None)
        else:
            os.environ["REPRO_BATCH_KERNEL"] = previous


def _best_of(label, **kwargs):
    """Best-of-``BEST_OF`` timing; repeats must replay one timeline."""
    runs = [_timed_run(**kwargs) for _ in range(BEST_OF)]
    for rerun in runs[1:]:
        assert rerun["timeline"] == runs[0]["timeline"], (
            f"{label}: repeat diverged from its own first run"
        )
    best = min(runs, key=lambda r: r["seconds"])
    best["leg"] = label
    return best


def _dispatch_site_cost():
    """Seconds per dispatch check on an opted-out program.

    The scalar path pays one attribute read plus an ``is not None``
    branch per block before falling into the reference loop; this times
    exactly that expression.
    """
    program = _ScalarPageRank()
    hits = 0
    start = time.perf_counter()
    for _ in range(MICROBENCH_ROUNDS):
        if program.compute_batch is not None:  # pragma: no cover - opted out
            hits += 1
    elapsed = time.perf_counter() - start
    assert hits == 0
    return elapsed / MICROBENCH_ROUNDS


def _experiment():
    scalar = _best_of("scalar", kernel="off")
    batched = _best_of("batched", kernel="on")
    plain = _best_of("plain", kernel="on", program_factory=_ScalarPageRank)

    # The determinism contract, on the heavy workload: the kernel (and the
    # opt-out path) replay the scalar run bit for bit.
    for row in (batched, plain):
        assert row["timeline"] == scalar["timeline"], (
            f"{row['leg']} timeline diverged from scalar"
        )
        assert row["values"] == scalar["values"], (
            f"{row['leg']} final values diverged from scalar"
        )
    assert batched["batched_blocks"] > 0, "batched leg never took the kernel"
    assert scalar["batched_blocks"] == 0
    assert plain["batched_blocks"] == 0, "opted-out program took the kernel"

    # Thread-vs-inline on the batched kernel (numpy releases the GIL), at
    # matching worker counts so the timelines are comparable.
    inline_par = _timed_run(kernel="on", num_workers=THREAD_WORKERS)
    thread_par = _timed_run(
        kernel="on",
        num_workers=THREAD_WORKERS,
        executor_factory=lambda: make_executor("thread", THREAD_WORKERS),
    )
    assert thread_par["timeline"] == inline_par["timeline"], (
        "thread timeline diverged from inline"
    )

    site_cost = _dispatch_site_cost()
    # one check per *block* in reality; 2x the per-vertex total is a
    # deliberately absurd over-count, and the bar still clears
    activations = 2 * plain["computed_vertices"]
    dispatch_overhead = site_cost * activations / plain["seconds"]

    results = {
        "vertices": N_VERTICES,
        "degree": DEGREE,
        "timed_supersteps": TIMED_SUPERSTEPS,
        "best_of": BEST_OF,
        "scalar_seconds": scalar["seconds"],
        "batched_seconds": batched["seconds"],
        "plain_seconds": plain["seconds"],
        "kernel_speedup": scalar["seconds"] / batched["seconds"],
        "batched_blocks": batched["batched_blocks"],
        "inline_parallel_seconds": inline_par["seconds"],
        "thread_parallel_seconds": thread_par["seconds"],
        "thread_speedup": inline_par["seconds"] / thread_par["seconds"],
        "thread_workers": THREAD_WORKERS,
        "site_cost_ns": 1e9 * site_cost,
        "estimated_activations": activations,
        "dispatch_overhead_fraction": dispatch_overhead,
        "phases": batched["phases"],
    }
    return results


def test_batched_kernel_speedup(run_once, capsys):
    """≥3× single-thread kernel speedup, identical timelines, cheap dispatch."""
    results = run_once(_experiment)
    record_result("kernel", results, phases=results["phases"])
    with capsys.disabled():
        print()
        print(
            format_table(
                ["leg", "seconds", "speedup"],
                [
                    ["scalar", f"{results['scalar_seconds']:.3f}", "1.00x"],
                    ["batched", f"{results['batched_seconds']:.3f}",
                     f"{results['kernel_speedup']:.2f}x"],
                    ["plain (opt-out)", f"{results['plain_seconds']:.3f}",
                     f"dispatch {100.0 * results['dispatch_overhead_fraction']:.3f}%"],
                    [f"thread x{results['thread_workers']}",
                     f"{results['thread_parallel_seconds']:.3f}",
                     f"{results['thread_speedup']:.2f}x vs inline"],
                ],
                title=(
                    f"Batched PageRank kernel ({results['vertices']} "
                    f"vertices, {results['timed_supersteps']} timed "
                    "supersteps, identical timelines asserted)"
                ),
            )
        )
    assert results["dispatch_overhead_fraction"] < DISPATCH_CEILING, (
        f"dispatch check costs "
        f"{100.0 * results['dispatch_overhead_fraction']:.2f}% of an "
        f"opted-out run (ceiling {100.0 * DISPATCH_CEILING:.0f}%)"
    )
    assert results["kernel_speedup"] >= KERNEL_FLOOR, (
        f"batched kernel {results['kernel_speedup']:.2f}x < "
        f"{KERNEL_FLOOR:.1f}x floor"
    )
    if _harness.SMOKE:
        return  # toy scale: thread-pool overhead drowns the compute signal
    if not _harness.parallel_floor_applies(THREAD_WORKERS):
        return  # too few cores: parallel speedup is physically unavailable
    assert results["thread_speedup"] >= THREAD_FLOOR, (
        f"thread executor {results['thread_speedup']:.2f}x < "
        f"{THREAD_FLOOR:.1f}x floor"
    )
