"""Observability overhead: tracing must be free when off, inert when on.

The instrumentation added for the tracing layer sits on the hottest paths
in the repo — shard compute, the decision phase, the barrier merge — so
its disabled cost is a correctness property, not a tuning nicety.  The
workload is the decision bench's 100k-vertex regime (a 3-D FEM mesh with a
near-idle vertex program, so per-superstep framework overhead *is* the
signal), run twice:

* **untraced** — the default ``NULL_TRACER`` path, timed;
* **traced** — a live :class:`~repro.obs.Tracer` plus metrics registry,
  timed, and its superstep timeline asserted **bit-identical** to the
  untraced run (tracing is measurement, never semantics).

Asserted, at every scale:

* identical timelines (the determinism contract);
* the disabled-path overhead is **<2%** of the untraced wall-clock.  A/B
  wall-clock deltas at this scale are dominated by scheduler noise, so the
  bar is enforced by extrapolation instead: microbenchmark the actual
  disabled-site cost (one ``tracer.enabled`` attribute read + branch),
  multiply by a generous over-count of how often the run hits an
  instrumentation site (2× the traced run's span count), and compare
  *that* against the untraced wall-clock.  The measured A/B delta is
  recorded in the artifact for the trajectory, not asserted.
"""

import time

from repro.analysis import format_table
from repro.cluster import Coordinator, InlineExecutor
from repro.generators import mesh_3d
from repro.obs import NULL_TRACER, MetricsRegistry, Tracer
from repro.pregel.system import PregelConfig
from repro.pregel.vertex import VertexProgram

from benchmarks._harness import pick, record_result

MESH_SIDE = pick(47, 12)         # 47³ ≈ 104k vertices; smoke: 12³ ≈ 1.7k
SUPERSTEPS = pick(10, 4)
PARTITIONS = 8
OVERHEAD_CEILING = 0.02          # disabled tracer: <2% of the hot loop
MICROBENCH_ROUNDS = 200_000


class _Sensor(VertexProgram):
    """A near-idle program: framework overhead is the measured signal."""

    name = "sensor"

    def initial_value(self, vertex_id, graph):
        return 0

    def compute(self, ctx, messages):
        pass

    def compute_cost(self, ctx, messages):
        return 1.0


def _timed_run(tracer=None):
    registry = MetricsRegistry()
    config = PregelConfig(num_workers=PARTITIONS, seed=0, quiet_window=10)
    with Coordinator(
        mesh_3d(MESH_SIDE),
        _Sensor(),
        config,
        executor=InlineExecutor(),
        tracer=tracer,
        metrics_registry=registry,
    ) as system:
        start = time.perf_counter()
        reports = system.run(SUPERSTEPS)
        elapsed = time.perf_counter() - start
        timeline = [
            (
                r.superstep,
                r.migrations_requested,
                r.migrations_announced,
                r.cut_edges,
                tuple(r.sizes),
                r.computed_vertices,
            )
            for r in reports
        ]
        return {
            "seconds": elapsed,
            "timeline": timeline,
            "spans": 0 if tracer is None else len(tracer.spans),
            "phases": registry.phase_seconds(),
        }


def _disabled_site_cost():
    """Seconds per disabled instrumentation site (attribute read + branch)."""
    tracer = NULL_TRACER
    hits = 0
    start = time.perf_counter()
    for _ in range(MICROBENCH_ROUNDS):
        if tracer.enabled:  # pragma: no cover - never taken
            hits += 1
    elapsed = time.perf_counter() - start
    assert hits == 0
    return elapsed / MICROBENCH_ROUNDS


def _experiment():
    untraced = _timed_run()
    traced = _timed_run(Tracer())
    assert traced["timeline"] == untraced["timeline"], (
        "tracing changed the superstep timeline"
    )
    assert traced["spans"] > 0, "traced run recorded no spans"
    site_cost = _disabled_site_cost()
    # every traced span is one instrumentation site the disabled path
    # short-circuits; 2x over-counts sites that check but record nothing
    activations = 2 * traced["spans"]
    overhead = site_cost * activations / untraced["seconds"]
    return {
        "mesh_side": MESH_SIDE,
        "vertices": MESH_SIDE ** 3,
        "supersteps": SUPERSTEPS,
        "partitions": PARTITIONS,
        "untraced_seconds": untraced["seconds"],
        "traced_seconds": traced["seconds"],
        "traced_delta": traced["seconds"] - untraced["seconds"],
        "spans": traced["spans"],
        "site_cost_ns": 1e9 * site_cost,
        "estimated_activations": activations,
        "disabled_overhead_fraction": overhead,
        "phases": untraced["phases"],
    }


def test_observability_overhead(run_once, capsys):
    results = run_once(_experiment)
    record_result("observability", results, phases=results["phases"])
    with capsys.disabled():
        print()
        print(
            format_table(
                ["mode", "seconds", "spans"],
                [
                    ["untraced", f"{results['untraced_seconds']:.3f}", 0],
                    ["traced", f"{results['traced_seconds']:.3f}",
                     results["spans"]],
                ],
                title=(
                    f"Tracing overhead ({results['vertices']} vertices, "
                    "identical timelines asserted; disabled-path cost "
                    f"{results['site_cost_ns']:.1f}ns/site x "
                    f"{results['estimated_activations']} sites = "
                    f"{100.0 * results['disabled_overhead_fraction']:.3f}% "
                    "of the untraced run)"
                ),
            )
        )
    assert results["disabled_overhead_fraction"] < OVERHEAD_CEILING, (
        f"disabled tracer costs "
        f"{100.0 * results['disabled_overhead_fraction']:.2f}% of the hot "
        f"loop (ceiling {100.0 * OVERHEAD_CEILING:.0f}%)"
    )
