"""Million-vertex rolling-window ingestion: batched vs per-event churn.

The paper's workloads arrive as change streams over graphs with millions of
vertices; what gates that scale in this reproduction is how fast
``AdaptiveRunner.apply_events`` drains a round's events.  This bench builds
a 1M-vertex community ring, generates one rolling-window arrival stream
(edges arrive continuously and expire ``horizon`` seconds later), and
ingests the identical rounds twice — ``batch_events="auto"`` (the
:mod:`repro.core.ingest` array path) vs ``batch_events="off"`` (the
per-event loop) — asserting the results are *identical* and the batch path
is faster.

Two regimes are timed:

* **buffered backlog** (asserted): the paper's CDR mode — topology frozen
  while a computation runs, then the whole backlog applies at once.  With
  the expiry horizon inside the buffer span, most arrivals net out before
  they ever touch the graph, which the grouped batch path exploits
  algebraically (one presence probe per pair, no mutations) and the
  per-event loop cannot.  Bar: ≥ 5× at full scale, ≥ 2.5× at smoke scale
  (the fixed per-round overheads and the smaller graph flatten the ratio).
* **continuous drip** (reported): short windows, horizon beyond the
  window, every event mutates the graph — the floor case where both paths
  pay the same per-edge set mutations and batching only removes
  interpreter overhead.

Timing covers ``apply_events`` only; graph build, hash partition, warm-up
and stream generation are identical under both modes and stay outside the
timer, as does slicing the stream into rounds.
"""

import gc
import time

from repro.analysis import format_table
from repro.core import AdaptiveConfig, AdaptiveRunner
from repro.generators.random_graphs import ring_lattice
from repro.graph.compact import CompactGraph
from repro.graph.stream import batch_by_time
from repro.partitioning import HashPartitioner, balanced_capacities
from repro.scenarios.churn import rolling_window_churn

from benchmarks import _harness
from benchmarks._harness import pick, record_result

VERTICES = pick(1_000_000, 20_000)
PARTITIONS = 8
RATE = pick(4000.0, 1500.0)          # edge arrivals per stream-second
DURATION = pick(40.0, 16.0)          # stream span in seconds
BUFFER_WINDOW = pick(20.0, 8.0)      # buffered regime: freeze span
BUFFER_HORIZON = 2.0                 # expiry inside the buffer: arrivals net out
DRIP_WINDOW = 2.0                    # continuous regime: round length
DRIP_HORIZON = 10.0                  # expiry beyond the window: all edges land
REPEATS = 3                          # min-of-N timing (1-core boxes are noisy)

SPEEDUP_FLOOR = 5.0                  # full-scale bar (buffered regime)
SMOKE_SPEEDUP_FLOOR = 2.5            # smoke bar, asserted in CI


def _build():
    graph = ring_lattice(
        VERTICES, neighbours_each_side=2, graph_cls=CompactGraph
    )
    caps = balanced_capacities(graph.num_vertices, PARTITIONS, 1.10)
    state = HashPartitioner().partition(graph, PARTITIONS, list(caps))
    return graph, state


def _rounds(base_graph, window, horizon):
    """Pre-sliced event rounds (identical input for both ingestion modes)."""
    stream = rolling_window_churn(
        base_graph, seed=1, rate=RATE, duration=DURATION, horizon=horizon
    )
    return [events for _, events in batch_by_time(stream, window)], len(stream)


def _ingest(rounds, mode):
    """One full ingestion run; returns (seconds, changed, runner)."""
    graph, state = _build()
    runner = AdaptiveRunner(
        graph, state, AdaptiveConfig(seed=0, batch_events=mode)
    )
    changed = 0
    gc.disable()
    start = time.perf_counter()
    for events in rounds:
        changed += runner.apply_events(events)
    elapsed = time.perf_counter() - start
    gc.enable()
    return elapsed, changed, runner


def _assert_identical(batch_runner, loop_runner):
    """The equivalence contract: both paths land in the same state."""
    assert batch_runner.state.cut_edges == loop_runner.state.cut_edges
    assert batch_runner.state.sizes == loop_runner.state.sizes
    assert batch_runner.metrics.loads == loop_runner.metrics.loads
    assert dict(batch_runner.state.assignment_items()) == dict(
        loop_runner.state.assignment_items()
    )
    assert batch_runner._active == loop_runner._active
    batch_runner.state.validate()


def _regime(base_graph, window, horizon):
    rounds, num_events = _rounds(base_graph, window, horizon)
    batch_s = loop_s = None
    batch_runner = loop_runner = None
    for _ in range(REPEATS):
        b, b_changed, b_runner = _ingest(rounds, "auto")
        l, l_changed, l_runner = _ingest(rounds, "off")
        assert b_changed == l_changed
        batch_runner, loop_runner = b_runner, l_runner
        batch_s = b if batch_s is None else min(batch_s, b)
        loop_s = l if loop_s is None else min(loop_s, l)
    _assert_identical(batch_runner, loop_runner)
    return {
        "events": num_events,
        "rounds": len(rounds),
        "window": window,
        "horizon": horizon,
        "batch_s": batch_s,
        "loop_s": loop_s,
        "speedup": loop_s / batch_s,
        "final_cut_edges": batch_runner.state.cut_edges,
    }


def test_scale_ingestion_speedup(run_once, capsys):
    def experiment():
        base_graph, _ = _build()
        return {
            "vertices": VERTICES,
            "buffered": _regime(base_graph, BUFFER_WINDOW, BUFFER_HORIZON),
            "continuous": _regime(base_graph, DRIP_WINDOW, DRIP_HORIZON),
        }

    results = run_once(experiment)
    record_result("scale_ingestion", results)
    with capsys.disabled():
        print()
        rows = [
            [
                name,
                results[name]["events"],
                results[name]["rounds"],
                f"{results[name]['batch_s']:.3f}",
                f"{results[name]['loop_s']:.3f}",
                f"{results[name]['speedup']:.2f}",
            ]
            for name in ("buffered", "continuous")
        ]
        print(
            format_table(
                ["regime", "events", "rounds", "batch s", "loop s", "speedup"],
                rows,
                title=(
                    f"{VERTICES:,}-vertex rolling window: batched vs "
                    "per-event ingestion (identical results)"
                ),
            )
        )
    floor = SMOKE_SPEEDUP_FLOOR if _harness.SMOKE else SPEEDUP_FLOOR
    assert results["buffered"]["speedup"] >= floor, results
    # The continuous drip is the batch path's floor case: every event
    # mutates the graph, so batching only sheds interpreter overhead
    # (~1.6× at full scale).  The reported number is the signal; the
    # assert is only a catastrophic-regression guard, with real slack for
    # timing noise on tiny smoke rounds on a shared 1-core CI box.
    assert results["continuous"]["speedup"] >= 0.8, results
