"""Dynamic-scenario benchmarks — the paper's paired-cluster experiment plus
the incremental-metrics speedup bar.

Two experiments:

* **Paired clusters** (§5 methodology): every catalog scenario replays twice
  against the *identical* event stream — adaptive vs static hash — and the
  adaptive side must end with a cut ratio no worse than static's.
* **Incremental metrics**: a 50k-vertex rolling-window churn run timed under
  ``metrics="incremental"`` (deltas per event/move) vs ``metrics="recompute"``
  (full cut/size/load recomputation every round, the pre-scenario behaviour
  kept as the debug cross-check).  Timelines are asserted identical; the
  speedup must clear ≥2× at full scale (the ISSUE acceptance bar).
"""

import time

from repro.analysis import format_table
from repro.core import AdaptiveConfig, AdaptiveRunner, VertexBalance
from repro.graph.stream import batch_by_time
from repro.partitioning import HashPartitioner, balanced_capacities
from repro.scenarios import (
    SCENARIOS,
    ChurnSpec,
    GraphSpec,
    get_scenario,
    play_scenario,
    scaled,
)

from benchmarks import _harness
from benchmarks._harness import pick, record_result

MAX_ROUNDS = pick(None, 6)   # smoke truncates every stream
SPEEDUP_TARGET = 2.0         # asserted at full scale only
ROLLING_VERTICES = pick(50_000, 2_000)

# The headline churn workload: a 50k-vertex community ring whose edges
# arrive continuously and expire on a rolling horizon (the telco regime).
ROLLING_SCENARIO = scaled(
    get_scenario("rolling-window"),
    name="rolling-window-50k",
    graph=GraphSpec(
        "ring",
        {"num_vertices": ROLLING_VERTICES, "neighbours_each_side": 3},
    ),
    churn=ChurnSpec(
        "rolling-window",
        {
            "rate": pick(60.0, 10.0),
            "duration": pick(60.0, 12.0),
            "horizon": 15.0,
        },
    ),
    window=2.0,
    settle_iterations=pick(30, 10),
)


def _paired(scenario):
    """Replay one scenario on both paired clusters; return the summary row."""
    adaptive = play_scenario(scenario, backend="compact", max_rounds=MAX_ROUNDS)
    static = play_scenario(
        scenario, backend="compact", adaptive=False, max_rounds=MAX_ROUNDS
    )
    return {
        "scenario": scenario.name,
        "regime": scenario.regime,
        "rounds": len(adaptive),
        "adaptive_final_cut": adaptive.final_cut_ratio(),
        "adaptive_peak_cut": adaptive.peak_cut_ratio(),
        "static_final_cut": static.final_cut_ratio(),
        "migrations": adaptive.total_migrations(),
    }


def test_scenario_paired_clusters(run_once, capsys):
    results = run_once(
        lambda: [_paired(SCENARIOS[name]) for name in sorted(SCENARIOS)]
    )
    record_result("scenarios_paired", results)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["scenario", "regime", "rounds", "adaptive cut", "static cut",
                 "migrations"],
                [
                    [r["scenario"], r["regime"], r["rounds"],
                     f"{r['adaptive_final_cut']:.4f}",
                     f"{r['static_final_cut']:.4f}", r["migrations"]]
                    for r in results
                ],
                title="Paired clusters: adaptive vs static hash per churn regime",
            )
        )
    if _harness.SMOKE:
        return  # truncated streams: the end-of-run comparison is meaningless
    for row in results:
        # Adaptation must never lose to static placement of the same stream
        # (tiny epsilon: both are stochastic processes over the same seed).
        assert (
            row["adaptive_final_cut"] <= row["static_final_cut"] + 0.02
        ), row


def _timed_churn(metrics):
    """One rolling-window churn run; returns (churn_seconds, rounds, runner).

    Graph build, initial partition, settle and stream generation stay
    outside the timer: they are identical under both metrics modes, and the
    claim under test is about the per-round cost of the churn loop.
    """
    scenario = ROLLING_SCENARIO
    graph = scenario.build_graph("compact")
    caps = balanced_capacities(
        graph.num_vertices, scenario.num_partitions, scenario.slack
    )
    state = HashPartitioner().partition(
        graph, scenario.num_partitions, list(caps)
    )
    runner = AdaptiveRunner(
        graph,
        state,
        AdaptiveConfig(
            willingness=scenario.willingness,
            quiet_window=scenario.quiet_window,
            seed=scenario.seed,
            balance=VertexBalance(slack=scenario.slack),
            metrics=metrics,
        ),
    )
    runner.run_until_convergence(max_iterations=scenario.settle_iterations)
    stream = scenario.build_stream(graph)
    rounds = 0
    start = time.perf_counter()
    for _, events in batch_by_time(stream, scenario.window):
        runner.apply_events(events)
        for _ in range(scenario.steps_per_round):
            runner.step()
        rounds += 1
    elapsed = time.perf_counter() - start
    return elapsed, rounds, runner


def _speedup_experiment():
    incremental_s, rounds, inc_runner = _timed_churn("incremental")
    recompute_s, _, rec_runner = _timed_churn("recompute")
    # The modes must be observationally identical — recompute only audits.
    assert list(inc_runner.timeline) == list(rec_runner.timeline), (
        "metrics modes diverged"
    )
    return {
        "vertices": ROLLING_VERTICES,
        "edges": inc_runner.graph.num_edges,
        "rounds": rounds,
        "incremental_s": incremental_s,
        "recompute_s": recompute_s,
        "speedup": recompute_s / incremental_s,
        "final_cut_ratio": inc_runner.state.cut_ratio(),
    }


def test_incremental_metrics_speedup(run_once, capsys):
    results = run_once(_speedup_experiment)
    record_result("scenarios_incremental_speedup", results)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["|V|", "|E|", "rounds", "incremental s", "recompute s",
                 "speedup"],
                [[results["vertices"], results["edges"], results["rounds"],
                  f"{results['incremental_s']:.3f}",
                  f"{results['recompute_s']:.3f}",
                  f"{results['speedup']:.2f}"]],
                title=(
                    "Rolling-window churn: incremental metrics vs per-round "
                    "full recompute (identical timelines)"
                ),
            )
        )
    if _harness.SMOKE:
        return  # toy scale: the fixed per-round overheads drown the signal
    assert results["speedup"] >= SPEEDUP_TARGET, results
