"""Relaxed synchrony: what snapshot staleness buys and what it costs.

The paper's protocol re-broadcasts remaining capacities every iteration —
k·(k−1) messages per superstep, the price of strict-BSP decision inputs.
``PregelConfig(snapshot_staleness=s)`` relaxes that: each decision snapshot
is reused for up to ``s`` extra supersteps and the barrier skips the
broadcast whenever the snapshot will be reused, so the metered capacity
traffic drops to one publish per ``s + 1`` supersteps.  Placement deltas
still broadcast every barrier (mirrors stay exact — ``test_staleness.py``
pins that), so the *only* thing that ages is the capacity vector the
heuristic and quota arbitration read.

This bench sweeps the staleness window over the 100k-vertex settling
workload of ``bench_decisions.py`` (3-D FEM mesh, hash-partitioned, a
near-idle vertex program so partitioning work is the signal) and records,
per window: capacity messages, migrations, and cut-ratio trajectory.

Asserted, including at smoke scale:

* capacity traffic shrinks **≥2×** at staleness 4 (the arithmetic floor —
  the publish cadence is deterministic, so this is a regression tripwire
  for the barrier gating);
* adaptation still works at every window: migrations happen and the final
  cut ratio is no worse than the initial one.

The second experiment measures the :class:`PipelinedExecutor`: the
coordinator merges each shard's delta while later shards still compute.
On a single CI core the threads time-share, so the artifact records the
measured merge/overlap seconds as an *honest 1-core projection* (the
``bench_cluster.py`` convention): ``overlap_seconds`` is merge work that
ran while at least one shard future was still open — wall-clock a
multi-core coordinator would take off the barrier's critical path.
"""

import time

from repro.analysis import format_table
from repro.cluster import Coordinator, InlineExecutor, PipelinedExecutor
from repro.generators import mesh_3d
from repro.pregel.system import PregelConfig
from repro.pregel.vertex import VertexProgram

from benchmarks import _harness
from benchmarks._harness import pick, record_result

MESH_SIDE = pick(47, 22)         # 47³ ≈ 104k vertices; smoke: 22³ ≈ 10.6k
SUPERSTEPS = pick(12, 6)
PARTITIONS = 8
STALENESS_SWEEP = (0, 1, 2, 4, 8)
SAVINGS_TARGET = 2.0             # capacity-message ratio k=0 / k=4, both scales


class _Sensor(VertexProgram):
    """A near-idle program: partitioning work is the measured signal."""

    name = "sensor"

    def initial_value(self, vertex_id, graph):
        return 0

    def compute(self, ctx, messages):
        pass

    def compute_cost(self, ctx, messages):
        return 1.0


def _config(staleness):
    return PregelConfig(
        num_workers=PARTITIONS,
        seed=0,
        quiet_window=SUPERSTEPS,
        snapshot_staleness=staleness,
    )


def _staleness_run(staleness):
    with Coordinator(
        mesh_3d(MESH_SIDE),
        _Sensor(),
        _config(staleness),
        executor=InlineExecutor(),
    ) as system:
        start = time.perf_counter()
        reports = system.run(SUPERSTEPS)
        elapsed = time.perf_counter() - start
    return {
        "staleness": staleness,
        "seconds": elapsed,
        "capacity_messages": sum(
            r.traffic.capacity_messages for r in reports
        ),
        "migrations": sum(r.migrations_announced for r in reports),
        "initial_cut_ratio": reports[0].cut_ratio,
        "final_cut_ratio": reports[-1].cut_ratio,
        "final_imbalance": (
            max(reports[-1].sizes) * PARTITIONS / sum(reports[-1].sizes)
        ),
    }


def _pipelined_run():
    executor = PipelinedExecutor(4)
    with Coordinator(
        mesh_3d(MESH_SIDE), _Sensor(), _config(0), executor=executor
    ) as system:
        start = time.perf_counter()
        system.run(SUPERSTEPS)
        elapsed = time.perf_counter() - start
        return {
            "seconds": elapsed,
            "steps_streamed": executor.steps_streamed,
            "merge_seconds": executor.merge_seconds,
            "overlap_seconds": executor.overlap_seconds,
            # Merge time a multi-core coordinator would take off the
            # barrier's critical path, as a fraction of this run.
            "projected_barrier_saving": (
                executor.overlap_seconds / elapsed if elapsed else 0.0
            ),
        }


def _experiment():
    sweep = [_staleness_run(s) for s in STALENESS_SWEEP]
    return {
        "mesh_side": MESH_SIDE,
        "vertices": MESH_SIDE ** 3,
        "supersteps": SUPERSTEPS,
        "partitions": PARTITIONS,
        "sweep": sweep,
        "pipelined": _pipelined_run(),
    }


def test_staleness_sweep(run_once, capsys):
    results = run_once(_experiment)
    record_result("staleness", results)
    sweep = {row["staleness"]: row for row in results["sweep"]}
    with capsys.disabled():
        print()
        rows = [
            [
                row["staleness"],
                row["capacity_messages"],
                row["migrations"],
                f"{row['initial_cut_ratio']:.4f}",
                f"{row['final_cut_ratio']:.4f}",
                f"{row['seconds']:.2f}",
            ]
            for row in results["sweep"]
        ]
        print(
            format_table(
                ["staleness", "cap msgs", "migr", "cut@1",
                 f"cut@{results['supersteps']}", "s"],
                rows,
                title=(
                    f"Snapshot staleness sweep ({results['vertices']} "
                    f"vertices, {results['partitions']} partitions)"
                ),
            )
        )
        pipelined = results["pipelined"]
        print(
            f"pipelined executor: {pipelined['steps_streamed']} supersteps "
            f"streamed, merge {1000 * pipelined['merge_seconds']:.1f} ms, "
            f"overlapped {1000 * pipelined['overlap_seconds']:.1f} ms "
            f"({100 * pipelined['projected_barrier_saving']:.1f}% of the "
            "run; 1-core projection)"
        )
    for row in results["sweep"]:
        assert row["migrations"] > 0, (
            f"staleness {row['staleness']}: adaptation stalled entirely"
        )
        assert row["final_cut_ratio"] <= row["initial_cut_ratio"], (
            f"staleness {row['staleness']}: cut ratio regressed "
            f"({row['initial_cut_ratio']:.4f} -> "
            f"{row['final_cut_ratio']:.4f})"
        )
    savings = sweep[0]["capacity_messages"] / sweep[4]["capacity_messages"]
    assert savings >= SAVINGS_TARGET, (
        f"staleness 4 cut capacity traffic only {savings:.2f}x "
        f"(target {SAVINGS_TARGET}x)"
    )
    pipelined = results["pipelined"]
    assert pipelined["steps_streamed"] == results["supersteps"]
    if not _harness.SMOKE:
        assert pipelined["overlap_seconds"] > 0.0, (
            "pipelined merge never overlapped shard compute"
        )
