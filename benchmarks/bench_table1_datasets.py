"""Table 1 — summary of the datasets employed in this work.

Builds every catalog dataset (at bench scale) and prints published vs built
statistics side by side.  The substitution contract (DESIGN.md §4) is that
built graphs match family and average degree; the huge entries (1e6, 1e8,
uk-2007) are listed but not built here.
"""

from repro.analysis import format_table
from repro.datasets import table1_rows

from benchmarks._harness import MAX_VERTICES, SCALE, record_result


def _build_rows():
    return table1_rows(scale=SCALE, max_vertices=MAX_VERTICES)


def test_table1_dataset_summary(run_once, capsys):
    rows = run_once(_build_rows)
    record_result("table1_datasets", rows)
    printable = [
        [
            name,
            paper_v,
            paper_e,
            family,
            built_v if built_v is not None else "(skipped)",
            built_e if built_e is not None else "",
            avg_deg if avg_deg is not None else "",
        ]
        for name, paper_v, paper_e, family, built_v, built_e, avg_deg in rows
    ]
    with capsys.disabled():
        print()
        print(
            format_table(
                ["name", "paper |V|", "paper |E|", "type",
                 "built |V|", "built |E|", "built avg deg"],
                printable,
                title="Table 1: datasets (built at bench scale "
                f"{SCALE}, cap {MAX_VERTICES})",
            )
        )
    built = [r for r in rows if r[4] is not None]
    assert len(built) >= 9
    for name, paper_v, paper_e, family, built_v, built_e, avg_deg in built:
        paper_avg = 2 * paper_e / paper_v
        assert abs(avg_deg - paper_avg) < max(0.5 * paper_avg, 2.0), name
