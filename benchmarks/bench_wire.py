"""Bytes on the wire: the binary codec + inbox combining vs raw pickle.

The socket executor's per-superstep traffic is the multi-host cost model:
every task (with its inbox) crosses the network out, every delta (values,
outbox, aggregates) crosses back, each barrier blocks on the slowest
worker's round trip.  This bench runs the same 100k-vertex PageRank
workload over localhost TCP workers twice —

* **codec** — the default wire: the tagged binary codec with the program's
  combiner folding each multi-message mailbox shard-side of the wire;
* **baseline** — ``codec="pickle", combine_inbox=False``: one
  ``pickle.dumps`` per message and every raw mailbox shipped whole, i.e.
  the pre-wire protocol —

and reads the :class:`~repro.cluster.executor.SocketExecutor` per-kind
byte counters plus the measured mean barrier latency.

Asserted at both scales (the traffic is deterministic, so the floors are
regression tripwires, not flaky timings):

* the two runs — and an :class:`InlineExecutor` reference — replay
  bit-identical superstep timelines: compression changes bytes, never
  results;
* step-direction task frames shrink **≥2×** (``TASK_TARGET``) and delta
  frames never grow.  The return direction is dominated by f64 rank
  payloads that no honest codec shrinks (pickle spends 9 bytes per
  float to our 8), so the whole step round trip carries a regression
  tripwire floor instead of the 2× claim: **≥1.4×** at full scale
  (``STEP_TARGET``), with the delta-direction ratio recorded alongside.
"""

import time

from repro.analysis import format_table
from repro.apps.pagerank import PageRank
from repro.cluster import Coordinator, InlineExecutor, SocketExecutor
from repro.cluster.worker import LocalWorkerPool
from repro.generators import mesh_3d
from repro.pregel.system import PregelConfig

from benchmarks import _harness
from benchmarks._harness import pick, record_result

MESH_SIDE = pick(47, 12)   # 47³ ≈ 104k vertices; smoke: 12³ ≈ 1.7k
SUPERSTEPS = pick(10, 5)
PARTITIONS = 8
WORKERS = 2
TASK_TARGET = 2.0          # step-direction (task frame) compression floor
STEP_TARGET = 1.4          # step round-trip tripwire (f64-bound return leg)


def _config():
    return PregelConfig(
        num_workers=PARTITIONS, seed=0, quiet_window=SUPERSTEPS
    )


def _digest(reports):
    return [
        (
            r.superstep,
            r.migrations_announced,
            r.cut_edges,
            tuple(r.sizes),
            r.computed_vertices,
            r.traffic.compute_units,
        )
        for r in reports
    ]


def _run(executor):
    """Drive one coordinator session; returns (digest, mean barrier s)."""
    with Coordinator(
        mesh_3d(MESH_SIDE), PageRank(), _config(), executor=executor
    ) as system:
        barrier_seconds = []
        for _ in range(SUPERSTEPS):
            start = time.perf_counter()
            system.run_superstep()
            barrier_seconds.append(time.perf_counter() - start)
        return (
            _digest(system.reports),
            sum(barrier_seconds) / len(barrier_seconds),
        )


def _socket_run(pool, label, **kwargs):
    executor = SocketExecutor(pool.addresses, **kwargs)
    digest, barrier = _run(executor)
    sent = executor.bytes_sent["step"]
    received = executor.bytes_received["step"]
    return {
        "label": label,
        "digest": digest,
        "mean_barrier_seconds": barrier,
        "step_bytes_sent": sent,
        "step_bytes_received": received,
        "step_bytes_total": sent + received,
        "init_bytes_sent": executor.bytes_sent["init"],
    }


def _experiment():
    inline_digest, inline_barrier = _run(InlineExecutor())
    with LocalWorkerPool(WORKERS) as pool:
        codec = _socket_run(pool, "binary+combine")
        baseline = _socket_run(
            pool, "pickle, uncombined", codec="pickle", combine_inbox=False
        )
    return {
        "mesh_side": MESH_SIDE,
        "vertices": MESH_SIDE ** 3,
        "supersteps": SUPERSTEPS,
        "partitions": PARTITIONS,
        "workers": WORKERS,
        "inline_digest": inline_digest,
        "inline_mean_barrier_seconds": inline_barrier,
        "codec": codec,
        "baseline": baseline,
        "task_ratio": baseline["step_bytes_sent"] / codec["step_bytes_sent"],
        "delta_ratio": (
            baseline["step_bytes_received"] / codec["step_bytes_received"]
        ),
        "step_ratio": (
            baseline["step_bytes_total"] / codec["step_bytes_total"]
        ),
    }


def test_wire_codec_bytes_and_latency(run_once, capsys):
    results = run_once(_experiment)
    record_result("wire", results)
    codec = results["codec"]
    baseline = results["baseline"]
    with capsys.disabled():
        print()
        rows = [
            [
                run["label"],
                run["step_bytes_sent"],
                run["step_bytes_received"],
                run["step_bytes_total"],
                f"{1000 * run['mean_barrier_seconds']:.1f}",
            ]
            for run in (baseline, codec)
        ]
        print(
            format_table(
                ["wire", "task B", "delta B", "step B", "barrier ms"],
                rows,
                title=(
                    f"Socket wire format ({results['vertices']} vertices, "
                    f"{results['partitions']} shards on "
                    f"{results['workers']} TCP workers, "
                    f"{results['supersteps']} supersteps)"
                ),
            )
        )
        print(
            f"compression: tasks {results['task_ratio']:.2f}x, deltas "
            f"{results['delta_ratio']:.2f}x, step round trip "
            f"{results['step_ratio']:.2f}x smaller than pickle/uncombined"
        )
    # Identity first: the codec must never buy bytes with results.
    assert codec["digest"] == results["inline_digest"], (
        "binary+combine socket run diverged from the inline timeline"
    )
    assert baseline["digest"] == results["inline_digest"], (
        "pickle baseline socket run diverged from the inline timeline"
    )
    assert results["task_ratio"] >= TASK_TARGET, (
        f"task frames shrank only {results['task_ratio']:.2f}x "
        f"(target {TASK_TARGET}x)"
    )
    assert results["delta_ratio"] > 1.0, (
        f"delta frames grew: {results['delta_ratio']:.2f}x"
    )
    if not _harness.SMOKE:
        assert results["step_ratio"] >= STEP_TARGET, (
            f"step round trip shrank only {results['step_ratio']:.2f}x "
            f"(target {STEP_TARGET}x)"
        )
