"""Benchmark-suite configuration.

Every bench reproduces one table or figure: it runs the experiment once
under ``benchmark.pedantic`` (the experiment *is* the measured workload —
re-running it dozens of times for timing statistics would multiply the
suite's runtime for no extra fidelity) and prints the paper-style rows or
series to stdout.  Run with::

    pytest benchmarks --benchmark-only -s

The printed output is the reproduction evidence recorded in EXPERIMENTS.md.

``--smoke`` shrinks every scale knob (see ``benchmarks/_harness.py``) and
writes the recorded per-figure results to ``$BENCH_RESULTS_DIR/results.json``
(default ``bench-results/``) — the CI bench-smoke job uploads that file as
an artifact so the perf trajectory is tracked per commit.
"""

import json
import os

import pytest

from benchmarks import _harness


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run every bench at tiny scale and emit a JSON results artifact",
    )


def pytest_configure(config):
    if config.getoption("--smoke"):
        _harness.enable_smoke()


def pytest_sessionfinish(session, exitstatus):
    results = _harness.recorded_results()
    if not results:
        return
    out_dir = os.environ.get("BENCH_RESULTS_DIR")
    if out_dir is None:
        if not _harness.SMOKE:
            return  # interactive full-scale runs just print their tables
        out_dir = "bench-results"
    os.makedirs(out_dir, exist_ok=True)
    payload = {"smoke": _harness.SMOKE, "figures": results}
    with open(os.path.join(out_dir, "results.json"), "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` exactly once under the benchmark fixture, return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                                  iterations=1)

    return runner
