"""Benchmark-suite configuration.

Every bench reproduces one table or figure: it runs the experiment once
under ``benchmark.pedantic`` (the experiment *is* the measured workload —
re-running it dozens of times for timing statistics would multiply the
suite's runtime for no extra fidelity) and prints the paper-style rows or
series to stdout.  Run with::

    pytest benchmarks/ --benchmark-only -s

The printed output is the reproduction evidence recorded in EXPERIMENTS.md.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` exactly once under the benchmark fixture, return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                                  iterations=1)

    return runner
