#!/usr/bin/env python
"""Biomedical use case (paper §4.3, Fig. 7): a cardiac FEM simulation on
the Pregel-inspired system with background adaptive partitioning.

The script loads a 3-D heart-tissue mesh with plain hash partitioning,
runs the FitzHugh–Nagumo excitation kernel while the partitioner
re-arranges the placement in the background, then injects a forest-fire
burst of +10 % new tissue and shows the system absorbing the peak.

Run:  python examples/biomedical_fem.py [mesh_side]
"""

import sys

from repro import PregelConfig, PregelSystem, forest_fire_expansion, mesh_3d
from repro.analysis import CostModel, calibrate_compute_weight
from repro.apps import CardiacFemSimulation
from repro.utils import mean


def print_phase(reports, model, baseline, label):
    print(f"\n{label}")
    print(f"{'superstep':>9}  {'cuts':>8}  {'migrations':>10}  {'time/iter':>9}")
    stride = max(1, len(reports) // 10)
    shown = reports[::stride]
    if shown[-1] is not reports[-1]:
        shown.append(reports[-1])
    for r in shown:
        time_norm = model.time_of(r.traffic) / baseline
        print(
            f"{r.superstep:>9}  {r.cut_edges:>8}  "
            f"{r.traffic.migrations:>10}  {time_norm:>9.2f}"
        )


def main(side=12):
    graph = mesh_3d(side)
    program = CardiacFemSimulation(stimulus_vertices={0})
    print(f"cardiac mesh: {graph}; 9 simulated workers")

    # Static-hash baseline for time normalisation (the paper's Y axis).
    static = PregelSystem(
        mesh_3d(side),
        CardiacFemSimulation(stimulus_vertices={0}),
        PregelConfig(num_workers=9, adaptive=False, seed=0),
    )
    static_reports = static.run(10)
    model = calibrate_compute_weight(
        CostModel(), static_reports[-1].traffic, 0.17
    )
    baseline = mean(model.time_of(r.traffic) for r in static_reports[2:])

    system = PregelSystem(
        graph, program, PregelConfig(num_workers=9, adaptive=True, seed=0)
    )
    phase1 = system.run(60)
    print_phase(phase1, model, baseline,
                "phase (a): re-arranging the initial hash partitioning")

    events, new_ids = forest_fire_expansion(
        graph, int(0.10 * graph.num_vertices), seed=1
    )
    system.inject_events(events)
    phase2 = system.run(50)
    print_phase(
        phase2, model, baseline,
        f"phase (b): absorbing +{len(new_ids)} vertices (forest fire)",
    )

    steady = model.time_of(phase2[-1].traffic) / baseline
    print(f"\nsteady-state time vs static hash: {steady:.2f}x "
          f"({1 / steady:.1f}x faster)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
