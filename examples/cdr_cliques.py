#!/usr/bin/env python
"""Mobile network use case (paper §4.3, Fig. 9): maximal-clique mining over
a month of call-detail records with weekly churn (8 % subscriber additions,
4 % removals per week), comparing a dynamic (adaptive) cluster against a
static hash one.

The clique computation freezes the topology, so each week's changes are
buffered and applied as one batch — the paper's hardest adaptation regime.

Run:  python examples/cdr_cliques.py [weeks]
"""

import sys

from repro import PregelConfig, PregelSystem
from repro.analysis import CostModel
from repro.apps import MaximalCliqueFinder
from repro.apps.maximal_clique import MAX_CLIQUE_AGGREGATOR
from repro.generators import CdrStreamConfig, generate_cdr_stream
from repro.graph import Graph
from repro.pregel import MaxAggregator

SUPERSTEPS_PER_WEEK = 36


def run_cluster(adaptive, stream, boundaries):
    system = PregelSystem(
        Graph(),
        MaximalCliqueFinder(),
        PregelConfig(num_workers=9, adaptive=adaptive, seed=0),
    )
    system.aggregators.register(MAX_CLIQUE_AGGREGATOR, MaxAggregator)
    model = CostModel()
    weekly = []
    previous = 0.0
    for boundary in boundaries[1:] + [stream.end_time + 1.0]:
        system.inject_events(stream.events_between(previous, boundary))
        reports = system.run(SUPERSTEPS_PER_WEEK)
        tail = reports[-8:]
        weekly.append(
            {
                "cuts": reports[-1].cut_ratio,
                "time": sum(model.time_of(r.traffic) for r in tail) / len(tail),
                "clique": system.aggregators.previous(MAX_CLIQUE_AGGREGATOR),
                "vertices": system.graph.num_vertices,
            }
        )
        previous = boundary
    return weekly


def main(weeks=4):
    stream, boundaries = generate_cdr_stream(
        CdrStreamConfig(initial_subscribers=1500, num_weeks=weeks, seed=0)
    )
    print(
        f"CDR stream: {len(stream)} events, {weeks} weeks, "
        "8%/4% weekly add/remove churn"
    )

    dynamic = run_cluster(True, stream, boundaries)
    static = run_cluster(False, stream, boundaries)

    print(
        f"\n{'week':>5}  {'|V|':>6}  {'cuts dyn':>8}  {'cuts sta':>8}  "
        f"{'time dyn':>9}  {'time sta':>9}  {'max clique':>10}"
    )
    for week, (dyn, sta) in enumerate(zip(dynamic, static), start=1):
        print(
            f"{week:>5}  {dyn['vertices']:>6}  {dyn['cuts']:>8.3f}  "
            f"{sta['cuts']:>8.3f}  {dyn['time']:>9.0f}  {sta['time']:>9.0f}  "
            f"{dyn['clique']:>10}"
        )

    total_dyn = sum(w["time"] for w in dynamic)
    total_sta = sum(w["time"] for w in static)
    print(
        f"\ndynamic cluster iteration time: {total_dyn / total_sta:.2f}x the "
        f"static cluster's ({total_sta / total_dyn:.1f}x faster)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
