#!/usr/bin/env python
"""Quickstart: adaptive partitioning of a FEM mesh in ~20 lines.

Builds a 3-D mesh, hash-partitions it into 9 partitions (the large-scale
systems default), runs the paper's adaptive iterative algorithm to
convergence, and compares the cut ratio against the centralised multilevel
(METIS-like) reference.

Run:  python examples/quickstart.py [side]
"""

import sys

from repro import (
    AdaptiveConfig,
    HashPartitioner,
    MultilevelPartitioner,
    balanced_capacities,
    mesh_3d,
    run_to_convergence,
)


def main(side=16):
    graph = mesh_3d(side)
    k = 9
    print(f"graph: {graph}  partitions: {k}")

    capacities = balanced_capacities(graph.num_vertices, k, slack=1.10)
    state = HashPartitioner().partition(graph, k, capacities)
    print(f"hash partitioning cut ratio:      {state.cut_ratio():.3f}")

    runner, timeline = run_to_convergence(
        graph, state, AdaptiveConfig(willingness=0.5, seed=0)
    )
    print(f"adaptive cut ratio:               {state.cut_ratio():.3f}")
    print(f"convergence time (iterations):    {runner.convergence_time}")
    print(f"total migrations:                 {timeline.total_migrations()}")
    print(f"imbalance (max/mean size):        {state.imbalance():.3f}")

    reference = MultilevelPartitioner(seed=0).partition(graph, k)
    print(f"METIS-like reference cut ratio:   {reference.cut_ratio():.3f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16)
