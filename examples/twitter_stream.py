#!/usr/bin/env python
"""Online social network use case (paper §4.3, Fig. 8): continuous TunkRank
influence estimation over a live Twitter mention stream, on two paired
clusters — one adaptive, one static hash — fed the same synthetic stream.

Prints an hourly comparison of modelled superstep times and the top
influencers found.

Run:  python examples/twitter_stream.py [hours]
"""

import sys

from repro import PregelConfig, PregelSystem
from repro.analysis import CostModel
from repro.apps import TunkRank
from repro.generators import TweetStreamConfig, generate_tweet_stream
from repro.graph import Graph, batch_by_time

WINDOW = 600.0  # seconds of stream per batch
SUPERSTEPS_PER_WINDOW = 3


def run_cluster(adaptive, stream):
    system = PregelSystem(
        Graph(),
        TunkRank(),
        PregelConfig(num_workers=9, adaptive=adaptive, seed=0),
    )
    model = CostModel()
    hourly = {}
    for start, events in batch_by_time(stream, window=WINDOW):
        system.inject_events(events)
        for _ in range(SUPERSTEPS_PER_WINDOW):
            report = system.run_superstep()
            hour = int(start // 3600)
            hourly.setdefault(hour, []).append(model.time_of(report.traffic))
    return system, {h: sum(ts) / len(ts) for h, ts in hourly.items()}


def main(hours=4):
    stream = generate_tweet_stream(
        TweetStreamConfig(
            duration=hours * 3600.0,
            mean_rate=1.5,
            num_users=2000,
            seed=0,
            burst_at=hours * 3600.0 * 0.5,  # a mid-day trending topic
        )
    )
    print(f"synthetic mention stream: {len(stream)} mentions over {hours} h")

    adaptive_system, adaptive_times = run_cluster(True, stream)
    _, static_times = run_cluster(False, stream)

    print(f"\n{'hour':>4}  {'static(hash)':>12}  {'adaptive':>9}  {'speedup':>7}")
    for hour in sorted(adaptive_times):
        s = static_times[hour]
        a = adaptive_times[hour]
        print(f"{hour:>4}  {s:>12.0f}  {a:>9.0f}  {s / a:>6.1f}x")

    print(f"\nfinal mention graph: {adaptive_system.graph}")
    print(f"adaptive cut ratio: {adaptive_system.state.cut_ratio():.3f}")
    top = sorted(
        adaptive_system.values.items(), key=lambda kv: kv[1], reverse=True
    )[:5]
    print("top influencers (TunkRank):")
    for user, influence in top:
        print(f"  {user:>8}  {influence:8.2f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
