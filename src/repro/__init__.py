"""repro — reproduction of *Adaptive Partitioning for Large-Scale Dynamic
Graphs* (Vaquero, Cuadrado, Martella & Logothetis, ICDCS 2014).

The package implements the paper's decentralised adaptive partitioning
heuristic, the Pregel-inspired continuous processing system it runs inside,
the initial-partitioning baselines it is compared against, and the
generators/datasets/benchmark harnesses that reproduce every table and
figure of the evaluation.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import (
        AdaptiveConfig, HashPartitioner, balanced_capacities,
        mesh_3d, run_to_convergence,
    )

    graph = mesh_3d(20)                                   # 8 000-vertex FEM
    k = 9
    caps = balanced_capacities(graph.num_vertices, k)
    state = HashPartitioner().partition(graph, k, caps)
    runner, timeline = run_to_convergence(graph, state, AdaptiveConfig())
    print(state.cut_ratio(), runner.convergence_time)
"""

from repro.core import (
    AdaptiveConfig,
    AdaptiveRunner,
    ConvergenceDetector,
    EdgeBalance,
    GreedyMaxNeighbours,
    HotspotBalance,
    VertexBalance,
    run_to_convergence,
)
from repro.datasets import build_dataset, dataset_names
from repro.generators import (
    forest_fire_expansion,
    generate_cdr_stream,
    generate_tweet_stream,
    grid_2d,
    mesh_3d,
    powerlaw_cluster_graph,
)
from repro.graph import (
    AddEdge,
    AddVertex,
    EventStream,
    Graph,
    RemoveEdge,
    RemoveVertex,
)
from repro.partitioning import (
    HashPartitioner,
    LinearDeterministicGreedy,
    MinimumNeighbours,
    MultilevelPartitioner,
    PartitionState,
    RandomPartitioner,
    balanced_capacities,
    make_partitioner,
)
from repro.pregel import PregelConfig, PregelSystem, VertexProgram

__version__ = "1.0.0"

__all__ = [
    "AddEdge",
    "AddVertex",
    "AdaptiveConfig",
    "AdaptiveRunner",
    "ConvergenceDetector",
    "EdgeBalance",
    "EventStream",
    "Graph",
    "GreedyMaxNeighbours",
    "HashPartitioner",
    "HotspotBalance",
    "LinearDeterministicGreedy",
    "MinimumNeighbours",
    "MultilevelPartitioner",
    "PartitionState",
    "PregelConfig",
    "PregelSystem",
    "RandomPartitioner",
    "RemoveEdge",
    "RemoveVertex",
    "VertexBalance",
    "VertexProgram",
    "__version__",
    "balanced_capacities",
    "build_dataset",
    "dataset_names",
    "forest_fire_expansion",
    "generate_cdr_stream",
    "generate_tweet_stream",
    "grid_2d",
    "make_partitioner",
    "mesh_3d",
    "powerlaw_cluster_graph",
    "run_to_convergence",
]
