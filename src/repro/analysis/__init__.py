"""Performance modelling and experiment reporting.

The paper reports *time per iteration* measured on real clusters.  Our
substrate is a simulated cluster (DESIGN.md §4), so times come from an
explicit, calibratable cost model over the honest traffic counts the
simulation records — remote messages dominate, as the paper measures
(">80 % of the time" in both heavy use cases).

* :mod:`cost_model` — linear model: counts → modelled seconds, plus a
  calibration helper that fits the compute weight to a measured
  compute-time fraction;
* :mod:`report` — fixed-width text tables and series for the benchmark
  harnesses (the repo's stand-in for the paper's plots).
"""

from repro.analysis.cost_model import (
    CostModel,
    calibrate_compute_weight,
    normalise_series,
)
from repro.analysis.decay import DecayFit, fit_exponential_decay, half_life
from repro.analysis.report import format_series, format_table

__all__ = [
    "CostModel",
    "DecayFit",
    "calibrate_compute_weight",
    "fit_exponential_decay",
    "format_series",
    "format_table",
    "half_life",
    "normalise_series",
]
