"""Linear cost model: superstep traffic → modelled time.

    time = remote_cost  × remote_messages
         + local_cost   × local_messages
         + compute_cost × compute_units
         + migration_cost × migrations
         + notification_cost × migration_notifications
         + capacity_cost × capacity_messages
         + recovery_penalty × recovery_events
         + fixed_overhead

Default weights encode the paper's measured regime: a remote message is an
order of magnitude more expensive than a local one (network serialisation +
10 GbE hop vs in-memory queue), a migration ships a whole vertex (state +
adjacency ≈ tens of messages' worth), and protocol chatter (notifications,
capacity broadcasts) is cheap but non-zero.  Absolute values are arbitrary
model seconds; every figure normalises to a static-hash baseline exactly as
the paper does, so only the *ratios* matter.
"""

from dataclasses import dataclass

__all__ = ["CostModel", "calibrate_compute_weight", "normalise_series"]


@dataclass(frozen=True)
class CostModel:
    """Weights converting :class:`SuperstepTraffic` counters into time."""

    remote_cost: float = 1.0
    local_cost: float = 0.05
    compute_cost: float = 0.05
    migration_cost: float = 20.0
    notification_cost: float = 0.2
    capacity_cost: float = 0.2
    recovery_penalty: float = 0.0
    fixed_overhead: float = 0.0

    def time_of(self, traffic):
        """Modelled time of one superstep's traffic record."""
        return (
            self.remote_cost * traffic.remote_messages
            + self.local_cost * traffic.local_messages
            + self.compute_cost * traffic.compute_units
            + self.migration_cost * traffic.migrations
            + self.notification_cost * traffic.migration_notifications
            + self.capacity_cost * traffic.capacity_messages
            + self.recovery_penalty * traffic.recovery_events
            + self.fixed_overhead
        )

    def times_of(self, traffic_records):
        """Modelled time series over many supersteps."""
        return [self.time_of(t) for t in traffic_records]

    def breakdown(self, traffic):
        """Per-component contribution map (for assertions like "messaging
        dominates")."""
        return {
            "remote": self.remote_cost * traffic.remote_messages,
            "local": self.local_cost * traffic.local_messages,
            "compute": self.compute_cost * traffic.compute_units,
            "migration": self.migration_cost * traffic.migrations,
            "notification": self.notification_cost
            * traffic.migration_notifications,
            "capacity": self.capacity_cost * traffic.capacity_messages,
            "recovery": self.recovery_penalty * traffic.recovery_events,
            "fixed": self.fixed_overhead,
        }


def calibrate_compute_weight(model, traffic, target_compute_fraction):
    """Return a model whose compute weight hits a measured compute share.

    The biomedical use case reports ">80 %" messaging and ">17 %" CPU under
    static hash partitioning; given a representative baseline ``traffic``
    record this solves for ``compute_cost`` so that compute contributes
    ``target_compute_fraction`` of the total, leaving other weights alone.
    """
    if not 0.0 < target_compute_fraction < 1.0:
        raise ValueError("target fraction must be in (0, 1)")
    if traffic.compute_units <= 0:
        raise ValueError("traffic record has no compute units to calibrate on")
    other = (
        model.remote_cost * traffic.remote_messages
        + model.local_cost * traffic.local_messages
        + model.migration_cost * traffic.migrations
        + model.notification_cost * traffic.migration_notifications
        + model.capacity_cost * traffic.capacity_messages
        + model.recovery_penalty * traffic.recovery_events
        + model.fixed_overhead
    )
    # compute_share = c*units / (c*units + other) = f  →  c = f*other/((1-f)*units)
    compute_cost = (
        target_compute_fraction
        * other
        / ((1.0 - target_compute_fraction) * traffic.compute_units)
    )
    return CostModel(
        remote_cost=model.remote_cost,
        local_cost=model.local_cost,
        compute_cost=compute_cost,
        migration_cost=model.migration_cost,
        notification_cost=model.notification_cost,
        capacity_cost=model.capacity_cost,
        recovery_penalty=model.recovery_penalty,
        fixed_overhead=model.fixed_overhead,
    )


def normalise_series(series, baseline):
    """Divide a time series by a scalar baseline (the paper's Fig. 7 axis).

    ``baseline`` is typically the mean static-hash superstep time.
    """
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return [value / baseline for value in series]
