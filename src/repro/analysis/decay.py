"""Exponential-decay analysis of migration series.

The paper asserts that "the number of migrations decreases exponentially
with the number of iterations" and that the post-peak time-per-iteration
"quickly starts to decay exponentially" (Fig. 7).  This module makes that
claim checkable: a log-linear least-squares fit over the positive samples
of a decaying series, returning the rate and the goodness of fit.
"""

import math

__all__ = ["DecayFit", "fit_exponential_decay", "half_life"]


class DecayFit:
    """Result of fitting ``y ≈ a · exp(−rate · x)``.

    ``r_squared`` is computed in log space (where the fit is linear); a
    genuinely exponential series scores close to 1.0.
    """

    __slots__ = ("amplitude", "rate", "r_squared", "num_points")

    def __init__(self, amplitude, rate, r_squared, num_points):
        self.amplitude = amplitude
        self.rate = rate
        self.r_squared = r_squared
        self.num_points = num_points

    def predict(self, x):
        """Fitted value at ``x``."""
        return self.amplitude * math.exp(-self.rate * x)

    def __repr__(self):
        return (
            f"DecayFit(amplitude={self.amplitude:.4g}, rate={self.rate:.4g}, "
            f"r_squared={self.r_squared:.3f}, n={self.num_points})"
        )


def fit_exponential_decay(series, xs=None):
    """Fit ``y = a·exp(−rate·x)`` to the positive samples of ``series``.

    Zero samples (the converged tail) carry no log-space information and
    are skipped; at least three positive samples are required.  Returns a
    :class:`DecayFit`.

    >>> fit = fit_exponential_decay([100, 50, 25, 12.5, 6.25])
    >>> round(fit.rate, 3) == round(math.log(2), 3)
    True
    >>> fit.r_squared > 0.999
    True
    """
    if xs is None:
        xs = range(len(series))
    points = [
        (float(x), math.log(y))
        for x, y in zip(xs, series)
        if y > 0
    ]
    if len(points) < 3:
        raise ValueError(
            f"need at least 3 positive samples, got {len(points)}"
        )
    n = len(points)
    sum_x = sum(x for x, _ in points)
    sum_y = sum(y for _, y in points)
    mean_x = sum_x / n
    mean_y = sum_y / n
    sxx = sum((x - mean_x) ** 2 for x, _ in points)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in points)
    if sxx == 0:
        raise ValueError("all samples at the same x; cannot fit")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_total = sum((y - mean_y) ** 2 for _, y in points)
    ss_residual = sum(
        (y - (intercept + slope * x)) ** 2 for x, y in points
    )
    r_squared = 1.0 if ss_total == 0 else 1.0 - ss_residual / ss_total
    return DecayFit(
        amplitude=math.exp(intercept),
        rate=-slope,
        r_squared=r_squared,
        num_points=n,
    )


def half_life(fit):
    """Iterations for the fitted series to halve (∞ for non-decaying fits)."""
    if fit.rate <= 0:
        return math.inf
    return math.log(2) / fit.rate
