"""Fixed-width text rendering for benchmark output.

The benches print paper-style tables and series to stdout (and the harness
tees them into EXPERIMENTS.md evidence files); no plotting dependency is
available offline, so these renderings *are* the figures.
"""

__all__ = ["format_series", "format_table"]


def _format_cell(value, precision):
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(headers, rows, precision=3, title=None):
    """Render an aligned text table.

    >>> print(format_table(["a", "b"], [[1, 2.5]], precision=1))
    a  b
    -  ---
    1  2.5
    """
    rendered = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def format_series(name, xs, ys, precision=3, max_points=40):
    """Render an (x, y) series compactly, downsampling long series evenly."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    n = len(xs)
    if n > max_points:
        stride = max(1, n // max_points)
        indices = list(range(0, n, stride))
        if indices[-1] != n - 1:
            indices.append(n - 1)
    else:
        indices = range(n)
    pairs = ", ".join(
        f"({_format_cell(xs[i], precision)}, {_format_cell(ys[i], precision)})"
        for i in indices
    )
    return f"{name}: {pairs}"
