"""Graph applications on the Pregel substrate.

The paper drives its evaluation with three workloads, all reproduced here,
plus two textbook algorithms used by our integration tests:

* :mod:`fem_simulation` — the biomedical cardiac-tissue kernel (Fig. 7):
  an excitable-media reaction–diffusion model with a heavy per-vertex CPU
  cost standing in for the 32-ODE Ten Tusscher cell model;
* :mod:`tunkrank` — TunkRank influence over a Twitter mention graph
  (Fig. 8), "a Twitter analog to PageRank";
* :mod:`maximal_clique` — the neighbour-list-exchange clique computation of
  the CDR use case (Fig. 9), deliberately message-heavy;
* :mod:`pagerank`, :mod:`connected_components`, :mod:`sssp` — validation
  workloads with known answers.
"""

from repro.apps.connected_components import ConnectedComponents
from repro.apps.fem_simulation import CardiacFemSimulation
from repro.apps.maximal_clique import MaximalCliqueFinder
from repro.apps.pagerank import PageRank
from repro.apps.sssp import SingleSourceShortestPaths
from repro.apps.tunkrank import TunkRank

__all__ = [
    "CardiacFemSimulation",
    "ConnectedComponents",
    "MaximalCliqueFinder",
    "PageRank",
    "SingleSourceShortestPaths",
    "TunkRank",
]
