"""Connected components by minimum-label propagation.

Validation workload with an exact answer (``Graph.connected_components``).
Every vertex adopts the smallest label it has heard of and gossips it on;
quiescence ⇒ per-component constant labels.
"""

from repro.pregel.messages import min_combiner
from repro.pregel.vertex import BatchedVertexProgram, BlockResult

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional
    _np = None

__all__ = ["ConnectedComponents"]


class ConnectedComponents(BatchedVertexProgram):
    """Min-label flood; vertex values end as component representatives.

    Vertex ids must be orderable within a graph (ints or strs, unmixed).
    """

    name = "connected-components"
    batch_dtype = "int64"

    def initial_value(self, vertex_id, graph):
        return vertex_id

    def compute(self, ctx, messages):
        if ctx.superstep == 1:
            ctx.send_to_neighbors(ctx.value)
            ctx.vote_to_halt()
            return
        best = min(messages) if messages else ctx.value
        if best < ctx.value:
            ctx.value = best
            ctx.send_to_neighbors(best)
        ctx.vote_to_halt()

    def compute_batch(self, block):
        """Whole-block min-label flood (int-id graphs; strings decline)."""
        values = block.values
        if block.superstep == 1:
            return BlockResult(
                values, out=block.emit_to_neighbors(values), halt=True
            )
        best = values.copy()
        if len(block.msg_values):
            _np.minimum.at(best, block.msg_row, block.msg_values)
        adopters = _np.flatnonzero(best < values)
        out = block.emit_to_neighbors(best[adopters], rows=adopters)
        return BlockResult(best, out=out, halt=True)

    def combiner(self):
        return min_combiner
