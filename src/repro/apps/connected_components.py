"""Connected components by minimum-label propagation.

Validation workload with an exact answer (``Graph.connected_components``).
Every vertex adopts the smallest label it has heard of and gossips it on;
quiescence ⇒ per-component constant labels.
"""

from repro.pregel.vertex import VertexProgram

__all__ = ["ConnectedComponents"]


def min_combiner(a, b):
    return a if a <= b else b


class ConnectedComponents(VertexProgram):
    """Min-label flood; vertex values end as component representatives.

    Vertex ids must be orderable within a graph (ints or strs, unmixed).
    """

    name = "connected-components"

    def initial_value(self, vertex_id, graph):
        return vertex_id

    def compute(self, ctx, messages):
        if ctx.superstep == 1:
            ctx.send_to_neighbors(ctx.value)
            ctx.vote_to_halt()
            return
        best = min(messages) if messages else ctx.value
        if best < ctx.value:
            ctx.value = best
            ctx.send_to_neighbors(best)
        ctx.vote_to_halt()

    def combiner(self):
        return min_combiner
