"""Cardiac-tissue FEM kernel (the biomedical workload, Fig. 7).

The paper's 100 M-vertex graph models heart tissue: "each vertex computes
more than 32 differential equations on one hundred variables representing
the way cardiac cells are excited".  We substitute the two-variable
FitzHugh–Nagumo excitable-media model — the canonical reduction of cardiac
cell dynamics — coupled by discrete Laplacian diffusion over mesh edges:

    dv/dt = v − v³/3 − w + I_stim + D·Σ_neighbours (v_n − v)
    dw/dt = ε (v + β − γ w)

Per-vertex state stays small, but :meth:`compute_cost` charges the paper's
heavy ODE load (32 equation-units per vertex), so the cost model sees the
same compute/communication balance the paper measured (~17 % CPU / >80 %
messaging under static hash partitioning).
"""

from repro.pregel.vertex import VertexProgram

__all__ = ["CardiacFemSimulation"]


class CardiacFemSimulation(VertexProgram):
    """FitzHugh–Nagumo reaction–diffusion on the mesh.

    ``stimulus_vertices`` receive a constant excitation current, launching
    the wave the simulation propagates.  Values are ``(v, w)`` tuples.
    """

    name = "cardiac-fem"

    ODE_EQUATION_UNITS = 32.0  # the paper's per-vertex CPU load

    def __init__(
        self,
        diffusion=0.2,
        dt=0.1,
        epsilon=0.08,
        beta=0.7,
        gamma=0.8,
        stimulus=0.5,
        stimulus_vertices=(),
    ):
        self.diffusion = diffusion
        self.dt = dt
        self.epsilon = epsilon
        self.beta = beta
        self.gamma = gamma
        self.stimulus = stimulus
        self.stimulus_vertices = set(stimulus_vertices)

    def initial_value(self, vertex_id, graph):
        return (-1.2, -0.6)  # FitzHugh–Nagumo resting state

    def compute(self, ctx, messages):
        v, w = ctx.value
        # Diffusion term from neighbour potentials delivered last superstep.
        if messages:
            coupling = self.diffusion * sum(vn - v for vn in messages)
        else:
            coupling = 0.0
        current = self.stimulus if ctx.vertex_id in self.stimulus_vertices else 0.0
        dv = v - (v ** 3) / 3.0 - w + current + coupling
        dw = self.epsilon * (v + self.beta - self.gamma * w)
        v_new = v + self.dt * dv
        w_new = w + self.dt * dw
        ctx.value = (v_new, w_new)
        ctx.send_to_neighbors(v_new)

    def compute_cost(self, ctx, messages):
        return self.ODE_EQUATION_UNITS + len(messages)
