"""Cardiac-tissue FEM kernel (the biomedical workload, Fig. 7).

The paper's 100 M-vertex graph models heart tissue: "each vertex computes
more than 32 differential equations on one hundred variables representing
the way cardiac cells are excited".  We substitute the two-variable
FitzHugh–Nagumo excitable-media model — the canonical reduction of cardiac
cell dynamics — coupled by discrete Laplacian diffusion over mesh edges:

    dv/dt = v − v³/3 − w + I_stim + D·Σ_neighbours (v_n − v)
    dw/dt = ε (v + β − γ w)

Per-vertex state stays small, but :meth:`compute_cost` charges the paper's
heavy ODE load (32 equation-units per vertex), so the cost model sees the
same compute/communication balance the paper measured (~17 % CPU / >80 %
messaging under static hash partitioning).
"""

from repro.pregel.vertex import VertexProgram

__all__ = ["CardiacFemSimulation", "CombinedCardiacFemSimulation"]


class CardiacFemSimulation(VertexProgram):
    """FitzHugh–Nagumo reaction–diffusion on the mesh.

    ``stimulus_vertices`` receive a constant excitation current, launching
    the wave the simulation propagates.  Values are ``(v, w)`` tuples.

    ``substeps`` sub-cycles the reaction term: the ODE integrates
    ``substeps`` Euler steps of ``dt / substeps`` between diffusion
    exchanges (standard operator splitting — communication stays one
    message per edge per superstep while per-vertex CPU scales up).  This
    is how the paper's ">32 differential equations on one hundred
    variables" load is expressed at configurable weight; the cluster
    benchmark uses it as the superstep-heavy workload.
    """

    name = "cardiac-fem"

    ODE_EQUATION_UNITS = 32.0  # the paper's per-vertex CPU load

    def __init__(
        self,
        diffusion=0.2,
        dt=0.1,
        epsilon=0.08,
        beta=0.7,
        gamma=0.8,
        stimulus=0.5,
        stimulus_vertices=(),
        substeps=1,
    ):
        if substeps < 1:
            raise ValueError("substeps must be >= 1")
        self.diffusion = diffusion
        self.dt = dt
        self.epsilon = epsilon
        self.beta = beta
        self.gamma = gamma
        self.stimulus = stimulus
        self.stimulus_vertices = set(stimulus_vertices)
        self.substeps = substeps

    def initial_value(self, vertex_id, graph):
        return (-1.2, -0.6)  # FitzHugh–Nagumo resting state

    def _integrate(self, ctx, coupling):
        """Advance this vertex one superstep: the reaction sub-cycle.

        ``coupling`` is the diffusion forcing, held constant across the
        sub-cycle (it derives from last superstep's neighbour potentials).
        Both kernel variants share this loop; they differ only in how the
        coupling is computed from their message encodings.
        """
        v, w = ctx.value
        current = self.stimulus if ctx.vertex_id in self.stimulus_vertices else 0.0
        dt = self.dt / self.substeps
        epsilon, beta, gamma = self.epsilon, self.beta, self.gamma
        for _ in range(self.substeps):
            dv = v - (v ** 3) / 3.0 - w + current + coupling
            dw = epsilon * (v + beta - gamma * w)
            v = v + dt * dv
            w = w + dt * dw
        ctx.value = (v, w)
        return v

    def compute(self, ctx, messages):
        # Diffusion term from neighbour potentials delivered last superstep.
        v = ctx.value[0]
        if messages:
            coupling = self.diffusion * sum(vn - v for vn in messages)
        else:
            coupling = 0.0
        ctx.send_to_neighbors(self._integrate(ctx, coupling))

    def compute_cost(self, ctx, messages):
        return self.ODE_EQUATION_UNITS * self.substeps + len(messages)


def _sum_count_combiner(a, b):
    """Fold ``(potential_sum, count)`` message pairs componentwise."""
    return (a[0] + b[0], a[1] + b[1])


class CombinedCardiacFemSimulation(CardiacFemSimulation):
    """The FEM kernel with a Pregel combiner on the diffusion term.

    The coupling only needs ``Σ v_n`` and the neighbour count, so messages
    are ``(potential, 1)`` pairs folded per sending worker — the classic
    combiner optimisation.  Per superstep each vertex receives at most one
    message per worker hosting a neighbour instead of one per neighbour,
    which is what makes the sharded process executor's IPC cheap
    (``benchmarks/bench_cluster.py`` runs this variant).

    The trajectory is the plain kernel's up to float summation order:
    ``D·(Σ v_n − n·v)`` versus ``D·Σ (v_n − v)``.
    """

    name = "cardiac-fem-combined"

    def compute(self, ctx, messages):
        v = ctx.value[0]
        if messages:
            total = sum(m[0] for m in messages)
            count = sum(m[1] for m in messages)
            coupling = self.diffusion * (total - count * v)
        else:
            coupling = 0.0
        ctx.send_to_neighbors((self._integrate(ctx, coupling), 1))

    def combiner(self):
        return _sum_count_combiner
