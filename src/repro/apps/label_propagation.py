"""Label propagation community detection (Raghavan et al. [29]).

Included as the related-work comparator the paper discusses: community
detection finds densely connected groups but "do[es] not focus on finding
balanced partitions", and small graph changes can flip many labels.  The
integration tests use it to demonstrate exactly that contrast against the
capacity-bounded adaptive partitioner.

Each vertex adopts the most frequent label among its neighbours (ties
broken deterministically by label order), gossiping until labels stop
changing.
"""

from repro.pregel.vertex import VertexProgram

__all__ = ["LabelPropagation"]


class LabelPropagation(VertexProgram):
    """Synchronous label propagation; value = current community label."""

    name = "label-propagation"

    def __init__(self, max_rounds=50):
        self.max_rounds = max_rounds

    def initial_value(self, vertex_id, graph):
        return vertex_id

    def compute(self, ctx, messages):
        if ctx.superstep == 1:
            ctx.send_to_neighbors(ctx.value)
            ctx.vote_to_halt()
            return
        if ctx.superstep > self.max_rounds:
            ctx.vote_to_halt()
            return
        if messages:
            counts = {}
            for label in messages:
                counts[label] = counts.get(label, 0) + 1
            best = min(
                counts, key=lambda lab: (-counts[lab], str(lab))
            )
            if best != ctx.value and counts[best] >= counts.get(ctx.value, 0):
                ctx.value = best
                ctx.send_to_neighbors(best)
        ctx.vote_to_halt()

    @staticmethod
    def communities(values):
        """Group vertices by final label: {label: set(vertices)}."""
        groups = {}
        for vertex, label in values.items():
            groups.setdefault(label, set()).add(vertex)
        return groups
