"""Label propagation community detection (Raghavan et al. [29]).

Included as the related-work comparator the paper discusses: community
detection finds densely connected groups but "do[es] not focus on finding
balanced partitions", and small graph changes can flip many labels.  The
integration tests use it to demonstrate exactly that contrast against the
capacity-bounded adaptive partitioner.

Each vertex adopts the most frequent label among its neighbours (ties
broken deterministically by label order), gossiping until labels stop
changing.
"""

from repro.pregel.vertex import BatchedVertexProgram, BlockResult

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional
    _np = None

__all__ = ["LabelPropagation"]


class LabelPropagation(BatchedVertexProgram):
    """Synchronous label propagation; value = current community label."""

    name = "label-propagation"
    batch_dtype = "int64"

    def __init__(self, max_rounds=50):
        self.max_rounds = max_rounds

    def initial_value(self, vertex_id, graph):
        return vertex_id

    def compute(self, ctx, messages):
        if ctx.superstep == 1:
            ctx.send_to_neighbors(ctx.value)
            ctx.vote_to_halt()
            return
        if ctx.superstep > self.max_rounds:
            ctx.vote_to_halt()
            return
        if messages:
            counts = {}
            for label in messages:
                counts[label] = counts.get(label, 0) + 1
            best = min(
                counts, key=lambda lab: (-counts[lab], str(lab))
            )
            if best != ctx.value and counts[best] >= counts.get(ctx.value, 0):
                ctx.value = best
                ctx.send_to_neighbors(best)
        ctx.vote_to_halt()

    def compute_batch(self, block):
        """Whole-block label adoption via grouped (row, label) counting.

        The scalar tie-break is ``min`` by ``(-count, str(label))``; here
        the candidate (row, label) pairs are lexsorted by row, then count
        descending, then the label's rank under *string* ordering, and the
        first pair per row wins — the same minimum.  String-labelled
        graphs never reach this kernel (the int64 packing declines), so
        ``str`` ordering only ever ranks decimal renderings of ints.
        """
        values = block.values
        if block.superstep == 1:
            return BlockResult(
                values, out=block.emit_to_neighbors(values), halt=True
            )
        if block.superstep > self.max_rounds or not len(block.msg_values):
            return BlockResult(values, halt=True)
        labels, inv = _np.unique(block.msg_values, return_inverse=True)
        n_labels = len(labels)
        str_order = _np.argsort(labels.astype(_np.str_), kind="stable")
        str_rank = _np.empty(n_labels, dtype=_np.int64)
        str_rank[str_order] = _np.arange(n_labels, dtype=_np.int64)
        pair_codes, pair_counts = _np.unique(
            block.msg_row * n_labels + inv, return_counts=True
        )
        pair_row = pair_codes // n_labels
        pair_label = pair_codes % n_labels
        sel = _np.lexsort((str_rank[pair_label], -pair_counts, pair_row))
        mailed_rows, firsts = _np.unique(pair_row[sel], return_index=True)
        best_labels = labels[pair_label[sel[firsts]]]
        best_counts = pair_counts[sel[firsts]]
        # Count of each mailed row's *own* label among its messages (0 when
        # absent) — both searchsorted probes are validated before use.
        own = values[mailed_rows]
        pos = _np.searchsorted(labels, own).clip(max=n_labels - 1)
        own_code = mailed_rows * n_labels + pos
        loc = _np.searchsorted(pair_codes, own_code)
        loc = loc.clip(max=len(pair_codes) - 1)
        own_counts = _np.where(
            (labels[pos] == own) & (pair_codes[loc] == own_code),
            pair_counts[loc],
            0,
        )
        adopt = (best_labels != own) & (best_counts >= own_counts)
        adopt_rows = mailed_rows[adopt]
        new_values = values.copy()
        new_values[adopt_rows] = best_labels[adopt]
        out = block.emit_to_neighbors(best_labels[adopt], rows=adopt_rows)
        return BlockResult(new_values, out=out, halt=True)

    @staticmethod
    def communities(values):
        """Group vertices by final label: {label: set(vertices)}."""
        groups = {}
        for vertex, label in values.items():
            groups.setdefault(label, set()).add(vertex)
        return groups
