"""Maximal cliques by neighbour-list exchange (the CDR workload, §4.3).

The paper's description: "In the first iteration, each vertex sends its
lists of neighbours to all its neighbours.  On the next iteration, given a
vertex i and each of its neighbours j, i creates j lists containing the
neighbours of j that are also neighbours with i.  Lists containing the same
elements reveal a clique."  The messaging cost is what matters to Fig. 9 —
neighbour lists are big, so this app is deliberately remote-traffic-heavy.

Our implementation follows the same two-phase pattern and then extracts,
per vertex, a maximal clique containing it: starting from the densest
common-neighbour list it greedily verifies mutual adjacency (using the
received lists only — the vertex never reads non-local state).  The global
maximum clique size is folded through an aggregator.

The computation freezes the topology: it must run for two supersteps on a
stable graph (the paper buffers stream changes meanwhile), which is exactly
how the Fig. 9 bench schedules it.
"""

from repro.pregel.vertex import VertexProgram

__all__ = ["MaximalCliqueFinder"]

MAX_CLIQUE_AGGREGATOR = "max_clique"


class MaximalCliqueFinder(VertexProgram):
    """Cyclic two-superstep neighbour-list clique detection.

    The computation repeats with period 2 so it can run *continuously* (the
    paper "calculated the maximal clique at any time"): odd supersteps
    gossip neighbour lists, even supersteps intersect them.  After each
    detection superstep a vertex's value is ``(clique_size, members)`` for
    the best clique it found through itself.  Register a
    :class:`MaxAggregator` under ``MAX_CLIQUE_AGGREGATOR`` to collect the
    global answer (visible one superstep later).
    """

    name = "maximal-clique"

    def initial_value(self, vertex_id, graph):
        return (1, (vertex_id,))

    @staticmethod
    def is_gossip_superstep(superstep):
        """Odd supersteps send neighbour lists; even ones detect."""
        return superstep % 2 == 1

    def compute(self, ctx, messages):
        if self.is_gossip_superstep(ctx.superstep):
            # Phase 1: gossip the neighbour list (heavy messages, on purpose).
            neighbour_list = tuple(ctx.neighbors())
            ctx.send_to_neighbors((ctx.vertex_id, neighbour_list))
            ctx.vote_to_halt()
            return
        if messages:
            my_neighbours = set(ctx.neighbors())
            # adjacency[j] = neighbours of j that i also neighbours (the
            # paper's "j lists"), plus j itself for the mutual check below.
            adjacency = {}
            for sender, their_neighbours in messages:
                common = my_neighbours.intersection(their_neighbours)
                adjacency[sender] = common
            best = (1, (ctx.vertex_id,))
            # Seed from the densest lists first; greedy mutual verification.
            order = sorted(
                adjacency, key=lambda j: len(adjacency[j]), reverse=True
            )
            for seed in order[:8]:  # cap work per vertex; lists get large
                clique = [ctx.vertex_id, seed]
                candidates = sorted(
                    adjacency[seed].intersection(adjacency),
                    key=lambda j: len(adjacency[j]),
                    reverse=True,
                )
                for candidate in candidates:
                    if candidate in clique:
                        continue
                    if all(
                        member == ctx.vertex_id
                        or candidate in adjacency.get(member, ())
                        or member in adjacency.get(candidate, ())
                        for member in clique
                    ):
                        clique.append(candidate)
                if len(clique) > best[0]:
                    ordered = tuple(sorted(clique, key=str))
                    best = (len(clique), ordered)
            ctx.value = best
            ctx.aggregate(MAX_CLIQUE_AGGREGATOR, best[0])
        ctx.vote_to_halt()

    def compute_cost(self, ctx, messages):
        # Intersections over neighbour lists: cost ∝ total list volume.
        volume = sum(len(m[1]) for m in messages) if messages else 0
        return 1.0 + 0.1 * volume
