"""PageRank on the undirected graph (degree-normalised random walk).

Included as a validation workload: the stationary distribution of a random
walk on a connected undirected graph is proportional to vertex degree, so
the tests have a closed-form answer to converge against.  Also the paper's
motivating example for edge-balanced partitioning (its cost ∝ edges).
"""

from repro.pregel.messages import sum_combiner
from repro.pregel.vertex import BatchedVertexProgram, BlockResult

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional
    _np = None

__all__ = ["PageRank"]


class PageRank(BatchedVertexProgram):
    """Classic damped PageRank; messages are rank shares, combined by sum."""

    name = "pagerank"
    batch_dtype = "float64"

    def __init__(self, damping=0.85):
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.damping = damping

    def initial_value(self, vertex_id, graph):
        n = max(graph.num_vertices, 1)
        return 1.0 / n

    def compute(self, ctx, messages):
        n = max(ctx.num_vertices, 1)
        if ctx.superstep > 1:
            incoming = sum(messages)
            ctx.value = (1.0 - self.damping) / n + self.damping * incoming
        degree = ctx.degree()
        if degree:
            ctx.send_to_neighbors(ctx.value / degree)
        ctx.vote_to_halt()

    def compute_batch(self, block):
        """Whole-block PageRank step; same arithmetic order as ``compute``.

        ``bincount`` folds each row's inbox left-to-right from ``+0.0``,
        which reproduces the scalar ``sum(messages)`` (that sum starts at
        the int ``0``, and ``0 + float`` is exact) — rank shares are
        strictly positive so the ``-0.0`` caveat never bites.
        """
        values = block.values
        if block.superstep > 1:
            incoming = _np.bincount(
                block.msg_row, weights=block.msg_values, minlength=len(block)
            )
            base = (1.0 - self.damping) / max(block.num_vertices, 1)
            values = base + self.damping * incoming
        shares = values / _np.maximum(block.degrees, 1)
        return BlockResult(
            values, out=block.emit_to_neighbors(shares), halt=True
        )

    def combiner(self):
        return sum_combiner
