"""PageRank on the undirected graph (degree-normalised random walk).

Included as a validation workload: the stationary distribution of a random
walk on a connected undirected graph is proportional to vertex degree, so
the tests have a closed-form answer to converge against.  Also the paper's
motivating example for edge-balanced partitioning (its cost ∝ edges).
"""

from repro.pregel.messages import sum_combiner
from repro.pregel.vertex import VertexProgram

__all__ = ["PageRank"]


class PageRank(VertexProgram):
    """Classic damped PageRank; messages are rank shares, combined by sum."""

    name = "pagerank"

    def __init__(self, damping=0.85):
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.damping = damping

    def initial_value(self, vertex_id, graph):
        n = max(graph.num_vertices, 1)
        return 1.0 / n

    def compute(self, ctx, messages):
        n = max(ctx.num_vertices, 1)
        if ctx.superstep > 1:
            incoming = sum(messages)
            ctx.value = (1.0 - self.damping) / n + self.damping * incoming
        degree = ctx.degree()
        if degree:
            ctx.send_to_neighbors(ctx.value / degree)
        ctx.vote_to_halt()

    def combiner(self):
        return sum_combiner
