"""Single-source shortest paths (unit edge weights).

Validation workload: breadth-first distance from a source vertex, checked
against a sequential BFS in the tests.
"""

import math

from repro.pregel.messages import min_combiner
from repro.pregel.vertex import VertexProgram

__all__ = ["SingleSourceShortestPaths"]


class SingleSourceShortestPaths(VertexProgram):
    """Pregel's canonical example, unit weights."""

    name = "sssp"

    def __init__(self, source):
        self.source = source

    def initial_value(self, vertex_id, graph):
        return 0.0 if vertex_id == self.source else math.inf

    def compute(self, ctx, messages):
        best = min(messages) if messages else math.inf
        if ctx.superstep == 1 and ctx.vertex_id == self.source:
            best = 0.0
        if best < ctx.value or (
            ctx.superstep == 1 and ctx.vertex_id == self.source
        ):
            ctx.value = min(ctx.value, best)
            ctx.send_to_neighbors(ctx.value + 1.0)
        ctx.vote_to_halt()

    def combiner(self):
        return min_combiner
