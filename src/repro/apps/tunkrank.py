"""TunkRank — "a Twitter analog to PageRank" (Tunkelang 2009).

The paper's Fig. 8 workload: continuously estimate user influence over the
live mention graph.  TunkRank defines the influence of X as the expected
number of people who read a tweet of X's, directly or via retweets:

    Influence(X) = Σ_{F ∈ Followers(X)} (1 + p · Influence(F)) / |Following(F)|

with retweet probability ``p``.  On the undirected mention graph the
follower/following distinction collapses to the neighbourhood, giving a
damped degree-normalised propagation like PageRank but *additive* (ranks
grow with audience rather than summing to 1).
"""

from repro.pregel.messages import sum_combiner
from repro.pregel.vertex import BatchedVertexProgram, BlockResult

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional
    _np = None

__all__ = ["TunkRank"]


class TunkRank(BatchedVertexProgram):
    """Iterative TunkRank over the mention graph.

    Designed for continuous mode: every superstep each vertex re-emits its
    contribution ``(1 + p·influence) / degree`` to all neighbours and folds
    the incoming contributions into a fresh influence estimate, so the
    ranking tracks the mutating graph.
    """

    name = "tunkrank"
    batch_dtype = "float64"

    def __init__(self, retweet_probability=0.05):
        if not 0.0 <= retweet_probability < 1.0:
            raise ValueError("retweet probability must be in [0, 1)")
        self.retweet_probability = retweet_probability

    def initial_value(self, vertex_id, graph):
        return 0.0

    def compute(self, ctx, messages):
        if ctx.superstep > 1:
            ctx.value = sum(messages)
        degree = ctx.degree()
        if degree:
            contribution = (
                1.0 + self.retweet_probability * ctx.value
            ) / degree
            ctx.send_to_neighbors(contribution)

    def compute_batch(self, block):
        """Whole-block TunkRank step, or None for a mail-less row.

        The scalar path writes ``sum(())`` — the *int* ``0`` — into a row
        that received no mail, and that int is digest-visible; rather than
        replicate a type quirk the kernel declines the block and lets the
        scalar loop produce it.  (Past superstep 1 every connected vertex
        has mail, so this only triggers around churn.)
        """
        values = block.values
        if block.superstep > 1:
            if (block.msg_counts == 0).any():
                return None
            values = _np.bincount(
                block.msg_row, weights=block.msg_values, minlength=len(block)
            )
        contributions = (
            1.0 + self.retweet_probability * values
        ) / _np.maximum(block.degrees, 1)
        return BlockResult(
            values, out=block.emit_to_neighbors(contributions), halt=False
        )

    def combiner(self):
        return sum_combiner
