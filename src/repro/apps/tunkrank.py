"""TunkRank — "a Twitter analog to PageRank" (Tunkelang 2009).

The paper's Fig. 8 workload: continuously estimate user influence over the
live mention graph.  TunkRank defines the influence of X as the expected
number of people who read a tweet of X's, directly or via retweets:

    Influence(X) = Σ_{F ∈ Followers(X)} (1 + p · Influence(F)) / |Following(F)|

with retweet probability ``p``.  On the undirected mention graph the
follower/following distinction collapses to the neighbourhood, giving a
damped degree-normalised propagation like PageRank but *additive* (ranks
grow with audience rather than summing to 1).
"""

from repro.pregel.messages import sum_combiner
from repro.pregel.vertex import VertexProgram

__all__ = ["TunkRank"]


class TunkRank(VertexProgram):
    """Iterative TunkRank over the mention graph.

    Designed for continuous mode: every superstep each vertex re-emits its
    contribution ``(1 + p·influence) / degree`` to all neighbours and folds
    the incoming contributions into a fresh influence estimate, so the
    ranking tracks the mutating graph.
    """

    name = "tunkrank"

    def __init__(self, retweet_probability=0.05):
        if not 0.0 <= retweet_probability < 1.0:
            raise ValueError("retweet probability must be in [0, 1)")
        self.retweet_probability = retweet_probability

    def initial_value(self, vertex_id, graph):
        return 0.0

    def compute(self, ctx, messages):
        if ctx.superstep > 1:
            ctx.value = sum(messages)
        degree = ctx.degree()
        if degree:
            contribution = (
                1.0 + self.retweet_probability * ctx.value
            ) / degree
            ctx.send_to_neighbors(contribution)

    def combiner(self):
        return sum_combiner
