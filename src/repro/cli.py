"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the paper's workflow without writing code:

* ``partition`` — read an edge list, run initial + adaptive partitioning,
  save the assignment, print quality metrics;
* ``watch`` — like ``partition`` on a generated mesh, but render the
  evolving 2-D slice as text frames (the paper's video, offline);
* ``scenario`` — replay a named dynamic scenario (churning graph) and print
  its per-round timeline; ``--static`` runs the paired static-hash cluster,
  ``--engine pregel`` replays through the sharded cluster simulation (with
  ``--executor inline|thread|pipelined|process|socket`` selecting the
  backend,
  ``--decisions shard|coordinator`` selecting where migration proposals
  are generated — timelines are identical either way — and ``--staleness
  N`` relaxing the capacity-resync cadence), ``--spec file`` loads a user
  JSON/TOML scenario instead of a catalog name;
* ``datasets`` — print the Table-1 catalog;
* ``generate`` — write a synthetic dataset to an edge-list file;
* ``worker`` — serve shards over TCP to a ``--executor socket`` run on
  another host (or another process on this one): ``repro worker --listen
  HOST:PORT`` prints the bound address and speaks the persistent-worker
  wire protocol until its session count is exhausted.
"""

import argparse
import contextlib
import json
import sys

from repro.analysis import format_table
from repro.cluster import EXECUTORS, WorkerServer, make_executor
from repro.cluster.worker import parse_address
from repro.core import AdaptiveConfig, AdaptiveRunner
from repro.datasets import CATALOG, build_dataset, dataset_names
from repro.generators import mesh_3d
from repro.graph import GRAPH_BACKENDS
from repro.io import read_edgelist, save_partition, write_edgelist
from repro.partitioning import balanced_capacities, make_partitioner
from repro.scenarios import (
    ENGINES,
    SCENARIOS,
    get_scenario,
    load_scenario,
    play_scenario,
    scaled,
)
from repro.viz import partition_histogram, render_mesh_slice

__all__ = ["build_parser", "main"]


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive partitioning for large-scale dynamic graphs "
        "(Vaquero et al., ICDCS 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("partition", help="partition an edge-list file")
    p.add_argument("edgelist", help="path to a SNAP-style edge list")
    p.add_argument("-k", "--partitions", type=int, default=9)
    p.add_argument("-s", "--willingness", type=float, default=0.5)
    p.add_argument("--strategy", default="HSH", choices=["HSH", "RND", "DGR", "MNN", "METIS"])
    p.add_argument("--slack", type=float, default=1.10,
                   help="capacity as a multiple of the balanced load")
    p.add_argument("--backend", default="adjacency",
                   choices=sorted(GRAPH_BACKENDS),
                   help="graph backend (compact enables the batch sweep)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-iterations", type=int, default=1000)
    p.add_argument("-o", "--output", help="save the final assignment here")

    w = sub.add_parser("watch", help="watch a mesh slice repartition itself")
    w.add_argument("--side", type=int, default=12, help="mesh side length")
    w.add_argument("-k", "--partitions", type=int, default=9)
    w.add_argument("--frames", type=int, default=6)
    w.add_argument("--iterations-per-frame", type=int, default=10)
    w.add_argument("--seed", type=int, default=0)

    sc = sub.add_parser(
        "scenario", help="replay a named dynamic scenario round by round"
    )
    sc.add_argument("name", nargs="?", help="catalog name (see --list)")
    sc.add_argument("--list", action="store_true", dest="list_scenarios",
                    help="print the scenario catalog and exit")
    sc.add_argument("--spec", default=None,
                    help="load the scenario from a JSON/TOML spec file "
                    "instead of the catalog")
    sc.add_argument("--backend", default="adjacency",
                    choices=sorted(GRAPH_BACKENDS))
    sc.add_argument("--engine", default="adaptive", choices=sorted(ENGINES),
                    help="adaptive = logical round loop; pregel = sharded "
                    "distributed simulation (messages + migration protocol)")
    sc.add_argument("--executor", default=None, choices=sorted(EXECUTORS),
                    help="pregel engine only: where shard compute runs "
                    "(default inline; socket reads worker addresses from "
                    "REPRO_SOCKET_WORKERS)")
    sc.add_argument("--workers", type=int, default=None,
                    help="worker count for --executor "
                    "thread/pipelined/process/socket")
    sc.add_argument("--decisions", default=None,
                    choices=["shard", "coordinator"],
                    help="pregel engine only: where migration proposals are "
                    "generated (default shard; timelines are identical "
                    "either way, only wall-clock moves)")
    sc.add_argument("--staleness", type=int, default=None,
                    help="pregel engine only: relaxed synchrony — reuse "
                    "each decision snapshot for up to N extra supersteps "
                    "between capacity resyncs (default 0 = strict BSP)")
    sc.add_argument("--static", action="store_true",
                    help="no adaptation: the paper's static-hash paired cluster")
    sc.add_argument("--metrics", default="incremental",
                    choices=["incremental", "recompute"],
                    help="recompute = per-round full-recompute cross-check")
    sc.add_argument("--seed", type=int, default=None,
                    help="override the scenario's seed")
    sc.add_argument("--max-rounds", type=int, default=None)
    sc.add_argument("--json", dest="json_out",
                    help="write the exact per-round digest to this file")
    sc.add_argument("--trace", default=None, metavar="FILE",
                    help="pregel engine only: record phase spans and write "
                    "them here (.jsonl = span rows, anything else = Chrome "
                    "trace JSON loadable in Perfetto); never changes "
                    "results")
    sc.add_argument("--show-metrics", action="store_true",
                    help="pregel engine only: print the metrics-registry "
                    "snapshot (phase seconds, executor byte counters) "
                    "after the timeline")
    sc.add_argument("--metrics-json", default=None, metavar="FILE",
                    help="pregel engine only: write the metrics-registry "
                    "snapshot to this file as JSON")

    sub.add_parser("datasets", help="print the Table-1 dataset catalog")

    g = sub.add_parser("generate", help="write a synthetic dataset")
    g.add_argument("name", help=f"one of {', '.join(dataset_names())}")
    g.add_argument("output", help="edge-list file to write")
    g.add_argument("--scale", type=float, default=1.0)
    g.add_argument("--max-vertices", type=int, default=100000)
    g.add_argument("--seed", type=int, default=0)

    wk = sub.add_parser(
        "worker", help="serve shards over TCP to a socket-executor run"
    )
    wk.add_argument("--listen", required=True, metavar="HOST:PORT",
                    help="address to bind (port 0 = pick an ephemeral "
                    "port; the bound address is printed)")
    wk.add_argument("--sessions", type=int, default=1,
                    help="coordinator sessions to serve before exiting "
                    "(0 = serve forever)")
    return parser


def _cmd_partition(args, out):
    graph = read_edgelist(args.edgelist, backend=args.backend)
    out.write(f"loaded {graph}\n")
    caps = balanced_capacities(graph.num_vertices, args.partitions, args.slack)
    state = make_partitioner(args.strategy, seed=args.seed).partition(
        graph, args.partitions, list(caps)
    )
    out.write(f"{args.strategy} initial cut ratio: {state.cut_ratio():.4f}\n")
    if args.strategy != "METIS":
        runner = AdaptiveRunner(
            graph,
            state,
            AdaptiveConfig(willingness=args.willingness, seed=args.seed),
        )
        runner.run_until_convergence(max_iterations=args.max_iterations)
        out.write(f"adaptive cut ratio:    {state.cut_ratio():.4f}\n")
        out.write(f"convergence time:      {runner.convergence_time}\n")
    out.write(f"imbalance:             {state.imbalance():.3f}\n")
    out.write(partition_histogram(state) + "\n")
    if args.output:
        save_partition(state, args.output)
        out.write(f"assignment saved to {args.output}\n")
    return 0


def _cmd_watch(args, out):
    side = args.side
    graph = mesh_3d(side)
    caps = balanced_capacities(graph.num_vertices, args.partitions)
    state = make_partitioner("HSH").partition(
        graph, args.partitions, list(caps)
    )
    runner = AdaptiveRunner(graph, state, AdaptiveConfig(seed=args.seed))
    for frame in range(args.frames):
        out.write(
            f"\n-- frame {frame}: iteration {runner.iteration}, "
            f"cut ratio {state.cut_ratio():.3f} --\n"
        )
        out.write(render_mesh_slice(state, side, side, side) + "\n")
        for _ in range(args.iterations_per_frame):
            runner.step()
    out.write(
        f"\nfinal: iteration {runner.iteration}, "
        f"cut ratio {state.cut_ratio():.3f}\n"
    )
    return 0


def _cmd_scenario(args, out):
    if args.list_scenarios or not (args.name or args.spec):
        rows = [
            [s.name, s.regime, s.num_partitions, s.description]
            for s in sorted(SCENARIOS.values(), key=lambda s: s.name)
        ]
        out.write(
            format_table(
                ["name", "regime", "k", "description"], rows,
                title="Dynamic scenario catalog",
            )
            + "\n"
        )
        if not (args.name or args.spec):
            return 0 if args.list_scenarios else 2
        return 0
    if args.engine != "pregel" and (
        args.executor is not None
        or args.workers is not None
        or args.decisions is not None
        or args.staleness is not None
        or args.trace is not None
        or args.show_metrics
        or args.metrics_json is not None
    ):
        out.write(
            "--executor/--workers/--decisions/--staleness/--trace/"
            "--show-metrics/--metrics-json only apply to --engine pregel "
            "(the adaptive engine has no shard executors or phase "
            "instrumentation)\n"
        )
        return 2
    if args.staleness is not None and args.staleness < 0:
        out.write("--staleness must be >= 0\n")
        return 2
    if args.workers is not None and args.executor in (None, "inline"):
        out.write(
            "--workers needs a parallel executor: add "
            "--executor thread, process or socket\n"
        )
        return 2
    if args.spec is not None:
        if args.name is not None:
            out.write(
                f"got both a catalog name ({args.name!r}) and --spec "
                f"({args.spec!r}); pass one or the other\n"
            )
            return 2
        scenario = load_scenario(args.spec)
    else:
        scenario = get_scenario(args.name)
    if args.seed is not None:
        scenario = scaled(scenario, seed=args.seed)
    # Context-managed executor: worker processes stop on every exit path
    # (including a scenario that raises before or during replay).  The
    # adaptive engine has no executor; nullcontext keeps one call site.
    executor_cm = (
        make_executor(args.executor, args.workers)
        if args.engine == "pregel"
        else contextlib.nullcontext()
    )
    with executor_cm as executor:
        result = play_scenario(
            scenario,
            backend=args.backend,
            adaptive=not args.static,
            metrics=args.metrics,
            max_rounds=args.max_rounds,
            engine=args.engine,
            executor=executor,
            decisions=args.decisions or "shard",
            staleness=args.staleness or 0,
            trace=args.trace,
        )
    engine_label = args.engine
    if args.engine == "pregel":
        engine_label += f" ({args.executor or 'inline'} executor)"
    out.write(
        f"{scenario.name} [{scenario.regime}] on {args.backend} backend, "
        f"{engine_label} engine, "
        f"{'static hash' if args.static else 'adaptive'}, "
        f"k={scenario.num_partitions}, seed={scenario.seed}\n"
    )
    if not result.rounds:
        out.write("no rounds executed (empty stream or --max-rounds 0)\n")
        if args.json_out:
            with open(args.json_out, "w", encoding="utf-8") as fh:
                json.dump(result.digest(), fh, indent=2, sort_keys=True)
            out.write(f"digest written to {args.json_out}\n")
        _write_observability(args, result, out)
        return 0
    rows = [
        [r.round, r.events, r.changed, r.migrations, r.num_vertices,
         r.num_edges, f"{r.cut_ratio:.4f}", f"{r.imbalance:.3f}",
         f"{r.quiet_iterations}{'*' if r.converged else ''}",
         f"{r.superstep_cost:.1f}"]
        for r in result.rounds
    ]
    stride = max(1, len(rows) // 24)
    sampled = rows[::stride]
    if rows and sampled[-1] is not rows[-1]:
        sampled.append(rows[-1])
    out.write(
        format_table(
            ["round", "events", "changed", "migr", "|V|", "|E|",
             "cut_ratio", "imbal", "quiet", "cost"],
            sampled,
            title="per-round timeline (quiet: window fill, * = converged)",
        )
        + "\n"
    )
    out.write(
        f"final cut ratio:  {result.final_cut_ratio():.4f}\n"
        f"peak cut ratio:   {result.peak_cut_ratio():.4f}\n"
        f"total migrations: {result.total_migrations()}\n"
        f"modelled cost:    {result.total_cost():.1f}\n"
    )
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(result.digest(), fh, indent=2, sort_keys=True)
        out.write(f"digest written to {args.json_out}\n")
    _write_observability(args, result, out)
    return 0


def _write_observability(args, result, out):
    """Emit the scenario run's trace/metrics artefacts (pregel engine)."""
    if args.trace:
        spans = len(result.tracer.spans) if result.tracer else 0
        out.write(f"trace written to {args.trace} ({spans} spans)\n")
    registry = result.metrics_registry
    if registry is None:
        return
    if args.show_metrics:
        out.write("\nmetrics snapshot:\n")
        out.write(registry.render_text() + "\n")
    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            json.dump(registry.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        out.write(f"metrics written to {args.metrics_json}\n")


def _cmd_datasets(out):
    rows = [
        [spec.name, spec.paper_vertices, spec.paper_edges, spec.family,
         spec.source]
        for spec in CATALOG.values()
    ]
    out.write(
        format_table(
            ["name", "|V|", "|E|", "type", "paper source"], rows,
            title="Table 1 datasets",
        )
        + "\n"
    )
    return 0


def _cmd_generate(args, out):
    graph = build_dataset(
        args.name, scale=args.scale, seed=args.seed,
        max_vertices=args.max_vertices,
    )
    write_edgelist(graph, args.output)
    out.write(f"wrote {graph} to {args.output}\n")
    return 0


def _cmd_worker(args, out):
    if args.sessions < 0:
        out.write("--sessions must be >= 0\n")
        return 2
    host, port = parse_address(args.listen)
    server = WorkerServer(host, port)
    bound_host, bound_port = server.address
    # The bound address goes out first and flushed: harnesses that bind
    # port 0 parse this line to learn where the worker actually listens.
    out.write(f"repro worker listening on {bound_host}:{bound_port}\n")
    with contextlib.suppress(AttributeError):  # plain buffers in tests
        out.flush()
    try:
        served = server.serve(args.sessions)
    finally:
        server.close()
    out.write(f"served {served} session(s)\n")
    return 0


def main(argv=None, out=None):
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "partition":
        return _cmd_partition(args, out)
    if args.command == "watch":
        return _cmd_watch(args, out)
    if args.command == "scenario":
        return _cmd_scenario(args, out)
    if args.command == "datasets":
        return _cmd_datasets(out)
    if args.command == "generate":
        return _cmd_generate(args, out)
    if args.command == "worker":
        return _cmd_worker(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
