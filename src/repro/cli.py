"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the paper's workflow without writing code:

* ``partition`` — read an edge list, run initial + adaptive partitioning,
  save the assignment, print quality metrics;
* ``watch`` — like ``partition`` on a generated mesh, but render the
  evolving 2-D slice as text frames (the paper's video, offline);
* ``datasets`` — print the Table-1 catalog;
* ``generate`` — write a synthetic dataset to an edge-list file.
"""

import argparse
import sys

from repro.analysis import format_table
from repro.core import AdaptiveConfig, AdaptiveRunner
from repro.datasets import CATALOG, build_dataset, dataset_names
from repro.generators import mesh_3d
from repro.graph import GRAPH_BACKENDS
from repro.io import read_edgelist, save_partition, write_edgelist
from repro.partitioning import balanced_capacities, make_partitioner
from repro.viz import partition_histogram, render_mesh_slice

__all__ = ["build_parser", "main"]


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive partitioning for large-scale dynamic graphs "
        "(Vaquero et al., ICDCS 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("partition", help="partition an edge-list file")
    p.add_argument("edgelist", help="path to a SNAP-style edge list")
    p.add_argument("-k", "--partitions", type=int, default=9)
    p.add_argument("-s", "--willingness", type=float, default=0.5)
    p.add_argument("--strategy", default="HSH", choices=["HSH", "RND", "DGR", "MNN", "METIS"])
    p.add_argument("--slack", type=float, default=1.10,
                   help="capacity as a multiple of the balanced load")
    p.add_argument("--backend", default="adjacency",
                   choices=sorted(GRAPH_BACKENDS),
                   help="graph backend (compact enables the batch sweep)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-iterations", type=int, default=1000)
    p.add_argument("-o", "--output", help="save the final assignment here")

    w = sub.add_parser("watch", help="watch a mesh slice repartition itself")
    w.add_argument("--side", type=int, default=12, help="mesh side length")
    w.add_argument("-k", "--partitions", type=int, default=9)
    w.add_argument("--frames", type=int, default=6)
    w.add_argument("--iterations-per-frame", type=int, default=10)
    w.add_argument("--seed", type=int, default=0)

    sub.add_parser("datasets", help="print the Table-1 dataset catalog")

    g = sub.add_parser("generate", help="write a synthetic dataset")
    g.add_argument("name", help=f"one of {', '.join(dataset_names())}")
    g.add_argument("output", help="edge-list file to write")
    g.add_argument("--scale", type=float, default=1.0)
    g.add_argument("--max-vertices", type=int, default=100000)
    g.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_partition(args, out):
    graph = read_edgelist(args.edgelist, backend=args.backend)
    out.write(f"loaded {graph}\n")
    caps = balanced_capacities(graph.num_vertices, args.partitions, args.slack)
    state = make_partitioner(args.strategy, seed=args.seed).partition(
        graph, args.partitions, list(caps)
    )
    out.write(f"{args.strategy} initial cut ratio: {state.cut_ratio():.4f}\n")
    if args.strategy != "METIS":
        runner = AdaptiveRunner(
            graph,
            state,
            AdaptiveConfig(willingness=args.willingness, seed=args.seed),
        )
        runner.run_until_convergence(max_iterations=args.max_iterations)
        out.write(f"adaptive cut ratio:    {state.cut_ratio():.4f}\n")
        out.write(f"convergence time:      {runner.convergence_time}\n")
    out.write(f"imbalance:             {state.imbalance():.3f}\n")
    out.write(partition_histogram(state) + "\n")
    if args.output:
        save_partition(state, args.output)
        out.write(f"assignment saved to {args.output}\n")
    return 0


def _cmd_watch(args, out):
    side = args.side
    graph = mesh_3d(side)
    caps = balanced_capacities(graph.num_vertices, args.partitions)
    state = make_partitioner("HSH").partition(
        graph, args.partitions, list(caps)
    )
    runner = AdaptiveRunner(graph, state, AdaptiveConfig(seed=args.seed))
    for frame in range(args.frames):
        out.write(
            f"\n-- frame {frame}: iteration {runner.iteration}, "
            f"cut ratio {state.cut_ratio():.3f} --\n"
        )
        out.write(render_mesh_slice(state, side, side, side) + "\n")
        for _ in range(args.iterations_per_frame):
            runner.step()
    out.write(
        f"\nfinal: iteration {runner.iteration}, "
        f"cut ratio {state.cut_ratio():.3f}\n"
    )
    return 0


def _cmd_datasets(out):
    rows = [
        [spec.name, spec.paper_vertices, spec.paper_edges, spec.family,
         spec.source]
        for spec in CATALOG.values()
    ]
    out.write(
        format_table(
            ["name", "|V|", "|E|", "type", "paper source"], rows,
            title="Table 1 datasets",
        )
        + "\n"
    )
    return 0


def _cmd_generate(args, out):
    graph = build_dataset(
        args.name, scale=args.scale, seed=args.seed,
        max_vertices=args.max_vertices,
    )
    write_edgelist(graph, args.output)
    out.write(f"wrote {graph} to {args.output}\n")
    return 0


def main(argv=None, out=None):
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "partition":
        return _cmd_partition(args, out)
    if args.command == "watch":
        return _cmd_watch(args, out)
    if args.command == "datasets":
        return _cmd_datasets(out)
    if args.command == "generate":
        return _cmd_generate(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
