"""Sharded BSP superstep execution with pluggable executors.

The paper's system is distributed: vertices live on separate workers and
supersteps advance through compute → message exchange → barrier.  This
package gives the reproduction that execution shape for real:

* :mod:`shard` — :class:`Shard`: one worker's resident vertex state, its
  compute pass and (by default) its share of the migration *decision
  phase* — heuristic + willingness evaluated shard-locally against a
  placement mirror, proposals returned for central quota arbitration —
  exchanged with the coordinator as plain picklable task/delta/patch
  records;
* :mod:`executor` — where shard compute runs: :class:`InlineExecutor`
  (serial reference), :class:`ThreadExecutor`, :class:`ProcessExecutor`
  (persistent worker processes with shard affinity),
  :class:`PipelinedExecutor` (thread-backed, declares the
  ``supports_pipelining`` capability so the coordinator merges each
  shard's delta while later shards still compute), and
  :class:`SocketExecutor` (the same persistent-worker protocol over TCP
  to ``repro worker`` processes on other hosts).  Each backend declares
  an :class:`ExecutorCapabilities` record that
  :func:`make_executor` validates;
* :mod:`wire` — the framed binary wire format those worker protocols
  speak, plus pre-wire inbox combining;
* :mod:`worker` — the TCP worker side (``repro worker --listen``) and
  the localhost pool harness;
* :mod:`coordinator` — :class:`Coordinator`, the sharded drop-in for
  :class:`~repro.pregel.system.PregelSystem`: same protocols and barrier
  order, compute fanned out per shard and merged deterministically.

Results are bit-identical across executors by construction (deltas merge in
shard-id order; all order-dependent work stays in the coordinator), which
``tests/test_cluster_golden.py`` pins with golden superstep timelines.
"""

from repro.cluster.coordinator import Coordinator
from repro.cluster.executor import (
    EXECUTORS,
    Executor,
    ExecutorCapabilities,
    InlineExecutor,
    PipelinedExecutor,
    ProcessExecutor,
    SocketExecutor,
    ThreadExecutor,
    make_executor,
    validate_executor,
)
from repro.cluster.shard import Shard, ShardDelta, ShardPatch, ShardTask
from repro.cluster.worker import LocalWorkerPool, WorkerServer

__all__ = [
    "Coordinator",
    "EXECUTORS",
    "Executor",
    "ExecutorCapabilities",
    "InlineExecutor",
    "LocalWorkerPool",
    "PipelinedExecutor",
    "ProcessExecutor",
    "Shard",
    "ShardDelta",
    "ShardPatch",
    "ShardTask",
    "SocketExecutor",
    "ThreadExecutor",
    "WorkerServer",
    "make_executor",
    "validate_executor",
]
