"""The coordinator: a :class:`PregelSystem` whose compute phase is sharded.

:class:`Coordinator` keeps every semantic of the single-process system —
the superstep order, the migration and capacity protocols, fault recovery,
incremental metrics, stream mutations — and swaps the compute phase for a
BSP fan-out over :class:`~repro.cluster.shard.Shard` objects driven by a
pluggable :class:`~repro.cluster.executor.Executor`:

1. **compute + decide** — the inbox splits by resident shard, every shard
   runs the shared compute loop (possibly in other threads/processes) and —
   with ``decisions="shard"``, the default — the decision phase over its
   active residents: heuristic evaluation against its local placement
   mirror plus the keyed willingness coin, vectorised over the shard block
   when numpy is present.  Each shard returns a :class:`ShardDelta`
   carrying its migration *proposals* alongside the compute results;
2. **merge + arbitrate** — deltas fold into the authoritative state *in
   shard-id order*: values, halt votes, the message outbox (pre-combined
   per worker, so keys never collide), aggregator contributions, per-worker
   compute cost.  The merge order is what makes results a pure function of
   the configuration — bit-identical across executors.  With a
   pipelining-capable executor the deltas arrive as a stream (same order)
   while later shards still compute, so the fold overlaps the fan-out.  The coordinator's
   only remaining decision work is quota arbitration over the proposals in
   a keyed round permutation (the capacity protocol's serialised step,
   unbiased across rounds) — its
   per-superstep decision cost is O(active + proposals), independent of
   edge count;
3. **barrier** — exactly the base class's barrier.  Everything it changes
   (announced migrations, stream mutations, fault recoveries) lands in a
   dirty set, and :meth:`_after_barrier` turns that into per-shard
   :class:`ShardPatch` records applied just before the next compute —
   including the barrier's *broadcast placement delta*, the simulation's
   analogue of the migration announcements every worker receives, which
   keeps every shard's placement mirror exact.

Sharding follows the paper's worker model: **one shard per worker
(partition)**, so a migration between partitions is a migration between
shards and the executor's worker count is purely a throughput knob.

``decisions="coordinator"`` preserves the centralised decision phase
(heuristic evaluation between barriers); both modes run the identical rule
against the identical snapshot with the identical counter-split RNG, so
timelines are byte-identical across modes — only wall-clock moves.
"""

from itertools import compress as _compress
from time import perf_counter, time

from repro.cluster.executor import make_executor
from repro.cluster.shard import Shard, ShardPatch, ShardTask
from repro.core.sweep import sort_vertices
from repro.graph.events import AddVertex, RemoveVertex
from repro.obs import Tracer
from repro.pregel.system import PregelSystem

__all__ = ["Coordinator"]


class Coordinator(PregelSystem):
    """A simulated Pregel cluster whose supersteps run on sharded executors.

    Drop-in for :class:`PregelSystem`: same constructor plus ``executor``
    (None, an executor name — ``"inline"`` / ``"thread"`` / ``"pipelined"``
    / ``"process"`` / ``"socket"`` — or an
    :class:`~repro.cluster.executor.Executor` instance; capability records
    are validated by :func:`~repro.cluster.executor.make_executor` on the
    way in).  Call :meth:`close` (or use ``with``) to release executor
    workers.
    """

    def __init__(self, graph, program, config=None, fault_plan=None,
                 executor=None, tracer=None, metrics_registry=None):
        self._dirty = set()
        self._vertex_shard = {}
        self._pending_patches = {}
        self._placement_log = []
        self._shard_proposals = []
        self._shard_decisions = False
        super().__init__(graph, program, config, fault_plan,
                         tracer=tracer, metrics_registry=metrics_registry)
        self._shard_decisions = (
            self.config.adaptive and self.config.decisions == "shard"
        )
        combiner = program.combiner()
        continuous = self.config.continuous
        heuristic = self.config.heuristic if self._shard_decisions else None
        # Every shard owns a tracer of its own (lane "shard-<id>") even
        # when it runs in this process: run_superstep drains the shard's
        # tracer into its delta, and a shared tracer would let that drain
        # steal coordinator spans.  Disabled tracing keeps the no-op
        # default — shards then never time anything.
        trace_on = self.tracer.enabled
        shards = {
            sid: Shard(
                sid, program, combiner, continuous, heuristic,
                tracer=Tracer(lane=f"shard-{sid}") if trace_on else None,
            )
            for sid in range(self.config.num_workers)
        }
        for v in graph.vertices():
            pid = self.state.partition_of(v)
            shards[pid].admit(
                v, self.values[v], tuple(graph.neighbors(v)), False
            )
            self._vertex_shard[v] = pid
        if self._shard_decisions:
            # Every shard mirrors the full start-of-run placement; barrier
            # placement deltas keep the mirrors exact from here on.
            assignment = list(self.state.assignment_items())
            for shard in shards.values():
                shard.seed_placement(assignment)
        self._dirty.clear()  # initial build covered everything
        self._placement_log.clear()
        self.executor = make_executor(executor)
        # Re-home the executor's counters in the run's registry (and hand
        # it the run's tracer for wire spans) before any traffic flows.
        self.executor.bind_observability(
            tracer=self.tracer, metrics=self.metrics_registry
        )
        try:
            self.executor.start(shards)
        except BaseException:
            self.executor.stop()
            raise

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self):
        """Stop the executor (idempotent).

        Guarded against a failed ``__init__``: if construction raised
        before the executor existed, there is nothing to stop — and an
        ``AttributeError`` here would mask the original error for callers
        cleaning up in a ``finally``.
        """
        executor = getattr(self, "executor", None)
        if executor is not None:
            executor.stop()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    # ------------------------------------------------------------------
    # The sharded compute phase
    # ------------------------------------------------------------------

    def _compute_phase(self, inbox):
        """Fan the compute phase out over the shards and merge the deltas."""
        num_workers = self.config.num_workers
        shard_inbox = {sid: {} for sid in range(num_workers)}
        for vertex, messages in inbox.items():
            sid = self._vertex_shard.get(vertex)
            if sid is not None:
                shard_inbox[sid][vertex] = messages
        agg_previous = {
            name: self.aggregators.previous(name)
            for name in self.aggregators.names()
        }
        decision_ctx = self._decision_ctx if self._shard_decisions else None
        # Relaxed synchrony: on stale rounds every shard already caches the
        # snapshot (it was shipped on the resync round), so the task carries
        # only the bare round index to re-key the cached context with.
        shipped_decision = decision_ctx
        if decision_ctx is not None and self._snapshot_age > 0:
            shipped_decision = decision_ctx.round_index
        candidate_slices = None
        if decision_ctx is not None:
            # The coordinator's decision-phase work in shard mode is just
            # this: slice the active set by resident shard (a full sweep
            # ships no ids at all — candidates=None means "all residents").
            started = perf_counter()
            if not self._decision_needs_full_sweep(decision_ctx):
                candidate_slices = {sid: [] for sid in range(num_workers)}
                vertex_shard = self._vertex_shard
                # Canonical order: the slices cross the wire in ShardTask
                # .candidates and feed per-shard decision sweeps.
                for v in sort_vertices(self._active):
                    sid = vertex_shard.get(v)
                    if sid is not None:
                        candidate_slices[sid].append(v)
            self._decision_seconds += perf_counter() - started
        num_vertices = self.graph.num_vertices
        tasks = {
            sid: ShardTask(
                superstep=self.superstep,
                inbox=shard_inbox[sid],
                num_vertices=num_vertices,
                agg_previous=agg_previous,
                decision=shipped_decision,
                candidates=(
                    None
                    if candidate_slices is None
                    else tuple(candidate_slices[sid])
                ),
            )
            for sid in range(num_workers)
        }
        patches = self._pending_patches
        self._pending_patches = {}
        stream = None
        if self.executor.capabilities.supports_pipelining:
            # Pipelined merge: deltas arrive (still in shard-id order) while
            # later shards compute, so the fold below overlaps the fan-out.
            stream = self.executor.step_stream(tasks, patches)
            delta_stream = stream
        else:
            deltas = self.executor.step(tasks, patches)
            delta_stream = ((sid, deltas[sid]) for sid in sorted(deltas))

        per_worker = [0.0] * num_workers
        computed = 0
        proposals = self._shard_proposals
        proposals.clear()
        tracer = self.tracer
        traced = tracer.enabled
        if traced:
            # One span over the whole delta fold; with a pipelined executor
            # it also covers the waits on still-computing shards (the
            # overlap the executor's counters quantify).
            merge_wall = time()
            merge_tick = perf_counter()
        try:
            for sid, delta in delta_stream:
                computed += delta.computed
                self.values.update(delta.values)
                self.halted.difference_update(delta.halted_removed)
                self.halted.update(delta.halted_added)
                self.router.absorb(delta.outbox)
                for name, value in delta.aggregated:
                    self.aggregators.contribute(name, value)
                proposals.extend(delta.proposals)
                # One shard per worker: the shard's compute IS the worker's.
                per_worker[sid] += delta.compute_units
                self.network.count_compute(delta.compute_units)
                if delta.batched_blocks:
                    # Which compute path ran, per trace/metrics dump — the
                    # scalar fallback leaves the counter untouched.
                    self._batched_counter.add(delta.batched_blocks)
                if traced:
                    # Worker-side spans ride home in the delta; merging
                    # them here is what builds the one shared timeline.
                    tracer.absorb(delta.spans)
        finally:
            if stream is not None:
                # A merge failure must not abandon the stream mid-flight:
                # closing it runs the executor's drain (step_stream's
                # finally), so no shard future is still mutating state when
                # the caller regains control.
                stream.close()
        if traced:
            tracer.record(
                "barrier-merge", merge_wall, perf_counter() - merge_tick,
                args={"superstep": self.superstep},
            )
        return computed, per_worker

    def _generate_proposals(self, context):
        """Shard mode: the proposals came back with the compute deltas."""
        if not self._shard_decisions:
            return super()._generate_proposals(context)
        proposals = self._shard_proposals
        self._shard_proposals = []
        return proposals

    # ------------------------------------------------------------------
    # Dirty tracking: every barrier mutation that shards must learn about
    # ------------------------------------------------------------------

    def _placement_update(self, vertex_id, new_worker):
        super()._placement_update(vertex_id, new_worker)
        self._dirty.add(vertex_id)
        if self._shard_decisions:
            self._placement_log.append((vertex_id, new_worker))

    def _place_new_vertex(self, vertex):
        super()._place_new_vertex(vertex)
        self._dirty.add(vertex)
        if self._shard_decisions:
            pid = self.state.partition_of_or_none(vertex)
            if pid is not None:
                self._placement_log.append((vertex, pid))

    def _apply_event(self, event):
        pre_neighbours = ()
        if isinstance(event, RemoveVertex) and event.vertex in self.graph:
            pre_neighbours = list(self.graph.neighbors(event.vertex))
        changed = super()._apply_event(event)
        if changed:
            if isinstance(event, (AddVertex, RemoveVertex)):
                self._dirty.add(event.vertex)
                self._dirty.update(pre_neighbours)
                if self._shard_decisions and isinstance(event, RemoveVertex):
                    self._placement_log.append((event.vertex, None))
            else:  # edge events: both endpoints' adjacency changed
                self._dirty.add(event.u)
                self._dirty.add(event.v)
        return changed

    def _note_bulk_placements(self, placements):
        super()._note_bulk_placements(placements)  # program-value init
        self._dirty.update(vertex for vertex, _ in placements)
        if self._shard_decisions:
            self._placement_log.extend(placements)

    def _note_bulk_edge_changes(self, us, vs, changed):
        # The bulk edge kernel bypasses _apply_event, so the dirty marks
        # for changed endpoints (their adjacency tuples) land here.
        selectors = changed.tolist()
        self._dirty.update(_compress(us, selectors))
        self._dirty.update(_compress(vs, selectors))

    def _maybe_fail_worker(self):
        worker = super()._maybe_fail_worker()
        if worker is not None:
            # Victims' values rolled back to the checkpoint; resync them.
            self._dirty.update(
                v for v, pid in self.state.assignment_items() if pid == worker
            )
        return worker

    # ------------------------------------------------------------------
    # Barrier: dirty set -> shard patches
    # ------------------------------------------------------------------

    def _after_barrier(self):
        """Turn this barrier's dirty set into next superstep's patches.

        Processing the dirty set in canonical vertex order makes every
        shard's insertion (and therefore compute) order a pure function of
        the run's history — the executor-independence invariant.  With
        shard decisions on, the barrier's placement log is attached to
        *every* shard's patch (the same list — a broadcast, like the
        paper's migration announcements), so every placement mirror folds
        in the identical delta before the next decision phase.
        """
        if not self._dirty and not self._placement_log:
            return
        patches = {}

        def patch_for(sid):
            """The shard's patch under construction, created on first use."""
            patch = patches.get(sid)
            if patch is None:
                patch = patches[sid] = ShardPatch()
            return patch

        for vertex in sort_vertices(self._dirty):
            old_sid = self._vertex_shard.get(vertex)
            if vertex in self.graph:
                sid = self.state.partition_of_or_none(vertex)
                if sid is None:  # unplaceable vertex: treat as non-resident
                    if old_sid is not None:
                        patch_for(old_sid).removes.append(vertex)
                        del self._vertex_shard[vertex]
                    continue
                if old_sid is not None and old_sid != sid:
                    patch_for(old_sid).removes.append(vertex)
                patch_for(sid).upserts[vertex] = (
                    self.values[vertex],
                    tuple(self.graph.neighbors(vertex)),
                    vertex in self.halted,
                )
                self._vertex_shard[vertex] = sid
            elif old_sid is not None:
                patch_for(old_sid).removes.append(vertex)
                del self._vertex_shard[vertex]
        if self._placement_log:
            log = self._placement_log
            self._placement_log = []
            for sid in range(self.config.num_workers):
                patch_for(sid).placement_delta = log
        self._dirty.clear()
        self._pending_patches = patches

    # ------------------------------------------------------------------
    # Debug / test support
    # ------------------------------------------------------------------

    def shard_consistency_check(self):
        """Assert the shard mirror matches the authoritative state.

        Flushes any pending patches (equivalent to what the next compute
        would do first), gathers every shard's residents through the
        executor — so process execution checks genuinely worker-resident
        state — and compares membership, placement, values and halt flags
        against the coordinator's.  Raises :class:`AssertionError` on drift.
        """
        if self._pending_patches:
            self.executor.apply(self._pending_patches)
            self._pending_patches = {}
        seen = {}
        for sid, (values, halted) in self.executor.snapshot().items():
            for vertex, value in values.items():
                if vertex in seen:
                    raise AssertionError(
                        f"vertex {vertex!r} resident on shards "
                        f"{seen[vertex]} and {sid}"
                    )
                seen[vertex] = sid
                if self._vertex_shard.get(vertex) != sid:
                    raise AssertionError(
                        f"vertex {vertex!r} on shard {sid}, coordinator "
                        f"says {self._vertex_shard.get(vertex)}"
                    )
                if self.values.get(vertex, _MISSING) != value:
                    raise AssertionError(
                        f"value drift for {vertex!r}: shard has {value!r}, "
                        f"coordinator has {self.values.get(vertex)!r}"
                    )
                if (vertex in halted) != (vertex in self.halted):
                    raise AssertionError(f"halt-flag drift for {vertex!r}")
        for vertex in self.graph.vertices():
            if vertex not in seen:
                raise AssertionError(f"vertex {vertex!r} resident nowhere")
        # In-process executors expose the shard objects directly; verify
        # their placement mirrors against the authoritative assignment (a
        # process executor's mirrors are covered by cross-executor
        # identity of the decision timelines).
        shards = getattr(self.executor, "_shards", None)
        if shards and self._shard_decisions:
            expected = dict(self.state.assignment_items())
            for sid, shard in shards.items():
                if shard.placement != expected:
                    drift = {
                        v: (shard.placement.get(v), expected.get(v))
                        # reprolint: allow-DET001 failure-path diagnostic; order only shapes the exception text
                        for v in set(shard.placement) ^ set(expected)
                        | {
                            v
                            for v in set(shard.placement) & set(expected)
                            if shard.placement[v] != expected[v]
                        }
                    }
                    raise AssertionError(
                        f"placement mirror drift on shard {sid}: {drift}"
                    )
        return True


class _Missing:
    """Sentinel that is unequal to everything (even None values)."""

    def __eq__(self, other):
        return False

    def __ne__(self, other):
        return True


_MISSING = _Missing()
