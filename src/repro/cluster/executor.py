"""Pluggable shard executors: where the compute phase actually runs.

The coordinator hands every executor the same work each superstep — a
:class:`~repro.cluster.shard.ShardTask` per shard (compute inbox plus,
with ``decisions="shard"``, the round's decision snapshot and candidate
slice), plus the previous barrier's
:class:`~repro.cluster.shard.ShardPatch` records — and gets back one
:class:`~repro.cluster.shard.ShardDelta` per shard (compute results plus
migration proposals).  Because shard compute *and* shard decisions are
pure functions of (shard state, task) — willingness draws are keyed, not
streamed — and the coordinator merges deltas in shard-id order and
arbitrates proposals in a keyed round permutation, **the choice of executor
cannot change any result**; it only changes wall-clock.  Four backends
ship:

* :class:`InlineExecutor` — runs shards sequentially in the calling thread.
  The deterministic reference; zero overhead, no parallelism.
* :class:`ThreadExecutor` — a thread pool.  Python's GIL serialises pure-
  Python compute, so this wins only when programs release the GIL (numpy,
  I/O); it mainly exercises the concurrency contract cheaply.
* :class:`ProcessExecutor` — long-lived worker processes, each owning a
  fixed subset of shards (shard ``i`` lives on worker ``i % workers``).
  Shards ship once at start; per superstep only tasks, patches and deltas
  cross the pipe.  Requires picklable programs, values and messages.  This
  is the backend that actually scales superstep-heavy workloads
  (``benchmarks/bench_cluster.py`` pins ≥2× with four workers).
* :class:`PipelinedExecutor` — the thread pool plus **barrier pipelining**:
  it declares ``supports_pipelining`` and streams each shard's delta to the
  coordinator *in shard-id order, as it completes*, so the coordinator's
  barrier-side merge of shard ``s`` overlaps the still-running compute of
  shards ``> s`` instead of waiting for the whole fan-out.  Merge order is
  unchanged, so results stay bit-identical; only the hard
  compute-then-merge sequencing is relaxed.

Executors advertise what they can do through class-level capability flags
(currently :data:`Executor.supports_pipelining`); the coordinator consults
the flags and falls back to the strict :meth:`Executor.step` protocol when
a capability is absent — Inline/Thread/Process decline pipelining cleanly.

Executors are context managers; :meth:`Executor.stop` is idempotent.
"""

import multiprocessing
import os
import traceback
import weakref
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

__all__ = [
    "EXECUTORS",
    "Executor",
    "InlineExecutor",
    "PipelinedExecutor",
    "ProcessExecutor",
    "ThreadExecutor",
    "make_executor",
]


class Executor:
    """The executor protocol the coordinator drives."""

    name = "abstract"

    #: Capability flag: True when :meth:`step_stream` is implemented and the
    #: coordinator may merge deltas while later shards still compute.  The
    #: flag is the contract — a False executor is never asked to stream, so
    #: backends without a safe overlap story decline by simply not setting
    #: it.
    supports_pipelining = False

    def start(self, shards):
        """Take ownership of ``{shard_id: Shard}`` before the first superstep."""
        raise NotImplementedError

    def step(self, tasks, patches):
        """Run one superstep: apply ``patches`` (previous barrier's changes),
        then compute every shard's task.

        ``tasks`` maps shard id → :class:`ShardTask` (every shard, every
        superstep); ``patches`` maps shard id → :class:`ShardPatch` and may
        be empty.  Returns ``{shard_id: ShardDelta}``.  Completion order is
        the executor's business — the coordinator merges in shard-id order.
        """
        raise NotImplementedError

    def step_stream(self, tasks, patches):
        """Like :meth:`step`, but yield ``(shard_id, delta)`` pairs in
        shard-id order as soon as each is available.

        Only executors declaring :data:`supports_pipelining` implement
        this; the coordinator consumes the stream with its merge loop, so
        the merge of one shard's delta runs concurrently with the compute
        of later shards.  Yield order **must** be ascending shard id —
        that invariant, not the executor choice, is what keeps results
        bit-identical.
        """
        raise NotImplementedError(
            f"executor {self.name!r} does not support pipelining; "
            "check `supports_pipelining` before calling step_stream"
        )

    def apply(self, patches):
        """Apply ``{shard_id: ShardPatch}`` without computing (flush path).

        :meth:`step` already applies its patches; this exists so
        consistency checks can flush pending patches out of band.
        """
        raise NotImplementedError

    def snapshot(self):
        """``{shard_id: (values, halted)}`` — test/debug consistency view."""
        raise NotImplementedError

    def stop(self):
        """Release workers; idempotent, safe after a failed start."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.stop()
        return False


def _step_shard(shard, task, patch):
    if patch is not None:
        shard.apply_patch(patch)
    return shard.run_superstep(task)


class InlineExecutor(Executor):
    """Sequential in-thread execution — the deterministic serial reference."""

    name = "inline"

    def __init__(self):
        self._shards = {}

    def start(self, shards):
        """Keep the shard map; everything runs in the calling thread."""
        self._shards = dict(shards)

    def step(self, tasks, patches):
        """Patch + compute each shard sequentially, in shard-id order."""
        return {
            sid: _step_shard(self._shards[sid], tasks[sid], patches.get(sid))
            for sid in sorted(tasks)
        }

    def apply(self, patches):
        """Apply patches without computing, in shard-id order."""
        for sid in sorted(patches):
            self._shards[sid].apply_patch(patches[sid])

    def snapshot(self):
        """Consistency view straight off the in-process shards."""
        return {sid: shard.snapshot() for sid, shard in self._shards.items()}


class ThreadExecutor(Executor):
    """Thread-pool execution (shared memory, GIL-bound for pure Python)."""

    name = "thread"

    def __init__(self, workers=None):
        self._requested_workers = workers
        self._pool = None
        self._shards = {}

    def start(self, shards):
        """Keep the shard map and spin up the worker thread pool."""
        self._shards = dict(shards)
        workers = self._requested_workers or min(
            len(self._shards) or 1, os.cpu_count() or 1
        )
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard"
        )

    def step(self, tasks, patches):
        """Fan patch + compute out over the pool; gather in shard-id order."""
        futures = {
            sid: self._pool.submit(
                _step_shard, self._shards[sid], tasks[sid], patches.get(sid)
            )
            for sid in sorted(tasks)
        }
        return {sid: future.result() for sid, future in futures.items()}

    def apply(self, patches):
        """Apply patches without computing (serial; shards share memory)."""
        for sid in sorted(patches):
            self._shards[sid].apply_patch(patches[sid])

    def snapshot(self):
        """Consistency view straight off the in-process shards."""
        return {sid: shard.snapshot() for sid, shard in self._shards.items()}

    def stop(self):
        """Shut the thread pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class PipelinedExecutor(ThreadExecutor):
    """Thread-backed executor that overlaps barrier merging with compute.

    The strict protocol is compute-all → merge-all: the coordinator waits
    for the slowest shard before folding a single delta.  This executor
    relaxes exactly that sequencing, double-buffered: the *compute buffer*
    is the set of in-flight shard futures, the *merge buffer* is the one
    completed delta currently handed to the coordinator — while the
    coordinator merges superstep work from shard ``s``, shards ``> s``
    keep computing on the pool threads.  Yield order stays ascending shard
    id, so the coordinator's merge order — and with it every observable
    result — is bit-identical to the strict executors (the golden suite
    pins this backend like any other).

    Two counters quantify the overlap for the staleness/pipelining bench:

    * ``merge_seconds`` — total wall-clock the coordinator spent merging
      deltas handed out by :meth:`step_stream`;
    * ``overlap_seconds`` — the portion of that merge time during which at
      least one later shard was still computing, i.e. barrier work that a
      strict executor would have serialised after the fan-out.  On a
      multi-core host this is wall-clock saved outright; on one core it is
      the honest projection of the saving (the GIL interleaves rather than
      parallelises the overlap).
    """

    name = "pipelined"

    supports_pipelining = True

    def __init__(self, workers=None):
        super().__init__(workers)
        self.merge_seconds = 0.0
        self.overlap_seconds = 0.0
        self.steps_streamed = 0

    def step_stream(self, tasks, patches):
        """Submit every shard's task, then stream deltas in shard-id order.

        The generator body resumes between yields while the consumer (the
        coordinator's merge loop) works, which is where the overlap
        accounting happens: merge time observed while later futures are
        unfinished is time the strict protocol would have added to the
        barrier.
        """
        order = sorted(tasks)
        futures = {
            sid: self._pool.submit(
                _step_shard, self._shards[sid], tasks[sid], patches.get(sid)
            )
            for sid in order
        }
        self.steps_streamed += 1
        for position, sid in enumerate(order):
            delta = futures[sid].result()
            handed = perf_counter()
            yield sid, delta
            merged = perf_counter()
            spent = merged - handed
            self.merge_seconds += spent
            if any(
                not futures[later].done() for later in order[position + 1:]
            ):
                self.overlap_seconds += spent


def _process_worker_main(conn):
    """Worker loop: owns its shards for the life of the run."""
    shards = {}
    while True:
        try:
            message = conn.recv()
        except EOFError:
            return
        kind, payload = message
        try:
            if kind == "init":
                shards = payload
                conn.send(("ok", None))
            elif kind == "step":
                deltas = {}
                for sid in sorted(payload):
                    task, patch = payload[sid]
                    deltas[sid] = _step_shard(shards[sid], task, patch)
                conn.send(("ok", deltas))
            elif kind == "apply":
                for sid in sorted(payload):
                    shards[sid].apply_patch(payload[sid])
                conn.send(("ok", None))
            elif kind == "snapshot":
                conn.send(
                    ("ok", {sid: shard.snapshot() for sid, shard in shards.items()})
                )
            elif kind == "stop":
                conn.send(("ok", None))
                return
            else:  # pragma: no cover - protocol misuse
                conn.send(("error", f"unknown command {kind!r}"))
        except Exception:  # surface worker-side failures to the coordinator
            conn.send(("error", traceback.format_exc()))


def _reap_workers(procs, pipes):
    """Last-resort worker teardown: no acks, straight to the signals.

    Runs from the :mod:`weakref` finalizer when a :class:`ProcessExecutor`
    is garbage-collected without :meth:`~Executor.stop` — the polite
    stop-message protocol needs live pipes and a caller willing to wait, so
    the reaper just terminates, escalates to kill for anything that shrugs
    off SIGTERM, and closes the pipes.  Deliberately module-level: a bound
    method would keep the executor alive and the finalizer would never run.
    """
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
    for proc in procs:
        proc.join(timeout=2)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=2)
    for pipe in pipes:
        try:
            pipe.close()
        except OSError:  # pragma: no cover - already torn down
            pass


class ProcessExecutor(Executor):
    """Persistent worker processes with shard affinity.

    ``workers`` processes are spawned at :meth:`start`; shard ``i`` lives on
    worker ``i % workers`` for the whole run, so per-superstep traffic is
    tasks + patches in, deltas out — never whole shards.  ``mp_context``
    names a :mod:`multiprocessing` start method (default: ``"fork"`` where
    available, else the platform default) — with ``"spawn"``, shard state is
    shipped through the pipe at start, so programs and values must pickle.

    Worker lifetime is belt-and-braces: :meth:`stop` waits briefly for the
    polite ack, then ``terminate()``, then ``kill()`` for workers stuck in
    uninterruptible state; and a :func:`weakref.finalize` registered at
    :meth:`start` reaps the processes even when a caller drops the executor
    without ever calling :meth:`stop`.
    """

    name = "process"

    # Bounded waits (seconds): ack on the pipe, SIGTERM grace, SIGKILL grace.
    _ACK_TIMEOUT = 1.0
    _JOIN_TIMEOUT = 5.0

    def __init__(self, workers=4, mp_context=None):
        if workers < 1:
            raise ValueError("need at least one worker process")
        self._workers = workers
        self._context_name = mp_context
        self._procs = []
        self._pipes = []
        self._owner = {}
        self._reaper = None

    def _context(self):
        if self._context_name is not None:
            return multiprocessing.get_context(self._context_name)
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )

    def start(self, shards):
        """Spawn the workers, ship each its shard subset, await the acks."""
        ctx = self._context()
        workers = min(self._workers, max(1, len(shards)))
        assignments = [{} for _ in range(workers)]
        for sid, shard in shards.items():
            worker = sid % workers
            assignments[worker][sid] = shard
            self._owner[sid] = worker
        try:
            for worker in range(workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_process_worker_main,
                    args=(child_conn,),
                    daemon=True,
                    name=f"repro-shard-worker-{worker}",
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._pipes.append(parent_conn)
            # Reap on garbage collection: a caller that never reaches
            # stop() (crash between supersteps, dropped reference) must not
            # orphan workers for the life of the parent process.
            self._reaper = weakref.finalize(
                self, _reap_workers, list(self._procs), list(self._pipes)
            )
            for worker in range(workers):
                self._pipes[worker].send(("init", assignments[worker]))
            for worker in range(workers):
                self._receive(worker)
        except BaseException:
            self.stop()  # no leaked worker processes on a failed start
            raise

    def _send(self, worker, message):
        """Send to one worker, surfacing a dead process as a clear error."""
        try:
            self._pipes[worker].send(message)
        except (BrokenPipeError, OSError) as exc:
            raise RuntimeError(
                f"shard worker {worker} died (pipe closed); it may have "
                "crashed or been killed mid-run"
            ) from exc

    def _receive(self, worker):
        try:
            status, payload = self._pipes[worker].recv()
        except EOFError:
            raise RuntimeError(
                f"shard worker {worker} died (pipe closed); shard state or "
                "messages may not be picklable"
            ) from None
        if status == "error":
            raise RuntimeError(f"shard worker {worker} failed:\n{payload}")
        return payload

    def _broadcast(self, per_worker_payload, kind):
        touched = sorted(per_worker_payload)
        for worker in touched:
            self._send(worker, (kind, per_worker_payload[worker]))
        merged = {}
        for worker in touched:
            result = self._receive(worker)
            if result:
                merged.update(result)
        return merged

    def step(self, tasks, patches):
        """Route each shard's (task, patch) to its owning worker process."""
        per_worker = {}
        for sid, task in tasks.items():
            per_worker.setdefault(self._owner[sid], {})[sid] = (
                task,
                patches.get(sid),
            )
        return self._broadcast(per_worker, "step")

    def apply(self, patches):
        """Route patch-only applications to the owning worker processes."""
        per_worker = {}
        for sid, patch in patches.items():
            per_worker.setdefault(self._owner[sid], {})[sid] = patch
        self._broadcast(per_worker, "apply")

    def snapshot(self):
        """Gather the consistency view from every worker over the pipes."""
        for worker in range(len(self._pipes)):
            self._send(worker, ("snapshot", None))
        merged = {}
        for worker in range(len(self._pipes)):
            merged.update(self._receive(worker))
        return merged

    def stop(self):
        """Stop the workers: polite ack, then SIGTERM, then SIGKILL."""
        for pipe in self._pipes:
            try:
                pipe.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for worker, proc in enumerate(self._procs):
            try:
                # Bounded ack wait: a hard-stuck worker never answers, and
                # an unbounded recv() would hang the whole teardown.
                if self._pipes[worker].poll(self._ACK_TIMEOUT):
                    self._pipes[worker].recv()
            except (EOFError, OSError):
                pass
            proc.join(timeout=self._JOIN_TIMEOUT)
            if proc.is_alive():  # pragma: no cover - defensive cleanup
                proc.terminate()
                proc.join(timeout=self._JOIN_TIMEOUT)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join(timeout=self._JOIN_TIMEOUT)
            self._pipes[worker].close()
        if self._reaper is not None:
            self._reaper.detach()  # workers are down; nothing left to reap
            self._reaper = None
        self._procs = []
        self._pipes = []
        self._owner = {}


EXECUTORS = {
    "inline": InlineExecutor,
    "thread": ThreadExecutor,
    "pipelined": PipelinedExecutor,
    "process": ProcessExecutor,
}


def make_executor(spec=None, workers=None):
    """Resolve an executor spec: None/name/instance → a fresh :class:`Executor`.

    ``None`` means :class:`InlineExecutor` (the deterministic default); a
    string looks up :data:`EXECUTORS`; an :class:`Executor` instance passes
    through unchanged (``workers`` is then ignored).
    """
    if spec is None:
        return InlineExecutor()
    if isinstance(spec, Executor):
        return spec
    try:
        factory = EXECUTORS[spec]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown executor {spec!r}; choose from {sorted(EXECUTORS)} "
            "or pass an Executor instance"
        ) from None
    if factory is InlineExecutor:
        return factory()
    if workers is None:
        return factory()
    return factory(workers)
