"""Pluggable shard executors: where the compute phase actually runs.

The coordinator hands every executor the same work each superstep — a
:class:`~repro.cluster.shard.ShardTask` per shard (compute inbox plus,
with ``decisions="shard"``, the round's decision snapshot and candidate
slice), plus the previous barrier's
:class:`~repro.cluster.shard.ShardPatch` records — and gets back one
:class:`~repro.cluster.shard.ShardDelta` per shard (compute results plus
migration proposals).  Because shard compute *and* shard decisions are
pure functions of (shard state, task) — willingness draws are keyed, not
streamed — and the coordinator merges deltas in shard-id order and
arbitrates proposals in a keyed round permutation, **the choice of executor
cannot change any result**; it only changes wall-clock.  Five backends
ship:

* :class:`InlineExecutor` — runs shards sequentially in the calling thread.
  The deterministic reference; zero overhead, no parallelism.
* :class:`ThreadExecutor` — a thread pool.  Python's GIL serialises pure-
  Python compute, so this wins only when programs release the GIL (numpy,
  I/O); it mainly exercises the concurrency contract cheaply.
* :class:`PipelinedExecutor` — the thread pool plus **barrier pipelining**:
  it declares ``supports_pipelining`` and streams each shard's delta to the
  coordinator *in shard-id order, as it completes*, so the coordinator's
  barrier-side merge of shard ``s`` overlaps the still-running compute of
  shards ``> s`` instead of waiting for the whole fan-out.  Merge order is
  unchanged, so results stay bit-identical; only the hard
  compute-then-merge sequencing is relaxed.
* :class:`ProcessExecutor` — long-lived worker processes, each owning a
  fixed subset of shards (shard ``i`` lives on worker ``i % workers``).
  Shards ship once at start; per superstep only tasks, patches and deltas
  cross the pipe — as compact :mod:`~repro.cluster.wire` frames, inboxes
  pre-folded by the program's combiner.  Requires picklable programs,
  values and messages.  This is the backend that actually scales
  superstep-heavy workloads on one host
  (``benchmarks/bench_cluster.py`` pins ≥2× with four workers).
* :class:`SocketExecutor` — the same persistent-worker protocol over TCP
  to ``repro worker`` processes on *any* host: the step from multi-core to
  multi-machine.  Shard subsets ship at start; per-superstep traffic is
  the wire codec's framed tasks/deltas with shard-side inbox combining
  (``benchmarks/bench_wire.py`` pins the bytes-on-wire win), and bounded
  connect/read timeouts surface dead workers as the same clear
  ``RuntimeError`` the pipe path raises.

Executors advertise what they can do through a declared
:class:`ExecutorCapabilities` record (the ``RunnerCapabilities`` pattern):
:func:`make_executor` validates the declaration — a backend claiming
``supports_pipelining`` must actually implement :meth:`Executor.step_stream`
and vice versa — and the coordinator consults it, falling back to the
strict :meth:`Executor.step` protocol when a capability is absent.

Executors are context managers; :meth:`Executor.stop` is idempotent.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import traceback
import weakref
from collections.abc import Callable, Iterable, Iterator, Mapping
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass, replace
from time import perf_counter, time
from typing import TYPE_CHECKING, Any

from repro.cluster import wire
from repro.cluster.worker import ShardHost, parse_worker_addresses
from repro.obs import NULL_TRACER, MetricsRegistry, Tracer

if TYPE_CHECKING:
    from multiprocessing.connection import Connection
    from multiprocessing.process import BaseProcess

    from repro.cluster.shard import Shard, ShardDelta, ShardPatch, ShardTask

__all__ = [
    "EXECUTORS",
    "Executor",
    "ExecutorCapabilities",
    "InlineExecutor",
    "PipelinedExecutor",
    "ProcessExecutor",
    "SocketExecutor",
    "ThreadExecutor",
    "make_executor",
    "validate_executor",
]


@dataclass(frozen=True)
class ExecutorCapabilities:
    """What one executor backend can honestly promise the coordinator.

    * ``supports_pipelining`` — :meth:`Executor.step_stream` is implemented
      and the coordinator may merge deltas while later shards still
      compute.  The declaration is the contract: :func:`validate_executor`
      rejects executors whose flag and ``step_stream`` disagree, and a
      declining executor is simply never asked to stream.
    * ``releases_gil`` — shard compute runs outside the calling process's
      GIL (worker processes, remote hosts), so pure-Python programs scale
      with workers instead of interleaving.  The flag describes the
      *executor*, never the program: an in-process backend keeps
      ``releases_gil=False`` even when a program's batched numpy kernel
      (:meth:`~repro.pregel.vertex.BatchedVertexProgram.compute_batch`)
      happens to drop the GIL inside array calls — that is a property of
      the program's compute, orthogonal to where the executor runs it,
      and the two compose (a thread executor + a batched kernel is
      exactly the combination ``benchmarks/bench_kernel.py`` measures).
    * ``remote`` — workers may live on other hosts; shard traffic crosses
      a network, not just a process boundary.
    * ``requires_picklable`` — programs, values and messages must survive
      serialisation; in-process backends can run anything.
    """

    supports_pipelining: bool = False
    releases_gil: bool = False
    remote: bool = False
    requires_picklable: bool = False


class Executor:
    """The executor protocol the coordinator drives."""

    name = "abstract"

    #: The backend's declared capability record; subclasses override with
    #: their honest declaration and :func:`validate_executor` holds them
    #: to it.
    capabilities = ExecutorCapabilities()

    #: The coordinator's tracer, installed by :meth:`bind_observability`;
    #: the class-level default is the shared disabled tracer, so every
    #: instrumentation site can read ``self.tracer.enabled`` unconditionally.
    tracer = NULL_TRACER

    @property
    def supports_pipelining(self) -> bool:
        """Legacy view of ``capabilities.supports_pipelining`` (PR 6 flag)."""
        return self.capabilities.supports_pipelining

    def bind_observability(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        """Attach the run's tracer and/or metrics registry (before start).

        Executors work without this — counters live in a private registry
        and the tracer stays the no-op default — but a coordinator that
        owns a :class:`~repro.obs.MetricsRegistry` re-homes the executor's
        instruments there so one snapshot covers the whole run.
        """
        if tracer is not None:
            self.tracer = tracer
        if metrics is not None:
            self._bind_metrics(metrics)

    def _bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Subclass hook: move instrument state into ``metrics``."""

    def start(self, shards: Mapping[int, Shard]) -> None:
        """Take ownership of ``{shard_id: Shard}`` before the first superstep."""
        raise NotImplementedError

    def step(
        self,
        tasks: Mapping[int, ShardTask],
        patches: Mapping[int, ShardPatch],
    ) -> dict[int, ShardDelta]:
        """Run one superstep: apply ``patches`` (previous barrier's changes),
        then compute every shard's task.

        ``tasks`` maps shard id → :class:`ShardTask` (every shard, every
        superstep); ``patches`` maps shard id → :class:`ShardPatch` and may
        be empty.  Returns ``{shard_id: ShardDelta}``.  Completion order is
        the executor's business — the coordinator merges in shard-id order.
        """
        raise NotImplementedError

    def step_stream(
        self,
        tasks: Mapping[int, ShardTask],
        patches: Mapping[int, ShardPatch],
    ) -> Iterator[tuple[int, ShardDelta]]:
        """Like :meth:`step`, but yield ``(shard_id, delta)`` pairs in
        shard-id order as soon as each is available.

        Only executors declaring ``supports_pipelining`` implement this;
        the coordinator consumes the stream with its merge loop, so the
        merge of one shard's delta runs concurrently with the compute of
        later shards.  Yield order **must** be ascending shard id — that
        invariant, not the executor choice, is what keeps results
        bit-identical.
        """
        raise NotImplementedError(
            f"executor {self.name!r} does not support pipelining; "
            "check `capabilities.supports_pipelining` before calling "
            "step_stream"
        )

    def apply(self, patches: Mapping[int, ShardPatch]) -> None:
        """Apply ``{shard_id: ShardPatch}`` without computing (flush path).

        :meth:`step` already applies its patches; this exists so
        consistency checks can flush pending patches out of band.
        """
        raise NotImplementedError

    def snapshot(self) -> dict[int, Any]:
        """``{shard_id: (values, halted)}`` — test/debug consistency view."""
        raise NotImplementedError

    def stop(self) -> None:
        """Release workers; idempotent, safe after a failed start."""

    def __enter__(self) -> Executor:
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.stop()
        return False


def _step_shard(
    shard: Shard, task: ShardTask, patch: ShardPatch | None
) -> ShardDelta:
    if patch is not None:
        shard.apply_patch(patch)
    return shard.run_superstep(task)


def _require_workers(workers: int | None, what: str) -> int | None:
    if workers is not None and workers < 1:
        raise ValueError(f"need at least one {what}, got workers={workers!r}")
    return workers


class InlineExecutor(Executor):
    """Sequential in-thread execution — the deterministic serial reference."""

    name = "inline"

    capabilities = ExecutorCapabilities()

    def __init__(self) -> None:
        self._shards: dict[int, Shard] = {}

    def start(self, shards: Mapping[int, Shard]) -> None:
        """Keep the shard map; everything runs in the calling thread."""
        self._shards = dict(shards)

    def step(
        self,
        tasks: Mapping[int, ShardTask],
        patches: Mapping[int, ShardPatch],
    ) -> dict[int, ShardDelta]:
        """Patch + compute each shard sequentially, in shard-id order."""
        return {
            sid: _step_shard(self._shards[sid], tasks[sid], patches.get(sid))
            for sid in sorted(tasks)
        }

    def apply(self, patches: Mapping[int, ShardPatch]) -> None:
        """Apply patches without computing, in shard-id order."""
        for sid in sorted(patches):
            self._shards[sid].apply_patch(patches[sid])

    def snapshot(self) -> dict[int, Any]:
        """Consistency view straight off the in-process shards."""
        return {sid: shard.snapshot() for sid, shard in self._shards.items()}


class ThreadExecutor(Executor):
    """Thread-pool execution (shared memory, GIL-bound for pure Python)."""

    name = "thread"

    capabilities = ExecutorCapabilities()

    def __init__(self, workers: int | None = None) -> None:
        self._requested_workers = _require_workers(workers, "worker thread")
        self._pool: ThreadPoolExecutor | None = None
        self._shards: dict[int, Shard] = {}

    def start(self, shards: Mapping[int, Shard]) -> None:
        """Keep the shard map and spin up the worker thread pool."""
        self._shards = dict(shards)
        workers = self._requested_workers
        if workers is None:
            workers = min(len(self._shards) or 1, os.cpu_count() or 1)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard"
        )

    def step(
        self,
        tasks: Mapping[int, ShardTask],
        patches: Mapping[int, ShardPatch],
    ) -> dict[int, ShardDelta]:
        """Fan patch + compute out over the pool; gather in shard-id order."""
        pool = self._pool
        assert pool is not None, "start() before step()"
        futures = {
            sid: pool.submit(
                _step_shard, self._shards[sid], tasks[sid], patches.get(sid)
            )
            for sid in sorted(tasks)
        }
        return {sid: future.result() for sid, future in futures.items()}

    def apply(self, patches: Mapping[int, ShardPatch]) -> None:
        """Apply patches without computing (serial; shards share memory)."""
        for sid in sorted(patches):
            self._shards[sid].apply_patch(patches[sid])

    def snapshot(self) -> dict[int, Any]:
        """Consistency view straight off the in-process shards."""
        return {sid: shard.snapshot() for sid, shard in self._shards.items()}

    def stop(self) -> None:
        """Shut the thread pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class PipelinedExecutor(ThreadExecutor):
    """Thread-backed executor that overlaps barrier merging with compute.

    The strict protocol is compute-all → merge-all: the coordinator waits
    for the slowest shard before folding a single delta.  This executor
    relaxes exactly that sequencing, double-buffered: the *compute buffer*
    is the set of in-flight shard futures, the *merge buffer* is the one
    completed delta currently handed to the coordinator — while the
    coordinator merges superstep work from shard ``s``, shards ``> s``
    keep computing on the pool threads.  Yield order stays ascending shard
    id, so the coordinator's merge order — and with it every observable
    result — is bit-identical to the strict executors (the golden suite
    pins this backend like any other).

    Two counters quantify the overlap for the staleness/pipelining bench:

    * ``merge_seconds`` — total wall-clock the coordinator spent merging
      deltas handed out by :meth:`step_stream`;
    * ``overlap_seconds`` — the portion of that merge time during which at
      least one later shard was still computing, i.e. barrier work that a
      strict executor would have serialised after the fan-out.  On a
      multi-core host this is wall-clock saved outright; on one core it is
      the honest projection of the saving (the GIL interleaves rather than
      parallelises the overlap).

    Both live in the metrics registry (``executor.merge_seconds``,
    ``executor.overlap_seconds``, ``executor.steps_streamed``); the
    attributes are read-through views and :meth:`start` resets all three,
    so a reused executor reports per-session numbers instead of silently
    accumulating across runs (the pre-registry behaviour).
    """

    name = "pipelined"

    capabilities = ExecutorCapabilities(supports_pipelining=True)

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers)
        self._bind_metrics(MetricsRegistry())

    def _bind_metrics(self, metrics: MetricsRegistry) -> None:
        self._merge_counter = metrics.counter("executor.merge_seconds")
        self._overlap_counter = metrics.counter("executor.overlap_seconds")
        self._steps_counter = metrics.counter("executor.steps_streamed")

    @property
    def merge_seconds(self) -> float:
        """Registry view: seconds the coordinator spent merging our deltas."""
        return self._merge_counter.value

    @property
    def overlap_seconds(self) -> float:
        """Registry view: merge seconds overlapped with in-flight compute."""
        return self._overlap_counter.value

    @property
    def steps_streamed(self) -> float:
        """Registry view: how many supersteps went through the stream path."""
        return self._steps_counter.value

    def start(self, shards: Mapping[int, Shard]) -> None:
        """Start the pool and zero the per-session overlap counters."""
        super().start(shards)
        self._merge_counter.reset()
        self._overlap_counter.reset()
        self._steps_counter.reset()

    def step_stream(
        self,
        tasks: Mapping[int, ShardTask],
        patches: Mapping[int, ShardPatch],
    ) -> Iterator[tuple[int, ShardDelta]]:
        """Submit every shard's task, then stream deltas in shard-id order.

        The generator body resumes between yields while the consumer (the
        coordinator's merge loop) works, which is where the overlap
        accounting happens: merge time observed while later futures are
        unfinished is time the strict protocol would have added to the
        barrier.

        The stream owns its in-flight futures to the end: if the consumer
        abandons the generator (``close()`` on a merge-loop failure) or a
        shard raises, the ``finally`` below blocks until every submitted
        future has finished.  Without that barrier the unfinished futures
        would keep mutating ``Shard`` objects on pool threads while the
        caller moved on to the next ``step()``/``apply()`` — a data race
        dressed up as early cleanup.
        """
        pool = self._pool
        assert pool is not None, "start() before step_stream()"
        order = sorted(tasks)
        futures = {
            sid: pool.submit(
                _step_shard, self._shards[sid], tasks[sid], patches.get(sid)
            )
            for sid in order
        }
        self._steps_counter.add(1)
        try:
            for position, sid in enumerate(order):
                delta = futures[sid].result()
                handed = perf_counter()
                yield sid, delta
                merged = perf_counter()
                spent = merged - handed
                self._merge_counter.add(spent)
                if any(
                    not futures[later].done() for later in order[position + 1:]
                ):
                    self._overlap_counter.add(spent)
        finally:
            pending = [f for f in futures.values() if not f.done()]
            if pending:
                wait(pending)


def _process_worker_main(conn: Connection) -> None:
    """Worker loop: owns its shards for the life of the run."""
    host = ShardHost()
    while True:
        try:
            message = wire.loads(conn.recv_bytes())
        except EOFError:
            return
        kind, payload = message
        reply, done = host.handle(kind, payload)
        conn.send_bytes(wire.dumps(reply))
        if done:
            return


def _reap_workers(procs: list[BaseProcess], pipes: list[Connection]) -> None:
    """Last-resort worker teardown: no acks, straight to the signals.

    Runs from the :mod:`weakref` finalizer when a :class:`ProcessExecutor`
    is garbage-collected without :meth:`~Executor.stop` — the polite
    stop-message protocol needs live pipes and a caller willing to wait, so
    the reaper just terminates, escalates to kill for anything that shrugs
    off SIGTERM, and closes the pipes.  Deliberately module-level: a bound
    method would keep the executor alive and the finalizer would never run.
    """
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
    for proc in procs:
        proc.join(timeout=2)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=2)
    for pipe in pipes:
        try:
            pipe.close()
        except OSError:  # pragma: no cover - already torn down
            pass


class _WorkerProtocolExecutor(Executor):
    """Shared client half of the persistent-worker protocol.

    :class:`ProcessExecutor` (pipes) and :class:`SocketExecutor` (TCP)
    differ only in transport; the command routing, the shard→worker
    ownership map, shard-side inbox combining, byte metering and —
    critically — the reply-draining discipline live here.  Subclasses
    provide :meth:`_transport_send` and :meth:`_transport_recv` plus
    lifecycle.

    Byte accounting: every command's payload bytes are tallied per command
    kind in :attr:`bytes_sent` / :attr:`bytes_received` — live
    :class:`~repro.obs.CounterGroup` views over registry counters
    (``executor.bytes_sent.<kind>`` / ``executor.bytes_received.<kind>``).
    The tally is whatever :meth:`_transport_send` reports having put on its
    medium: framed bytes including the 4-byte length prefix on the socket
    path, the wire payload alone on the pipe path (the
    :class:`multiprocessing.connection.Connection` frame is the OS's
    business).  :meth:`start` resets the counters, so a reused executor
    reports per-session traffic; the stop handshake is deliberately not
    metered (it may race a dying worker).
    """

    def __init__(self, combine_inbox: bool = True) -> None:
        self._owner: dict[int, int] = {}
        self._task_combiner: Callable[[Any, Any], Any] | None = None
        self._combine_inbox = bool(combine_inbox)
        self._pending_kind: dict[int, str] = {}
        self._bind_metrics(MetricsRegistry())

    def _bind_metrics(self, metrics: MetricsRegistry) -> None:
        self.bytes_sent = metrics.group("executor.bytes_sent")
        self.bytes_received = metrics.group("executor.bytes_received")

    # -- transport contract -------------------------------------------------

    def _transport_send(self, worker: int, message: tuple[str, Any]) -> int:
        """Put one message on the medium; returns the bytes written."""
        raise NotImplementedError

    def _transport_recv(self, worker: int) -> tuple[Any, int]:
        """Take one reply off the medium; returns ``(message, bytes_read)``."""
        raise NotImplementedError

    def _worker_ids(self) -> Iterable[int]:
        raise NotImplementedError

    # -- metered, traced transport wrappers ---------------------------------

    def _send(self, worker: int, message: tuple[str, Any]) -> None:
        kind = message[0]
        self._pending_kind[worker] = kind
        tracer = self.tracer
        if tracer.enabled:
            wall = time()
            tick = perf_counter()
            sent = self._transport_send(worker, message)
            tracer.record(
                "wire-send", wall, perf_counter() - tick, lane="wire",
                args={"kind": kind, "worker": worker, "bytes": sent},
            )
        else:
            sent = self._transport_send(worker, message)
        self.bytes_sent.add(kind, sent)

    def _recv_message(self, worker: int) -> Any:
        kind = self._pending_kind.get(worker, "?")
        tracer = self.tracer
        if tracer.enabled:
            wall = time()
            tick = perf_counter()
            message, received = self._transport_recv(worker)
            tracer.record(
                "wire-recv", wall, perf_counter() - tick, lane="wire",
                args={"kind": kind, "worker": worker, "bytes": received},
            )
        else:
            message, received = self._transport_recv(worker)
        self.bytes_received.add(kind, received)
        return message

    # -- shared protocol ----------------------------------------------------

    def _assign(
        self, shards: Mapping[int, Shard], workers: int
    ) -> list[dict[int, Shard]]:
        """Fix shard→worker ownership (shard ``i`` on worker ``i % workers``)."""
        assignments: list[dict[int, Shard]] = [{} for _ in range(workers)]
        for sid, shard in shards.items():
            worker = sid % workers
            assignments[worker][sid] = shard
            self._owner[sid] = worker
        return assignments

    def _note_combiner(self, shards: Mapping[int, Shard]) -> None:
        """Capture the program's combiner for pre-wire inbox folding."""
        self._task_combiner = None
        if self._combine_inbox and shards:
            shard = next(iter(shards.values()))
            self._task_combiner = getattr(shard, "_combiner", None)

    def _receive(self, worker: int) -> Any:
        """One reply from ``worker``, raising its failure as RuntimeError."""
        status, payload = self._recv_message(worker)
        if status == "error":
            raise RuntimeError(f"shard worker {worker} failed:\n{payload}")
        return payload

    def _gather(self, touched: Iterable[int]) -> dict[Any, Any]:
        """Collect every touched worker's reply, then raise the first failure.

        Draining unconditionally is the protocol invariant: each command
        gets exactly one reply per touched worker, so a failure must not
        leave later workers' replies queued for the *next* command to
        misread.  Only after the sweep does the first failure propagate.
        """
        merged: dict[Any, Any] = {}
        failure: RuntimeError | None = None
        for worker in touched:
            try:
                result = self._receive(worker)
            except RuntimeError as exc:
                if failure is None:
                    failure = exc
                continue
            if result:
                merged.update(result)
        if failure is not None:
            raise failure
        return merged

    def _broadcast(
        self, per_worker_payload: Mapping[int, Any], kind: str
    ) -> dict[Any, Any]:
        touched = sorted(per_worker_payload)
        for worker in touched:
            self._send(worker, (kind, per_worker_payload[worker]))
        return self._gather(touched)

    def step(
        self,
        tasks: Mapping[int, ShardTask],
        patches: Mapping[int, ShardPatch],
    ) -> dict[int, ShardDelta]:
        """Route each shard's (task, patch) to its owning worker.

        With a combiner available, every multi-message mailbox is folded
        shard-side of the wire (:func:`~repro.cluster.wire.combine_inbox`)
        before framing — same values, same modelled cost, a fraction of
        the bytes.
        """
        combiner = self._task_combiner
        per_worker: dict[int, dict[int, tuple[Any, Any]]] = {}
        for sid, task in tasks.items():
            if combiner is not None and task.inbox:
                folded = wire.combine_inbox(task.inbox, combiner)
                if folded is not task.inbox:
                    task = replace(task, inbox=folded)
            per_worker.setdefault(self._owner[sid], {})[sid] = (
                task,
                patches.get(sid),
            )
        return self._broadcast(per_worker, "step")

    def apply(self, patches: Mapping[int, ShardPatch]) -> None:
        """Route patch-only applications to the owning workers."""
        per_worker: dict[int, dict[int, Any]] = {}
        for sid, patch in patches.items():
            per_worker.setdefault(self._owner[sid], {})[sid] = patch
        self._broadcast(per_worker, "apply")

    def snapshot(self) -> dict[int, Any]:
        """Gather the consistency view from every worker."""
        workers = list(self._worker_ids())
        for worker in workers:
            self._send(worker, ("snapshot", None))
        return self._gather(workers)


class ProcessExecutor(_WorkerProtocolExecutor):
    """Persistent worker processes with shard affinity.

    ``workers`` processes are spawned at :meth:`start`; shard ``i`` lives on
    worker ``i % workers`` for the whole run, so per-superstep traffic is
    tasks + patches in, deltas out — never whole shards.  Messages cross
    the pipe as :mod:`~repro.cluster.wire` frames (the binary codec, with
    shard-side inbox combining), not pickle-per-message.  ``mp_context``
    names a :mod:`multiprocessing` start method (default: ``"fork"`` where
    available, else the platform default) — with ``"spawn"``, shard state is
    shipped through the pipe at start, so programs and values must pickle.

    Worker lifetime is belt-and-braces: :meth:`stop` waits briefly for the
    polite ack, then ``terminate()``, then ``kill()`` for workers stuck in
    uninterruptible state; and a :func:`weakref.finalize` registered at
    :meth:`start` reaps the processes even when a caller drops the executor
    without ever calling :meth:`stop`.
    """

    name = "process"

    capabilities = ExecutorCapabilities(
        releases_gil=True, requires_picklable=True
    )

    # Bounded waits (seconds): ack on the pipe, SIGTERM grace, SIGKILL grace.
    _ACK_TIMEOUT = 1.0
    _JOIN_TIMEOUT = 5.0

    def __init__(
        self,
        workers: int | None = 4,
        mp_context: str | None = None,
        combine_inbox: bool = True,
    ) -> None:
        super().__init__(combine_inbox=combine_inbox)
        if workers is None or workers < 1:
            raise ValueError("need at least one worker process")
        self._workers = workers
        self._context_name = mp_context
        self._procs: list[BaseProcess] = []
        self._pipes: list[Connection] = []
        self._reaper: weakref.finalize | None = None

    def _context(self) -> Any:
        if self._context_name is not None:
            return multiprocessing.get_context(self._context_name)
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context(None)

    def start(self, shards: Mapping[int, Shard]) -> None:
        """Spawn the workers, ship each its shard subset, await the acks."""
        ctx = self._context()
        workers = min(self._workers, max(1, len(shards)))
        assignments = self._assign(shards, workers)
        self._note_combiner(shards)
        self.bytes_sent.reset()
        self.bytes_received.reset()
        try:
            for worker in range(workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_process_worker_main,
                    args=(child_conn,),
                    daemon=True,
                    name=f"repro-shard-worker-{worker}",
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._pipes.append(parent_conn)
            # Reap on garbage collection: a caller that never reaches
            # stop() (crash between supersteps, dropped reference) must not
            # orphan workers for the life of the parent process.
            self._reaper = weakref.finalize(
                self, _reap_workers, list(self._procs), list(self._pipes)
            )
            for worker in range(workers):
                self._send(worker, ("init", assignments[worker]))
            for worker in range(workers):
                self._receive(worker)
        except BaseException:
            self.stop()  # no leaked worker processes on a failed start
            raise

    def _worker_ids(self) -> Iterable[int]:
        return range(len(self._pipes))

    def _transport_send(self, worker: int, message: tuple[str, Any]) -> int:
        """Send to one worker, surfacing a dead process as a clear error."""
        data = wire.dumps(message)
        try:
            self._pipes[worker].send_bytes(data)
        except (BrokenPipeError, OSError) as exc:
            raise RuntimeError(
                f"shard worker {worker} died (pipe closed); it may have "
                "crashed or been killed mid-run"
            ) from exc
        return len(data)

    def _transport_recv(self, worker: int) -> tuple[Any, int]:
        try:
            payload = self._pipes[worker].recv_bytes()
        except EOFError:
            raise RuntimeError(
                f"shard worker {worker} died (pipe closed); shard state or "
                "messages may not be picklable"
            ) from None
        return wire.loads(payload), len(payload)

    def stop(self) -> None:
        """Stop the workers: polite ack, then SIGTERM, then SIGKILL."""
        for pipe in self._pipes:
            try:
                pipe.send_bytes(wire.dumps(("stop", None)))
            except (BrokenPipeError, OSError):
                pass
        for worker, proc in enumerate(self._procs):
            try:
                # Bounded ack wait: a hard-stuck worker never answers, and
                # an unbounded recv() would hang the whole teardown.
                if self._pipes[worker].poll(self._ACK_TIMEOUT):
                    self._pipes[worker].recv_bytes()
            except (EOFError, OSError):
                pass
            proc.join(timeout=self._JOIN_TIMEOUT)
            if proc.is_alive():  # pragma: no cover - defensive cleanup
                proc.terminate()
                proc.join(timeout=self._JOIN_TIMEOUT)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join(timeout=self._JOIN_TIMEOUT)
            self._pipes[worker].close()
        if self._reaper is not None:
            self._reaper.detach()  # workers are down; nothing left to reap
            self._reaper = None
        self._procs = []
        self._pipes = []
        self._owner = {}
        self._pending_kind = {}


class SocketExecutor(_WorkerProtocolExecutor):
    """The persistent-worker protocol over TCP — shards on other hosts.

    Workers are ``repro worker --listen HOST:PORT`` processes (see
    :mod:`repro.cluster.worker`); :meth:`start` connects to each address,
    ships its shard subset, and from then on the session is exactly the
    pipe protocol as :mod:`~repro.cluster.wire` frames: tasks + patches
    out (inboxes pre-folded by the program's combiner when it has one),
    deltas back, every reply drained even on failure.

    ``addresses`` is a comma-joined string, an iterable of ``host:port``,
    or None to read ``REPRO_SOCKET_WORKERS`` from the environment at
    :meth:`start`.  ``codec`` picks the frame codec (``"binary"`` —
    default — or ``"pickle"``, kept as the measurable baseline).  Connect
    and read timeouts are bounded so a dead or wedged worker surfaces as
    the same ``RuntimeError`` shape the pipe path raises instead of a
    hang.  Bytes on the wire are tallied per command kind in
    :attr:`bytes_sent` / :attr:`bytes_received` (framed length: payload
    plus the 4-byte length prefix) — the counters
    ``benchmarks/bench_wire.py`` reads.
    """

    name = "socket"

    capabilities = ExecutorCapabilities(
        releases_gil=True, remote=True, requires_picklable=True
    )

    # Bounded waits (seconds): TCP connect, per-reply read, stop-ack read.
    _CONNECT_TIMEOUT = 10.0
    _READ_TIMEOUT = 600.0
    _ACK_TIMEOUT = 1.0

    def __init__(
        self,
        addresses: str | Iterable[str] | None = None,
        workers: int | None = None,
        *,
        codec: int | str = "binary",
        combine_inbox: bool = True,
        connect_timeout: float | None = None,
        read_timeout: float | None = None,
    ) -> None:
        super().__init__(combine_inbox=combine_inbox)
        self._requested_workers = _require_workers(workers, "socket worker")
        self._given_addresses = addresses
        self._codec = wire.codec_id(codec)
        self._connect_timeout = (
            self._CONNECT_TIMEOUT if connect_timeout is None
            else connect_timeout
        )
        self._read_timeout = (
            self._READ_TIMEOUT if read_timeout is None else read_timeout
        )
        self._sockets: list[socket.socket] = []
        self._peers: list[str] = []

    def _resolve_addresses(self) -> list[tuple[str, int]]:
        spec = self._given_addresses
        if spec is None:
            spec = os.environ.get("REPRO_SOCKET_WORKERS") or None
        addresses = parse_worker_addresses(spec)
        if not addresses:
            raise ValueError(
                "socket executor has no worker addresses; pass "
                "addresses='host:port,...' or set REPRO_SOCKET_WORKERS "
                "(start workers with `repro worker --listen host:port`)"
            )
        if self._requested_workers is not None:
            addresses = addresses[: self._requested_workers]
        return addresses

    def start(self, shards: Mapping[int, Shard]) -> None:
        """Connect to the workers, ship each its shard subset, await acks."""
        addresses = self._resolve_addresses()
        workers = min(len(addresses), max(1, len(shards)))
        assignments = self._assign(shards, workers)
        self._note_combiner(shards)
        self.bytes_sent.reset()
        self.bytes_received.reset()
        try:
            for worker in range(workers):
                host, port = addresses[worker]
                try:
                    sock = socket.create_connection(
                        (host, port), timeout=self._connect_timeout
                    )
                except OSError as exc:
                    raise RuntimeError(
                        f"cannot reach shard worker {worker} at "
                        f"{host}:{port}: {exc}"
                    ) from exc
                sock.settimeout(self._read_timeout)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self._sockets.append(sock)
                self._peers.append(f"{host}:{port}")
            for worker in range(workers):
                self._send(worker, ("init", assignments[worker]))
            for worker in range(workers):
                self._receive(worker)
        except BaseException:
            self.stop()  # no half-connected session on a failed start
            raise

    def _worker_ids(self) -> Iterable[int]:
        return range(len(self._sockets))

    def _transport_send(self, worker: int, message: tuple[str, Any]) -> int:
        try:
            return wire.send_frame(
                self._sockets[worker], message, codec=self._codec
            )
        except (BrokenPipeError, ConnectionError, OSError) as exc:
            raise RuntimeError(
                f"shard worker {worker} ({self._peers[worker]}) died "
                "(connection lost); it may have crashed or been killed "
                "mid-run"
            ) from exc

    def _transport_recv(self, worker: int) -> tuple[Any, int]:
        try:
            payload = wire.recv_payload(self._sockets[worker])
        except TimeoutError:
            raise RuntimeError(
                f"shard worker {worker} ({self._peers[worker]}) timed out "
                f"after {self._read_timeout}s; it may be dead or wedged"
            ) from None
        except (EOFError, wire.WireError, ConnectionError, OSError):
            raise RuntimeError(
                f"shard worker {worker} ({self._peers[worker]}) died "
                "(connection closed); shard state or messages may not be "
                "picklable"
            ) from None
        return wire.loads(payload), len(payload) + 4

    def stop(self) -> None:
        """End the session: polite stop + short ack wait, then close."""
        for worker, sock in enumerate(self._sockets):
            try:
                wire.send_frame(sock, ("stop", None), codec=self._codec)
                sock.settimeout(self._ACK_TIMEOUT)
                wire.recv_payload(sock)
            except (TimeoutError, EOFError, wire.WireError, OSError):
                pass
        for sock in self._sockets:
            try:
                sock.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        self._sockets = []
        self._peers = []
        self._owner = {}
        self._pending_kind = {}


EXECUTORS: dict[str, Callable[..., Executor]] = {
    "inline": InlineExecutor,
    "thread": ThreadExecutor,
    "pipelined": PipelinedExecutor,
    "process": ProcessExecutor,
    "socket": SocketExecutor,
}


def validate_executor(executor: Executor) -> Executor:
    """Check an executor's capability declaration; returns the executor.

    Two honesty rules: the record must actually be an
    :class:`ExecutorCapabilities`, and the ``supports_pipelining`` flag
    must agree with whether :meth:`Executor.step_stream` is overridden —
    a backend can neither promise streaming it does not implement nor
    smuggle in streaming it does not declare.
    """
    caps = getattr(executor, "capabilities", None)
    if not isinstance(caps, ExecutorCapabilities):
        raise TypeError(
            f"executor {getattr(executor, 'name', executor)!r} must declare "
            f"an ExecutorCapabilities record, got {caps!r}"
        )
    streams = type(executor).step_stream is not Executor.step_stream
    if caps.supports_pipelining and not streams:
        raise ValueError(
            f"executor {executor.name!r} declares supports_pipelining but "
            "does not implement step_stream"
        )
    if streams and not caps.supports_pipelining:
        raise ValueError(
            f"executor {executor.name!r} implements step_stream but does "
            "not declare supports_pipelining"
        )
    return executor


def make_executor(
    spec: str | Executor | None = None, workers: int | None = None
) -> Executor:
    """Resolve an executor spec: None/name/instance → a fresh :class:`Executor`.

    ``None`` means :class:`InlineExecutor` (the deterministic default); a
    string looks up :data:`EXECUTORS`; an :class:`Executor` instance passes
    through (``workers`` is then ignored).  Every path runs
    :func:`validate_executor`, so a backend with a dishonest capability
    record never reaches the coordinator.
    """
    if spec is None:
        return validate_executor(InlineExecutor())
    if isinstance(spec, Executor):
        return validate_executor(spec)
    try:
        factory = EXECUTORS[spec]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown executor {spec!r}; choose from {sorted(EXECUTORS)} "
            "or pass an Executor instance"
        ) from None
    if factory is InlineExecutor or workers is None:
        return validate_executor(factory())
    return validate_executor(factory(workers=workers))
