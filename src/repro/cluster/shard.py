"""One shard of the sharded execution layer.

A :class:`Shard` owns the vertices of one partition (worker): their values,
halted flags and a local read-only adjacency mirror.  Per superstep it runs
the shared compute loop (:func:`~repro.pregel.compute.compute_block`) over
its residents — and, when the task carries a decision snapshot, the
*decision phase* over its candidate residents: heuristic evaluation against
its local placement mirror plus the vertex-local keyed willingness coin
(:func:`~repro.pregel.compute.decide_block`, vectorised over the shard
block by :class:`~repro.core.sweep.ShardSweeper` when numpy is present).
Everything the superstep produced comes back as a :class:`ShardDelta` —
new values, a pre-combined outbox, halt transitions, aggregator
contributions, per-worker compute cost and migration proposals.  The
coordinator merges deltas at the barrier **in shard-id order** and
arbitrates proposals in a keyed round permutation, so a superstep's outcome is
independent of which thread or process ran which shard: bit-identical
across every :mod:`~repro.cluster.executor` backend.

Between supersteps the coordinator keeps shards current with
:class:`ShardPatch` records (vertex upserts + evictions, plus the barrier's
broadcast placement delta — the simulation's analogue of the migration
announcements every worker receives) covering whatever the barrier changed:
stream mutations, announced migrations, fault recoveries.  Everything here
is plain picklable data — that is the whole contract
:class:`~repro.cluster.executor.ProcessExecutor` needs.
"""

from dataclasses import dataclass, field

from repro.core.heuristic import DecisionContext
from repro.core.sweep import make_block_table, make_shard_sweeper, sort_vertices
from repro.obs import NULL_TRACER
from repro.pregel.compute import compute_block, decide_block

__all__ = ["Shard", "ShardDelta", "ShardPatch", "ShardTask"]


@dataclass(frozen=True)
class ShardTask:
    """One superstep's input for one shard.

    ``decision`` is the round's decision input, in one of three shapes:

    * ``None`` — no decision phase this superstep (a non-adaptive run or
      ``decisions="coordinator"``);
    * a frozen :class:`~repro.core.heuristic.DecisionContext` — a *fresh*
      snapshot; the shard caches it for the staleness window;
    * an ``int`` round index — a *stale* round under relaxed synchrony
      (``snapshot_staleness > 0``): the shard re-keys its cached snapshot
      to this round (:meth:`DecisionContext.aged`) instead of receiving
      the capacity vector again.  The epoch (``version``) and capacities
      it decides against are deliberately those of the last resync.

    ``candidates`` names the resident vertices to evaluate, with None
    meaning *all residents* (a full sweep — the shard enumerates them
    itself, so full rounds ship no id lists at all).
    """

    superstep: int
    inbox: dict            # vertex id -> message list (this shard's slice)
    num_vertices: int      # global vertex count (a master statistic)
    agg_previous: dict     # aggregator name -> last barrier's folded value
    decision: object = None
    candidates: object = None


@dataclass
class ShardPatch:
    """Barrier-produced state changes for one shard.

    ``upserts`` maps vertex id → ``(value, neighbours, halted)`` in
    canonical vertex order (the coordinator builds it sorted, so shard
    insertion order — and with it compute order — is executor-independent);
    ``removes`` lists evicted vertex ids.  Removes apply first: a vertex
    migrating between two shards appears as a remove on one and an upsert
    on the other.

    ``placement_delta`` is the barrier's ordered placement changes —
    ``(vertex, pid)`` for moves and streaming placements, ``(vertex,
    None)`` for removals.  Unlike upserts it is a *broadcast*: every shard
    receives the same delta (the paper's workers all learn every migration
    announcement), which is what keeps each shard's global placement
    mirror — the state the decision phase reads neighbour locations from —
    exact.
    """

    upserts: dict = field(default_factory=dict)
    removes: list = field(default_factory=list)
    placement_delta: list = field(default_factory=list)


@dataclass
class ShardDelta:
    """Everything one shard's compute pass produced for the barrier.

    ``compute_units`` is also the shard's worker compute load: one shard
    per worker, so the coordinator attributes it to ``shard_id`` directly.
    ``proposals`` is the decision phase's output — ``(vertex, current,
    desired, willing)`` for every candidate that wants to move, willingness
    coin already flipped (it is vertex-local state in the paper) — ready
    for the coordinator's quota arbitration.

    ``spans`` carries the shard tracer's phase spans for this superstep
    (plus any apply-patch spans recorded since the last one) back to the
    coordinator's timeline.  Pure measurement: the barrier merge absorbs
    and discards it before anything digest-relevant happens, and it is
    always empty when tracing is off.

    ``batched_blocks`` counts how many blocks this superstep ran through
    the batched vertex-kernel path (0 or 1 per shard per superstep).
    Observability only — it feeds the coordinator's
    ``kernel.batched_blocks`` counter and never enters a digest.
    """

    shard_id: int
    computed: int
    values: dict           # vertex id -> value, for every computed vertex
    outbox: list           # ((source_worker, target_id), payload) in send order
    halted_added: list
    halted_removed: list
    aggregated: list       # (name, value) contributions in call order
    compute_units: float
    proposals: list = field(default_factory=list)
    spans: list = field(default_factory=list)
    batched_blocks: int = 0


class _ShardGraph:
    """The graph surface :class:`VertexContext` reads, shard-locally.

    Neighbour lists are immutable tuples maintained by patches; the global
    vertex count is a master-provided statistic refreshed per task.
    """

    __slots__ = ("_adj", "num_vertices")

    def __init__(self, adj):
        self._adj = adj
        self.num_vertices = 0

    def neighbors(self, v):
        return self._adj[v]

    def degree(self, v):
        return len(self._adj[v])


class _ShardRouter:
    """Shard-local outbox with :class:`MessageRouter`'s send semantics.

    Combining happens here, per ``(source_worker, target)`` key, exactly as
    the real router does it — and since a worker's vertices all live on one
    shard (source worker ≡ shard id), the keys this router produces can
    never collide with another shard's, which is what makes the barrier
    merge order-trivial.
    """

    __slots__ = ("_worker", "_combiner", "outbox")

    def __init__(self, worker, combiner):
        self._worker = worker
        self._combiner = combiner
        self.outbox = {}

    def send(self, source_id, target_id, message):
        key = (self._worker, target_id)
        if self._combiner is not None:
            existing = self.outbox.get(key)
            if existing is not None:
                self.outbox[key] = self._combiner(existing, message)
                return
            self.outbox[key] = message
        else:
            self.outbox.setdefault(key, []).append(message)

    def absorb_columns(self, workers, targets, payloads):
        """Batched-kernel entry point: insert pre-reduced outbox columns.

        Same contract as :meth:`MessageRouter.absorb_columns
        <repro.pregel.messages.MessageRouter.absorb_columns>`: one entry
        per distinct key, already combiner-folded in canonical order, keys
        in first-send order — plain inserts reproduce exactly the dict the
        scalar ``send`` loop would have built.  ``workers`` is always this
        shard's id repeated (a worker's vertices live on one shard).
        """
        self.outbox.update(zip(zip(workers, targets), payloads))


class _ShardAggregators:
    """Aggregator facade: reads last barrier's snapshot, records contributions."""

    __slots__ = ("_previous", "contributions")

    def __init__(self, previous):
        self._previous = previous
        self.contributions = []

    def contribute(self, name, value):
        if name not in self._previous:
            raise KeyError(f"aggregator {name!r} not registered")
        self.contributions.append((name, value))

    def previous(self, name):
        return self._previous[name]


class Shard:
    """The resident vertex state of one worker, plus its compute pass.

    With ``heuristic`` set the shard also hosts the decision phase: it
    keeps a mirror of the *global* placement (seeded once at start, kept
    exact by the barrier's broadcast placement deltas) and evaluates the
    heuristic + willingness coin over its candidate residents each
    superstep the coordinator asks it to.
    """

    def __init__(self, shard_id, program, combiner, continuous,
                 heuristic=None, tracer=None):
        self.shard_id = shard_id
        self.program = program
        self.continuous = continuous
        # Each shard owns its own tracer (lane "shard-<id>") even when it
        # runs in the coordinator's process: drain() must only ever take
        # this shard's spans into its delta.
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.values = {}
        self.halted = set()
        self._adj = {}
        self._combiner = combiner
        self.graph = _ShardGraph(self._adj)
        self.heuristic = heuristic
        self.placement = None  # global placement mirror (decision phase)
        self._decision_cache = None  # last fresh snapshot (staleness window)
        self._sweeper = make_shard_sweeper(heuristic)
        # Local CSR for the batched vertex-kernel path (None without
        # numpy); kept exact by admit/evict alongside the dict state.
        self.batch_table = (
            make_block_table() if program.compute_batch is not None else None
        )
        # Per-superstep scratch, bound during run_superstep.
        self.router = None
        self.aggregators = None
        self._compute_units = 0.0
        self._computed_ids = None
        self._batched_blocks = 0

    def __len__(self):
        return len(self.values)

    # ------------------------------------------------------------------
    # Membership (driven by coordinator patches)
    # ------------------------------------------------------------------

    def admit(self, vertex, value, neighbours, halted):
        """Upsert one resident; an existing vertex keeps its compute slot."""
        self.values[vertex] = value
        self._adj[vertex] = tuple(neighbours)
        if halted:
            self.halted.add(vertex)
        else:
            self.halted.discard(vertex)
        if self._sweeper is not None:
            self._sweeper.admit(vertex, self._adj[vertex])
        if self.batch_table is not None:
            self.batch_table.admit(vertex, self._adj[vertex])

    def evict(self, vertex):
        """Drop one resident (migration departure or stream removal)."""
        self.values.pop(vertex, None)
        self._adj.pop(vertex, None)
        self.halted.discard(vertex)
        if self._sweeper is not None:
            self._sweeper.evict(vertex)
        if self.batch_table is not None:
            self.batch_table.evict(vertex)

    def seed_placement(self, assignment_items):
        """Install the initial global placement mirror (start-of-run)."""
        self.placement = dict(assignment_items)
        if self._sweeper is not None:
            self._sweeper.place_many(list(self.placement.items()))

    def apply_placement_delta(self, delta):
        """Fold one barrier's broadcast placement changes into the mirror."""
        placement = self.placement
        if placement is None:
            return
        sweeper = self._sweeper
        for vertex, pid in delta:
            if pid is None:
                placement.pop(vertex, None)
                if sweeper is not None:
                    sweeper.unplace(vertex)
            else:
                placement[vertex] = pid
                if sweeper is not None:
                    sweeper.place(vertex, pid)

    def apply_patch(self, patch):
        """Apply one barrier's changes (removes first, then upserts).

        The ``apply-patch`` span recorded here ships with the *next*
        superstep's delta (patches precede compute in the step protocol).
        """
        if self.tracer.enabled:
            with self.tracer.span(
                "apply-patch",
                upserts=len(patch.upserts),
                removes=len(patch.removes),
            ):
                self._apply_patch(patch)
        else:
            self._apply_patch(patch)

    def _apply_patch(self, patch):
        for vertex in patch.removes:
            self.evict(vertex)
        for vertex, (value, neighbours, halted) in patch.upserts.items():
            self.admit(vertex, value, neighbours, halted)
        if patch.placement_delta:
            self.apply_placement_delta(patch.placement_delta)

    # ------------------------------------------------------------------
    # Compute (the host contract of compute_block)
    # ------------------------------------------------------------------

    def note_cost(self, vertex, cost):
        """Compute-host contract: record one computed vertex and its cost."""
        self._compute_units += cost
        self._computed_ids.append(vertex)

    def note_costs(self, vertex_ids, costs):
        """Vectorised :meth:`note_cost` for one batched block.

        ``cumsum`` accumulates strictly left to right, so the final prefix
        sum associates exactly like the scalar loop's per-vertex ``+=`` —
        compute-unit timelines stay bit-identical.
        """
        self._computed_ids.extend(vertex_ids)
        if len(costs):
            self._compute_units += float(costs.cumsum()[-1])

    def note_batched_block(self, count=1):
        """Count one block evaluated through the batched kernel path."""
        self._batched_blocks += count

    def batch_workers(self, vertex_ids):
        """Per-row source workers: this shard's id, for every resident."""
        return [self.shard_id] * len(vertex_ids)

    @property
    def placement_of(self):
        """The decision-host contract of :func:`decide_block`: mirror reads."""
        return self.placement.get

    def _decision_snapshot(self, task):
        """Resolve the task's decision input to a usable snapshot (or None).

        A fresh :class:`DecisionContext` is cached (it opens a staleness
        window); a bare round index re-keys the cached snapshot to that
        round — the shard-side half of the stale-snapshot lifecycle, which
        keeps stale rounds from re-shipping the capacity vector at all.
        """
        decision = task.decision
        if decision is None:
            return None
        if isinstance(decision, DecisionContext):
            self._decision_cache = decision
            return decision
        cached = self._decision_cache
        if cached is None:  # pragma: no cover - protocol misuse
            raise RuntimeError(
                f"shard {self.shard_id} received a stale decision round "
                f"({decision!r}) before any snapshot was shipped"
            )
        return cached.aged(decision)

    def _decision_phase(self, task):
        """Evaluate the decision step for ``task``; returns the proposals.

        Candidate order is canonicalised locally (the coordinator ships
        slices of a set), and None means every resident.  Evaluation order
        cannot matter — decisions see only the frozen snapshot and the
        willingness draws are keyed — but a deterministic order makes the
        delta itself reproducible byte for byte.
        """
        context = self._decision_snapshot(task)
        if context is None or self.placement is None:
            return []
        candidates = sort_vertices(
            self.values if task.candidates is None else task.candidates
        )
        if self._sweeper is not None:
            return self._sweeper.decisions(context, candidates)
        return decide_block(self, context, candidates)

    def run_superstep(self, task):
        """Run the compute pass for ``task``; returns the :class:`ShardDelta`."""
        tracer = self.tracer
        self.router = _ShardRouter(self.shard_id, self._combiner)
        self.aggregators = _ShardAggregators(task.agg_previous)
        self.graph.num_vertices = task.num_vertices
        self._compute_units = 0.0
        self._computed_ids = []
        self._batched_blocks = 0
        halted_before = set(self.halted)
        if tracer.enabled:
            with tracer.span(
                "compute",
                superstep=task.superstep,
                residents=len(self.values),
            ):
                computed = compute_block(
                    self, list(self.values), task.inbox, task.superstep
                )
            if task.decision is not None:
                with tracer.span("decide", superstep=task.superstep):
                    proposals = self._decision_phase(task)
            else:
                proposals = self._decision_phase(task)
            spans = tracer.drain()
        else:
            computed = compute_block(
                self, list(self.values), task.inbox, task.superstep
            )
            proposals = self._decision_phase(task)
            spans = []
        delta = ShardDelta(
            shard_id=self.shard_id,
            computed=computed,
            values={v: self.values[v] for v in self._computed_ids},
            outbox=list(self.router.outbox.items()),
            halted_added=sort_vertices(self.halted - halted_before),
            halted_removed=sort_vertices(halted_before - self.halted),
            aggregated=self.aggregators.contributions,
            compute_units=self._compute_units,
            proposals=proposals,
            spans=spans,
            batched_blocks=self._batched_blocks,
        )
        self.router = None
        self.aggregators = None
        self._computed_ids = None
        return delta

    def snapshot(self):
        """Picklable ``(values, halted)`` view for consistency checks."""
        return dict(self.values), set(self.halted)

    def __repr__(self):
        return f"Shard(id={self.shard_id}, residents={len(self.values)})"
