"""One shard of the sharded execution layer.

A :class:`Shard` owns the vertices of one partition (worker): their values,
halted flags and a local read-only adjacency mirror.  Per superstep it runs
the shared compute loop (:func:`~repro.pregel.compute.compute_block`) over
its residents and emits everything the superstep produced as a
:class:`ShardDelta` — new values, a pre-combined outbox, halt transitions,
aggregator contributions and per-worker compute cost.  The coordinator
merges deltas at the barrier **in shard-id order**, so a superstep's outcome
is independent of which thread or process ran which shard: bit-identical
across every :mod:`~repro.cluster.executor` backend.

Between supersteps the coordinator keeps shards current with
:class:`ShardPatch` records (vertex upserts + evictions) covering whatever
the barrier changed: stream mutations, announced migrations, fault
recoveries.  Everything here is plain picklable data — that is the whole
contract :class:`~repro.cluster.executor.ProcessExecutor` needs.
"""

from dataclasses import dataclass, field

from repro.core.sweep import sort_vertices
from repro.pregel.compute import compute_block

__all__ = ["Shard", "ShardDelta", "ShardPatch", "ShardTask"]


@dataclass(frozen=True)
class ShardTask:
    """One superstep's input for one shard."""

    superstep: int
    inbox: dict            # vertex id -> message list (this shard's slice)
    num_vertices: int      # global vertex count (a master statistic)
    agg_previous: dict     # aggregator name -> last barrier's folded value


@dataclass
class ShardPatch:
    """Barrier-produced state changes for one shard.

    ``upserts`` maps vertex id → ``(value, neighbours, halted)`` in
    canonical vertex order (the coordinator builds it sorted, so shard
    insertion order — and with it compute order — is executor-independent);
    ``removes`` lists evicted vertex ids.  Removes apply first: a vertex
    migrating between two shards appears as a remove on one and an upsert
    on the other.
    """

    upserts: dict = field(default_factory=dict)
    removes: list = field(default_factory=list)


@dataclass
class ShardDelta:
    """Everything one shard's compute pass produced for the barrier.

    ``compute_units`` is also the shard's worker compute load: one shard
    per worker, so the coordinator attributes it to ``shard_id`` directly.
    """

    shard_id: int
    computed: int
    values: dict           # vertex id -> value, for every computed vertex
    outbox: list           # ((source_worker, target_id), payload) in send order
    halted_added: list
    halted_removed: list
    aggregated: list       # (name, value) contributions in call order
    compute_units: float


class _ShardGraph:
    """The graph surface :class:`VertexContext` reads, shard-locally.

    Neighbour lists are immutable tuples maintained by patches; the global
    vertex count is a master-provided statistic refreshed per task.
    """

    __slots__ = ("_adj", "num_vertices")

    def __init__(self, adj):
        self._adj = adj
        self.num_vertices = 0

    def neighbors(self, v):
        return self._adj[v]

    def degree(self, v):
        return len(self._adj[v])


class _ShardRouter:
    """Shard-local outbox with :class:`MessageRouter`'s send semantics.

    Combining happens here, per ``(source_worker, target)`` key, exactly as
    the real router does it — and since a worker's vertices all live on one
    shard (source worker ≡ shard id), the keys this router produces can
    never collide with another shard's, which is what makes the barrier
    merge order-trivial.
    """

    __slots__ = ("_worker", "_combiner", "outbox")

    def __init__(self, worker, combiner):
        self._worker = worker
        self._combiner = combiner
        self.outbox = {}

    def send(self, source_id, target_id, message):
        key = (self._worker, target_id)
        if self._combiner is not None:
            existing = self.outbox.get(key)
            if existing is not None:
                self.outbox[key] = self._combiner(existing, message)
                return
            self.outbox[key] = message
        else:
            self.outbox.setdefault(key, []).append(message)


class _ShardAggregators:
    """Aggregator facade: reads last barrier's snapshot, records contributions."""

    __slots__ = ("_previous", "contributions")

    def __init__(self, previous):
        self._previous = previous
        self.contributions = []

    def contribute(self, name, value):
        if name not in self._previous:
            raise KeyError(f"aggregator {name!r} not registered")
        self.contributions.append((name, value))

    def previous(self, name):
        return self._previous[name]


class Shard:
    """The resident vertex state of one worker, plus its compute pass."""

    def __init__(self, shard_id, program, combiner, continuous):
        self.shard_id = shard_id
        self.program = program
        self.continuous = continuous
        self.values = {}
        self.halted = set()
        self._adj = {}
        self._combiner = combiner
        self.graph = _ShardGraph(self._adj)
        # Per-superstep scratch, bound during run_superstep.
        self.router = None
        self.aggregators = None
        self._compute_units = 0.0
        self._computed_ids = None

    def __len__(self):
        return len(self.values)

    # ------------------------------------------------------------------
    # Membership (driven by coordinator patches)
    # ------------------------------------------------------------------

    def admit(self, vertex, value, neighbours, halted):
        """Upsert one resident; an existing vertex keeps its compute slot."""
        self.values[vertex] = value
        self._adj[vertex] = tuple(neighbours)
        if halted:
            self.halted.add(vertex)
        else:
            self.halted.discard(vertex)

    def evict(self, vertex):
        """Drop one resident (migration departure or stream removal)."""
        self.values.pop(vertex, None)
        self._adj.pop(vertex, None)
        self.halted.discard(vertex)

    def apply_patch(self, patch):
        """Apply one barrier's changes (removes first, then upserts)."""
        for vertex in patch.removes:
            self.evict(vertex)
        for vertex, (value, neighbours, halted) in patch.upserts.items():
            self.admit(vertex, value, neighbours, halted)

    # ------------------------------------------------------------------
    # Compute (the host contract of compute_block)
    # ------------------------------------------------------------------

    def note_cost(self, vertex, cost):
        self._compute_units += cost
        self._computed_ids.append(vertex)

    def run_superstep(self, task):
        """Run the compute pass for ``task``; returns the :class:`ShardDelta`."""
        self.router = _ShardRouter(self.shard_id, self._combiner)
        self.aggregators = _ShardAggregators(task.agg_previous)
        self.graph.num_vertices = task.num_vertices
        self._compute_units = 0.0
        self._computed_ids = []
        halted_before = set(self.halted)
        computed = compute_block(
            self, list(self.values), task.inbox, task.superstep
        )
        delta = ShardDelta(
            shard_id=self.shard_id,
            computed=computed,
            values={v: self.values[v] for v in self._computed_ids},
            outbox=list(self.router.outbox.items()),
            halted_added=sort_vertices(self.halted - halted_before),
            halted_removed=sort_vertices(halted_before - self.halted),
            aggregated=self.aggregators.contributions,
            compute_units=self._compute_units,
        )
        self.router = None
        self.aggregators = None
        self._computed_ids = None
        return delta

    def snapshot(self):
        """Picklable ``(values, halted)`` view for consistency checks."""
        return dict(self.values), set(self.halted)

    def __repr__(self):
        return f"Shard(id={self.shard_id}, residents={len(self.values)})"
