"""The cluster wire format: framing, a compact binary codec, inbox combining.

Every byte the persistent-worker protocol moves — over a pipe to a
:class:`~repro.cluster.executor.ProcessExecutor` worker or over TCP to a
``repro worker`` on another host — goes through this module.  Three layers:

**Framing.**  A frame is ``[u32 length][payload]`` (little-endian length,
bounded by :data:`MAX_FRAME`); the payload's first byte names the codec.
:func:`send_frame` / :func:`recv_frame` speak frames over a socket with
exact reads, surfacing a clean peer close as :class:`EOFError` so callers
can distinguish "worker went away" from garbage.

**Codec.**  :func:`dumps` / :func:`loads` encode one protocol message.  The
default binary codec (:data:`CODEC_BINARY`) is a tagged format that packs
the hot structures — task inboxes, delta value maps and outboxes, patch
adjacency — as homogeneous little-endian buffers via the stdlib
:mod:`array` module, delta-encoding vertex-id columns so ids on a
million-vertex graph cost bytes proportional to their local gaps rather
than their magnitude (numpy is *not* required; ``numpy.ndarray`` values
get their own raw-buffer tag when numpy is present), with a pickle
fallback tag for arbitrary program values.  The pickle codec (:data:`CODEC_PICKLE`) is
one ``pickle.dumps`` per message — the pre-codec wire format, kept both as
the benchmark baseline (``benchmarks/bench_wire.py``) and because a raw
pickle (first byte ``0x80``) is self-identifying, so frames produced by
``Connection.send`` decode too.

**Combining.**  :func:`combine_inbox` applies the program's combiner to a
shard's inbox *before* the wire, folding each multi-message mailbox to one
:class:`CombinedMessages` entry that still reports the original message
count through ``len()`` — which is exactly what keeps modelled compute cost
(``VertexProgram.compute_cost`` defaults to ``1 + len(messages)``), and
with it every golden timeline, bit-identical to the uncombined executors.
"""

from __future__ import annotations

import pickle
import socket
import struct
import sys
from array import array
from collections.abc import Callable, Iterable, Sequence
from typing import Any

from repro.cluster.shard import ShardDelta, ShardPatch, ShardTask

try:  # numpy is optional everywhere in this repo
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the numpy-free CI leg
    _np = None

__all__ = [
    "CODEC_BINARY",
    "CODEC_PICKLE",
    "MAX_FRAME",
    "CombinedMessages",
    "WireError",
    "codec_id",
    "combine_inbox",
    "dumps",
    "frame",
    "loads",
    "recv_frame",
    "send_frame",
]

#: Codec byte of the tagged binary format.
CODEC_BINARY = 0x01
#: Codec byte of the pickle format — ``0x80`` is the PROTO opcode that opens
#: every protocol-2+ pickle, so a raw ``pickle.dumps`` payload is already a
#: valid frame body under this codec.
CODEC_PICKLE = 0x80
#: Hard ceiling on one frame's payload (guards against a corrupt length
#: prefix turning into a multi-gigabyte allocation).
MAX_FRAME = 1 << 30

_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")
_BIG_ENDIAN = sys.byteorder == "big"


class WireError(ValueError):
    """A malformed frame or an unencodable/undecodable payload."""


def codec_id(spec: int | str) -> int:
    """Resolve a codec spec — ``"binary"``/``"pickle"`` or a codec byte."""
    if spec in ("binary", CODEC_BINARY):
        return CODEC_BINARY
    if spec in ("pickle", CODEC_PICKLE):
        return CODEC_PICKLE
    raise ValueError(
        f"unknown wire codec {spec!r}; choose 'binary' or 'pickle'"
    )


# ---------------------------------------------------------------------------
# Combining
# ---------------------------------------------------------------------------


class CombinedMessages(list):
    """One combined message standing in for ``logical_len`` originals.

    Iteration, indexing and ``list(...)`` see the single folded message, so
    a program's ``compute`` receives exactly what its combiner semantics
    promise — but ``len()`` reports the *pre-combining* message count, so
    cost models that charge per message (``VertexProgram.compute_cost``
    defaults to ``1 + len(messages)``) account the same work whether or not
    the transport combined.  That asymmetry is the whole point: it is what
    keeps compute-unit timelines bit-identical across combining and
    non-combining executors.
    """

    __slots__ = ("logical_len",)

    def __init__(self, items: Iterable[Any], logical_len: int) -> None:
        super().__init__(items)
        self.logical_len = int(logical_len)

    def __len__(self) -> int:
        return self.logical_len

    def __reduce__(self) -> tuple[Any, ...]:
        return (CombinedMessages, (list(self), self.logical_len))

    def __repr__(self) -> str:
        return (
            f"CombinedMessages({list.__repr__(self)}, "
            f"logical_len={self.logical_len})"
        )


def combine_inbox(
    inbox: dict[Any, Any], combiner: Callable[[Any, Any], Any] | None
) -> dict[Any, Any]:
    """Fold every multi-message mailbox in ``inbox`` with ``combiner``.

    Returns a new inbox dict where each mailbox of ``n > 1`` messages became
    a :class:`CombinedMessages` holding the left-fold of the originals (the
    same association order ``MessageRouter.send`` would have combined them
    in) and remembering ``n``.  Single-message mailboxes pass through
    untouched; with no combiner — or nothing to fold — the original mapping
    is returned as-is.
    """
    if combiner is None:
        return inbox
    folded_any = False
    combined: dict[Any, Any] = {}
    for vertex, messages in inbox.items():
        count = len(messages)
        if count > 1:
            folded = messages[0]
            for message in messages[1:]:
                folded = combiner(folded, message)
            combined[vertex] = CombinedMessages((folded,), count)
            folded_any = True
        else:
            combined[vertex] = messages
    return combined if folded_any else inbox


# ---------------------------------------------------------------------------
# Binary codec — encoding
# ---------------------------------------------------------------------------

_TAG_NONE = 0x00
_TAG_TRUE = 0x01
_TAG_FALSE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_LIST = 0x07
_TAG_TUPLE = 0x08
_TAG_DICT = 0x09
_TAG_SET = 0x0A
_TAG_INT_ARRAY = 0x0B      # homogeneous int sequence, width-packed
_TAG_FLOAT_ARRAY = 0x0C    # homogeneous float sequence, f64-packed
_TAG_NUM_DICT = 0x0D       # {int: float} — packed keys + packed values
_TAG_COMBINED = 0x0E       # CombinedMessages, generic payload
_TAG_COMBINED_NUM_DICT = 0x0F  # {int: CombinedMessages([float])} inbox
_TAG_INT_PAIRS = 0x10      # [(int, int), ...] — two packed columns
_TAG_OUTBOX = 0x11         # [((int, int), float), ...] — three columns
_TAG_NDARRAY = 0x12        # dtype str + shape + raw buffer
_TAG_TASK = 0x13
_TAG_PATCH = 0x14
_TAG_DELTA = 0x15
_TAG_PICKLE = 0x16         # anything else


def _int_typecodes() -> dict[int, str]:
    """Map item sizes 1/2/4/8 to signed :mod:`array` typecodes, portably."""
    by_size: dict[int, str] = {}
    for code in "bhilq":
        by_size.setdefault(array(code).itemsize, code)
    return {size: by_size[size] for size in (1, 2, 4, 8)}


_INT_TC = _int_typecodes()
_INT_BOUNDS = {
    size: (-(1 << (8 * size - 1)), (1 << (8 * size - 1)) - 1)
    for size in (1, 2, 4, 8)
}
# Width-byte flag: the column is stored as first-value + consecutive
# differences instead of absolute values.  Vertex-id columns (inbox keys,
# candidate lists, outbox targets) have small gaps between neighbouring
# entries even when the ids themselves need 4+ bytes, so the differences
# width-select one or two sizes smaller.
_DELTA_FLAG = 0x40


def _write_uint(out: bytearray, n: int) -> None:
    while True:
        byte = n & 0x7F
        n >>= 7
        if n:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _select_width(lo: int, hi: int) -> int | None:
    for size in (1, 2, 4, 8):
        lo_bound, hi_bound = _INT_BOUNDS[size]
        if lo_bound <= lo and hi <= hi_bound:
            return size
    return None


def _pack_array(
    typecode: str, values: Sequence[int], out: bytearray
) -> None:
    packed = array(typecode, values)
    if _BIG_ENDIAN:  # pragma: no cover - little-endian hosts
        packed.byteswap()
    out += packed.tobytes()


def _pack_ints(values: Sequence[int], out: bytearray) -> bool:
    """Width-select and pack a list of ints; False when out of i64 range.

    Appends ``[width byte][count varint][payload]`` to ``out``.  When the
    consecutive differences fit a strictly narrower width than the values
    (and the first value fits i64 as a zigzag varint), the column is stored
    delta-encoded instead — ``[width | _DELTA_FLAG][count][zigzag first]
    [packed differences]`` — which is what keeps large-graph vertex-id
    columns near one byte per entry.
    """
    plain = _select_width(min(values), max(values))
    if len(values) > 1:
        diffs = [b - a for a, b in zip(values, values[1:])]
        narrow = _select_width(min(diffs), max(diffs))
        if narrow is not None and (plain is None or narrow < plain):
            first = values[0]
            out.append(narrow | _DELTA_FLAG)
            _write_uint(out, len(values))
            _write_uint(
                out, (first << 1) if first >= 0 else ((-first << 1) - 1)
            )
            _pack_array(_INT_TC[narrow], diffs, out)
            return True
    if plain is None:
        return False
    out.append(plain)
    _write_uint(out, len(values))
    _pack_array(_INT_TC[plain], values, out)
    return True


def _pack_floats(values: Sequence[float], out: bytearray) -> None:
    """Pack a list of floats as ``[count varint][f64 payload]``."""
    _write_uint(out, len(values))
    packed = array("d", values)
    if _BIG_ENDIAN:  # pragma: no cover - little-endian hosts
        packed.byteswap()
    out += packed.tobytes()


def _all_exact(items: Iterable[Any], kind: type) -> bool:
    return all(type(item) is kind for item in items)


def _encode_sequence(
    obj: Sequence[Any], out: bytearray, container: int
) -> None:
    generic_tag = _TAG_LIST if container == 0 else _TAG_TUPLE
    n = len(obj)
    if n:
        first = type(obj[0])
        if first is int and _all_exact(obj, int):
            mark = len(out)
            out.append(_TAG_INT_ARRAY)
            out.append(container)
            if _pack_ints(obj, out):
                return
            del out[mark:]  # bigints: fall through to the generic encoding
        elif first is float and _all_exact(obj, float):
            out.append(_TAG_FLOAT_ARRAY)
            out.append(container)
            _pack_floats(obj, out)
            return
    out.append(generic_tag)
    _write_uint(out, n)
    for item in obj:
        _encode(item, out)


def _encode_list(obj: Sequence[Any], out: bytearray) -> None:
    _encode_sequence(obj, out, 0)


def _encode_tuple(obj: Sequence[Any], out: bytearray) -> None:
    _encode_sequence(obj, out, 1)


def _is_combined_float(value: Any) -> bool:
    return (
        type(value) is CombinedMessages
        and list.__len__(value) == 1
        and type(value[0]) is float
    )


def _encode_dict(obj: dict[Any, Any], out: bytearray) -> None:
    n = len(obj)
    if n:
        # reprolint: allow-DET001 the codec must preserve the host dict's insertion order byte-for-byte
        keys = list(obj.keys())
        values = list(obj.values())
        if _all_exact(keys, int):
            if _all_exact(values, float):
                mark = len(out)
                out.append(_TAG_NUM_DICT)
                if _pack_ints(keys, out):
                    _pack_floats(values, out)
                    return
                del out[mark:]
            elif all(_is_combined_float(v) for v in values):
                mark = len(out)
                out.append(_TAG_COMBINED_NUM_DICT)
                if _pack_ints(keys, out) and _pack_ints(
                    [v.logical_len for v in values], out
                ):
                    _pack_floats([v[0] for v in values], out)
                    return
                del out[mark:]
    out.append(_TAG_DICT)
    _write_uint(out, n)
    for key, value in obj.items():
        _encode(key, out)
        _encode(value, out)


def _encode_int_pairs(pairs: Sequence[Any], out: bytearray) -> bool:
    """Two-column packing for ``[(int, int), ...]``; False when shape differs."""
    if not pairs or not all(
        type(p) is tuple
        and len(p) == 2
        and type(p[0]) is int
        and type(p[1]) is int
        for p in pairs
    ):
        return False
    mark = len(out)
    out.append(_TAG_INT_PAIRS)
    _write_uint(out, len(pairs))
    if _pack_ints([p[0] for p in pairs], out) and _pack_ints(
        [p[1] for p in pairs], out
    ):
        return True
    del out[mark:]
    return False


def _encode_outbox(entries: Sequence[Any], out: bytearray) -> None:
    """Three-column packing for ``[((worker, target), payload), ...]``."""
    if entries and all(
        type(e) is tuple
        and len(e) == 2
        and type(e[0]) is tuple
        and len(e[0]) == 2
        and type(e[0][0]) is int
        and type(e[0][1]) is int
        and type(e[1]) is float
        for e in entries
    ):
        mark = len(out)
        out.append(_TAG_OUTBOX)
        _write_uint(out, len(entries))
        if _pack_ints([e[0][0] for e in entries], out) and _pack_ints(
            [e[0][1] for e in entries], out
        ):
            _pack_floats([e[1] for e in entries], out)
            return
        del out[mark:]
    _encode_list(entries, out)


def _encode_ndarray(obj: Any, out: bytearray) -> None:
    if obj.dtype.hasobject:
        _encode_pickle(obj, out)
        return
    # ascontiguousarray may promote 0-d to 1-d; ship the original shape.
    contiguous = _np.ascontiguousarray(obj)
    dtype = contiguous.dtype.str.encode("ascii")
    out.append(_TAG_NDARRAY)
    _write_uint(out, len(dtype))
    out += dtype
    _write_uint(out, obj.ndim)
    for dim in obj.shape:
        _write_uint(out, dim)
    payload = contiguous.tobytes()
    _write_uint(out, len(payload))
    out += payload


def _encode_pickle(obj: Any, out: bytearray) -> None:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    out.append(_TAG_PICKLE)
    _write_uint(out, len(payload))
    out += payload


def _encode_none(obj: None, out: bytearray) -> None:
    out.append(_TAG_NONE)


def _encode_bool(obj: bool, out: bytearray) -> None:
    out.append(_TAG_TRUE if obj else _TAG_FALSE)


def _encode_int(obj: int, out: bytearray) -> None:
    out.append(_TAG_INT)
    _write_uint(out, (obj << 1) if obj >= 0 else ((-obj << 1) - 1))


def _encode_float(obj: float, out: bytearray) -> None:
    out.append(_TAG_FLOAT)
    out += _F64.pack(obj)


def _encode_str(obj: str, out: bytearray) -> None:
    payload = obj.encode("utf-8")
    out.append(_TAG_STR)
    _write_uint(out, len(payload))
    out += payload


def _encode_bytes(obj: bytes, out: bytearray) -> None:
    out.append(_TAG_BYTES)
    _write_uint(out, len(obj))
    out += obj


def _encode_set(obj: set[Any], out: bytearray) -> None:
    out.append(_TAG_SET)
    _write_uint(out, len(obj))
    for item in obj:
        _encode(item, out)


def _encode_combined(obj: CombinedMessages, out: bytearray) -> None:
    out.append(_TAG_COMBINED)
    _write_uint(out, obj.logical_len)
    _write_uint(out, list.__len__(obj))
    for item in list.__iter__(obj):
        _encode(item, out)


def _encode_task(obj: ShardTask, out: bytearray) -> None:
    out.append(_TAG_TASK)
    _encode(obj.superstep, out)
    _encode(obj.inbox, out)
    _encode(obj.num_vertices, out)
    _encode(obj.agg_previous, out)
    _encode(obj.decision, out)
    _encode(obj.candidates, out)


def _encode_patch(obj: ShardPatch, out: bytearray) -> None:
    out.append(_TAG_PATCH)
    _encode(obj.upserts, out)
    _encode(obj.removes, out)
    if not _encode_int_pairs(obj.placement_delta, out):
        _encode(obj.placement_delta, out)


def _encode_delta(obj: ShardDelta, out: bytearray) -> None:
    out.append(_TAG_DELTA)
    _encode(obj.shard_id, out)
    _encode(obj.computed, out)
    _encode(obj.values, out)
    _encode_outbox(obj.outbox, out)
    _encode(obj.halted_added, out)
    _encode(obj.halted_removed, out)
    _encode(obj.aggregated, out)
    _encode(obj.compute_units, out)
    _encode(obj.proposals, out)
    _encode(obj.spans, out)
    _encode(obj.batched_blocks, out)


_ENCODERS: dict[type, Callable[[Any, bytearray], None]] = {
    type(None): _encode_none,
    bool: _encode_bool,
    int: _encode_int,
    float: _encode_float,
    str: _encode_str,
    bytes: _encode_bytes,
    list: _encode_list,
    tuple: _encode_tuple,
    dict: _encode_dict,
    set: _encode_set,
    CombinedMessages: _encode_combined,
    ShardTask: _encode_task,
    ShardPatch: _encode_patch,
    ShardDelta: _encode_delta,
}


def _encode(obj: Any, out: bytearray) -> None:
    encoder = _ENCODERS.get(type(obj))
    if encoder is not None:
        encoder(obj, out)
    elif _np is not None and isinstance(obj, _np.ndarray):
        _encode_ndarray(obj, out)
    else:
        _encode_pickle(obj, out)


# ---------------------------------------------------------------------------
# Binary codec — decoding
# ---------------------------------------------------------------------------


class _Reader:
    __slots__ = ("buf", "pos")

    def __init__(self, buf: memoryview, pos: int) -> None:
        self.buf = buf
        self.pos = pos

    def take(self, n: int) -> memoryview:
        end = self.pos + n
        if end > len(self.buf):
            raise WireError("truncated frame")
        chunk = self.buf[self.pos:end]
        self.pos = end
        return chunk

    def byte(self) -> int:
        if self.pos >= len(self.buf):
            raise WireError("truncated frame")
        value = self.buf[self.pos]
        self.pos += 1
        return value

    def uint(self) -> int:
        shift = 0
        value = 0
        while True:
            byte = self.byte()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7


def _read_int_array(reader: _Reader) -> list[int]:
    spec = reader.byte()
    size = spec & ~_DELTA_FLAG
    typecode = _INT_TC.get(size)
    if typecode is None:
        raise WireError(f"bad int-array width {spec:#x}")
    count = reader.uint()
    if spec & _DELTA_FLAG:
        if count == 0:
            raise WireError("empty delta-encoded int array")
        encoded = reader.uint()
        value = (encoded >> 1) if not encoded & 1 else -((encoded + 1) >> 1)
        diffs = array(typecode)
        diffs.frombytes(reader.take((count - 1) * size))
        if _BIG_ENDIAN:  # pragma: no cover - little-endian hosts
            diffs.byteswap()
        items = [value]
        append = items.append
        for diff in diffs:
            value += diff
            append(value)
        return items
    packed = array(typecode)
    packed.frombytes(reader.take(count * size))
    if _BIG_ENDIAN:  # pragma: no cover - little-endian hosts
        packed.byteswap()
    return packed.tolist()


def _read_float_array(reader: _Reader) -> list[float]:
    count = reader.uint()
    packed = array("d")
    packed.frombytes(reader.take(count * 8))
    if _BIG_ENDIAN:  # pragma: no cover - little-endian hosts
        packed.byteswap()
    return packed.tolist()


def _decode(reader: _Reader) -> Any:
    tag = reader.byte()
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        encoded = reader.uint()
        return (encoded >> 1) if not encoded & 1 else -((encoded + 1) >> 1)
    if tag == _TAG_FLOAT:
        return _F64.unpack(reader.take(8))[0]
    if tag == _TAG_STR:
        return bytes(reader.take(reader.uint())).decode("utf-8")
    if tag == _TAG_BYTES:
        return bytes(reader.take(reader.uint()))
    if tag == _TAG_LIST:
        return [_decode(reader) for _ in range(reader.uint())]
    if tag == _TAG_TUPLE:
        return tuple(_decode(reader) for _ in range(reader.uint()))
    if tag == _TAG_DICT:
        return {
            _decode(reader): _decode(reader) for _ in range(reader.uint())
        }
    if tag == _TAG_SET:
        return {_decode(reader) for _ in range(reader.uint())}
    if tag == _TAG_INT_ARRAY:
        container = reader.byte()
        items = _read_int_array(reader)
        return items if container == 0 else tuple(items)
    if tag == _TAG_FLOAT_ARRAY:
        container = reader.byte()
        items = _read_float_array(reader)
        return items if container == 0 else tuple(items)
    if tag == _TAG_NUM_DICT:
        keys = _read_int_array(reader)
        return dict(zip(keys, _read_float_array(reader)))
    if tag == _TAG_COMBINED:
        logical = reader.uint()
        items = [_decode(reader) for _ in range(reader.uint())]
        return CombinedMessages(items, logical)
    if tag == _TAG_COMBINED_NUM_DICT:
        keys = _read_int_array(reader)
        counts = _read_int_array(reader)
        payloads = _read_float_array(reader)
        return {
            key: CombinedMessages((payload,), count)
            for key, count, payload in zip(keys, counts, payloads)
        }
    if tag == _TAG_INT_PAIRS:
        reader.uint()  # count (redundant with the columns, kept for sanity)
        return list(zip(_read_int_array(reader), _read_int_array(reader)))
    if tag == _TAG_OUTBOX:
        reader.uint()
        workers = _read_int_array(reader)
        targets = _read_int_array(reader)
        payloads = _read_float_array(reader)
        return [
            ((worker, target), payload)
            for worker, target, payload in zip(workers, targets, payloads)
        ]
    if tag == _TAG_NDARRAY:
        if _np is None:
            raise WireError(
                "frame contains a numpy array but numpy is not installed"
            )
        dtype = bytes(reader.take(reader.uint())).decode("ascii")
        shape = tuple(reader.uint() for _ in range(reader.uint()))
        payload = reader.take(reader.uint())
        return _np.frombuffer(bytes(payload), dtype=dtype).reshape(shape).copy()
    if tag == _TAG_TASK:
        return ShardTask(
            superstep=_decode(reader),
            inbox=_decode(reader),
            num_vertices=_decode(reader),
            agg_previous=_decode(reader),
            decision=_decode(reader),
            candidates=_decode(reader),
        )
    if tag == _TAG_PATCH:
        return ShardPatch(
            upserts=_decode(reader),
            removes=_decode(reader),
            placement_delta=_decode(reader),
        )
    if tag == _TAG_DELTA:
        return ShardDelta(
            shard_id=_decode(reader),
            computed=_decode(reader),
            values=_decode(reader),
            outbox=_decode(reader),
            halted_added=_decode(reader),
            halted_removed=_decode(reader),
            aggregated=_decode(reader),
            compute_units=_decode(reader),
            proposals=_decode(reader),
            spans=_decode(reader),
            batched_blocks=_decode(reader),
        )
    if tag == _TAG_PICKLE:
        return pickle.loads(bytes(reader.take(reader.uint())))
    raise WireError(f"unknown wire tag {tag:#x}")


# ---------------------------------------------------------------------------
# Message and frame API
# ---------------------------------------------------------------------------


def dumps(obj: Any, codec: int | str = CODEC_BINARY) -> bytes:
    """Encode one protocol message to a frame payload (codec byte included)."""
    codec = codec_id(codec)
    if codec == CODEC_PICKLE:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    out = bytearray((CODEC_BINARY,))
    _encode(obj, out)
    return bytes(out)


def loads(payload: bytes) -> Any:
    """Decode one frame payload produced by :func:`dumps`.

    Raw pickles (from a peer speaking the legacy ``Connection.send``
    protocol) are accepted: every protocol-2+ pickle begins with the
    :data:`CODEC_PICKLE` byte.
    """
    if not payload:
        raise WireError("empty frame payload")
    codec = payload[0]
    if codec == CODEC_BINARY:
        reader = _Reader(memoryview(payload), 1)
        return _decode(reader)
    if codec == CODEC_PICKLE:
        return pickle.loads(payload)
    raise WireError(f"unknown codec byte {codec:#x}")


def frame(obj: Any, codec: int | str = CODEC_BINARY) -> bytes:
    """Encode ``obj`` as one complete length-prefixed frame."""
    payload = dumps(obj, codec)
    if len(payload) > MAX_FRAME:
        raise WireError(
            f"frame payload of {len(payload)} bytes exceeds MAX_FRAME"
        )
    return _U32.pack(len(payload)) + payload


def send_frame(
    sock: socket.socket, obj: Any, codec: int | str = CODEC_BINARY
) -> int:
    """Send one frame over ``sock``; returns the bytes put on the wire."""
    data = frame(obj, codec)
    sock.sendall(data)
    return len(data)


def _recv_exactly(sock: socket.socket, n: int, at_boundary: bool) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if at_boundary and remaining == n:
                raise EOFError("connection closed")
            raise WireError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_payload(sock: socket.socket) -> bytes:
    """Receive one frame from ``sock``; returns the undecoded payload bytes.

    A peer that closes cleanly *between* frames raises :class:`EOFError`
    (the pipe protocol's signal for a departed worker); a close mid-frame
    or a length prefix beyond :data:`MAX_FRAME` raises :class:`WireError`.
    """
    header = _recv_exactly(sock, _U32.size, at_boundary=True)
    (length,) = _U32.unpack(header)
    if length > MAX_FRAME:
        raise WireError(f"frame length {length} exceeds MAX_FRAME")
    return _recv_exactly(sock, length, at_boundary=False)


def recv_frame(sock: socket.socket, with_codec: bool = False) -> Any:
    """Receive one frame from ``sock``; decode and return the message.

    With ``with_codec=True`` returns ``(message, codec_byte)`` so servers
    can answer in the codec the client spoke.  Error behaviour is that of
    :func:`recv_payload`.
    """
    payload = recv_payload(sock)
    message = loads(payload)
    if with_codec:
        return message, payload[0]
    return message
