"""The worker side of the persistent-worker protocol, over TCP.

``repro worker --listen HOST:PORT`` runs a :class:`WorkerServer`: a process
on any host that owns a subset of shards for the life of one coordinator
session and answers the same five commands the
:class:`~repro.cluster.executor.ProcessExecutor` pipe protocol speaks —
``init`` / ``step`` / ``apply`` / ``snapshot`` / ``stop`` — as
length-prefixed :mod:`~repro.cluster.wire` frames.  The command semantics
live in :class:`ShardHost`, which the in-process pipe workers reuse, so the
two transports cannot drift apart.

A session is one coordinator run: the
:class:`~repro.cluster.executor.SocketExecutor` connects, ships the
worker's shard subset with ``init``, drives supersteps, and ends with
``stop`` (or by closing the connection).  The server then accepts the next
session with fresh state; ``--sessions N`` bounds how many before the
process exits (0 = serve forever).

:class:`LocalWorkerPool` spins up in-process servers on ephemeral localhost
ports — the harness the tests, the golden socket leg and
``benchmarks/bench_wire.py`` use to stand up a "multi-host" topology on one
machine.
"""

import socket
import threading
import traceback

from repro.cluster import wire

__all__ = [
    "LocalWorkerPool",
    "ShardHost",
    "WorkerServer",
    "parse_address",
    "parse_worker_addresses",
]


def parse_address(spec):
    """Parse one worker address — ``"host:port"`` or a tuple — to a tuple."""
    if isinstance(spec, tuple):
        host, port = spec
        return str(host), int(port)
    host, _, port = str(spec).rpartition(":")
    if not host or not port:
        raise ValueError(
            f"bad worker address {spec!r}; expected 'host:port'"
        )
    return host, int(port)


def parse_worker_addresses(spec):
    """Parse a worker address list: a comma-joined string or an iterable."""
    if spec is None:
        return []
    if isinstance(spec, str):
        parts = [part.strip() for part in spec.split(",")]
        return [parse_address(part) for part in parts if part]
    return [parse_address(part) for part in spec]


class ShardHost:
    """One worker's shard state plus the protocol command semantics.

    Both worker transports — the pipe loop inside a
    :class:`~repro.cluster.executor.ProcessExecutor` child and a
    :class:`WorkerServer` session — drive this one dispatcher, so a command
    means exactly the same thing on either side of either wire.  Failures
    never kill the worker: :meth:`handle` catches the exception and returns
    it as an ``("error", traceback)`` reply, leaving the loop alive for the
    next command.
    """

    def __init__(self):
        self.shards = {}

    def handle(self, kind, payload):
        """Execute one protocol command; returns ``(reply, done)``.

        ``reply`` is the ``(status, payload)`` pair to put back on the
        wire; ``done`` is True only for ``stop``, telling the transport
        loop to end the session after sending the reply.
        """
        try:
            if kind == "init":
                self.shards = payload
                return ("ok", None), False
            if kind == "step":
                deltas = {}
                for sid in sorted(payload):
                    task, patch = payload[sid]
                    shard = self.shards[sid]
                    if patch is not None:
                        shard.apply_patch(patch)
                    deltas[sid] = shard.run_superstep(task)
                return ("ok", deltas), False
            if kind == "apply":
                for sid in sorted(payload):
                    self.shards[sid].apply_patch(payload[sid])
                return ("ok", None), False
            if kind == "snapshot":
                view = {
                    sid: shard.snapshot()
                    for sid, shard in self.shards.items()
                }
                return ("ok", view), False
            if kind == "stop":
                return ("ok", None), True
            return ("error", f"unknown command {kind!r}"), False
        except Exception:  # surface worker-side failures to the coordinator
            return ("error", traceback.format_exc()), False


class WorkerServer:
    """A TCP shard worker: accepts coordinator sessions one at a time.

    Binding ``port=0`` picks an ephemeral port; the bound address is
    available as :attr:`address` (and is what ``repro worker`` prints, so
    harnesses can spawn workers without port bookkeeping).
    """

    def __init__(self, host="127.0.0.1", port=0):
        self._listener = socket.create_server((host, port))
        self.address = self._listener.getsockname()[:2]
        self._closed = False
        self._active = None

    def serve(self, sessions=1):
        """Serve coordinator sessions; returns how many were served.

        ``sessions`` bounds the count (0 = forever); the loop also ends
        when :meth:`close` is called from another thread — including
        mid-session, since :meth:`close` tears the active connection down.
        """
        served = 0
        while not self._closed and (sessions == 0 or served < sessions):
            try:
                conn, _ = self._listener.accept()
            except OSError:  # listener closed under us
                break
            self._active = conn
            try:
                self._session(conn)
            finally:
                self._active = None
                conn.close()
            served += 1
        return served

    def _session(self, conn):
        """Run one coordinator session: frames in, replies out, until stop."""
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        host = ShardHost()
        while True:
            try:
                message, codec = wire.recv_frame(conn, with_codec=True)
            except (EOFError, wire.WireError, ConnectionError, OSError):
                return  # coordinator went away; session over
            kind, payload = message
            reply, done = host.handle(kind, payload)
            try:
                wire.send_frame(conn, reply, codec=codec)
            except (BrokenPipeError, ConnectionError, OSError):
                return
            if done:
                return

    def close(self):
        """Stop serving: close the listener and any in-flight session."""
        self._closed = True
        self._listener.close()
        active = self._active
        if active is not None:
            try:
                active.close()
            except OSError:  # pragma: no cover - already torn down
                pass


class LocalWorkerPool:
    """``count`` in-process :class:`WorkerServer` threads on localhost.

    The test/bench harness for socket topologies: every server listens on
    an ephemeral port and serves sessions until :meth:`close`, so one pool
    can back any number of sequential coordinator runs.  Usable as a
    context manager.
    """

    def __init__(self, count, host="127.0.0.1"):
        if count < 1:
            raise ValueError("need at least one pool worker")
        self._servers = [WorkerServer(host, 0) for _ in range(count)]
        self.addresses = [
            f"{server.address[0]}:{server.address[1]}"
            for server in self._servers
        ]
        self._threads = [
            threading.Thread(
                target=server.serve,
                args=(0,),
                name=f"repro-socket-worker-{index}",
                daemon=True,
            )
            for index, server in enumerate(self._servers)
        ]
        for thread in self._threads:
            thread.start()

    def close(self):
        """Shut every server down; idempotent."""
        for server in self._servers:
            server.close()
        for thread in self._threads:
            thread.join(timeout=2)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False
