"""The adaptive iterative partitioner — the paper's primary contribution.

The algorithm (§2) in one paragraph: starting from any initial placement,
every iteration each vertex inspects only where its own neighbours live and
greedily wants to be in the partition holding the most of them (preferring
to stay on ties).  Per-iteration migration quotas
``Q_t(i, j) = C_t(j) / (k - 1)`` guarantee capacities are never exceeded
even though decisions are uncoordinated, and a random willingness-to-move
``s`` breaks the symmetric "neighbour chasing" oscillation.  Convergence is
declared after 30 consecutive migration-free iterations.  Because the loop
never stops conceptually, graph mutations simply re-activate the affected
vertices and the partitioning adapts.

Package layout:

* :mod:`heuristic` — migration decision rules (the paper's greedy rule plus
  ablation variants);
* :mod:`capacity` — the quota table enforcing worst-case capacity safety;
* :mod:`balance` — pluggable balance policies: vertex-count (paper),
  edge-count and hot-spot aware (the paper's §6 future work, implemented);
* :mod:`convergence` — the quiet-window convergence detector;
* :mod:`metrics` — per-iteration statistics records and timelines;
* :mod:`runner` — :class:`AdaptiveRunner`, the synchronous-round execution
  engine used by the algorithmic experiments (Figs. 1, 4, 5, 6).

The distributed execution of the same heuristic lives in
:mod:`repro.pregel` (deferred migration, capacity messaging).
"""

from repro.core.balance import (
    BalancePolicy,
    EdgeBalance,
    HotspotBalance,
    VertexBalance,
)
from repro.core.capacity import QuotaTable
from repro.core.convergence import ConvergenceDetector
from repro.core.heuristic import (
    CapacityWeightedGreedy,
    DecisionContext,
    GreedyMaxNeighbours,
    HEURISTICS,
    MigrationHeuristic,
    make_heuristic,
)
from repro.core.incremental import IncrementalMetrics
from repro.core.metrics import IterationStats, Timeline
from repro.core.runner import AdaptiveConfig, AdaptiveRunner, run_to_convergence

__all__ = [
    "AdaptiveConfig",
    "AdaptiveRunner",
    "BalancePolicy",
    "CapacityWeightedGreedy",
    "ConvergenceDetector",
    "DecisionContext",
    "EdgeBalance",
    "GreedyMaxNeighbours",
    "HEURISTICS",
    "HotspotBalance",
    "IncrementalMetrics",
    "IterationStats",
    "MigrationHeuristic",
    "QuotaTable",
    "Timeline",
    "VertexBalance",
    "make_heuristic",
    "run_to_convergence",
]
