"""Balance policies: what "capacity" measures and how big it is.

The paper balances **vertex counts** with capacities at 110 % of the
balanced load (:class:`VertexBalance`).  Its §6 names two extensions as
future work, both implemented here:

* :class:`EdgeBalance` — capacity counted in *edges* (vertex load = degree),
  for algorithms like PageRank whose per-partition cost is ∝ edges;
* :class:`HotspotBalance` — runtime activity statistics shrink the capacity
  of hot partitions so load drains away from them.
"""

import math

__all__ = ["BalancePolicy", "EdgeBalance", "HotspotBalance", "VertexBalance"]


class BalancePolicy:
    """Defines the load of a vertex and the capacity vector of a system.

    ``degree_sensitive`` declares whether :meth:`load_of` depends on the
    vertex's current degree.  The incremental metrics engine consults it:
    degree-insensitive policies need no neighbour-load bookkeeping when the
    graph mutates, so event application stays O(1) per event.
    """

    name = "abstract"
    degree_sensitive = False

    def load_of(self, graph, vertex):
        """Load units this vertex contributes to its partition."""
        raise NotImplementedError

    def capacities(self, graph, num_partitions):
        """Per-partition capacity vector for the current graph."""
        raise NotImplementedError


class VertexBalance(BalancePolicy):
    """The paper's policy: every vertex weighs 1; capacity = slack × |V|/k."""

    name = "vertex"

    def __init__(self, slack=1.10):
        if slack < 1.0:
            raise ValueError("slack below 1.0 cannot hold all vertices")
        self.slack = slack

    def load_of(self, graph, vertex):
        return 1.0

    def capacities(self, graph, num_partitions):
        balanced = graph.num_vertices / num_partitions
        # Epsilon guards against float noise (100 * 1.10 ceiling to 111).
        cap = max(1.0, math.ceil(balanced * self.slack - 1e-9))
        return [cap] * num_partitions


class EdgeBalance(BalancePolicy):
    """Future-work extension: balance edge counts (vertex load = degree).

    A vertex's load is ``max(degree, 1)`` (isolated vertices still occupy a
    slot); capacity is slack × 2|E|/k load units.
    """

    name = "edge"
    degree_sensitive = True

    def __init__(self, slack=1.10):
        if slack < 1.0:
            raise ValueError("slack below 1.0 cannot hold all edges")
        self.slack = slack

    def load_of(self, graph, vertex):
        return float(max(graph.degree(vertex), 1))

    def capacities(self, graph, num_partitions):
        isolated = getattr(graph, "num_isolated", None)
        if isolated is None:  # foreign graph-likes without the tracked count
            isolated = sum(1 for _ in graph.isolated_vertices())
        total_load = 2.0 * graph.num_edges + isolated
        balanced = max(total_load, num_partitions) / num_partitions
        cap = max(1.0, math.ceil(balanced * self.slack - 1e-9))
        return [cap] * num_partitions


class HotspotBalance(BalancePolicy):
    """Future-work extension: shrink the capacity of hot partitions.

    ``activity`` is a per-partition load statistic (e.g. measured superstep
    compute time or message volume).  Capacities are scaled by
    ``mean_activity / activity_i`` clamped to ``[1 - max_shrink, 1]``, so a
    partition running 2× hotter than average offers less room and sheds
    vertices to its peers.  Wraps any base policy (vertex by default).
    """

    name = "hotspot"

    def __init__(self, base=None, max_shrink=0.3):
        if not 0.0 <= max_shrink < 1.0:
            raise ValueError("max_shrink must be in [0, 1)")
        self.base = base or VertexBalance()
        self.max_shrink = max_shrink
        self._activity = None

    @property
    def degree_sensitive(self):
        return self.base.degree_sensitive

    def observe_activity(self, activity):
        """Feed fresh per-partition activity numbers (any positive scale)."""
        activity = list(activity)
        if any(a < 0 for a in activity):
            raise ValueError("activity values must be non-negative")
        self._activity = activity

    def load_of(self, graph, vertex):
        return self.base.load_of(graph, vertex)

    def capacities(self, graph, num_partitions):
        caps = self.base.capacities(graph, num_partitions)
        if self._activity is None or len(self._activity) != num_partitions:
            return caps
        total = sum(self._activity)
        if total <= 0:
            return caps
        mean_activity = total / num_partitions
        scaled = []
        for cap, activity in zip(caps, self._activity):
            if activity <= 0:
                factor = 1.0
            else:
                factor = min(1.0, mean_activity / activity)
            factor = max(factor, 1.0 - self.max_shrink)
            scaled.append(max(1.0, cap * factor))
        return scaled
