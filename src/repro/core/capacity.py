"""Per-iteration migration quotas.

§2.2: capacities can only be enforced worst-case because every vertex
decides independently against the capacities *at the start* of the
iteration.  The free capacity of each destination j is therefore split
equally among all possible sources:

    Q_t(i, j) = C_t(j) / (|P| - 1),   j ≠ i

so even if every source exhausts its quota towards j simultaneously, j
receives at most C_t(j) vertices.  :class:`QuotaTable` freezes the quotas at
iteration start and meters consumption during the round.
"""

__all__ = ["QuotaTable"]


class QuotaTable:
    """Frozen per-(source, destination) migration quotas for one iteration."""

    def __init__(self, remaining_capacity, num_partitions):
        """``remaining_capacity`` is the per-partition free load at iteration
        start (the paper's ``C_t(j)``); negative values clamp to zero."""
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        if num_partitions == 1:
            # Degenerate single-partition case: nowhere to migrate.
            self._per_source = [0.0] * num_partitions
        else:
            self._per_source = [
                max(float(c), 0.0) / (num_partitions - 1)
                for c in remaining_capacity
            ]
        self._consumed = {}

    def quota(self, source, destination):
        """The frozen quota ``Q_t(source, destination)`` in load units."""
        self._check(source, destination)
        return self._per_source[destination]

    def available(self, source, destination):
        """Remaining quota on the (source, destination) lane."""
        self._check(source, destination)
        used = self._consumed.get((source, destination), 0.0)
        return self._per_source[destination] - used

    def try_consume(self, source, destination, load=1.0):
        """Consume ``load`` units of lane quota; False when it would overdraw.

        A migration is admitted only when the *whole* load fits — admitting
        fractions would strand a vertex between partitions.
        """
        self._check(source, destination)
        if load <= 0:
            raise ValueError("load must be positive")
        key = (source, destination)
        used = self._consumed.get(key, 0.0)
        if used + load > self._per_source[destination] + 1e-9:
            return False
        self._consumed[key] = used + load
        return True

    def consumed(self, source, destination):
        """Load already consumed on the lane this iteration."""
        return self._consumed.get((source, destination), 0.0)

    def total_admitted_to(self, destination):
        """Total load admitted towards ``destination`` across all lanes."""
        return sum(
            load
            for (_, dst), load in self._consumed.items()
            if dst == destination
        )

    def _check(self, source, destination):
        for pid in (source, destination):
            if not 0 <= pid < self.num_partitions:
                raise ValueError(f"partition id {pid} out of range")
        if source == destination:
            raise ValueError("no quota lane from a partition to itself")
