"""Convergence detection.

§2.3: "We assumed full convergence when the number of vertex migrations was
zero for more than 30 consecutive iterations."  The detector is a trivial
counter, kept as its own class because both execution engines (the logical
runner and the Pregel background program) share it and the tests pin its
exact off-by-one semantics.
"""

__all__ = ["ConvergenceDetector"]

PAPER_QUIET_WINDOW = 30


class ConvergenceDetector:
    """Declare convergence after ``quiet_window`` migration-free iterations.

    >>> d = ConvergenceDetector(quiet_window=2)
    >>> d.observe(5)
    False
    >>> d.observe(0)
    False
    >>> d.observe(0)
    True
    >>> d.converged
    True
    """

    def __init__(self, quiet_window=PAPER_QUIET_WINDOW):
        if quiet_window < 1:
            raise ValueError("quiet_window must be >= 1")
        self.quiet_window = quiet_window
        self.quiet_iterations = 0
        self.total_iterations = 0

    def observe(self, num_migrations):
        """Record one iteration's migration count; returns ``converged``."""
        if num_migrations < 0:
            raise ValueError("migration count cannot be negative")
        self.total_iterations += 1
        if num_migrations == 0:
            self.quiet_iterations += 1
        else:
            self.quiet_iterations = 0
        return self.converged

    @property
    def converged(self):
        """True once the quiet window has been filled."""
        return self.quiet_iterations >= self.quiet_window

    def reset(self):
        """Restart the quiet window (used when graph mutations arrive)."""
        self.quiet_iterations = 0

    @property
    def convergence_time(self):
        """Iterations until the quiet window *started* (the paper's metric).

        Only meaningful once converged; the trailing quiet window is not
        counted as useful work.
        """
        if not self.converged:
            return None
        return max(0, self.total_iterations - self.quiet_iterations)
