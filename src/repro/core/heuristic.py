"""Migration decision rules.

The paper evaluated "multiple heuristics based on local information" and
chose the simple greedy one (§2.1).  We implement that rule exactly as
:class:`GreedyMaxNeighbours` and keep the interface pluggable so the
ablation benchmark can compare the variants the paper alludes to.

A heuristic sees only what the paper allows a vertex to see: its current
partition, the partition histogram of its own neighbours, and the
partition-level remaining-capacity vector (k numbers, propagated by the
capacity protocol).  It returns the desired destination, or the current
partition to stay.

The decision phase of the distributed simulation evaluates heuristics
*inside shards*, against a frozen :class:`DecisionContext` snapshot of the
global capacity view — exactly the "local state plus global load counters"
the streaming-partitioning line shows is sufficient.  The batched entry
point :meth:`MigrationHeuristic.desired_partitions` is what shards call;
its default simply loops :meth:`~MigrationHeuristic.desired_partition`, so
custom heuristics keep working unchanged.
"""

from dataclasses import dataclass, replace

__all__ = [
    "CapacityWeightedGreedy",
    "DecisionContext",
    "DegreeDiscountedGreedy",
    "GreedyMaxNeighbours",
    "HEURISTICS",
    "MigrationHeuristic",
    "make_heuristic",
]


@dataclass(frozen=True)
class DecisionContext:
    """Frozen global snapshot one decision round evaluates against.

    This is the *entire* non-local state a vertex may consult (§2.1): the
    per-partition remaining-capacity vector published by the capacity
    protocol, the round number, the willingness probability ``s`` and the
    64-bit willingness RNG lane.  It is plain picklable data — the sharded
    execution layer ships one per superstep to every shard, and every shard
    (and the single-process reference path) deciding against the same
    snapshot is what makes the decision phase's outcome independent of
    where it runs.

    ``version`` is the snapshot *epoch*: the superstep whose barrier
    published the ``remaining`` vector this context carries.  Under relaxed
    synchrony (``PregelConfig(snapshot_staleness=k)``) the same snapshot is
    reused for up to ``k`` supersteps — only ``round_index`` advances (it
    keys the willingness and arbitration draws, which must stay
    per-round) — so ``version`` lags ``round_index`` by up to ``k`` until a
    resync barrier refreshes it.  With ``k=0`` the two are always equal.
    """

    round_index: int     # superstep/iteration number, keys willingness draws
    remaining: tuple     # per-partition remaining capacity C_t(i)
    willingness: float   # the paper's s
    lane: int            # WillingnessSource lane (derived from the seed)
    version: int = 0     # snapshot epoch: superstep that published `remaining`

    @property
    def num_partitions(self):
        """Number of partitions the capacity vector covers."""
        return len(self.remaining)

    @property
    def age(self):
        """Rounds this snapshot has aged: ``round_index - version``.

        Zero on a fresh (just-resynced) snapshot; never exceeds the
        configured ``snapshot_staleness``.
        """
        return self.round_index - self.version

    def aged(self, round_index):
        """The same frozen snapshot, re-keyed to a later decision round.

        Everything a vertex *reads* (capacity vector, willingness, lane,
        version) is unchanged; only the round the keyed draws are made for
        advances.  This is the whole stale-snapshot operation: shards keep
        deciding against the epoch-``version`` state while the barrier
        skips the capacity resync.
        """
        return replace(self, round_index=round_index)


class MigrationHeuristic:
    """Interface: pick a desired partition from local information only."""

    name = "abstract"

    #: True when decisions consult the remaining-capacity vector.  The
    #: active-set optimisation then adds a *capacity trigger*: a round whose
    #: capacity snapshot differs from the previous round's re-evaluates
    #: every vertex (any component change can flip a capacity-dependent
    #: comparison), while rounds with an unchanged snapshot keep the cheap
    #: neighbour-of-changed activation.
    uses_capacity = False

    def desired_partition(
        self, current_pid, neighbour_counts, remaining_capacity
    ):
        """Return the partition this vertex wants to be in.

        ``neighbour_counts`` maps partition id → number of neighbours there
        (partitions with zero neighbours are absent); ``remaining_capacity``
        is the per-partition free-capacity list.  Returning ``current_pid``
        means stay.
        """
        raise NotImplementedError

    def desired_partitions(self, context, items):
        """Batched decisions against a :class:`DecisionContext` snapshot.

        ``items`` yields ``(vertex, current_pid, neighbour_counts)``; the
        generator yields ``(vertex, current_pid, desired_pid)`` in the same
        order.  Decisions within a round are order-independent (every one
        sees the same frozen snapshot), which is what lets shards evaluate
        their blocks concurrently.  The default defers to the per-vertex
        rule; vectorised implementations (the shard sweeper) bypass this
        only for the exact paper heuristic.
        """
        remaining = context.remaining
        for vertex, current_pid, neighbour_counts in items:
            yield (
                vertex,
                current_pid,
                self.desired_partition(current_pid, neighbour_counts, remaining),
            )


class GreedyMaxNeighbours(MigrationHeuristic):
    """The paper's rule: go where the most neighbours are; prefer to stay.

    ``cand(v) = argmax_i |P(i) ∩ Γ(v)|``; if the current partition is among
    the candidates the vertex stays (migration has a cost).  Among equal
    non-current candidates the lowest id wins, keeping rounds deterministic
    given the willingness RNG.
    """

    name = "greedy"

    def desired_partition(
        self, current_pid, neighbour_counts, remaining_capacity
    ):
        if not neighbour_counts:
            return current_pid
        best_count = max(neighbour_counts.values())
        if neighbour_counts.get(current_pid, 0) == best_count:
            return current_pid
        candidates = [
            pid for pid, count in neighbour_counts.items() if count == best_count
        ]
        return min(candidates)


class CapacityWeightedGreedy(MigrationHeuristic):
    """Ablation variant: discount candidates by destination fullness.

    Score = neighbours(i) × remaining_capacity(i) / (remaining + here).  This
    trades some cut quality for fewer quota-blocked attempts; the ablation
    bench quantifies the difference.
    """

    name = "capacity-weighted"

    uses_capacity = True

    def desired_partition(
        self, current_pid, neighbour_counts, remaining_capacity
    ):
        if not neighbour_counts:
            return current_pid
        best_pid = current_pid
        best_score = None
        here = neighbour_counts.get(current_pid, 0)
        for pid, count in sorted(neighbour_counts.items()):
            remaining = remaining_capacity[pid]
            if pid != current_pid and remaining <= 0:
                continue
            openness = max(remaining, 0) / (max(remaining, 0) + 1.0)
            score = count * (1.0 if pid == current_pid else openness)
            if best_score is None or score > best_score:
                best_score = score
                best_pid = pid
        if best_pid != current_pid and neighbour_counts.get(best_pid, 0) <= here:
            return current_pid
        return best_pid


class DegreeDiscountedGreedy(MigrationHeuristic):
    """Ablation variant: require a strict majority improvement to move.

    Moves only when the best foreign partition holds strictly more than the
    current one *plus a hysteresis margin* of one neighbour — damping
    oscillation without randomness (compared against willingness-s in the
    ablation bench).
    """

    name = "hysteresis"

    margin = 1

    def desired_partition(
        self, current_pid, neighbour_counts, remaining_capacity
    ):
        if not neighbour_counts:
            return current_pid
        here = neighbour_counts.get(current_pid, 0)
        best_pid = current_pid
        best_count = here
        for pid, count in sorted(neighbour_counts.items()):
            if count > best_count:
                best_count = count
                best_pid = pid
        if best_pid != current_pid and best_count < here + 1 + self.margin:
            return current_pid
        return best_pid


HEURISTICS = {
    "greedy": GreedyMaxNeighbours,
    "capacity-weighted": CapacityWeightedGreedy,
    "hysteresis": DegreeDiscountedGreedy,
}


def make_heuristic(name):
    """Instantiate a heuristic by name.

    >>> make_heuristic("greedy").name
    'greedy'
    """
    try:
        return HEURISTICS[name]()
    except KeyError:
        raise ValueError(
            f"unknown heuristic {name!r}; choose from {sorted(HEURISTICS)}"
        ) from None
