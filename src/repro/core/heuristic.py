"""Migration decision rules.

The paper evaluated "multiple heuristics based on local information" and
chose the simple greedy one (§2.1).  We implement that rule exactly as
:class:`GreedyMaxNeighbours` and keep the interface pluggable so the
ablation benchmark can compare the variants the paper alludes to.

A heuristic sees only what the paper allows a vertex to see: its current
partition, the partition histogram of its own neighbours, and the
partition-level remaining-capacity vector (k numbers, propagated by the
capacity protocol).  It returns the desired destination, or the current
partition to stay.
"""

__all__ = [
    "CapacityWeightedGreedy",
    "DegreeDiscountedGreedy",
    "GreedyMaxNeighbours",
    "HEURISTICS",
    "MigrationHeuristic",
    "make_heuristic",
]


class MigrationHeuristic:
    """Interface: pick a desired partition from local information only."""

    name = "abstract"

    def desired_partition(
        self, current_pid, neighbour_counts, remaining_capacity
    ):
        """Return the partition this vertex wants to be in.

        ``neighbour_counts`` maps partition id → number of neighbours there
        (partitions with zero neighbours are absent); ``remaining_capacity``
        is the per-partition free-capacity list.  Returning ``current_pid``
        means stay.
        """
        raise NotImplementedError


class GreedyMaxNeighbours(MigrationHeuristic):
    """The paper's rule: go where the most neighbours are; prefer to stay.

    ``cand(v) = argmax_i |P(i) ∩ Γ(v)|``; if the current partition is among
    the candidates the vertex stays (migration has a cost).  Among equal
    non-current candidates the lowest id wins, keeping rounds deterministic
    given the willingness RNG.
    """

    name = "greedy"

    def desired_partition(
        self, current_pid, neighbour_counts, remaining_capacity
    ):
        if not neighbour_counts:
            return current_pid
        best_count = max(neighbour_counts.values())
        if neighbour_counts.get(current_pid, 0) == best_count:
            return current_pid
        candidates = [
            pid for pid, count in neighbour_counts.items() if count == best_count
        ]
        return min(candidates)


class CapacityWeightedGreedy(MigrationHeuristic):
    """Ablation variant: discount candidates by destination fullness.

    Score = neighbours(i) × remaining_capacity(i) / (remaining + here).  This
    trades some cut quality for fewer quota-blocked attempts; the ablation
    bench quantifies the difference.
    """

    name = "capacity-weighted"

    def desired_partition(
        self, current_pid, neighbour_counts, remaining_capacity
    ):
        if not neighbour_counts:
            return current_pid
        best_pid = current_pid
        best_score = None
        here = neighbour_counts.get(current_pid, 0)
        for pid, count in sorted(neighbour_counts.items()):
            remaining = remaining_capacity[pid]
            if pid != current_pid and remaining <= 0:
                continue
            openness = max(remaining, 0) / (max(remaining, 0) + 1.0)
            score = count * (1.0 if pid == current_pid else openness)
            if best_score is None or score > best_score:
                best_score = score
                best_pid = pid
        if best_pid != current_pid and neighbour_counts.get(best_pid, 0) <= here:
            return current_pid
        return best_pid


class DegreeDiscountedGreedy(MigrationHeuristic):
    """Ablation variant: require a strict majority improvement to move.

    Moves only when the best foreign partition holds strictly more than the
    current one *plus a hysteresis margin* of one neighbour — damping
    oscillation without randomness (compared against willingness-s in the
    ablation bench).
    """

    name = "hysteresis"

    margin = 1

    def desired_partition(
        self, current_pid, neighbour_counts, remaining_capacity
    ):
        if not neighbour_counts:
            return current_pid
        here = neighbour_counts.get(current_pid, 0)
        best_pid = current_pid
        best_count = here
        for pid, count in sorted(neighbour_counts.items()):
            if count > best_count:
                best_count = count
                best_pid = pid
        if best_pid != current_pid and best_count < here + 1 + self.margin:
            return current_pid
        return best_pid


HEURISTICS = {
    "greedy": GreedyMaxNeighbours,
    "capacity-weighted": CapacityWeightedGreedy,
    "hysteresis": DegreeDiscountedGreedy,
}


def make_heuristic(name):
    """Instantiate a heuristic by name.

    >>> make_heuristic("greedy").name
    'greedy'
    """
    try:
        return HEURISTICS[name]()
    except KeyError:
        raise ValueError(
            f"unknown heuristic {name!r}; choose from {sorted(HEURISTICS)}"
        ) from None
