"""Incremental per-partition metrics maintained as deltas.

:class:`~repro.partitioning.base.PartitionState` already keeps cut edges and
partition sizes exact in O(deg v) per change.  What long churn runs still
paid per round was the per-partition **load** vector (balance-policy units):
both :class:`~repro.core.runner.AdaptiveRunner` and
:class:`~repro.pregel.system.PregelSystem` rebuilt it O(|V|) after every
event batch, so a rolling-window scenario with thousands of rounds spent
most of its time re-summing unchanged loads.

:class:`IncrementalMetrics` owns that vector and maintains it as deltas:

* an admitted **move** shifts the mover's load between partitions — O(1);
* an applied **event** adjusts only the loads the event can change: the
  placed/removed vertex itself and — only for ``degree_sensitive`` balance
  policies such as :class:`~repro.core.balance.EdgeBalance` — the touched
  endpoints/neighbours, O(deg) worst case;
* :meth:`rebuild` is the O(|V|) from-scratch path, and :meth:`cross_check`
  recomputes everything (loads, sizes, cut) and raises on drift — the debug
  mode ``metrics="recompute"`` runs it every round, which is also the
  baseline the scenario benchmark measures the incremental engine against.

Loads under the shipped policies are integer-valued floats (vertex counts or
degrees), so delta maintenance is bit-exact; :meth:`cross_check` still
compares with a relative tolerance to stay correct for user policies with
genuinely fractional loads.
"""

__all__ = ["IncrementalMetrics"]

# Relative tolerance for the cross-check's float comparison.  Exact for the
# integer-valued shipped policies; forgiving of summation-order noise for
# fractional user policies.
_REL_TOL = 1e-9


class IncrementalMetrics:
    """Per-partition load vector, maintained incrementally.

    Bound to a graph, a :class:`PartitionState` and a balance policy.  The
    owner must report every change through the hooks below; ``rebuild()``
    resets from scratch when the owner cannot (initialisation, debug mode).
    """

    def __init__(self, graph, state, balance):
        self.graph = graph
        self.state = state
        self.balance = balance
        # getattr: duck-typed user policies without the flag default to the
        # safe degree-insensitive fast path only when they declare nothing.
        self._degree_sensitive = bool(getattr(balance, "degree_sensitive", False))
        self._loads = None
        self.rebuild()

    @property
    def degree_sensitive(self):
        """Whether the bound balance policy's loads depend on degrees.

        The batched ingestion path consults this: degree-sensitive loads
        need per-event neighbour snapshots, so batching falls back to the
        per-event loop for those policies.
        """
        return self._degree_sensitive

    # ------------------------------------------------------------------
    # Full recompute
    # ------------------------------------------------------------------

    def rebuild(self):
        """From-scratch O(|V|) recompute of the load vector."""
        balance = self.balance
        graph = self.graph
        loads = [0.0] * self.state.num_partitions
        for v, pid in self.state.assignment_items():
            loads[pid] += balance.load_of(graph, v)
        self._loads = loads

    @property
    def loads(self):
        """Copy of the per-partition load vector (balance-policy units)."""
        return list(self._loads)

    def remaining(self, capacities):
        """``C_t(i)`` vector: capacity minus current load, per partition."""
        return [c - l for c, l in zip(capacities, self._loads)]

    # ------------------------------------------------------------------
    # Move hooks
    # ------------------------------------------------------------------

    def on_move(self, vertex, old_pid, new_pid, load=None):
        """One vertex relocated (degree unchanged, so load is portable)."""
        if load is None:
            load = self.balance.load_of(self.graph, vertex)
        self._loads[old_pid] -= load
        self._loads[new_pid] += load

    def on_moves(self, moves):
        """A round's admitted ``(vertex, old_pid, new_pid, load)`` batch."""
        loads = self._loads
        for _, old_pid, new_pid, load in moves:
            loads[old_pid] -= load
            loads[new_pid] += load

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------

    def on_vertex_placed(self, vertex):
        """A new vertex was added to the graph and assigned a partition."""
        pid = self.state.partition_of_or_none(vertex)
        if pid is not None:
            self._loads[pid] += self.balance.load_of(self.graph, vertex)

    def on_vertices_placed(self, placements):
        """Bulk :meth:`on_vertex_placed` for a batch of ``(vertex, pid)``.

        Contract: each pid is the vertex's current assignment in the state
        (the batched ingestion path passes the placements straight from
        ``place_many``).  Per-bucket addition order matches the per-event
        path — placements arrive in first-appearance order either way — so
        even fractional user loads sum bit-identically.
        """
        loads = self._loads
        balance = self.balance
        graph = self.graph
        for vertex, pid in placements:
            loads[pid] += balance.load_of(graph, vertex)

    def apply_edge_flips(self, pid_u, pid_v, signs):
        """Vectorised cut update for a batch of *net* edge flips.

        ``pid_u`` / ``pid_v`` are integer arrays of endpoint partitions
        (−1 = unassigned) for each edge whose presence actually flips
        across the batch; ``signs`` holds +1 per added edge, −1 per
        removed.  Only edges with both endpoints assigned to different
        partitions touch the cut; the summed delta lands on the state in
        one call.  Loads are untouched — callers guarantee a
        degree-insensitive balance policy (the batched path falls back to
        per-event application otherwise).  Returns the applied delta.
        """
        cut = (pid_u >= 0) & (pid_v >= 0) & (pid_u != pid_v)
        delta = int(signs[cut].sum())
        self.state.apply_cut_delta(delta)
        return delta

    def pre_remove_vertex(self, vertex):
        """Call *before* removing ``vertex`` from state and graph.

        Deducts the vertex's own load and snapshots neighbour loads (only
        when the policy is degree-sensitive — removing the vertex lowers
        their degree).  Returns the snapshot for :meth:`post_remove_vertex`.
        """
        pid = self.state.partition_of_or_none(vertex)
        if pid is not None:
            self._loads[pid] -= self.balance.load_of(self.graph, vertex)
        if not self._degree_sensitive:
            return ()
        return self._snapshot(self.graph.neighbors(vertex))

    def post_remove_vertex(self, snapshot):
        """Call after the removal; settles the snapshotted neighbour loads."""
        self._settle(snapshot)

    def pre_edge(self, u, v):
        """Call before adding or removing edge ``{u, v}``.

        Endpoint degrees are about to change; snapshot their loads when the
        policy cares.  Returns the snapshot for :meth:`post_edge`.
        """
        if not self._degree_sensitive:
            return ()
        return self._snapshot((u, v))

    def post_edge(self, snapshot):
        """Call after the edge mutation; settles the snapshotted loads."""
        self._settle(snapshot)

    def _snapshot(self, vertices):
        state = self.state
        balance = self.balance
        graph = self.graph
        snap = []
        for w in vertices:
            pid = state.partition_of_or_none(w)
            if pid is not None:
                snap.append((w, pid, balance.load_of(graph, w)))
        return snap

    def _settle(self, snapshot):
        """Swap each snapshotted load for the vertex's current load."""
        loads = self._loads
        state = self.state
        balance = self.balance
        graph = self.graph
        for w, pid, before in snapshot:
            loads[pid] -= before
            if w in graph:
                current = state.partition_of_or_none(w)
                if current is not None:
                    loads[current] += balance.load_of(graph, w)

    # ------------------------------------------------------------------
    # Debug cross-check
    # ------------------------------------------------------------------

    def cross_check(self):
        """Recompute every maintained metric from scratch; raise on drift.

        Validates the partition state (sizes + cut count against a full
        recount) and compares the incremental load vector against a fresh
        O(|V|) rebuild.  This is the whole body of ``metrics="recompute"``
        mode — per-round full recomputation, kept as a debugging net and as
        the benchmark baseline the incremental engine is measured against.
        """
        self.state.validate()
        incremental = self._loads
        self.rebuild()
        for pid, (got, want) in enumerate(zip(incremental, self._loads)):
            if abs(got - want) > _REL_TOL * max(1.0, abs(got), abs(want)):
                raise AssertionError(
                    f"load drift in partition {pid}: incremental {got!r}, "
                    f"recomputed {want!r}"
                )
        return True
