"""Batched event ingestion: array-at-a-time churn application.

:meth:`AdaptiveRunner.apply_events` historically walked one event at a time
— fifteen-odd Python calls per event — which capped the rolling-window
scenarios far below the paper's "millions of users" scale.  This module is
the bulk path it dispatches to instead (and, since the pregel engine's
:meth:`PregelSystem._apply_pending_events` routes through the same
ingestor, the path barrier mutations take in the distributed simulation
too — host hooks cover the engine-specific bookkeeping: program-value
initialisation for new endpoints, and the coordinator's dirty marks +
placement broadcast): an
:class:`~repro.graph.events.EventBatch` splits the round's events into runs,
vertex events stay per-event (they touch interning, placement and neighbour
bookkeeping), and each run of edge events becomes one vectorised job over
the :class:`~repro.graph.compact.CompactGraph` CSR mirror:

* endpoint ids map to slots through the sweeper's dense id → slot table
  (one gather), new endpoints are interned and hash-placed in bulk;
* events grouped by canonical pair replay as a *toggle chain*: an edge's
  presence after any event equals that event's kind, so per-event change
  flags reduce to ``kind != previous kind`` (seeded with one vectorised
  CSR presence probe per unique pair) — no per-event graph queries;
* only pairs whose presence actually *flips* across the run touch the
  graph (one bulk ``add_edges`` / ``remove_edges`` pass, CSR dirty regions
  marked once) and the cut (one vectorised delta from endpoint-partition
  arrays);
* the endpoints of every changed event re-enter the active set, exactly
  the vertices the per-event path would have re-activated one by one.

**Equivalence is the contract**: assignment, metrics, active set and the
RNG stream come out bit-identical to the per-event loop.  The ingestor
exists only where that is provable — compact graph, numpy present, exact
:class:`~repro.partitioning.hashing.HashPartitioner` placement (per-vertex
pure, so batch placement commutes) and a degree-insensitive balance policy
(edge events then cannot move loads).  Everything else — and any batch the
loop would abort mid-way (unknown event types, self-loop adds) — falls back
to the per-event loop.  The golden timelines (which now exercise this path
on the compact backend), the batch-vs-loop property suite and the
``metrics="recompute"`` cross-check all pin the equivalence.
"""

from itertools import compress as _compress

from repro.partitioning.hashing import HashPartitioner

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional
    _np = None

__all__ = ["BatchIngestor", "make_ingestor"]


def make_ingestor(runner):
    """A :class:`BatchIngestor` when the bulk path applies, else None.

    The gate mirrors :func:`~repro.core.sweep.make_sweeper`'s philosophy:
    engage only where equivalence with the per-event loop is structural.
    Exact-type checks are deliberate — a placement or balance subclass
    could override the behaviours the bulk path relies on.
    """
    if _np is None:
        return None
    if runner.config.batch_events == "off":
        return None
    graph = runner.graph
    if not (hasattr(graph, "ensure_csr") and hasattr(graph, "slot_ids")):
        return None
    if type(runner.config.placement) is not HashPartitioner:
        return None
    if runner.metrics.degree_sensitive:
        return None
    return BatchIngestor(runner)


class BatchIngestor:
    """Applies an :class:`EventBatch` through a runner's bookkeeping stack."""

    def __init__(self, runner):
        self.runner = runner

    def apply(self, batch):
        """Apply every segment in order; returns the changed-event count."""
        tracer = getattr(self.runner, "tracer", None)
        if tracer is not None and tracer.enabled:
            with tracer.span(
                "ingest-batch", segments=len(batch.segments)
            ):
                return self._apply(batch)
        return self._apply(batch)

    def _apply(self, batch):
        runner = self.runner
        changed = 0
        for segment in batch.segments:
            if segment[0] == "loop":
                for event in segment[1]:
                    if runner._apply_one(event):
                        changed += 1
            else:
                _, kinds, us, vs = segment
                changed += self._apply_edge_run(kinds, us, vs)
        return changed

    # ------------------------------------------------------------------
    # id → slot resolution
    # ------------------------------------------------------------------

    @staticmethod
    def _as_int_array(ids):
        """``ids`` as an int64 array, or None when they are not plain ints."""
        try:
            arr = _np.asarray(ids)
        except (ValueError, TypeError, OverflowError):
            return None
        if arr.ndim != 1 or arr.dtype.kind not in "iu":
            return None
        return arr.astype(_np.int64, copy=False)

    def _slots_of(self, ids):
        """Slot array for a list of vertex ids (−1 for absent ids)."""
        sweeper = self.runner._sweeper
        if sweeper is not None:
            arr = self._as_int_array(ids)
            if arr is not None:
                slots = sweeper.lookup_slots(arr)
                if slots is not None:
                    return slots
        index = self.runner.graph.slot_index
        return _np.fromiter(
            (index.get(v, -1) for v in ids), _np.int64, count=len(ids)
        )

    def _intern_new_endpoints(self, kinds_arr, us, vs, su, sv):
        """Create + place endpoints that add events reference for the first
        time, in first-appearance order (u before v, exactly like the loop).

        Remove events never create endpoints; an id they alone mention
        simply stays absent (slot −1) and every event touching it is a
        no-op, as in the per-event path.  Returns refreshed slot arrays.
        """
        runner = self.runner
        missing_u = su < 0
        missing_v = sv < 0
        add_missing = _np.flatnonzero(kinds_arr & (missing_u | missing_v))
        if not len(add_missing):
            return su, sv
        new_ids = []
        seen = set()
        for i in add_missing.tolist():
            if missing_u[i]:
                u = us[i]
                if u not in seen:
                    seen.add(u)
                    new_ids.append(u)
            if missing_v[i]:
                v = vs[i]
                if v not in seen:
                    seen.add(v)
                    new_ids.append(v)
        graph = runner.graph
        graph.add_vertices(new_ids)
        # Placement before any edge lands: each new vertex is placed while
        # isolated, exactly when the per-event path would have placed it.
        placements = runner.config.placement.place_many(runner.state, new_ids)
        runner.metrics.on_vertices_placed(placements)
        if runner._sweeper is not None:
            runner._sweeper.note_assign_many(placements)
        # Host hook: the Pregel hosts initialise program values here (and
        # the sharded coordinator its dirty set + placement broadcast).
        runner._note_bulk_placements(placements)
        return self._slots_of(us), self._slots_of(vs)

    # ------------------------------------------------------------------
    # The edge-run kernel
    # ------------------------------------------------------------------

    def _present0(self, lo, hi):
        """Pre-run edge-presence probe for unique slot pairs.

        Two regimes, picked by what is cheaper *right now*: when the CSR
        mirror is (nearly) clean — typical for cancellation-heavy buffered
        rounds, where few edges ever net-flip — :meth:`ensure_csr` costs
        little and the probe is one fully vectorised gather; when the
        mirror carries lots of dirty slots, repairing it just for a probe
        would drag the sweeper's per-round cost into the ingestion hot
        path, so per-pair adjacency lookups win instead.
        """
        graph = self.runner.graph
        m = len(lo)
        if graph.dirty_slot_count * 4 <= m:
            return self._present0_csr(lo, hi, m)
        ids = graph.slot_ids
        has_edge = graph.has_edge
        return _np.fromiter(
            (
                has_edge(ids[a], ids[b])
                for a, b in zip(lo.tolist(), hi.tolist())
            ),
            _np.bool_,
            count=m,
        )

    def _present0_csr(self, lo, hi, m):
        """Vectorised presence probe: gather each pair's smaller-degree
        endpoint's CSR block and scan it for the other endpoint."""
        graph = self.runner.graph
        starts_a, lens_a, indices_a = graph.ensure_csr()
        starts = _np.frombuffer(starts_a, dtype=_np.int64)
        lens = _np.frombuffer(lens_a, dtype=_np.int64)
        present = _np.zeros(m, dtype=bool)
        swap = lens[hi] < lens[lo]
        probe = _np.where(swap, hi, lo)
        other = _np.where(swap, lo, hi)
        deg = lens[probe]
        total = int(deg.sum())
        if not total:
            return present
        indices = _np.frombuffer(indices_a, dtype=_np.int64)
        cum = _np.zeros(m, dtype=_np.int64)
        _np.cumsum(deg[:-1], out=cum[1:])
        pos = (
            _np.arange(total, dtype=_np.int64)
            - _np.repeat(cum, deg)
            + _np.repeat(starts[probe], deg)
        )
        row = _np.repeat(_np.arange(m, dtype=_np.int64), deg)
        match = indices[pos] == other[row]
        present[row[match]] = True
        return present

    def _apply_edge_run(self, kinds, us, vs):
        """One vectorised pass over a run of edge events; returns changed.

        Events are grouped by canonical pair (stable sort, so a pair's
        events keep their temporal order).  Pairs touched by exactly one
        event — the common case — apply straight through the graph's
        flag-returning bulk mutators: the membership check application does
        anyway *is* the presence probe, so no separate graph query happens.
        Pairs with several events replay as a *toggle chain*: an edge's
        presence after any event equals that event's kind, so per-event
        change flags reduce to ``kind != previous kind`` seeded with one
        presence probe per pair — and only the pairs whose presence
        actually flips across the run touch the graph at all.  An edge
        added and expired inside one buffered round therefore costs one
        probe, not two mutations.
        """
        runner = self.runner
        graph = runner.graph
        n = len(kinds)
        kinds_arr = _np.fromiter(kinds, _np.bool_, count=n)
        su = self._slots_of(us)
        sv = self._slots_of(vs)
        if (kinds_arr & ((su < 0) | (sv < 0))).any():
            su, sv = self._intern_new_endpoints(kinds_arr, us, vs, su, sv)
        valid = (su >= 0) & (sv >= 0)
        if valid.all():
            vidx = None
            lo = _np.minimum(su, sv)
            hi = _np.maximum(su, sv)
            k_v = kinds_arr
        else:
            # Endpoints only remove events mention can be absent for the
            # whole run; every event touching them is a no-op.
            vidx = _np.flatnonzero(valid)
            if not len(vidx):
                return 0
            lo = _np.minimum(su[vidx], sv[vidx])
            hi = _np.maximum(su[vidx], sv[vidx])
            k_v = kinds_arr[vidx]
        key = lo * graph.num_slots + hi
        order = _np.argsort(key, kind="stable")
        key_s = key[order]
        k_s = k_v[order]
        m = len(key_s)
        first = _np.empty(m, dtype=bool)
        first[0] = True
        _np.not_equal(key_s[1:], key_s[:-1], out=first[1:])
        starts = _np.flatnonzero(first)
        gsize = _np.diff(_np.append(starts, m))
        orig = order if vidx is None else vidx[order]

        changed = _np.zeros(n, dtype=bool)
        cut_su = []
        cut_sv = []
        cut_sign = []

        singles = starts[gsize == 1]
        if len(singles):
            spos = orig[singles]  # original event positions, one per pair
            s_changed = self._apply_singles(us, vs, spos, kinds_arr[spos])
            changed[spos] = s_changed
            hit = spos[s_changed]
            if len(hit):
                cut_su.append(su[hit])
                cut_sv.append(sv[hit])
                cut_sign.append(_np.where(kinds_arr[hit], 1, -1))

        multis = _np.flatnonzero(gsize > 1)
        if len(multis):
            self._apply_multis(
                multis, starts, gsize, k_s, lo, hi, order, orig, changed,
                cut_su, cut_sv, cut_sign,
            )

        if cut_su:
            slots_u = _np.concatenate(cut_su)
            slots_v = _np.concatenate(cut_sv)
            signs = _np.concatenate(cut_sign)
            sweeper = runner._sweeper
            if sweeper is not None:
                pid_u = sweeper.assignment_of_slots(slots_u)
                pid_v = sweeper.assignment_of_slots(slots_v)
            else:
                pid_u = self._pids_from_state(slots_u)
                pid_v = self._pids_from_state(slots_v)
            runner.metrics.apply_edge_flips(pid_u, pid_v, signs)

        total_changed = int(changed.sum())
        if total_changed:
            # Re-activate the endpoints of every changed event — exactly
            # the vertices the per-event path activates (edge runs never
            # remove vertices, so membership is the sequential result).
            # When every vertex is already active — the ingest-a-backlog-
            # before-stepping regime — the update cannot change membership
            # and is skipped wholesale (the active set only ever holds live
            # vertices, so length equality is set equality).
            active = runner._active
            if len(active) != graph.num_vertices:
                selectors = changed.tolist()
                active.update(_compress(us, selectors))
                active.update(_compress(vs, selectors))
            # Host hook: the sharded coordinator marks changed endpoints
            # dirty so shard adjacency mirrors stay current.
            runner._note_bulk_edge_changes(us, vs, changed)
        return total_changed

    def _apply_singles(self, us, vs, spos, s_kind):
        """Apply single-event pairs through the flag-returning bulk ops."""
        graph = self.runner.graph
        changed = _np.empty(len(spos), dtype=bool)
        add_pos = spos[s_kind].tolist()
        if add_pos:
            flags = graph.add_edges(
                zip(map(us.__getitem__, add_pos), map(vs.__getitem__, add_pos))
            )
            changed[s_kind] = _np.fromiter(
                flags, _np.bool_, count=len(add_pos)
            )
        stay = ~s_kind
        rem_pos = spos[stay].tolist()
        if rem_pos:
            flags = graph.remove_edges(
                zip(map(us.__getitem__, rem_pos), map(vs.__getitem__, rem_pos))
            )
            changed[stay] = _np.fromiter(flags, _np.bool_, count=len(rem_pos))
        return changed

    def _apply_multis(self, multis, starts, gsize, k_s, lo, hi, order, orig,
                      changed, cut_su, cut_sv, cut_sign):
        """Toggle-chain replay of pairs touched by several events."""
        graph = self.runner.graph
        mstarts = starts[multis]
        msizes = gsize[multis]
        total = int(msizes.sum())
        ends = _np.cumsum(msizes)
        offs = _np.arange(total, dtype=_np.int64) - _np.repeat(
            ends - msizes, msizes
        )
        midx = _np.repeat(mstarts, msizes) + offs  # sorted positions
        mk = k_s[midx]
        mfirst = offs == 0
        pair_lo = lo[order[mstarts]]
        pair_hi = hi[order[mstarts]]
        present0 = self._present0(pair_lo, pair_hi)
        prev = _np.empty(total, dtype=bool)
        prev[1:] = mk[:-1]
        prev[mfirst] = present0
        mchanged = mk != prev
        changed[orig[midx]] = mchanged
        mlast = _np.empty(total, dtype=bool)
        mlast[:-1] = mfirst[1:]
        mlast[-1] = True
        final = mk[mlast]
        flip = final != present0
        if not flip.any():
            return
        f_lo = pair_lo[flip]
        f_hi = pair_hi[flip]
        f_add = final[flip]
        cut_su.append(f_lo)
        cut_sv.append(f_hi)
        cut_sign.append(_np.where(f_add, 1, -1))
        id_of = graph.slot_ids.__getitem__
        if f_add.any():
            graph.add_edges(
                zip(
                    map(id_of, f_lo[f_add].tolist()),
                    map(id_of, f_hi[f_add].tolist()),
                )
            )
        drop = ~f_add
        if drop.any():
            graph.remove_edges(
                zip(
                    map(id_of, f_lo[drop].tolist()),
                    map(id_of, f_hi[drop].tolist()),
                )
            )

    def _pids_from_state(self, slots):
        """Endpoint partitions straight from the state (no sweeper mirror)."""
        ids = self.runner.graph.slot_ids
        get = self.runner.state.partition_of_or_none
        out = _np.empty(len(slots), dtype=_np.int64)
        for i, s in enumerate(slots.tolist()):
            pid = get(ids[s])
            out[i] = -1 if pid is None else pid
        return out
