"""Per-iteration statistics and experiment timelines.

Every experiment in the paper reports some slice of the same quantities per
iteration: migrations executed, cut edges, cut ratio, partition sizes and —
for the system experiments — modelled time.  :class:`IterationStats` is the
immutable per-iteration record; :class:`Timeline` collects them and offers
the summarisations the benchmark harnesses print.
"""

from dataclasses import dataclass, field

__all__ = ["IterationStats", "Timeline"]


@dataclass(frozen=True)
class IterationStats:
    """One iteration's observable state.

    ``wanted_migrations`` counts vertices that *desired* to move this
    iteration (before the willingness draw and quota gate);
    ``blocked_migrations`` counts desires admitted by willingness but denied
    by quota.  ``migrations`` is what actually moved — the quantity driving
    convergence detection and migration overhead.
    """

    iteration: int
    migrations: int
    wanted_migrations: int
    blocked_migrations: int
    cut_edges: int
    cut_ratio: float
    max_partition_size: int
    min_partition_size: int
    imbalance: float
    active_vertices: int = 0
    time_cost: float = 0.0
    extras: dict = field(default_factory=dict, compare=False)


class Timeline:
    """An append-only sequence of :class:`IterationStats` with summaries."""

    def __init__(self):
        self._stats = []

    def append(self, stats):
        self._stats.append(stats)

    def __len__(self):
        return len(self._stats)

    def __iter__(self):
        return iter(self._stats)

    def __getitem__(self, index):
        return self._stats[index]

    @property
    def last(self):
        """Most recent record (None when empty)."""
        return self._stats[-1] if self._stats else None

    def series(self, attribute):
        """Extract one column, e.g. ``timeline.series("cut_ratio")``."""
        return [getattr(s, attribute) for s in self._stats]

    def total_migrations(self):
        """Sum of executed migrations over the whole run."""
        return sum(s.migrations for s in self._stats)

    def final_cut_ratio(self):
        """Cut ratio at the end of the run (None when empty)."""
        return self._stats[-1].cut_ratio if self._stats else None

    def peak(self, attribute):
        """Maximum of a column and the iteration where it occurred.

        Returns ``(value, iteration)`` or ``(None, None)`` when empty.
        """
        if not self._stats:
            return None, None
        best = max(self._stats, key=lambda s: getattr(s, attribute))
        return getattr(best, attribute), best.iteration

    def downsample(self, stride):
        """Every ``stride``-th record (plus the last), for compact printing."""
        if stride < 1:
            raise ValueError("stride must be >= 1")
        sampled = self._stats[::stride]
        if self._stats and (len(self._stats) - 1) % stride != 0:
            sampled.append(self._stats[-1])
        return sampled

    def to_rows(self, attributes):
        """List-of-tuples view for table rendering."""
        return [tuple(getattr(s, a) for a in attributes) for s in self._stats]
