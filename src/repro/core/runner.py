"""Synchronous-round execution of the adaptive heuristic.

:class:`AdaptiveRunner` drives the paper's algorithm the way §2 defines it
logically: at every iteration each vertex decides against the *start-of-
iteration* state (decisions in a round never see each other), willingness
``s`` gates each attempted migration, the quota table meters admissions, and
all admitted moves apply together at the end of the round.

The runner is also the adaptation entry point: :meth:`apply_events` feeds
graph mutations (from any :mod:`repro.graph.stream` source), which
re-activate the affected vertices and reset the convergence window, after
which stepping resumes — the paper's "background algorithm" behaviour
without the distributed machinery (that lives in :mod:`repro.pregel`).
Cut, sizes and per-partition loads are maintained as deltas by
:class:`~repro.core.incremental.IncrementalMetrics`, so long churn runs pay
O(changes) per round, not O(|V|); ``metrics="recompute"`` re-derives
everything from scratch each round as a debug cross-check.

An exact *active-set* optimisation keeps long converged phases cheap: the
paper's greedy rule depends only on a vertex's neighbour locations, so a
vertex that chose to stay cannot change its mind until a neighbour moves or
the graph mutates around it.  Heuristics that consult capacities
(``uses_capacity``) get the same story plus a *capacity trigger*: a round
whose remaining-capacity vector differs from the last evaluated round's
re-evaluates every vertex (any component change can flip a
capacity-weighted comparison — crossing-only triggers would be unsound for
a continuous openness weight), while rounds with an unchanged vector keep
the cheap neighbour-of-changed activation.  Convergence is exactly where
that pays: no migrations and no churn means no capacity movement, so quiet
phases cost O(active) instead of a full sweep per round.

On a :class:`~repro.graph.compact.CompactGraph` with the paper's greedy
heuristic, per-vertex decisions are produced by the vectorised
:class:`~repro.core.sweep.CompactSweeper` instead of per-vertex histogram
dicts; the round semantics (candidate order, RNG stream, tie-breaks, quota
contention) are bit-for-bit identical to the per-vertex path, which the
cross-backend equivalence suite pins.
"""

from dataclasses import dataclass, field

from repro.core.balance import VertexBalance
from repro.core.capacity import QuotaTable
from repro.core.convergence import PAPER_QUIET_WINDOW, ConvergenceDetector
from repro.core.heuristic import GreedyMaxNeighbours, MigrationHeuristic, make_heuristic
from repro.core.incremental import IncrementalMetrics
from repro.core.ingest import make_ingestor
from repro.core.metrics import IterationStats, Timeline
from repro.core.sweep import generic_decisions, make_sweeper, sort_vertices
from repro.graph.events import (
    AddEdge,
    AddVertex,
    EventBatch,
    RemoveEdge,
    RemoveVertex,
)
from repro.partitioning.hashing import HashPartitioner
from repro.utils import make_rng

__all__ = ["AdaptiveConfig", "AdaptiveRunner", "run_to_convergence"]

DEFAULT_WILLINGNESS = 0.5


@dataclass
class AdaptiveConfig:
    """Tunables of the adaptive algorithm.

    ``willingness`` is the paper's ``s`` (migrate with probability s when a
    better partition exists; the paper recommends 0.5); ``quiet_window`` is
    the convergence criterion (30); ``heuristic`` may be a name from
    :data:`repro.core.heuristic.HEURISTICS` or an instance; ``balance``
    is a :class:`~repro.core.balance.BalancePolicy`.

    ``metrics`` selects the bookkeeping mode: ``"incremental"`` (default)
    maintains loads/cut/sizes as deltas per admitted move and applied event;
    ``"recompute"`` additionally recomputes everything from scratch every
    round and raises on drift — the debug cross-check, and the baseline the
    scenario benchmark measures the incremental engine against.  The two
    modes produce bit-identical timelines (property-tested).

    ``batch_events`` controls the bulk ingestion path of
    :meth:`AdaptiveRunner.apply_events`: ``"auto"`` (default) applies event
    batches array-at-a-time where that is provably equivalent to the
    per-event loop (compact graph, numpy, hash placement,
    degree-insensitive balance — see :mod:`repro.core.ingest`); ``"off"``
    forces the per-event loop everywhere, which is also the baseline the
    scale benchmark measures the batch path against.
    """

    willingness: float = DEFAULT_WILLINGNESS
    quiet_window: int = PAPER_QUIET_WINDOW
    seed: int = 0
    heuristic: object = field(default_factory=GreedyMaxNeighbours)
    balance: object = field(default_factory=VertexBalance)
    placement: object = field(default_factory=HashPartitioner)
    track_active: bool = True
    metrics: str = "incremental"
    batch_events: str = "auto"

    def __post_init__(self):
        if not 0.0 <= self.willingness <= 1.0:
            raise ValueError("willingness s must be in [0, 1]")
        if isinstance(self.heuristic, str):
            self.heuristic = make_heuristic(self.heuristic)
        if not isinstance(self.heuristic, MigrationHeuristic):
            raise TypeError("heuristic must be a MigrationHeuristic or name")
        if self.metrics not in ("incremental", "recompute"):
            raise ValueError('metrics must be "incremental" or "recompute"')
        if self.batch_events not in ("auto", "off"):
            raise ValueError('batch_events must be "auto" or "off"')


class AdaptiveRunner:
    """Iterates the adaptive heuristic over a graph + partition state."""

    def __init__(self, graph, state, config=None):
        self.graph = graph
        self.state = state
        self.config = config or AdaptiveConfig()
        self._rng = make_rng(self.config.seed, "adaptive_runner")
        self.detector = ConvergenceDetector(self.config.quiet_window)
        self.timeline = Timeline()
        self.iteration = 0
        self._capacities = None
        self._active = None
        self._last_remaining = None  # capacity trigger (uses_capacity)
        self._sweeper = make_sweeper(graph, state, self.config.heuristic)
        if self._sweeper is not None:
            self._sweeper.warm()  # build the CSR mirror off the hot path
        self.metrics = IncrementalMetrics(graph, state, self.config.balance)
        self._ingestor = make_ingestor(self)
        self._refresh_capacities()
        self._activate_all()

    # ------------------------------------------------------------------
    # Balance bookkeeping
    # ------------------------------------------------------------------

    def _refresh_capacities(self):
        """Recompute capacities from the live graph (O(k) for the shipped
        policies).

        The balance policy is the single source of truth for capacities —
        ``state.capacities`` is kept in sync so no stale vector set by an
        initial partitioner can disagree with the quotas.  Loads are *not*
        recomputed here: :class:`IncrementalMetrics` maintains them as
        deltas per admitted move / applied event.
        """
        self._capacities = list(
            self.config.balance.capacities(self.graph, self.state.num_partitions)
        )
        self.state.capacities = list(self._capacities)

    @property
    def loads(self):
        """Copy of the per-partition load vector (in balance-policy units)."""
        return self.metrics.loads

    @property
    def capacities(self):
        """Copy of the per-partition capacity vector."""
        return list(self._capacities)

    def remaining_capacities(self):
        """``C_t(i)`` vector: capacity minus current load, per partition."""
        return self.metrics.remaining(self._capacities)

    # ------------------------------------------------------------------
    # Active-set maintenance
    # ------------------------------------------------------------------

    def _tracking_active(self):
        return self.config.track_active

    def _needs_full_sweep(self, remaining):
        """True when this round must evaluate every vertex.

        Untracked configurations always sweep fully; a capacity-consulting
        heuristic additionally sweeps fully on any change of the remaining
        vector since the last evaluated round (the capacity trigger).
        """
        if not self._tracking_active():
            return True
        return getattr(self.config.heuristic, "uses_capacity", False) and (
            self._last_remaining != tuple(remaining)
        )

    def _activate_all(self):
        self._active = set(self.graph.vertices())

    def _activate(self, vertex):
        if vertex in self.graph:
            self._active.add(vertex)

    def _activate_neighbourhood(self, vertex):
        self._activate(vertex)
        if vertex in self.graph:
            for w in self.graph.neighbors(vertex):
                self._active.add(w)

    @property
    def active_count(self):
        """Number of vertices that will be evaluated next iteration."""
        return len(self._active)

    def _ordered_active(self):
        """The active set as a canonically ordered list.

        Sorting before the shuffle makes a round's RNG pairing a function of
        the active *membership* rather than set iteration order (which
        depends on hash-table insertion history and would differ between a
        graph and its bridged copy on another backend).
        """
        return sort_vertices(self._active)

    # ------------------------------------------------------------------
    # One iteration
    # ------------------------------------------------------------------

    def step(self):
        """Run one synchronous iteration; returns its :class:`IterationStats`."""
        state = self.state
        config = self.config
        remaining = self.remaining_capacities()
        quotas = QuotaTable(remaining, state.num_partitions)
        candidates = (
            list(self.graph.vertices())
            if self._needs_full_sweep(remaining)
            else self._ordered_active()
        )
        # Random evaluation order so quota contention is unbiased.
        self._rng.shuffle(candidates)

        if self._sweeper is not None:
            decisions = self._sweeper.decisions(candidates, remaining)
        else:
            decisions = generic_decisions(
                state, config.heuristic, candidates, remaining
            )

        admitted_moves = []
        wanted = 0
        blocked = 0
        kept_active = set()
        for v, current, desired in decisions:
            if desired == current:
                continue  # settled: drops out of the active set
            wanted += 1
            kept_active.add(v)  # still unhappy until the move lands
            if self._rng.random() >= config.willingness:
                continue  # willingness coin says wait this iteration
            load = config.balance.load_of(self.graph, v)
            if not quotas.try_consume(current, desired, load):
                blocked += 1
                continue
            admitted_moves.append((v, current, desired, load))

        # Apply all admitted moves together (synchronous semantics: no
        # decision above saw any of these relocations).
        self.metrics.on_moves(admitted_moves)
        if self._sweeper is not None:
            touched = self._sweeper.apply_moves(admitted_moves)
            if self._tracking_active():
                self._active = kept_active
                self._active.update(touched)
        else:
            for v, _, new_pid, __ in admitted_moves:
                state.move(v, new_pid)
            if self._tracking_active():
                self._active = kept_active
                for v, _, __, ___ in admitted_moves:
                    self._activate_neighbourhood(v)

        self.iteration += 1
        self._last_remaining = tuple(remaining)
        sizes = state.sizes
        stats = IterationStats(
            iteration=self.iteration,
            migrations=len(admitted_moves),
            wanted_migrations=wanted,
            blocked_migrations=blocked,
            cut_edges=state.cut_edges,
            cut_ratio=state.cut_ratio(),
            max_partition_size=max(sizes),
            min_partition_size=min(sizes),
            imbalance=state.imbalance(),
            active_vertices=len(candidates),
        )
        self.timeline.append(stats)
        self.detector.observe(stats.migrations)
        if self.config.metrics == "recompute":
            self.metrics.cross_check()
        return stats

    # ------------------------------------------------------------------
    # Convergence loop
    # ------------------------------------------------------------------

    @property
    def converged(self):
        return self.detector.converged

    @property
    def quiet_iterations(self):
        """Consecutive migration-free iterations so far (window fill).

        The scenario engine surfaces this per round so timelines show how
        close the system is to re-convergence after each churn batch.
        """
        return self.detector.quiet_iterations

    @property
    def convergence_time(self):
        """Iterations of useful work before the quiet window (paper metric)."""
        return self.detector.convergence_time

    def run_until_convergence(self, max_iterations=10000):
        """Step until the quiet window fills or ``max_iterations`` elapse.

        Returns the timeline (also kept on the runner).
        """
        while not self.detector.converged and self.iteration < max_iterations:
            self.step()
        return self.timeline

    # ------------------------------------------------------------------
    # Dynamic adaptation
    # ------------------------------------------------------------------

    def apply_events(self, events):
        """Apply graph mutations and re-arm the algorithm around them.

        New vertices are placed by the configured placement strategy (hash
        by default, as in the paper's streaming system); removed vertices
        leave their partition; every touched neighbourhood re-enters the
        active set and the convergence window resets.  Loads, sizes and the
        cut count are maintained as deltas per applied event (O(1) per event
        for degree-insensitive balance policies, O(deg) otherwise) — no full
        recompute happens unless ``metrics="recompute"`` asks for the debug
        cross-check.

        Where the batched path applies (see
        :class:`AdaptiveConfig.batch_events` and :mod:`repro.core.ingest`),
        runs of edge events are applied array-at-a-time with bit-identical
        results; anything the bulk path cannot reproduce exactly falls back
        to the per-event loop below.

        Returns the number of events that changed the graph.
        """
        if not isinstance(events, list):
            events = list(events)
        changed = None
        if self._ingestor is not None and events:
            batch = EventBatch.from_events(events)
            if not batch.unsupported:
                changed = self._ingestor.apply(batch)
        if changed is None:
            changed = 0
            for event in events:
                if self._apply_one(event):
                    changed += 1
        if changed:
            self.detector.reset()
            self._refresh_capacities()
            if self.config.metrics == "recompute":
                self.metrics.cross_check()
        return changed

    def _place_new_vertex(self, vertex):
        """Streaming placement of a just-added vertex, with delta upkeep."""
        state = self.state
        self.config.placement.place(state, vertex)
        self.metrics.on_vertex_placed(vertex)
        if self._sweeper is not None:
            pid = state.partition_of_or_none(vertex)
            if pid is not None:
                self._sweeper.note_assign(vertex, pid)

    def _note_bulk_placements(self, placements):
        """Bulk-ingestion hook: new endpoints interned + placed in bulk.

        The runner's bookkeeping is already handled inside the kernel; the
        Pregel hosts override this to initialise program values (and, in
        the sharded coordinator, dirty marks + the placement broadcast).
        """

    def _note_bulk_edge_changes(self, us, vs, changed):
        """Bulk-ingestion hook: one edge run applied, ``changed`` flags it."""

    def _apply_one(self, event):
        graph = self.graph
        state = self.state
        metrics = self.metrics
        if isinstance(event, AddVertex):
            if event.vertex in graph:
                return False
            graph.add_vertex(event.vertex)
            self._place_new_vertex(event.vertex)
            self._activate(event.vertex)
            return True
        if isinstance(event, RemoveVertex):
            if event.vertex not in graph:
                return False
            neighbours = list(graph.neighbors(event.vertex))
            snapshot = metrics.pre_remove_vertex(event.vertex)
            state.remove_vertex(event.vertex)  # before edges disappear
            if self._sweeper is not None:
                self._sweeper.note_remove(event.vertex)
            graph.remove_vertex(event.vertex)
            metrics.post_remove_vertex(snapshot)
            self._active.discard(event.vertex)
            for w in neighbours:
                self._activate(w)
            return True
        if isinstance(event, AddEdge):
            for endpoint in (event.u, event.v):
                if endpoint not in graph:
                    graph.add_vertex(endpoint)
                    self._place_new_vertex(endpoint)
            if graph.has_edge(event.u, event.v):
                return False
            snapshot = metrics.pre_edge(event.u, event.v)
            graph.add_edge(event.u, event.v)
            state.on_edge_added(event.u, event.v)
            metrics.post_edge(snapshot)
            self._activate(event.u)
            self._activate(event.v)
            return True
        if isinstance(event, RemoveEdge):
            if not graph.has_edge(event.u, event.v):
                return False
            snapshot = metrics.pre_edge(event.u, event.v)
            graph.remove_edge(event.u, event.v)
            state.on_edge_removed(event.u, event.v)
            metrics.post_edge(snapshot)
            self._activate(event.u)
            self._activate(event.v)
            return True
        raise TypeError(f"unknown graph event {event!r}")


def run_to_convergence(graph, state, config=None, max_iterations=10000):
    """One-shot convenience: run the adaptive algorithm to convergence.

    Returns ``(runner, timeline)``; the runner exposes ``convergence_time``
    and the final state remains bound to ``state``.
    """
    runner = AdaptiveRunner(graph, state, config)
    timeline = runner.run_until_convergence(max_iterations=max_iterations)
    return runner, timeline
