"""Array-backed batch evaluation of the greedy migration rule.

The per-vertex hot path of :class:`~repro.core.runner.AdaptiveRunner` (and
the Pregel background partitioner) is: read the vertex's neighbour-partition
histogram, apply the heuristic, then gate the move on willingness and quota.
On the adjacency-set backend that allocates a fresh dict per vertex per
round; :class:`CompactSweeper` replaces it with one vectorised pass over the
:class:`~repro.graph.compact.CompactGraph` CSR mirror:

* the partition assignment is mirrored as one flat integer array indexed by
  vertex slot (resynced from :class:`~repro.partitioning.base.PartitionState`
  only when its version counter says moves happened that the sweeper did not
  witness);
* neighbour-partition counts for *all* candidates accumulate into a single
  ``(candidates × partitions)`` count buffer via one ``bincount`` — no
  per-vertex allocation;
* the paper's greedy rule (argmax neighbours, prefer to stay, lowest id wins
  ties) is evaluated closed-form on the buffer.

Because every decision in a round is taken against start-of-round state,
batching is *semantics-preserving*: decisions are order-independent, and the
order-dependent parts (willingness draws, quota consumption) stay in the
caller's sequential loop, which consumes the RNG stream exactly as the
per-vertex path does.  Timelines are bit-for-bit identical across backends —
the cross-backend equivalence suite pins this.

The sweeper engages only for the exact paper heuristic
(:class:`~repro.core.heuristic.GreedyMaxNeighbours`) on a compact graph with
numpy present; every other combination uses :func:`generic_decisions`, the
portable per-vertex path.

:class:`ShardSweeper` is the same idea scoped to one
:class:`~repro.cluster.shard.Shard`: a local CSR of the shard's resident
adjacency (append-only blocks with garbage compaction, so churn patches
cost O(changed), not O(shard)), a slot-indexed mirror of the *global*
placement (fed by the coordinator's broadcast placement deltas) and one
vectorised greedy pass per decision round, including the keyed willingness
draws.  It is bit-identical to the portable
:func:`~repro.pregel.compute.decide_block` path by the same argument as
above, and the equivalence suite pins it.
"""

from repro.core.heuristic import GreedyMaxNeighbours
from repro.utils.rng import WillingnessSource, vertex_key

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional
    _np = None

__all__ = [
    "BlockTable",
    "CompactSweeper",
    "LocalCsr",
    "ShardSweeper",
    "generic_decisions",
    "make_block_table",
    "make_shard_sweeper",
    "make_sweeper",
    "sort_vertices",
]


def sort_vertices(vertices):
    """Canonically ordered list of vertex ids (mixed-type safe).

    Used to order candidate sets before the willingness shuffle so RNG
    pairing does not depend on set iteration order.
    """
    try:
        return sorted(vertices)
    except TypeError:  # mixed identifier types: order by (type, repr)
        return sorted(vertices, key=lambda v: (type(v).__name__, repr(v)))


def generic_decisions(state, heuristic, candidates, remaining):
    """Yield ``(vertex, current, desired)`` per assigned candidate, in order.

    The portable decision path: works on any backend and any heuristic.
    """
    for v in candidates:
        current = state.partition_of_or_none(v)
        if current is None:
            continue
        counts = state.neighbour_partition_counts(v)
        yield v, current, heuristic.desired_partition(current, counts, remaining)


def make_sweeper(graph, state, heuristic):
    """A :class:`CompactSweeper` when the fast path applies, else None."""
    if CompactSweeper.supports(graph, heuristic):
        return CompactSweeper(graph, state)
    return None


class CompactSweeper:
    """Batch greedy decisions over a compact graph + partition state."""

    @staticmethod
    def supports(graph, heuristic):
        """True when the vectorised path can replace the per-vertex one."""
        return (
            _np is not None
            and hasattr(graph, "ensure_csr")
            # Exact type: a subclass could override the decision rule.
            and type(heuristic) is GreedyMaxNeighbours
        )

    def __init__(self, graph, state):
        self.graph = graph
        self.state = state
        self._assign = None
        self._synced_version = None
        self._id_lookup = None  # dense id -> slot table (int ids only)
        self._id_lookup_version = None
        self._id_lookup_rebuilds = 0  # observability: streaming churn tests
        self._id_lookup_dict_path = False  # sticky "use the dict path" flag
        self._id_lookup_pending = None  # anticipated removal awaiting proof

    # ------------------------------------------------------------------
    # Assignment mirror
    # ------------------------------------------------------------------

    def warm(self):
        """Build the CSR mirror, assignment array and id table eagerly.

        Called at runner construction so neither the first iteration nor
        the first ingested batch pays a one-time build cost; cheap when
        already warm.
        """
        self.graph.ensure_csr()
        if self._stale():
            self._resync()
        self._confirm_pending_removal()
        if self._id_lookup_version != self.graph.intern_version:
            self._rebuild_id_lookup()

    def _resync(self):
        """Rebuild the slot-indexed assignment array from the state."""
        assign = _np.full(self.graph.num_slots, -1, dtype=_np.int64)
        index = self.graph.slot_index
        for v, pid in self.state.assignment_items():
            slot = index.get(v)
            if slot is not None:
                assign[slot] = pid
        self._assign = assign
        self._synced_version = self.state.version

    def note_move(self, vertex, pid):
        """Record a move the caller just applied to the state.

        Fast-forwards the mirror only when this move is the *sole* change
        since the last sync (version advanced by exactly one) and the slot
        is writable; anything else leaves the mirror stale so the next
        batch pass resyncs fully — stamping the current version here would
        mask unwitnessed state changes and silently corrupt cut deltas.
        """
        if self._assign is None:
            return
        state_version = self.state.version
        slot = self.graph.slot_index.get(vertex)
        if (
            slot is not None
            and slot < len(self._assign)
            and self._synced_version == state_version - 1
        ):
            self._assign[slot] = pid
            self._synced_version = state_version

    def note_assign(self, vertex, pid):
        """Record a streaming placement (new vertex) just applied to the state.

        Same contract as :meth:`note_move`: fast-forwards only when this
        assignment is the sole change since the last sync.  The mirror grows
        geometrically when the new vertex's slot lies beyond it, so long
        growth scenarios stay amortised O(1) per arrival instead of paying
        an O(|V|) resync on the next sweep.  The dense id → slot lookup
        table is delta-extended here too (its own contract, keyed on the
        graph's intern version rather than the state's move version).
        """
        self._note_intern_assign(vertex)
        if self._assign is None:
            return
        state_version = self.state.version
        if self._synced_version != state_version - 1:
            return
        slot = self.graph.slot_index.get(vertex)
        if slot is None:
            return
        if slot >= len(self._assign):
            grown = _np.full(
                max(slot + 1, 2 * len(self._assign)), -1, dtype=_np.int64
            )
            grown[: len(self._assign)] = self._assign
            self._assign = grown
        self._assign[slot] = pid
        self._synced_version = state_version

    def note_assign_many(self, placements):
        """Bulk :meth:`note_assign` for a batch of streaming placements.

        Contract: the ``n`` placements are the *only* assignment changes
        since the mirror's last sync (state version advanced by exactly
        ``n``) and the *only* interns since the id-table's last sync — the
        shape the batched ingestion path produces by placing every new
        endpoint through one ``place_many`` call.  Anything else leaves the
        structures stale for the next query's full resync, exactly like the
        single-event hooks.
        """
        n = len(placements)
        if n == 0:
            return
        if n == 1:
            self.note_assign(*placements[0])
            return
        self._note_intern_assign_many(placements)
        if self._assign is None:
            return
        state_version = self.state.version
        if self._synced_version != state_version - n:
            return
        index = self.graph.slot_index
        slots = []
        for vertex, _ in placements:
            slot = index.get(vertex)
            if slot is None:
                return  # contract violation: stay stale, resync on next pass
            slots.append(slot)
        assign = self._assign
        top = max(slots)
        if top >= len(assign):
            grown = _np.full(
                max(top + 1, 2 * len(assign)), -1, dtype=_np.int64
            )
            grown[: len(assign)] = assign
            self._assign = assign = grown
        assign[_np.fromiter(slots, _np.int64, count=n)] = _np.fromiter(
            (pid for _, pid in placements), _np.int64, count=n
        )
        self._synced_version = state_version

    def note_remove(self, vertex):
        """Record a vertex removal from the state.

        Must be called after ``state.remove_vertex`` but *before* the graph
        drops the vertex (the slot lookup still needs it).  Fast-forwards
        under the same sole-change contract as :meth:`note_move`; the dense
        id → slot table retires the vertex's entry in advance of the
        interning bump the caller is about to make.
        """
        self._note_intern_remove(vertex)
        if self._assign is None:
            return
        state_version = self.state.version
        if self._synced_version != state_version - 1:
            return
        slot = self.graph.slot_index.get(vertex)
        if slot is None or slot >= len(self._assign):
            return  # left stale: the next batch pass resyncs fully
        self._assign[slot] = -1
        self._synced_version = state_version

    def _stale(self):
        return (
            self._assign is None
            or self._synced_version != self.state.version
            or len(self._assign) < self.graph.num_slots
        )

    def _rebuild_id_lookup(self):
        """From-scratch O(|V|) build of the dense id → slot table.

        Chooses the dict path (``_id_lookup = None``) when ids are not all
        modest non-negative ints; the cap at 4× the vertex count keeps
        sparse id spaces from exploding memory.  The delta hooks
        (:meth:`_note_intern_assign` / :meth:`_note_intern_remove`) keep
        either decision current under streaming churn, so this runs once —
        ``_id_lookup_rebuilds`` counts it, and the churn regression test
        pins that it stays at one.
        """
        graph = self.graph
        self._id_lookup_rebuilds += 1
        self._id_lookup = None
        self._id_lookup_dict_path = True
        self._id_lookup_pending = None
        self._id_lookup_version = graph.intern_version
        ids = graph.slot_index
        if ids:
            top = -1
            for v in ids:
                if type(v) is not int or v < 0:
                    top = None
                    break
                if v > top:
                    top = v
            if top is not None and top < 4 * len(ids) + 1024:
                lookup = _np.full(top + 1, -1, dtype=_np.int64)
                for v, slot in ids.items():
                    lookup[v] = slot
                self._id_lookup = lookup
                self._id_lookup_dict_path = False
        else:
            self._id_lookup = _np.full(1, -1, dtype=_np.int64)
            self._id_lookup_dict_path = False

    def _note_intern_assign(self, vertex):
        """Delta-extend the id → slot table for a just-interned vertex.

        Same sole-change contract as the assignment mirror, keyed on the
        graph's ``intern_version``: fast-forward only when this interning is
        the only one since the table was last in sync; anything else leaves
        the table stale for the next query's full rebuild.
        """
        graph = self.graph
        version = graph.intern_version
        if self._id_lookup_version != version - 1:
            return
        if self._id_lookup_dict_path:
            self._id_lookup_version = version  # dict path needs no upkeep
            return
        lookup = self._id_lookup
        if lookup is None:
            return  # never built: the first query builds from scratch
        if type(vertex) is not int or vertex < 0:
            # A non-int id ends table eligibility; fall to the dict path.
            self._id_lookup = None
            self._id_lookup_dict_path = True
            self._id_lookup_version = version
            return
        slot = graph.slot_index.get(vertex)
        if slot is None:
            return  # contract violation: stay stale, rebuild on next query
        if vertex >= len(lookup):
            if vertex >= 4 * graph.num_vertices + 1024:
                # Id space went sparse; the dict path is the right regime.
                self._id_lookup = None
                self._id_lookup_dict_path = True
                self._id_lookup_version = version
                return
            grown = _np.full(
                max(vertex + 1, 2 * len(lookup)), -1, dtype=_np.int64
            )
            grown[: len(lookup)] = lookup
            self._id_lookup = lookup = grown
        lookup[vertex] = slot
        self._id_lookup_version = version

    def _note_intern_assign_many(self, placements):
        """Bulk :meth:`_note_intern_assign` under the batch contract.

        Fast-forwards the dense id → slot table only when these ``n``
        interns are the only ones since the table's last sync; a non-int or
        out-of-regime id flips to the dict path just like the single hook.
        """
        graph = self.graph
        version = graph.intern_version
        n = len(placements)
        if self._id_lookup_version != version - n:
            return
        if self._id_lookup_dict_path:
            self._id_lookup_version = version  # dict path needs no upkeep
            return
        lookup = self._id_lookup
        if lookup is None:
            return  # never built: the first query builds from scratch
        index = graph.slot_index
        limit = 4 * graph.num_vertices + 1024
        top = len(lookup) - 1
        slots = []
        for vertex, _ in placements:
            if type(vertex) is not int or vertex < 0 or vertex >= limit:
                # Table regime over (non-int id or sparse id space): the
                # dict path is the right home from here on.
                self._id_lookup = None
                self._id_lookup_dict_path = True
                self._id_lookup_version = version
                return
            slot = index.get(vertex)
            if slot is None:
                return  # contract violation: stay stale, rebuild on query
            slots.append(slot)
            if vertex > top:
                top = vertex
        if top >= len(lookup):
            grown = _np.full(
                max(top + 1, 2 * len(lookup)), -1, dtype=_np.int64
            )
            grown[: len(lookup)] = lookup
            self._id_lookup = lookup = grown
        ids = _np.fromiter((v for v, _ in placements), _np.int64, count=n)
        lookup[ids] = _np.fromiter(slots, _np.int64, count=n)
        self._id_lookup_version = version

    def _note_intern_remove(self, vertex):
        """Delta-retire a vertex's table entry ahead of its un-interning.

        Called (via :meth:`note_remove`) *before* the graph drops the
        vertex, so the anticipated ``intern_version`` bump is credited in
        advance.  The credit is provisional: the vertex is remembered in
        ``_id_lookup_pending``, and the next query refuses to trust the
        table until it confirms the vertex really left the intern index —
        a caller that aborts mid-removal therefore costs one rebuild, never
        a wrong answer.
        """
        version = self.graph.intern_version
        if self._id_lookup_version != version:
            return  # already stale; the next query rebuilds anyway
        if not self._confirm_pending_removal():
            return  # an earlier anticipation never landed: now stale
        if self._id_lookup_dict_path:
            self._id_lookup_version = version + 1
            self._id_lookup_pending = vertex
            return
        lookup = self._id_lookup
        if lookup is None:
            return
        if type(vertex) is int and 0 <= vertex < len(lookup):
            lookup[vertex] = -1
            self._id_lookup_version = version + 1
            self._id_lookup_pending = vertex
        else:  # out-of-table id with a live table: force a rebuild
            self._id_lookup_version = None

    def _confirm_pending_removal(self):
        """Settle an outstanding anticipated removal; False when it failed.

        An anticipated removal may only be trusted once the vertex is
        confirmed gone from the intern index: a caller that aborted after
        ``note_remove`` left the table holding a wrong ``-1`` under a
        "synced" version.  Confirmation runs before every query and before
        accepting a *new* anticipation (never overwrite an unconfirmed
        one — a later coincidental version match must not launder it).
        On failure the table is marked stale, so the cost is one rebuild,
        never a wrong answer.
        """
        vertex = self._id_lookup_pending
        if vertex is None:
            return True
        self._id_lookup_pending = None
        if vertex in self.graph.slot_index:
            self._id_lookup_version = None  # abort detected: force rebuild
            return False
        return True

    def lookup_slots(self, ids):
        """Slot array for an int64 id array; −1 for absent ids.

        Unlike :meth:`_candidate_slots` (whose candidates are always live
        vertices), the batched ingestion path probes ids that may not be
        interned yet, so out-of-table ids resolve to −1 instead of
        faulting.  Returns None when the dense table doesn't apply (non-int
        id space) — callers then fall back to dict lookups.
        """
        self._confirm_pending_removal()
        if self._id_lookup_version != self.graph.intern_version:
            self._rebuild_id_lookup()
        lookup = self._id_lookup
        if lookup is None:
            return None
        if len(ids) and 0 <= int(ids.min()) and int(ids.max()) < len(lookup):
            return lookup[ids]
        inside = (ids >= 0) & (ids < len(lookup))
        slots = _np.full(len(ids), -1, dtype=_np.int64)
        slots[inside] = lookup[ids[inside]]
        return slots

    def assignment_of_slots(self, slots):
        """Partition ids (−1 = unassigned) of a slot array, via the mirror."""
        if self._stale():
            self._resync()
        return self._assign[slots]

    def _candidate_slots(self, candidates):
        """Vectorised id → slot mapping for the candidate list.

        When every vertex id is a modest non-negative int (the common case:
        generators and edge lists produce dense ints) a flat lookup table
        maps the whole candidate array in one gather; otherwise fall back to
        one dict lookup per candidate.  The table is delta-maintained from
        :meth:`note_assign` / :meth:`note_remove`, so interning churn does
        not trigger O(|V|) rebuilds.
        """
        self._confirm_pending_removal()
        if self._id_lookup_version != self.graph.intern_version:
            self._rebuild_id_lookup()
        if self._id_lookup is not None:
            return self._id_lookup[_np.asarray(candidates, dtype=_np.int64)]
        index = self.graph.slot_index
        return _np.fromiter(
            (index[v] for v in candidates), dtype=_np.int64, count=len(candidates)
        )

    # ------------------------------------------------------------------
    # The batch pass
    # ------------------------------------------------------------------

    def _gather_blocks(self, slots):
        """Gather the CSR neighbour blocks of ``slots``, concatenated.

        Returns ``(nbr, row)``: the neighbour slots of every queried slot
        back to back, and the queried-slot index each entry belongs to.
        The mirror's offsets are non-monotonic (dirty-region patching
        relocates blocks), so the gather works from the shared
        explicit-``(start, length)`` helper.
        """
        starts_a, lens_a, indices_a = self.graph.ensure_csr()
        starts = _np.frombuffer(starts_a, dtype=_np.int64)
        lens = _np.frombuffer(lens_a, dtype=_np.int64)
        indices = _np.frombuffer(indices_a, dtype=_np.int64)
        return _gather_explicit(indices, starts[slots], lens[slots])

    def decisions(self, candidates, remaining=None):
        """Yield ``(vertex, current, desired)`` for candidates wanting to move.

        Settled and unassigned candidates are filtered out vectorised — they
        are no-ops in every consumer's sequential phase, so dropping them
        changes neither the RNG stream nor any bookkeeping.  ``remaining``
        is accepted for signature compatibility; the greedy rule ignores
        capacities by construction.
        """
        del remaining
        n = len(candidates)
        if n == 0:
            return iter(())
        if self._stale():
            self._resync()
        assign = self._assign
        slots = self._candidate_slots(candidates)
        cur = assign[slots]
        nbr, row = self._gather_blocks(slots)
        desired, movers = _greedy_movers(
            cur, nbr, row, assign, self.state.num_partitions
        )
        # Only vertices that want to move matter to the caller's sequential
        # phase (settled ones draw no RNG and trigger no bookkeeping), so
        # emit just those — in candidate order, preserving the RNG pairing.
        return self._emit(candidates, cur, desired, movers)

    @staticmethod
    def _emit(candidates, cur, desired, movers):
        for i in movers.tolist():
            yield candidates[i], int(cur[i]), int(desired[i])

    # ------------------------------------------------------------------
    # Batch move application
    # ------------------------------------------------------------------

    def apply_moves(self, moves):
        """Apply a round's admitted ``(v, old, new, load)`` moves in one batch.

        Within a synchronous round the admitted moves commute: the final cut
        count depends only on the final assignment, so instead of walking
        each mover's adjacency per move (``PartitionState.move``), gather
        every mover's neighbour block once from the CSR mirror and compute
        the exact integer cut delta vectorised.  Mover–mover edges appear in
        the gather twice (once per endpoint) with identical indicators, so
        their contribution is halved.

        Returns the ids of the movers and their neighbours — exactly the
        vertices :meth:`AdaptiveRunner._activate_neighbourhood` would have
        re-activated one by one.
        """
        state = self.state
        if not moves:
            return []
        if self._stale():
            self._resync()
        assign = self._assign
        n = len(moves)
        index = self.graph.slot_index
        slots = _np.fromiter((index[m[0]] for m in moves), dtype=_np.int64, count=n)
        old = _np.fromiter((m[1] for m in moves), dtype=_np.int64, count=n)
        new = _np.fromiter((m[2] for m in moves), dtype=_np.int64, count=n)
        nbr, row = self._gather_blocks(slots)
        if len(nbr):
            before_pid = assign[nbr]
            valid = before_pid >= 0  # unassigned neighbours never count
            cut_before = valid & (before_pid != old[row])
            assign[slots] = new
            after_pid = assign[nbr]
            cut_after = valid & (after_pid != new[row])
            diff = cut_after.astype(_np.int64) - cut_before.astype(_np.int64)
            mover_mask = _np.zeros(len(assign), dtype=bool)
            mover_mask[slots] = True
            double_sum = int(diff[mover_mask[nbr]].sum())  # even by symmetry
            cut_delta = int(diff.sum()) - double_sum // 2
            touched = _np.unique(_np.concatenate((slots, nbr)))
        else:
            assign[slots] = new
            cut_delta = 0
            touched = _np.unique(slots)
        state.apply_bulk_moves(((m[0], m[1], m[2]) for m in moves), cut_delta)
        self._synced_version = state.version
        id_of = self.graph.id_of
        return [id_of(s) for s in touched.tolist()]


def make_shard_sweeper(heuristic):
    """A :class:`ShardSweeper` when the vectorised shard path applies.

    Same gate as :func:`make_sweeper`: numpy present and the *exact* paper
    heuristic (a subclass could override the rule).  Every other
    combination decides through the portable
    :func:`~repro.pregel.compute.decide_block`.
    """
    if _np is not None and type(heuristic) is GreedyMaxNeighbours:
        return ShardSweeper()
    return None


def make_block_table():
    """A :class:`BlockTable` when numpy is importable, else None.

    The gate the batched vertex-kernel path shares with every other
    vectorised structure here: no numpy, no table — hosts then rebuild
    block topology per superstep (or run the scalar loop).
    """
    return BlockTable() if _np is not None else None


class LocalCsr:
    """Append-only local CSR of one shard's resident adjacency.

    The storage idiom :class:`ShardSweeper` and :class:`BlockTable` share:
    ids are interned into dense local slots on first sight (residents
    *and* their neighbours); resident adjacency lives as append-only
    ``(start, len)`` blocks in one flat array, compacted when garbage from
    re-admissions and evictions exceeds the live volume — so a quiet shard
    pays O(changed), and an adjacency patch pays O(degree of the patched
    vertices).  Subclasses declare extra slot-indexed arrays via
    ``_SLOT_FIELDS`` (grown in lockstep) and hook interning via
    :meth:`_on_intern`.
    """

    _GROW = 1024
    #: ``(attribute, fill, dtype)`` for every slot-indexed array.
    _SLOT_FIELDS = (("_starts", 0, "int64"), ("_lens", 0, "int64"))

    def __init__(self):
        self._slot = {}
        for name, _fill, dtype in self._SLOT_FIELDS:
            setattr(self, name, _np.empty(0, dtype=dtype))
        self._blocks = _np.empty(0, dtype=_np.int64)
        self._used = 0
        self._garbage = 0

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------

    def _grow_slots(self, needed):
        size = max(needed, 2 * len(self._lens), self._GROW)
        for name, fill, _dtype in self._SLOT_FIELDS:
            old = getattr(self, name)
            grown = _np.full(size, fill, dtype=old.dtype)
            grown[: len(old)] = old
            setattr(self, name, grown)

    def _on_intern(self, slot, vertex):
        """Hook: a new ``vertex`` was just interned into ``slot``."""

    def _intern(self, vertex):
        slot = self._slot.get(vertex)
        if slot is None:
            slot = len(self._slot)
            self._slot[vertex] = slot
            if slot >= len(self._lens):
                self._grow_slots(slot + 1)
            self._on_intern(slot, vertex)
        return slot

    # ------------------------------------------------------------------
    # Membership upkeep (mirrors the shard's dict state)
    # ------------------------------------------------------------------

    def admit(self, vertex, neighbours):
        """Upsert one resident's adjacency block."""
        slot = self._intern(vertex)
        self._garbage += int(self._lens[slot])
        degree = len(neighbours)
        if degree:
            end = self._used + degree
            if end > len(self._blocks):
                grown = _np.empty(
                    max(end, 2 * len(self._blocks), self._GROW),
                    dtype=_np.int64,
                )
                grown[: self._used] = self._blocks[: self._used]
                self._blocks = grown
            block = self._blocks[self._used : end]
            for i, w in enumerate(neighbours):
                block[i] = self._intern(w)
            self._starts[slot] = self._used
            self._used = end
        else:
            self._starts[slot] = 0
        self._lens[slot] = degree
        if self._garbage > max(self._used - self._garbage, self._GROW):
            self._compact()

    def evict(self, vertex):
        """Drop one resident's block (its interned slot remains valid)."""
        slot = self._slot.get(vertex)
        if slot is None:
            return
        self._garbage += int(self._lens[slot])
        self._lens[slot] = 0
        self._starts[slot] = 0

    def _compact(self):
        """Rewrite the block array with only live blocks (garbage drops)."""
        live = _np.flatnonzero(self._lens > 0)
        if not len(live):
            self._used = 0
            self._garbage = 0
            return
        nbr, row = _gather_explicit(
            self._blocks, self._starts[live], self._lens[live]
        )
        del row
        starts = _np.zeros(len(live), dtype=_np.int64)
        _np.cumsum(self._lens[live][:-1], out=starts[1:])
        self._blocks = nbr
        self._starts[live] = starts
        self._used = len(nbr)
        self._garbage = 0


class BlockTable(LocalCsr):
    """A :class:`LocalCsr` that can hand whole blocks to a batched kernel.

    Adds the id table the kernel path needs on the way out (block index →
    vertex id, for decoding reduced outbox targets) and :meth:`gather`,
    which re-indexes a computed row set's adjacency from table slots to
    dense block indices in one vectorised pass.  Fed by
    :meth:`~repro.cluster.shard.Shard.admit` / ``evict`` alongside the
    shard's dict state, so it is exact whenever the shard is.
    """

    def __init__(self):
        super().__init__()
        self._ids = []  # slot -> vertex id (slots are assigned densely)

    def _on_intern(self, slot, vertex):
        """Record the id of a freshly interned slot (slots are dense)."""
        self._ids.append(vertex)

    def gather(self, row_ids):
        """``(degrees, indptr, targets, slot_ids)`` for ``row_ids``.

        ``targets`` holds *block indices*: computed rows keep their
        position in ``row_ids``; every other neighbour gets an index ≥
        ``len(row_ids)`` into ``slot_ids``, which maps block indices back
        to vertex ids (rows first, then the extras).
        """
        slot_of = self._slot
        n = len(row_ids)
        slots = _np.fromiter(
            map(slot_of.__getitem__, row_ids), dtype=_np.int64, count=n
        )
        degrees = self._lens[slots]
        entries, row = _gather_explicit(
            self._blocks, self._starts[slots], degrees
        )
        del row
        indptr = _np.zeros(n + 1, dtype=_np.int64)
        _np.cumsum(degrees, out=indptr[1:])
        block_of = _np.full(len(self._lens), -1, dtype=_np.int64)
        block_of[slots] = _np.arange(n, dtype=_np.int64)
        targets = block_of[entries]
        missing = targets < 0
        slot_ids = list(row_ids)
        if missing.any():
            extra_slots = _np.unique(entries[missing])
            block_of[extra_slots] = n + _np.arange(
                len(extra_slots), dtype=_np.int64
            )
            targets = block_of[entries]
            ids = self._ids
            slot_ids.extend(ids[s] for s in extra_slots.tolist())
        return degrees, indptr, targets, slot_ids


class ShardSweeper(LocalCsr):
    """Vectorised greedy decisions + willingness over one shard's block.

    The shard feeds it the same stream of membership changes it applies to
    its own dict state (:meth:`admit` / :meth:`evict`) plus the
    coordinator's broadcast placement deltas (:meth:`place` /
    :meth:`unplace`); :meth:`decisions` then evaluates a whole candidate
    block in one pass over the inherited :class:`LocalCsr` adjacency.
    """

    _SLOT_FIELDS = (
        ("_keys", 0, "uint64"),
        ("_place", -1, "int64"),
        ("_starts", 0, "int64"),
        ("_lens", 0, "int64"),
    )

    def _on_intern(self, slot, vertex):
        """Key a freshly interned slot for the vectorised willingness draw."""
        self._keys[slot] = vertex_key(vertex)

    # ------------------------------------------------------------------
    # Placement upkeep (mirrors the coordinator's broadcast deltas)
    # ------------------------------------------------------------------

    def place(self, vertex, pid):
        """Mirror one placement (any vertex, resident or not)."""
        slot = self._intern(vertex)  # may grow (and replace) the arrays
        self._place[slot] = pid

    def place_many(self, items):
        """Bulk :meth:`place` — the start-of-run mirror seeding path.

        One interning pass (dict inserts are unavoidable), then the keys
        and placements land as two vectorised stores when every id is a
        plain int — so seeding k mirrors over a large graph costs one
        tight loop per shard instead of per-vertex method dispatch.
        """
        n = len(items)
        if not n:
            return
        slot_of = self._slot
        slots = _np.empty(n, dtype=_np.int64)
        pids = _np.empty(n, dtype=_np.int64)
        non_int = []
        for i, (vertex, pid) in enumerate(items):
            slot = slot_of.get(vertex)
            if slot is None:
                slot = len(slot_of)
                slot_of[vertex] = slot
            slots[i] = slot
            pids[i] = pid
            if type(vertex) is not int:
                non_int.append(i)
        if len(slot_of) > len(self._place):
            self._grow_slots(len(slot_of))
        try:
            ids = _np.fromiter(
                (0 if type(v) is not int else v for v, _ in items),
                dtype=_np.int64,
                count=n,
            )
        except OverflowError:  # ints beyond int64: key per item instead
            non_int = range(n)
            ids = _np.zeros(n, dtype=_np.int64)
        # int64 -> uint64 view is exactly the scalar path's `& 2**64-1`.
        self._keys[slots] = ids.view(_np.uint64)
        for i in non_int:
            self._keys[slots[i]] = vertex_key(items[i][0])
        self._place[slots] = pids

    def unplace(self, vertex):
        """Mirror one removal from the placement."""
        slot = self._slot.get(vertex)
        if slot is not None:
            self._place[slot] = -1

    # ------------------------------------------------------------------
    # The decision pass
    # ------------------------------------------------------------------

    def decisions(self, context, candidates):
        """Vectorised :func:`~repro.pregel.compute.decide_block`.

        Returns the same ``[(vertex, current, desired, willing), ...]``
        proposal list (movers only, candidate order) the portable path
        produces, bit for bit: same greedy rule, same tie-breaks, same
        keyed willingness draws.
        """
        n = len(candidates)
        if n == 0:
            return []
        slot = self._slot
        slots = _np.fromiter(
            (slot[v] for v in candidates), dtype=_np.int64, count=n
        )
        place = self._place
        cur = place[slots]
        nbr, row = _gather_explicit(
            self._blocks, self._starts[slots], self._lens[slots]
        )
        desired, movers = _greedy_movers(
            cur, nbr, row, place, context.num_partitions
        )
        if not len(movers):
            return []
        source = WillingnessSource(context.lane)
        draws = source.draw_keys(context.round_index, self._keys[slots[movers]])
        willing = draws < context.willingness
        return [
            (candidates[i], int(cur[i]), int(desired[i]), bool(w))
            for i, w in zip(movers.tolist(), willing.tolist())
        ]


def _greedy_movers(cur, nbr, row, assignment, k):
    """The vectorised greedy rule over gathered neighbour blocks.

    One shared kernel for both sweepers — this stay/tie-break logic is
    exactly what the byte-identical golden-timeline contract pins, so it
    must never fork.  ``cur`` holds each candidate's partition (−1 =
    unassigned), ``(nbr, row)`` a gather of candidate neighbour slots, and
    ``assignment`` the slot-indexed partition array the gather refers to.
    Returns ``(desired, movers)``: every candidate's desired partition and
    the indices of candidates that want to move.  ``argmax`` returns the
    lowest partition id among ties — exactly the greedy rule's
    deterministic tie-break; unassigned candidates and neighbour-less
    candidates always stay.
    """
    n = len(cur)
    if len(nbr):
        nbr_pid = assignment[nbr]
        assigned = nbr_pid >= 0
        counts = _np.bincount(
            row[assigned] * k + nbr_pid[assigned], minlength=n * k
        ).reshape(n, k)
    else:
        counts = _np.zeros((n, k), dtype=_np.int64)
    best = counts.max(axis=1)
    best_pid = counts.argmax(axis=1)
    here = counts[_np.arange(n), _np.where(cur >= 0, cur, 0)]
    stay = (best == 0) | (here == best)
    desired = _np.where(stay, cur, best_pid)
    movers = _np.flatnonzero((cur >= 0) & (desired != cur))
    return desired, movers


def _gather_explicit(blocks, starts, lens):
    """Gather explicit ``(start, len)`` blocks, concatenated.

    Returns ``(entries, row)`` exactly like
    :meth:`CompactSweeper._gather_blocks`: every queried block's entries
    back to back, plus the query index each entry belongs to.
    """
    total = int(lens.sum())
    if not total:
        empty = _np.empty(0, dtype=_np.int64)
        return empty, empty
    n = len(starts)
    cum = _np.zeros(n, dtype=_np.int64)
    _np.cumsum(lens[:-1], out=cum[1:])
    pos = (
        _np.arange(total, dtype=_np.int64)
        - _np.repeat(cum, lens)
        + _np.repeat(starts, lens)
    )
    row = _np.repeat(_np.arange(n, dtype=_np.int64), lens)
    return blocks[pos], row
