"""The Table-1 dataset catalog.

Every graph named in the paper's Table 1 is buildable from here, at the
published size or scaled down for laptop runs (the real downloads — SNAP,
LAW, Walshaw archive — are replaced by matched-moment synthetic builders;
DESIGN.md §4 records each substitution).
"""

from repro.datasets.catalog import (
    CATALOG,
    DatasetSpec,
    build_dataset,
    dataset_names,
    table1_rows,
)

__all__ = [
    "CATALOG",
    "DatasetSpec",
    "build_dataset",
    "dataset_names",
    "table1_rows",
]
