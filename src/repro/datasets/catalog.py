"""Builders for every dataset in the paper's Table 1.

| Name         | |V|       | |E|        | Type  | Paper source      | Our builder            |
|--------------|-----------|------------|-------|-------------------|------------------------|
| 1e4          | 10 000    | 27 900     | FEM   | synthetic         | 3-D mesh               |
| 64kcube      | 64 000    | 187 200    | FEM   | synthetic         | 3-D mesh (40³)         |
| 1e6          | 1 000 000 | 2 970 000  | FEM   | synthetic         | 3-D mesh               |
| 1e8          | 10⁸       | 2.97 × 10⁸ | FEM   | synthetic         | 3-D mesh               |
| 3elt         | 4 720     | 13 722     | FEM   | Walshaw archive   | triangulated 2-D grid  |
| 4elt         | 15 606    | 45 878     | FEM   | Walshaw archive   | triangulated 2-D grid  |
| plc1000      | 1 000     | 9 879      | pwlaw | synthetic (HK)    | Holme–Kim              |
| plc10000     | 10 000    | 129 774    | pwlaw | synthetic (HK)    | Holme–Kim              |
| plc50000     | 50 000    | 1 249 061  | pwlaw | synthetic (HK)    | Holme–Kim              |
| wikivote     | 7 115     | 103 689    | pwlaw | SNAP wiki-Vote    | pref. attachment       |
| epinion      | 75 879    | 508 837    | pwlaw | SNAP Epinions     | pref. attachment       |
| uk-2007-05-u | 1 000 000 | 41 247 159 | pwlaw | LAW uk-2007-05    | Holme–Kim, high degree |

``build_dataset(name, scale=...)`` scales |V| down while preserving the
family and (roughly) the average degree, so the big entries are runnable on
a laptop.  All power-law builders derive their edges-per-vertex ``m`` from
the *published* edge counts (e.g. plc1000: 9 879 / 1 000 → m = 10).  Note
the paper's text states ``D = log |V|`` for the plc family, but its own
Table 1 edge counts imply larger degrees (log 1 000 ≈ 6.9 vs the listed
average degree 19.8); we follow the published counts, since those are what
Figs. 4–6 were measured on.
"""

import math
from dataclasses import dataclass

from repro.generators.mesh import mesh_with_vertex_count, triangulated_grid_2d
from repro.generators.powerlaw import (
    powerlaw_cluster_graph,
    preferential_attachment_graph,
)

__all__ = [
    "CATALOG",
    "DatasetSpec",
    "build_dataset",
    "dataset_names",
    "table1_rows",
]


@dataclass(frozen=True)
class DatasetSpec:
    """One Table-1 row plus its synthetic builder."""

    name: str
    paper_vertices: int
    paper_edges: int
    family: str  # "FEM" or "pwlaw"
    source: str  # what the paper used
    builder: object  # callable (num_vertices, seed) -> Graph

    def build(self, scale=1.0, seed=0, max_vertices=None):
        """Build the dataset at ``scale`` × the published vertex count."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        n = max(64, int(round(self.paper_vertices * scale)))
        if max_vertices is not None:
            n = min(n, max_vertices)
        return self.builder(n, seed)


def _mesh_builder(num_vertices, seed):
    del seed  # meshes are deterministic
    return mesh_with_vertex_count(num_vertices)


def _triangulated_builder(aspect=1.0):
    # 3elt and 4elt are different airfoil meshes; we differentiate the
    # stand-ins by grid aspect ratio so scaled builds never coincide.
    def build(num_vertices, seed):
        del seed
        side = max(2, round(math.sqrt(num_vertices / aspect)))
        return triangulated_grid_2d(side, max(2, num_vertices // side))

    return build


def _plc_builder(edges_per_vertex):
    # Holme–Kim with m from the published edge counts, triads p = 0.1.
    def build(num_vertices, seed):
        m = max(1, min(num_vertices - 1, edges_per_vertex))
        return powerlaw_cluster_graph(
            num_vertices, m=m, triad_probability=0.1, seed=seed
        )

    return build


def _pwlaw_with_degree(average_degree):
    def build(num_vertices, seed):
        m = max(1, round(average_degree / 2.0))
        return preferential_attachment_graph(num_vertices, m=m, seed=seed)

    return build


def _plc_high_degree(num_vertices, seed):
    # uk-2007-05-u averages ~82 edges/vertex; cap m so small scales work.
    m = max(4, min(num_vertices // 4, 41))
    return powerlaw_cluster_graph(
        num_vertices, m=m, triad_probability=0.1, seed=seed
    )


CATALOG = {
    spec.name: spec
    for spec in [
        DatasetSpec("1e4", 10000, 27900, "FEM", "synthetic", _mesh_builder),
        DatasetSpec("64kcube", 64000, 187200, "FEM", "synthetic", _mesh_builder),
        DatasetSpec("1e6", 10 ** 6, 2970000, "FEM", "synthetic", _mesh_builder),
        DatasetSpec("1e8", 10 ** 8, 297000000, "FEM", "synthetic", _mesh_builder),
        DatasetSpec(
            "3elt", 4720, 13722, "FEM", "Walshaw [34]",
            _triangulated_builder(aspect=1.0),
        ),
        DatasetSpec(
            "4elt", 15606, 45878, "FEM", "Walshaw [34]",
            _triangulated_builder(aspect=2.5),
        ),
        DatasetSpec(
            "plc1000", 1000, 9879, "pwlaw", "synthetic",
            _plc_builder(round(9879 / 1000)),
        ),
        DatasetSpec(
            "plc10000", 10000, 129774, "pwlaw", "synthetic",
            _plc_builder(round(129774 / 10000)),
        ),
        DatasetSpec(
            "plc50000", 50000, 1249061, "pwlaw", "synthetic",
            _plc_builder(round(1249061 / 50000)),
        ),
        DatasetSpec(
            "wikivote",
            7115,
            103689,
            "pwlaw",
            "SNAP wiki-Vote [19]",
            _pwlaw_with_degree(2 * 103689 / 7115),
        ),
        DatasetSpec(
            "epinion",
            75879,
            508837,
            "pwlaw",
            "SNAP Epinions [30]",
            _pwlaw_with_degree(2 * 508837 / 75879),
        ),
        DatasetSpec(
            "uk-2007-05-u",
            10 ** 6,
            41247159,
            "pwlaw",
            "LAW uk-2007-05 [2]",
            _plc_high_degree,
        ),
    ]
}


def dataset_names():
    """Catalog names in Table-1 order."""
    return list(CATALOG)


def build_dataset(name, scale=1.0, seed=0, max_vertices=None):
    """Build a catalog dataset; see :meth:`DatasetSpec.build`.

    >>> g = build_dataset("plc1000", seed=1)
    >>> g.num_vertices
    1000
    """
    try:
        spec = CATALOG[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {dataset_names()}"
        ) from None
    return spec.build(scale=scale, seed=seed, max_vertices=max_vertices)


def table1_rows(scale=1.0, seed=0, max_vertices=20000, skip=("1e6", "1e8", "uk-2007-05-u")):
    """Build every (runnable) dataset and report paper-vs-built statistics.

    Returns rows ``(name, paper_V, paper_E, family, built_V, built_E,
    built_avg_degree)``; the huge entries are skipped by default and can be
    included by passing ``skip=()`` with a small ``scale``.
    """
    rows = []
    for name, spec in CATALOG.items():
        if name in skip:
            rows.append(
                (name, spec.paper_vertices, spec.paper_edges, spec.family,
                 None, None, None)
            )
            continue
        graph = spec.build(scale=scale, seed=seed, max_vertices=max_vertices)
        rows.append(
            (
                name,
                spec.paper_vertices,
                spec.paper_edges,
                spec.family,
                graph.num_vertices,
                graph.num_edges,
                round(graph.average_degree(), 2),
            )
        )
    return rows
