"""Synthetic graph and stream generators.

Everything the paper's evaluation feeds the partitioner is reproducible from
this package:

* :mod:`mesh` — 3-D regular cubic FEM meshes (the cardiac-tissue graphs) and
  2-D grids;
* :mod:`powerlaw` — Holme–Kim power-law-cluster graphs, the paper's synthetic
  "plc" family (average degree ``log |V|``, rewiring/triad probability 0.1);
* :mod:`random_graphs` — Erdős–Rényi and preferential-attachment graphs used
  as stand-ins for the real power-law datasets (wiki-Vote, Epinions);
* :mod:`forest_fire` — the forest-fire expansion model used to grow a graph
  by a burst of new vertices (the Fig. 7(b) load peak);
* :mod:`social` — a diurnal synthetic Twitter mention stream (Fig. 8);
* :mod:`cdr` — a synthetic telco call-detail-record stream with weekly
  add/remove churn (Fig. 9).
"""

from repro.generators.cdr import CdrStreamConfig, generate_cdr_stream
from repro.generators.forest_fire import forest_fire_expansion, forest_fire_graph
from repro.generators.mesh import (
    grid_2d,
    mesh_3d,
    mesh_with_vertex_count,
    triangulated_grid_2d,
)
from repro.generators.powerlaw import (
    paper_average_degree,
    powerlaw_cluster_graph,
    preferential_attachment_graph,
)
from repro.generators.random_graphs import erdos_renyi_graph, ring_lattice
from repro.generators.social import TweetStreamConfig, generate_tweet_stream

__all__ = [
    "CdrStreamConfig",
    "TweetStreamConfig",
    "erdos_renyi_graph",
    "forest_fire_expansion",
    "forest_fire_graph",
    "generate_cdr_stream",
    "generate_tweet_stream",
    "grid_2d",
    "mesh_3d",
    "mesh_with_vertex_count",
    "paper_average_degree",
    "powerlaw_cluster_graph",
    "preferential_attachment_graph",
    "ring_lattice",
    "triangulated_grid_2d",
]
