"""Synthetic telco call-detail-record stream (Fig. 9 substitute).

The paper's third use case streams one month of anonymised mobile calls:
21 M vertices, 132 M reciprocated ties, weekly addition/deletion rates of
8 % / 4 %, with inactive vertices reaped after a week.  We synthesise a
scaled stream preserving the drivers of Fig. 9:

* a **stable social core** (community-structured, reciprocated ties) that
  keeps most of the graph unchanged week over week;
* **weekly churn**: each week adds ~``weekly_add_rate`` new subscribers
  (wired into existing communities) and removes ~``weekly_remove_rate`` of
  the existing ones (their vertices and incident edges leave the graph);
* calls arrive continuously so any batching window sees fresh changes.

The generator emits an :class:`EventStream` of Add/Remove events spanning
``num_weeks`` weeks of simulated time (1 week = 604 800 s).
"""

from dataclasses import dataclass

from repro.graph.events import AddEdge, RemoveVertex
from repro.graph.stream import EventStream
from repro.utils import make_rng

__all__ = ["CdrStreamConfig", "generate_cdr_stream"]

WEEK_SECONDS = 7 * 24 * 3600.0


@dataclass(frozen=True)
class CdrStreamConfig:
    """Knobs for the synthetic CDR stream.

    ``initial_subscribers`` seeds the week-0 graph; ``community_size`` is the
    mean community the generator wires subscribers into; the churn rates
    default to the paper's measured 8 % add / 4 % remove per week.
    """

    initial_subscribers: int = 4000
    num_weeks: int = 4
    community_size: int = 25
    ties_per_subscriber: int = 5
    weekly_add_rate: float = 0.08
    weekly_remove_rate: float = 0.04
    seed: int = 0


def _community_of(subscriber_index, community_size):
    return subscriber_index // community_size


def _wire_subscriber(events_out, rng, subscriber, alive, config, time):
    """Emit reciprocated ties for one subscriber into its community (and a
    few long-range ties), spreading emission times slightly after ``time``."""
    alive_list = alive["list"]
    if not alive_list:
        return
    community = _community_of(alive["index"][subscriber], config.community_size)
    same_community = [
        other
        for other in alive_list
        if other != subscriber
        and _community_of(alive["index"][other], config.community_size)
        == community
    ]
    ties = 0
    attempts = 0
    while ties < config.ties_per_subscriber and attempts < 10 * config.ties_per_subscriber:
        attempts += 1
        if same_community and rng.random() < 0.8:
            target = same_community[rng.randrange(len(same_community))]
        else:
            target = alive_list[rng.randrange(len(alive_list))]
        if target == subscriber:
            continue
        jitter = rng.random() * 3600.0
        events_out.push(time + jitter, AddEdge(subscriber, target))
        ties += 1


def generate_cdr_stream(config=None):
    """Synthesise the month-long CDR event stream.

    Returns ``(stream, weekly_boundaries)`` where ``weekly_boundaries`` is
    the list of week-start times — the batching points Fig. 9 reports on.
    """
    config = config or CdrStreamConfig()
    if config.initial_subscribers < config.community_size:
        raise ValueError("need at least one full community")
    rng = make_rng(config.seed, "cdr_stream")
    stream = EventStream()
    alive = {"list": [], "index": {}, "next_id": 0}

    def new_subscriber():
        sid = f"s{alive['next_id']}"
        alive["index"][sid] = alive["next_id"]
        alive["next_id"] += 1
        alive["list"].append(sid)
        return sid

    # Week 0: seed population, wired at stream start.
    for _ in range(config.initial_subscribers):
        new_subscriber()
    for subscriber in list(alive["list"]):
        _wire_subscriber(stream, rng, subscriber, alive, config, time=0.0)

    boundaries = [0.0]
    for week in range(1, config.num_weeks):
        week_start = week * WEEK_SECONDS
        boundaries.append(week_start)
        population = len(alive["list"])
        removals = int(population * config.weekly_remove_rate)
        additions = int(population * config.weekly_add_rate)
        # Removals: inactive subscribers leave with all their edges.
        for _ in range(removals):
            victim = alive["list"].pop(rng.randrange(len(alive["list"])))
            del alive["index"][victim]
            jitter = rng.random() * WEEK_SECONDS * 0.5
            stream.push(week_start + jitter, RemoveVertex(victim))
        # Additions: new subscribers join and wire into communities.
        for _ in range(additions):
            subscriber = new_subscriber()
            jitter = rng.random() * WEEK_SECONDS * 0.5
            _wire_subscriber(
                stream, rng, subscriber, alive, config, time=week_start + jitter
            )
    return stream, boundaries
