"""Forest-fire growth model (Leskovec et al.).

The paper uses a forest-fire extension "to mimic dynamic changes" in static
graphs: new vertices arrive, pick an ambassador, and "burn" through its
neighbourhood, linking to every burned vertex.  Fig. 7(b) injects a burst of
10 % new vertices / edges this way, all at once (the worst case).

Two entry points:

* :func:`forest_fire_expansion` — grow an *existing* graph by a given number
  of vertices and return the growth as a list of mutation events (so a stream
  can replay it against a live system);
* :func:`forest_fire_graph` — grow a graph from scratch (for tests).
"""

from repro.core.sweep import sort_vertices
from repro.graph import AddEdge, AddVertex, Graph, apply_events
from repro.utils import make_rng

__all__ = ["forest_fire_expansion", "forest_fire_graph"]


def _burn(graph, ambassador, burn_probability, rng, max_burned):
    """Run one forest-fire burn from ``ambassador``; return burned vertex list."""
    burned = {ambassador}
    frontier = [ambassador]
    order = [ambassador]
    while frontier and len(burned) < max_burned:
        current = frontier.pop()
        # Canonical order before the shuffle: raw neighbour-*set* iteration
        # order is not contractually identical across backend bridges, and
        # scenario replay needs the same events on every backend.
        neighbours = sort_vertices(
            w for w in graph.neighbors(current) if w not in burned
        )
        if not neighbours:
            continue
        rng.shuffle(neighbours)
        # Geometric number of links to follow, mean p/(1-p).
        links = 0
        while rng.random() < burn_probability and links < len(neighbours):
            links += 1
        for w in neighbours[:links]:
            if len(burned) >= max_burned:
                break
            burned.add(w)
            frontier.append(w)
            order.append(w)
    return order


def forest_fire_expansion(
    graph,
    num_new_vertices,
    burn_probability=0.35,
    seed=0,
    id_prefix="ff",
    max_burned=64,
):
    """Generate the events that grow ``graph`` by ``num_new_vertices``.

    Each new vertex picks a uniform-random ambassador among the *current*
    vertices (including earlier fire vertices), burns through its
    neighbourhood with per-hop continuation probability ``burn_probability``,
    and links to every burned vertex.  ``max_burned`` caps the burn so a
    single arrival cannot touch the whole graph.

    The input ``graph`` is **not** mutated; the returned event list can be
    applied wherever needed (a copy for offline experiments, or the live
    Pregel mutation channel for Fig. 7(b)).

    Returns ``(events, new_vertex_ids)``.
    """
    if num_new_vertices < 0:
        raise ValueError("num_new_vertices must be >= 0")
    if not 0.0 <= burn_probability < 1.0:
        raise ValueError("burn_probability must be in [0, 1)")
    rng = make_rng(seed, "forest_fire", num_new_vertices)
    working = graph.copy()
    existing = list(working.vertices())
    if not existing and num_new_vertices > 0:
        raise ValueError("cannot expand an empty graph")
    events = []
    new_ids = []
    for index in range(num_new_vertices):
        new_id = f"{id_prefix}:{index}"
        while new_id in working:
            index += num_new_vertices
            new_id = f"{id_prefix}:{index}"
        ambassador = existing[rng.randrange(len(existing))]
        burned = _burn(working, ambassador, burn_probability, rng, max_burned)
        events.append(AddVertex(new_id))
        working.add_vertex(new_id)
        for target in burned:
            events.append(AddEdge(new_id, target))
            working.add_edge(new_id, target)
        existing.append(new_id)
        new_ids.append(new_id)
    return events, new_ids


def forest_fire_graph(num_vertices, burn_probability=0.35, seed=0):
    """Grow a forest-fire graph from a single seed edge."""
    if num_vertices < 2:
        raise ValueError("need at least 2 vertices")
    graph = Graph()
    graph.add_edge("ff:seed0", "ff:seed1")
    events, _ = forest_fire_expansion(
        graph,
        num_vertices - 2,
        burn_probability=burn_probability,
        seed=seed,
    )
    apply_events(graph, events)
    return graph
