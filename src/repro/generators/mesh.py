"""Regular FEM meshes.

The paper's biomedical graphs are 3-D regular cubic meshes "modelling the
electric connections between heart cells" (Ten Tusscher et al. ventricular
tissue model).  A vertex sits at each lattice point of an ``nx × ny × nz``
box and connects to its 6-neighbourhood.  These meshes have near-constant
degree and strong spatial locality — the family the adaptive heuristic
partitions best (Figs. 4–7).
"""

from repro.graph import Graph

__all__ = [
    "grid_2d",
    "mesh_3d",
    "mesh_with_vertex_count",
    "triangulated_grid_2d",
]


def _lattice_id(x, y, z, ny, nz):
    """Dense integer id for lattice point (x, y, z)."""
    return (x * ny + y) * nz + z


def mesh_3d(nx, ny=None, nz=None, graph_cls=Graph):
    """Build a 3-D regular cubic mesh of ``nx * ny * nz`` vertices.

    ``ny``/``nz`` default to ``nx`` (a cube).  Vertices are dense ints in
    row-major order; each connects to the +x, +y and +z lattice neighbour,
    yielding the 6-neighbourhood overall.  ``graph_cls`` selects the graph
    backend (any class from :data:`repro.graph.GRAPH_BACKENDS`).

    >>> g = mesh_3d(2)
    >>> g.num_vertices, g.num_edges
    (8, 12)
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    if min(nx, ny, nz) < 1:
        raise ValueError("mesh dimensions must be >= 1")
    graph = graph_cls()
    for x in range(nx):
        for y in range(ny):
            for z in range(nz):
                v = _lattice_id(x, y, z, ny, nz)
                graph.add_vertex(v)
                if x + 1 < nx:
                    graph.add_edge(v, _lattice_id(x + 1, y, z, ny, nz))
                if y + 1 < ny:
                    graph.add_edge(v, _lattice_id(x, y + 1, z, ny, nz))
                if z + 1 < nz:
                    graph.add_edge(v, _lattice_id(x, y, z + 1, ny, nz))
    return graph


def grid_2d(nx, ny=None, graph_cls=Graph):
    """Build a 2-D grid (``nz = 1`` slice of the cube).

    Used by the smaller FEM stand-ins (3elt/4elt-like graphs are 2-D finite
    element meshes).
    """
    return mesh_3d(nx, ny if ny is not None else nx, 1, graph_cls=graph_cls)


def triangulated_grid_2d(nx, ny=None, graph_cls=Graph):
    """2-D grid with one diagonal per cell (average degree ≈ 6 inside).

    Matches the edge density of the 2-D finite-element meshes 3elt/4elt
    (average degree ≈ 5.8), our stand-in for those Walshaw-archive graphs.
    """
    ny = nx if ny is None else ny
    graph = mesh_3d(nx, ny, 1, graph_cls=graph_cls)
    for x in range(nx - 1):
        for y in range(ny - 1):
            graph.add_edge(
                _lattice_id(x, y, 0, ny, 1),
                _lattice_id(x + 1, y + 1, 0, ny, 1),
            )
    return graph


def mesh_with_vertex_count(target_vertices, graph_cls=Graph):
    """Build the most cubic 3-D mesh with roughly ``target_vertices`` vertices.

    The paper's scalability family (Fig. 6) ranges 1 000 → 300 000 vertices;
    this helper picks ``nx >= ny >= nz`` whose product is as close to the
    target as possible without dropping below ~90 % of it.
    """
    if target_vertices < 1:
        raise ValueError("target_vertices must be >= 1")
    side = max(1, round(target_vertices ** (1.0 / 3.0)))
    best = None
    for nz in range(max(1, side - 2), side + 3):
        for ny in range(nz, side + 4):
            nx = max(ny, round(target_vertices / (ny * nz)))
            count = nx * ny * nz
            score = abs(count - target_vertices)
            if best is None or score < best[0]:
                best = (score, nx, ny, nz)
    _, nx, ny, nz = best
    return mesh_3d(nx, ny, nz, graph_cls=graph_cls)
