"""Power-law graphs: Holme–Kim power-law-cluster and Barabási–Albert.

The paper generates its synthetic power-law graphs "with networkX, using its
power law degree distribution and approximate average clustering [Holme &
Kim 2002]; the intended average degree is D = log(|V|), with rewiring
probability p = 0.1".  We implement the Holme–Kim process from scratch:

* each new vertex attaches ``m`` edges;
* the first attachment of each step is preferential (probability ∝ degree);
* each subsequent attachment is, with probability ``p``, a *triad formation*
  step — connect to a random neighbour of the previously-attached target —
  otherwise another preferential attachment.

Triad formation lifts clustering while preserving the power-law degree tail,
which is what makes these graphs hard to partition (Fig. 5's worst cases).
"""

import math

from repro.graph import Graph
from repro.utils import make_rng

__all__ = [
    "paper_average_degree",
    "powerlaw_cluster_graph",
    "preferential_attachment_graph",
]


def paper_average_degree(num_vertices):
    """The paper's intended average degree D = log(|V|) → edges-per-vertex m.

    The Holme–Kim process adds ``m`` edges per vertex giving average degree
    ~2m, so m = max(1, round(log(|V|) / 2)).
    """
    if num_vertices < 2:
        raise ValueError("need at least 2 vertices")
    return max(1, round(math.log(num_vertices) / 2.0))


def _preferential_pick(repeated_targets, rng, exclude):
    """Pick a vertex ∝ degree from the repeated-endpoint list, avoiding ``exclude``."""
    for _ in range(64):
        candidate = repeated_targets[rng.randrange(len(repeated_targets))]
        if candidate not in exclude:
            return candidate
    # Dense exclusion (tiny graphs): fall back to scanning.
    candidates = [t for t in repeated_targets if t not in exclude]
    if not candidates:
        return None
    return candidates[rng.randrange(len(candidates))]


def powerlaw_cluster_graph(
    num_vertices, m=None, triad_probability=0.1, seed=0, graph_cls=Graph
):
    """Holme–Kim power-law graph with tunable clustering.

    Parameters mirror the paper: ``m`` defaults to the paper's
    ``log(|V|)/2`` rule and ``triad_probability`` to 0.1; ``graph_cls``
    selects the graph backend.

    >>> g = powerlaw_cluster_graph(200, m=2, seed=1)
    >>> g.num_vertices
    200
    >>> g.num_edges <= 2 * 200
    True
    """
    if m is None:
        m = paper_average_degree(num_vertices)
    if m < 1:
        raise ValueError("m must be >= 1")
    if num_vertices <= m:
        raise ValueError(f"need more than m={m} vertices, got {num_vertices}")
    if not 0.0 <= triad_probability <= 1.0:
        raise ValueError("triad_probability must be in [0, 1]")
    rng = make_rng(seed, "powerlaw_cluster", num_vertices, m)
    graph = graph_cls()
    # Seed clique of m+1 vertices gives every early vertex degree >= m.
    repeated_targets = []
    for v in range(m + 1):
        graph.add_vertex(v)
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            graph.add_edge(u, v)
            repeated_targets.extend((u, v))
    for v in range(m + 1, num_vertices):
        graph.add_vertex(v)
        attached = set()
        last_target = None
        for edge_index in range(m):
            target = None
            if (
                edge_index > 0
                and last_target is not None
                and rng.random() < triad_probability
            ):
                # Triad formation: close a triangle through the last target.
                neighbours = [
                    w
                    for w in graph.neighbors(last_target)
                    if w != v and w not in attached
                ]
                if neighbours:
                    target = neighbours[rng.randrange(len(neighbours))]
            if target is None:
                target = _preferential_pick(
                    repeated_targets, rng, exclude=attached | {v}
                )
            if target is None:
                break
            graph.add_edge(v, target)
            attached.add(target)
            repeated_targets.extend((v, target))
            last_target = target
    return graph


def preferential_attachment_graph(num_vertices, m, seed=0, graph_cls=Graph):
    """Pure Barabási–Albert graph (Holme–Kim with no triad formation)."""
    return powerlaw_cluster_graph(
        num_vertices, m=m, triad_probability=0.0, seed=seed, graph_cls=graph_cls
    )
