"""Auxiliary random graph models.

Erdős–Rényi graphs provide a locality-free control for tests (the adaptive
heuristic should barely improve them) and ring lattices provide the most
partitionable extreme (a 1-D mesh).
"""

from repro.graph import Graph
from repro.utils import make_rng

__all__ = ["erdos_renyi_graph", "ring_lattice"]


def erdos_renyi_graph(
    num_vertices, edge_probability=None, num_edges=None, seed=0, graph_cls=Graph
):
    """G(n, p) or G(n, m) random graph.

    Exactly one of ``edge_probability`` / ``num_edges`` must be given.  The
    G(n, m) form draws distinct edges by rejection sampling, which is fast at
    the sparse densities used in the experiments.
    """
    if (edge_probability is None) == (num_edges is None):
        raise ValueError("give exactly one of edge_probability / num_edges")
    if num_vertices < 1:
        raise ValueError("num_vertices must be >= 1")
    rng = make_rng(seed, "erdos_renyi", num_vertices)
    graph = graph_cls(vertices=range(num_vertices))
    if edge_probability is not None:
        if not 0.0 <= edge_probability <= 1.0:
            raise ValueError("edge_probability must be in [0, 1]")
        for u in range(num_vertices):
            for v in range(u + 1, num_vertices):
                if rng.random() < edge_probability:
                    graph.add_edge(u, v)
        return graph
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise ValueError(f"num_edges {num_edges} exceeds maximum {max_edges}")
    while graph.num_edges < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u != v:
            graph.add_edge(u, v)
    return graph


def ring_lattice(num_vertices, neighbours_each_side=1, graph_cls=Graph):
    """Ring lattice: vertex i connects to its k nearest ids on each side."""
    if num_vertices < 3:
        raise ValueError("ring needs at least 3 vertices")
    k = neighbours_each_side
    if k < 1 or 2 * k >= num_vertices:
        raise ValueError("neighbours_each_side out of range")
    graph = graph_cls(vertices=range(num_vertices))
    for v in range(num_vertices):
        for offset in range(1, k + 1):
            graph.add_edge(v, (v + offset) % num_vertices)
    return graph
