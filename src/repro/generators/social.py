"""Synthetic Twitter mention stream (Fig. 8 substitute).

The paper captured one day of London tweets from the Twitter Streaming API
and built a mention graph processed continuously with TunkRank.  We cannot
ship that data, so this module synthesises a stream with the properties that
drive Fig. 8:

* **diurnal rate** — tweets-per-second follows a day-shaped curve (quiet
  early morning, evening peak) with multiplicative noise and optional bursts;
* **power-law popularity** — mention targets are drawn Zipf-like, so the
  mention graph grows a heavy-tailed degree distribution like real Twitter;
* **community structure** — users belong to home communities (the
  geographic/social clusters of a metro-area feed) and most mentions stay
  inside them; a further fraction reply to a recent interlocutor.  This is
  the locality the adaptive partitioner exploits — without it the mention
  graph degenerates to a near-random graph no partitioner can improve.

The output is an :class:`~repro.graph.stream.EventStream` of ``AddEdge``
events (user u mentioned user v), one day long by default.
"""

import math
from dataclasses import dataclass

from repro.graph.events import AddEdge
from repro.graph.stream import EventStream
from repro.utils import make_rng

__all__ = ["TweetStreamConfig", "generate_tweet_stream"]

_DAY_SECONDS = 24 * 3600.0


@dataclass(frozen=True)
class TweetStreamConfig:
    """Knobs for the synthetic tweet stream.

    ``mean_rate`` is the day-average tweets/second (the paper's London feed
    hovers around 20–40/s); ``num_users`` bounds the id space;
    ``zipf_exponent`` shapes target popularity; ``community_size`` and
    ``community_bias`` control home-community structure (a mention stays in
    the author's community with probability ``community_bias``);
    ``reply_locality`` is the probability a mention goes back to a recent
    contact; ``burst_at``/``burst_magnitude`` optionally inject a rate
    spike (trending topic).
    """

    duration: float = _DAY_SECONDS
    mean_rate: float = 25.0
    num_users: int = 20000
    zipf_exponent: float = 1.1
    community_size: int = 40
    community_bias: float = 0.6
    reply_locality: float = 0.2
    burst_at: float = None
    burst_magnitude: float = 3.0
    seed: int = 0


def _diurnal_factor(t, duration):
    """Day-shaped rate multiplier in [0.3, 1.7]: trough ~5 am, peak ~8 pm."""
    phase = 2.0 * math.pi * (t / duration)
    # Shifted sinusoid: minimum around 5/24 of the day, maximum ~12h later.
    return 1.0 + 0.7 * math.sin(phase - 2.0 * math.pi * (5.0 / 24.0 + 0.25))


def _zipf_sampler(num_items, exponent, rng):
    """Return a callable sampling 0..num_items-1 with P(i) ∝ (i+1)^-exponent."""
    weights = [(i + 1) ** -exponent for i in range(num_items)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)

    def sample():
        target = rng.random()
        lo, hi = 0, num_items - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < target:
                lo = mid + 1
            else:
                hi = mid
        return lo

    return sample


def generate_tweet_stream(config=None):
    """Synthesise a mention-edge stream according to ``config``.

    Returns an :class:`EventStream` whose events are ``AddEdge(u, v)`` with
    user ids ``"u<k>"``.  Tweets that mention nobody produce no event, so the
    configured rate is the *mention* rate.
    """
    config = config or TweetStreamConfig()
    if config.duration <= 0 or config.mean_rate <= 0:
        raise ValueError("duration and mean_rate must be positive")
    rng = make_rng(config.seed, "tweet_stream")
    sample_author = _zipf_sampler(config.num_users, config.zipf_exponent, rng)
    sample_target = _zipf_sampler(config.num_users, config.zipf_exponent, rng)
    recent_contacts = {}
    stream = EventStream()
    t = 0.0
    while t < config.duration:
        rate = config.mean_rate * _diurnal_factor(t, config.duration)
        if config.burst_at is not None:
            # One-hour Gaussian burst around burst_at.
            distance = (t - config.burst_at) / 1800.0
            rate *= 1.0 + (config.burst_magnitude - 1.0) * math.exp(
                -distance * distance
            )
        # Exponential inter-arrival at the current instantaneous rate.
        t += rng.expovariate(rate)
        if t >= config.duration:
            break
        author = sample_author()
        contacts = recent_contacts.get(author)
        draw = rng.random()
        if contacts and draw < config.reply_locality:
            target = contacts[rng.randrange(len(contacts))]
        elif draw < config.reply_locality + config.community_bias:
            # Stay inside the author's home community.
            community = author // config.community_size
            base = community * config.community_size
            span = min(config.community_size, config.num_users - base)
            target = base + rng.randrange(span)
            if target == author:
                target = base + (target - base + 1) % span
        else:
            target = sample_target()
            if target == author:
                target = (target + 1) % config.num_users
        if target == author:
            continue  # degenerate single-user community
        stream.push(t, AddEdge(f"u{author}", f"u{target}"))
        recent_contacts.setdefault(author, []).append(target)
        if len(recent_contacts[author]) > 8:
            recent_contacts[author].pop(0)
        # Mentions are conversational: remember the reverse direction too.
        recent_contacts.setdefault(target, []).append(author)
        if len(recent_contacts[target]) > 8:
            recent_contacts[target].pop(0)
    return stream
