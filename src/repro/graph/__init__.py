"""Dynamic graph substrate.

The paper's system ingests graphs that mutate continuously — vertices and
edges are injected and removed from a stream while computation runs.  This
package provides:

* :class:`repro.graph.graph.Graph` — an adjacency-set dynamic graph with O(1)
  amortised mutation, the in-memory representation used by every other layer;
* :class:`repro.graph.compact.CompactGraph` — the integer-interned backend
  with a CSR-style adjacency mirror, feeding the batch sweep kernels; the
  :mod:`repro.graph.backend` registry and bridges select between the two;
* :mod:`repro.graph.events` — the vocabulary of mutation events
  (add/remove vertex/edge) with inverse computation for undo tests;
* :mod:`repro.graph.stream` — timestamped event streams, batching windows and
  replay helpers that feed the Pregel system's mutation channel.
"""

from repro.graph.events import (
    AddEdge,
    AddVertex,
    EventKind,
    GraphEvent,
    RemoveEdge,
    RemoveVertex,
    apply_event,
    apply_events,
    invert_event,
)
from repro.graph.backend import (
    GRAPH_BACKENDS,
    graph_backend,
    make_graph,
    to_backend,
)
from repro.graph.compact import CompactGraph, as_adjacency, as_compact
from repro.graph.graph import Graph
from repro.graph.stream import EventStream, TimedEvent, batch_by_count, batch_by_time

__all__ = [
    "AddEdge",
    "AddVertex",
    "CompactGraph",
    "EventKind",
    "EventStream",
    "GRAPH_BACKENDS",
    "Graph",
    "GraphEvent",
    "RemoveEdge",
    "RemoveVertex",
    "TimedEvent",
    "apply_event",
    "apply_events",
    "as_adjacency",
    "as_compact",
    "batch_by_count",
    "batch_by_time",
    "graph_backend",
    "invert_event",
    "make_graph",
    "to_backend",
]
