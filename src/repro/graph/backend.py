"""The graph-backend protocol and registry.

Every layer of the library — generators, initial partitioners, the adaptive
runner, the Pregel system, I/O — programs against the same duck-typed
substrate rather than a concrete class.  A *graph backend* is any object
providing the mutation/query surface of :class:`repro.graph.graph.Graph`:

========================  ====================================================
method / property          contract
========================  ====================================================
``add_vertex(v)``          insert an isolated vertex; True when new
``remove_vertex(v)``       drop a vertex and incident edges; True when present
``add_edge(u, v)``         insert an undirected edge; True when new
``remove_edge(u, v)``      drop an edge; True when removed
``neighbors(v)``           live neighbour collection (iterable, sized, ``in``)
``vertices()``             iterate ids in insertion order
``edges()``                iterate each undirected edge once
``degree(v)``              neighbour count
``has_edge(u, v)`` /       membership queries
``__contains__`` /
``__len__`` / ``__iter__``
``num_vertices`` /         live counts
``num_edges``
``copy()`` /               derived graphs of the same backend
``subgraph(vs)``
``validate()``             invariant check for tests
========================  ====================================================

Two backends ship today: ``"adjacency"`` (dict-of-sets, the seed substrate)
and ``"compact"`` (integer-interned with a CSR-style mirror, the batch-sweep
fast path).  ``CompactGraph`` subclasses ``Graph``, so ``isinstance(g,
Graph)`` accepts either; code needing the array surface should feature-test
``hasattr(g, "ensure_csr")`` or bridge explicitly via :func:`as_compact`.

>>> make_graph("compact", edges=[(1, 2)]).num_edges
1
>>> sorted(GRAPH_BACKENDS)
['adjacency', 'compact']
"""

from repro.graph.compact import CompactGraph, as_adjacency, as_compact
from repro.graph.graph import Graph

__all__ = ["GRAPH_BACKENDS", "graph_backend", "make_graph", "to_backend"]

GRAPH_BACKENDS = {
    "adjacency": Graph,
    "compact": CompactGraph,
}

_BRIDGES = {
    "adjacency": as_adjacency,
    "compact": as_compact,
}


def graph_backend(name):
    """The backend class registered under ``name`` (ValueError if unknown)."""
    try:
        return GRAPH_BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown graph backend {name!r}; choose from {sorted(GRAPH_BACKENDS)}"
        ) from None


def make_graph(backend="adjacency", edges=None, vertices=None):
    """Construct an empty (or edge-seeded) graph on the named backend."""
    return graph_backend(backend)(edges=edges, vertices=vertices)


def to_backend(graph, backend):
    """Bridge an existing graph onto the named backend (no-op when already)."""
    graph_backend(backend)  # validate the name
    return _BRIDGES[backend](graph)
