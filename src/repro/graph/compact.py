"""Integer-interned graph backend with a CSR-style adjacency mirror.

:class:`CompactGraph` is the array-backed substrate for the batch sweep in
:mod:`repro.core.sweep`.  It extends :class:`~repro.graph.graph.Graph` (the
adjacency-set backend stays the mutation authority, so every behaviour the
rest of the library observes — iteration orders, neighbour sets, mutation
semantics — is *identical* to the dense backend) and adds:

* **Interning** — every vertex identifier is assigned a dense integer *slot*
  on first insertion; slots are recycled through a free list when vertices
  are removed.  All flat-array structures are indexed by slot.
* **CSR-style mirror** — a flat neighbour array plus per-slot ``(start,
  length, capacity)`` offsets.  The mirror is *not* rebuilt per mutation:
  mutations are O(1) (they go through the adjacency sets and only mark the
  touched slots dirty) and :meth:`ensure_csr` repairs just the dirty regions
  — in place when the new neighbourhood fits the slot's reserved capacity,
  by relocating the slot's block to the array tail (with geometric headroom)
  when it does not.  A full rebuild happens only when accumulated garbage
  from relocations exceeds half the array, keeping streaming mutation
  amortised O(1).

The mirror's offsets intentionally do **not** form a monotonic ``indptr``:
batch kernels gather with explicit ``(start, length)`` pairs, which is what
makes in-place dirty-region patching possible at all.

>>> g = CompactGraph([(1, 2), (2, 3)])
>>> sorted(g.neighbors(2))
[1, 3]
>>> g.slot_of(1), g.slot_of(3)
(0, 2)
>>> starts, lens, indices = g.ensure_csr()
>>> list(indices[starts[1]:starts[1] + lens[1]])  # slot 1 is vertex 2
[0, 2]
"""

from array import array

from repro.graph.graph import Graph

__all__ = ["CompactGraph", "as_adjacency", "as_compact"]

# Extra per-slot capacity reserved at (re)build so later edge insertions
# usually patch in place instead of relocating the block.
_HEADROOM_SHIFT = 1  # reserve deg + deg/2 + _HEADROOM_MIN slots
_HEADROOM_MIN = 2


def _headroom(degree):
    return degree + (degree >> _HEADROOM_SHIFT) + _HEADROOM_MIN


class CompactGraph(Graph):
    """A :class:`Graph` whose vertices are interned to dense integer slots.

    Drop-in compatible with :class:`Graph` everywhere (it *is* one); the
    extra surface — ``slot_of`` / ``id_of`` / ``ensure_csr`` — is what the
    array kernels consume.
    """

    __slots__ = (
        "_index",
        "_slot_ids",
        "_free_slots",
        "_dirty",
        "_csr_start",
        "_csr_len",
        "_csr_cap",
        "_csr_indices",
        "_csr_garbage",
        "_csr_built",
        "_intern_version",
    )

    def __init__(self, edges=None, vertices=None):
        self._index = {}
        self._slot_ids = []
        self._free_slots = []
        self._intern_version = 0
        self._dirty = set()
        self._csr_start = array("q")
        self._csr_len = array("q")
        self._csr_cap = []
        self._csr_indices = array("q")
        self._csr_garbage = 0
        self._csr_built = False
        super().__init__(edges=edges, vertices=vertices)

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------

    @property
    def num_slots(self):
        """Size of the slot space (live vertices plus recycled holes)."""
        return len(self._slot_ids)

    @property
    def slot_index(self):
        """The id → slot mapping (read-only by convention)."""
        return self._index

    @property
    def slot_ids(self):
        """The slot → id table (read-only by convention; None = hole).

        Batch kernels index this list directly instead of calling
        :meth:`id_of` per slot.
        """
        return self._slot_ids

    @property
    def dirty_slot_count(self):
        """Number of slots awaiting a CSR dirty-region repair.

        Batch kernels consult this to decide whether a vectorised CSR probe
        (which would first pay :meth:`ensure_csr`'s repair of exactly these
        slots) beats per-pair adjacency lookups.
        """
        return len(self._dirty) if self._csr_built else self.num_slots

    @property
    def intern_version(self):
        """Monotonic counter bumped when the id ↔ slot mapping changes.

        Kernels caching derived views of the mapping (the sweeper's dense
        id → slot lookup table) invalidate against it.
        """
        return self._intern_version

    def slot_of(self, v):
        """Dense integer slot of ``v`` (KeyError when absent)."""
        return self._index[v]

    def id_of(self, slot):
        """Vertex identifier at ``slot`` (None for a recycled hole)."""
        return self._slot_ids[slot]

    # ------------------------------------------------------------------
    # Mutation (adjacency authority lives in Graph; we intern + mark dirty)
    # ------------------------------------------------------------------

    def add_vertex(self, v):
        if not super().add_vertex(v):
            return False
        if self._free_slots:
            slot = self._free_slots.pop()
            self._slot_ids[slot] = v
        else:
            slot = len(self._slot_ids)
            self._slot_ids.append(v)
        self._index[v] = slot
        self._intern_version += 1
        self._dirty.add(slot)
        return True

    def remove_vertex(self, v):
        slot = self._index.get(v)
        if slot is None:
            return False
        for w in self._adj[v]:
            self._dirty.add(self._index[w])
        super().remove_vertex(v)
        del self._index[v]
        self._slot_ids[slot] = None
        self._free_slots.append(slot)
        self._intern_version += 1
        self._dirty.add(slot)
        return True

    def add_edge(self, u, v):
        if not super().add_edge(u, v):  # interns endpoints via add_vertex
            return False
        self._dirty.add(self._index[u])
        self._dirty.add(self._index[v])
        return True

    def remove_edge(self, u, v):
        if not super().remove_edge(u, v):
            return False
        self._dirty.add(self._index[u])
        self._dirty.add(self._index[v])
        return True

    # ------------------------------------------------------------------
    # Bulk mutation (single pass; dirty regions marked once per batch)
    # ------------------------------------------------------------------

    def add_edges(self, pairs):
        """Bulk :meth:`add_edge` in one pass over the adjacency dict.

        Semantically identical to the per-edge loop (endpoints created as
        needed, duplicates skipped, self-loops rejected) and returns the
        same per-pair change flags, but every per-edge method dispatch
        collapses into one tight loop with bound locals — the difference
        between a million-event churn round being graph-bound or
        interpreter-bound.
        """
        adj = self._adj
        index = self._index
        dirty_add = self._dirty.add
        flags = []
        flag = flags.append
        added = 0
        isolated = 0
        for u, v in pairs:
            if u == v:
                raise ValueError(f"self-loop on vertex {u!r} is not allowed")
            nu = adj.get(u)
            if nu is None:
                self.add_vertex(u)
                nu = adj[u]
            nv = adj.get(v)
            if nv is None:
                self.add_vertex(v)
                nv = adj[v]
            if v in nu:
                flag(False)
                continue
            if not nu:
                isolated -= 1
            if not nv:
                isolated -= 1
            nu.add(v)
            nv.add(u)
            added += 1
            dirty_add(index[u])
            dirty_add(index[v])
            flag(True)
        self._num_edges += added
        self._num_isolated += isolated
        return flags

    def remove_edges(self, pairs):
        """Bulk :meth:`remove_edge` in one pass (absent edges flag False)."""
        adj = self._adj
        index = self._index
        dirty_add = self._dirty.add
        flags = []
        flag = flags.append
        removed = 0
        isolated = 0
        for u, v in pairs:
            nu = adj.get(u)
            if nu is None or v not in nu:
                flag(False)
                continue
            nv = adj[v]
            nu.discard(v)
            nv.discard(u)
            if not nu:
                isolated += 1
            if not nv:
                isolated += 1
            removed += 1
            dirty_add(index[u])
            dirty_add(index[v])
            flag(True)
        self._num_edges -= removed
        self._num_isolated += isolated
        return flags

    # ------------------------------------------------------------------
    # CSR mirror maintenance
    # ------------------------------------------------------------------

    def ensure_csr(self):
        """Return ``(starts, lengths, indices)`` arrays, repairing as needed.

        ``starts[slot] : starts[slot] + lengths[slot]`` slices ``indices``
        into the slot's neighbour slots.  The returned arrays are the live
        internals: callers must treat them as read-only snapshots that any
        later mutation invalidates.
        """
        if not self._csr_built:
            self._rebuild_csr()
        elif self._dirty:
            self._patch_dirty()
        return self._csr_start, self._csr_len, self._csr_indices

    def _rebuild_csr(self):
        n = len(self._slot_ids)
        starts = array("q", bytes(8 * n))
        lens = array("q", bytes(8 * n))
        caps = [0] * n
        flat = []
        index = self._index
        pad = (0,)
        cursor = 0
        for v, slot in index.items():
            neighbours = self._adj[v]
            deg = len(neighbours)
            cap = _headroom(deg)
            starts[slot] = cursor
            lens[slot] = deg
            caps[slot] = cap
            flat.extend(map(index.__getitem__, neighbours))
            flat.extend(pad * (cap - deg))
            cursor += cap
        self._csr_start = starts
        self._csr_len = lens
        self._csr_cap = caps
        self._csr_indices = array("q", flat)
        self._csr_garbage = 0
        self._csr_built = True
        self._dirty.clear()

    def _patch_dirty(self):
        starts, lens, caps = self._csr_start, self._csr_len, self._csr_cap
        indices = self._csr_indices
        # Slots created since the last build need offset entries.
        grow = len(self._slot_ids) - len(starts)
        if grow > 0:
            starts.frombytes(bytes(8 * grow))
            lens.frombytes(bytes(8 * grow))
            caps.extend([0] * grow)
        index = self._index
        ids = self._slot_ids
        # reprolint: allow-DET001 slot order only picks arena block placement; adjacency content is unaffected
        for slot in self._dirty:
            v = ids[slot]
            if v is None:  # recycled hole: its block is garbage now
                self._csr_garbage += caps[slot]
                starts[slot] = 0
                lens[slot] = 0
                caps[slot] = 0
                continue
            neighbours = self._adj[v]
            deg = len(neighbours)
            if deg <= caps[slot]:
                # Dirty-region rewrite in place.
                cursor = starts[slot]
                for w in neighbours:
                    indices[cursor] = index[w]
                    cursor += 1
                lens[slot] = deg
            else:
                # Relocate the block to the tail with geometric headroom.
                self._csr_garbage += caps[slot]
                cap = _headroom(deg)
                starts[slot] = len(indices)
                lens[slot] = deg
                caps[slot] = cap
                indices.extend(index[w] for w in neighbours)
                indices.extend(0 for _ in range(cap - deg))
        self._dirty.clear()
        if self._csr_garbage * 2 > len(indices):
            self._rebuild_csr()

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def copy(self):
        """Deep copy preserving vertex insertion order and slot layout."""
        clone = CompactGraph()
        clone._adj = {v: set(ns) for v, ns in self._adj.items()}
        clone._num_edges = self._num_edges
        clone._reintern()
        return clone

    def _reintern(self):
        """Rebuild interning structures from the adjacency dict."""
        self._num_isolated = sum(1 for ns in self._adj.values() if not ns)
        self._index = {v: slot for slot, v in enumerate(self._adj)}
        self._slot_ids = list(self._adj)
        self._free_slots = []
        self._intern_version += 1
        self._dirty = set()
        self._csr_built = False

    @classmethod
    def from_graph(cls, graph):
        """Compact copy of any backend (vertex insertion order preserved)."""
        clone = cls()
        clone._adj = {v: set(graph.neighbors(v)) for v in graph.vertices()}
        clone._num_edges = graph.num_edges
        clone._reintern()
        return clone

    def validate(self):
        """Graph invariants plus interning / CSR-mirror consistency."""
        super().validate()
        if len(self._index) != len(self._adj):
            raise AssertionError(
                f"intern drift: {len(self._index)} slots for "
                f"{len(self._adj)} vertices"
            )
        for v, slot in self._index.items():
            if not 0 <= slot < len(self._slot_ids):
                raise AssertionError(f"slot {slot} of {v!r} out of range")
            if self._slot_ids[slot] != v:
                raise AssertionError(
                    f"slot table disagrees at {slot}: "
                    f"{self._slot_ids[slot]!r} != {v!r}"
                )
        live = len(self._slot_ids) - len(self._free_slots)
        if live != len(self._adj):
            raise AssertionError(
                f"free-list drift: {live} live slots, {len(self._adj)} vertices"
            )
        starts, lens, indices = self.ensure_csr()
        for v, slot in self._index.items():
            block = indices[starts[slot] : starts[slot] + lens[slot]]
            expected = {self._index[w] for w in self._adj[v]}
            if set(block) != expected or len(block) != len(expected):
                raise AssertionError(f"CSR mirror drift at vertex {v!r}")
        return True

    def __repr__(self):
        return (
            f"CompactGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"slots={self.num_slots})"
        )


def as_compact(graph):
    """Bridge: return ``graph`` as a :class:`CompactGraph`.

    Already-compact graphs are returned as-is (no copy); dense graphs are
    copied.  The copy preserves vertex insertion order, so iteration-order
    sensitive behaviour (partitioners, the runner's candidate order) is
    identical across the bridge.
    """
    if isinstance(graph, CompactGraph):
        return graph
    return CompactGraph.from_graph(graph)


def as_adjacency(graph):
    """Bridge: return ``graph`` as a plain adjacency-set :class:`Graph`."""
    if type(graph) is Graph:
        return graph
    clone = Graph()
    clone._adj = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    clone._num_edges = graph.num_edges
    clone._num_isolated = sum(1 for ns in clone._adj.values() if not ns)
    return clone
