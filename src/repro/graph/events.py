"""Graph mutation events.

The streaming use cases (Twitter mentions, telco CDR, forest-fire bursts) all
speak the same four-verb vocabulary.  Events are small immutable records so
streams can be generated once and replayed against many system configurations
(e.g. the paper's paired clusters: adaptive vs static hash).
"""

import enum
from dataclasses import dataclass

__all__ = [
    "AddEdge",
    "AddVertex",
    "EventKind",
    "GraphEvent",
    "RemoveEdge",
    "RemoveVertex",
    "apply_event",
    "apply_events",
    "invert_event",
]


class EventKind(enum.Enum):
    """Discriminator for the four mutation verbs."""

    ADD_VERTEX = "add_vertex"
    REMOVE_VERTEX = "remove_vertex"
    ADD_EDGE = "add_edge"
    REMOVE_EDGE = "remove_edge"


@dataclass(frozen=True)
class GraphEvent:
    """Base class for mutation events; use the concrete subclasses."""

    @property
    def kind(self):
        raise NotImplementedError


@dataclass(frozen=True)
class AddVertex(GraphEvent):
    """Inject a new (isolated) vertex."""

    vertex: object

    @property
    def kind(self):
        return EventKind.ADD_VERTEX


@dataclass(frozen=True)
class RemoveVertex(GraphEvent):
    """Remove a vertex and all its incident edges."""

    vertex: object

    @property
    def kind(self):
        return EventKind.REMOVE_VERTEX


@dataclass(frozen=True)
class AddEdge(GraphEvent):
    """Inject an undirected edge (endpoints are created if absent)."""

    u: object
    v: object

    @property
    def kind(self):
        return EventKind.ADD_EDGE


@dataclass(frozen=True)
class RemoveEdge(GraphEvent):
    """Remove an undirected edge (endpoints stay)."""

    u: object
    v: object

    @property
    def kind(self):
        return EventKind.REMOVE_EDGE


def apply_event(graph, event):
    """Apply one event to ``graph``; returns True when it changed the graph."""
    if isinstance(event, AddVertex):
        return graph.add_vertex(event.vertex)
    if isinstance(event, RemoveVertex):
        return graph.remove_vertex(event.vertex)
    if isinstance(event, AddEdge):
        return graph.add_edge(event.u, event.v)
    if isinstance(event, RemoveEdge):
        return graph.remove_edge(event.u, event.v)
    raise TypeError(f"unknown graph event {event!r}")


def apply_events(graph, events):
    """Apply a sequence of events; returns the count that changed the graph."""
    changed = 0
    for event in events:
        if apply_event(graph, event):
            changed += 1
    return changed


def invert_event(event, graph):
    """Return the events that undo ``event`` against the *current* ``graph``.

    Must be called *before* applying the event.  Removing a vertex expands to
    re-adding the vertex plus its incident edges, so the inverse is a list.
    Events that would not change the graph invert to an empty list.
    """
    if isinstance(event, AddVertex):
        return [] if event.vertex in graph else [RemoveVertex(event.vertex)]
    if isinstance(event, RemoveVertex):
        if event.vertex not in graph:
            return []
        restore = [AddVertex(event.vertex)]
        restore.extend(
            AddEdge(event.vertex, w) for w in graph.neighbors(event.vertex)
        )
        return restore
    if isinstance(event, AddEdge):
        inverse = []
        if event.u == event.v:
            raise ValueError("self-loop event cannot be inverted or applied")
        if graph.has_edge(event.u, event.v):
            return []
        # add_edge may implicitly create endpoints; undo those too.
        inverse.append(RemoveEdge(event.u, event.v))
        for endpoint in (event.u, event.v):
            if endpoint not in graph:
                inverse.append(RemoveVertex(endpoint))
        return inverse
    if isinstance(event, RemoveEdge):
        if not graph.has_edge(event.u, event.v):
            return []
        return [AddEdge(event.u, event.v)]
    raise TypeError(f"unknown graph event {event!r}")
