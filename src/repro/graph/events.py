"""Graph mutation events.

The streaming use cases (Twitter mentions, telco CDR, forest-fire bursts) all
speak the same four-verb vocabulary.  Events are small immutable records so
streams can be generated once and replayed against many system configurations
(e.g. the paper's paired clusters: adaptive vs static hash).
"""

import enum
from dataclasses import dataclass

__all__ = [
    "AddEdge",
    "AddVertex",
    "EventBatch",
    "EventKind",
    "GraphEvent",
    "RemoveEdge",
    "RemoveVertex",
    "apply_event",
    "apply_events",
    "invert_event",
]


class EventKind(enum.Enum):
    """Discriminator for the four mutation verbs."""

    ADD_VERTEX = "add_vertex"
    REMOVE_VERTEX = "remove_vertex"
    ADD_EDGE = "add_edge"
    REMOVE_EDGE = "remove_edge"


@dataclass(frozen=True)
class GraphEvent:
    """Base class for mutation events; use the concrete subclasses."""

    @property
    def kind(self):
        raise NotImplementedError


@dataclass(frozen=True)
class AddVertex(GraphEvent):
    """Inject a new (isolated) vertex."""

    vertex: object

    @property
    def kind(self):
        return EventKind.ADD_VERTEX


@dataclass(frozen=True)
class RemoveVertex(GraphEvent):
    """Remove a vertex and all its incident edges."""

    vertex: object

    @property
    def kind(self):
        return EventKind.REMOVE_VERTEX


@dataclass(frozen=True)
class AddEdge(GraphEvent):
    """Inject an undirected edge (endpoints are created if absent)."""

    u: object
    v: object

    @property
    def kind(self):
        return EventKind.ADD_EDGE


@dataclass(frozen=True)
class RemoveEdge(GraphEvent):
    """Remove an undirected edge (endpoints stay)."""

    u: object
    v: object

    @property
    def kind(self):
        return EventKind.REMOVE_EDGE


class EventBatch:
    """A list of events regrouped into bulk-appliable segments.

    The batched ingestion path (:mod:`repro.core.ingest`) cannot reorder
    events freely — an add and a remove of the same edge must keep their
    relative order — but it *can* treat a maximal run of consecutive edge
    events as one array job, because edge events only interact through the
    pair they touch.  ``segments`` therefore holds, in original order:

    * ``("edges", kinds, us, vs)`` — a run of :class:`AddEdge` /
      :class:`RemoveEdge` events as parallel arrays (``kinds[i]`` True for
      an add), ready for vectorised application;
    * ``("loop", events)`` — a run of vertex events (:class:`AddVertex` /
      :class:`RemoveVertex`), which mutate interning, placement and
      neighbour bookkeeping in ways that stay per-event.

    ``unsupported`` is True when the batch contains something whose exact
    per-event behaviour the bulk path must not re-order or anticipate: an
    unknown event type or a self-loop :class:`AddEdge` (both raise from the
    per-event loop *mid-batch*, leaving earlier events applied — only the
    loop reproduces that).  Callers then fall back to per-event application
    of the original list.
    """

    __slots__ = ("segments", "num_events", "num_edge_events", "unsupported")

    def __init__(self):
        self.segments = []
        self.num_events = 0
        self.num_edge_events = 0
        self.unsupported = False

    @classmethod
    def from_events(cls, events):
        """Segment ``events`` (construction stops early if unsupported)."""
        batch = cls()
        segments = batch.segments
        add_edge_cls = AddEdge
        remove_edge_cls = RemoveEdge
        add_vertex_cls = AddVertex
        remove_vertex_cls = RemoveVertex
        k_app = u_app = v_app = loop_app = None
        for event in events:
            kind = type(event)
            if kind is add_edge_cls:
                u = event.u
                v = event.v
                if u == v:
                    batch.unsupported = True  # the loop path raises here
                    break
                if k_app is None:
                    kinds, us, vs = [], [], []
                    segments.append(("edges", kinds, us, vs))
                    k_app, u_app, v_app = kinds.append, us.append, vs.append
                    loop_app = None
                k_app(True)
                u_app(u)
                v_app(v)
            elif kind is remove_edge_cls:
                if k_app is None:
                    kinds, us, vs = [], [], []
                    segments.append(("edges", kinds, us, vs))
                    k_app, u_app, v_app = kinds.append, us.append, vs.append
                    loop_app = None
                k_app(False)
                u_app(event.u)
                v_app(event.v)
            elif kind is add_vertex_cls or kind is remove_vertex_cls:
                if loop_app is None:
                    loop = []
                    segments.append(("loop", loop))
                    loop_app = loop.append
                    k_app = None
                loop_app(event)
            else:
                batch.unsupported = True  # the loop path raises here
                break
        for segment in segments:
            if segment[0] == "edges":
                batch.num_edge_events += len(segment[1])
                batch.num_events += len(segment[1])
            else:
                batch.num_events += len(segment[1])
        return batch


def apply_event(graph, event):
    """Apply one event to ``graph``; returns True when it changed the graph."""
    if isinstance(event, AddVertex):
        return graph.add_vertex(event.vertex)
    if isinstance(event, RemoveVertex):
        return graph.remove_vertex(event.vertex)
    if isinstance(event, AddEdge):
        return graph.add_edge(event.u, event.v)
    if isinstance(event, RemoveEdge):
        return graph.remove_edge(event.u, event.v)
    raise TypeError(f"unknown graph event {event!r}")


def apply_events(graph, events):
    """Apply a sequence of events; returns the count that changed the graph."""
    changed = 0
    for event in events:
        if apply_event(graph, event):
            changed += 1
    return changed


def invert_event(event, graph):
    """Return the events that undo ``event`` against the *current* ``graph``.

    Must be called *before* applying the event.  Removing a vertex expands to
    re-adding the vertex plus its incident edges, so the inverse is a list.
    Events that would not change the graph invert to an empty list.
    """
    if isinstance(event, AddVertex):
        return [] if event.vertex in graph else [RemoveVertex(event.vertex)]
    if isinstance(event, RemoveVertex):
        if event.vertex not in graph:
            return []
        restore = [AddVertex(event.vertex)]
        restore.extend(
            AddEdge(event.vertex, w) for w in graph.neighbors(event.vertex)
        )
        return restore
    if isinstance(event, AddEdge):
        inverse = []
        if event.u == event.v:
            raise ValueError("self-loop event cannot be inverted or applied")
        if graph.has_edge(event.u, event.v):
            return []
        # add_edge may implicitly create endpoints; undo those too.
        inverse.append(RemoveEdge(event.u, event.v))
        for endpoint in (event.u, event.v):
            if endpoint not in graph:
                inverse.append(RemoveVertex(endpoint))
        return inverse
    if isinstance(event, RemoveEdge):
        if not graph.has_edge(event.u, event.v):
            return []
        return [AddEdge(event.u, event.v)]
    raise TypeError(f"unknown graph event {event!r}")
