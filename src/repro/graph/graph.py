"""Dynamic undirected graph with adjacency sets.

This is the substrate every layer shares: generators produce it, initial
partitioners consume it, the adaptive heuristic reads neighbourhoods from it,
and the Pregel system mutates it while computing.  Design points:

* **Undirected** — the paper's cut-edge objective treats edges symmetrically
  (a directed mention stream is folded to undirected ties by the generators).
* **Dynamic** — O(1) amortised vertex/edge insertion and removal; removing a
  vertex detaches all incident edges, exactly the semantics the streaming use
  cases need.
* **Self-loop free** — self edges carry no partitioning information (a vertex
  is always co-located with itself) and are rejected.
"""

__all__ = ["Graph"]


class Graph:
    """A mutable undirected graph over hashable vertex identifiers.

    >>> g = Graph()
    >>> g.add_edge(1, 2)
    True
    >>> g.add_edge(2, 3)
    True
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.num_vertices, g.num_edges
    (3, 2)
    """

    __slots__ = ("_adj", "_num_edges", "_num_isolated")

    def __init__(self, edges=None, vertices=None):
        self._adj = {}
        self._num_edges = 0
        self._num_isolated = 0
        if vertices is not None:
            for v in vertices:
                self.add_vertex(v)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_vertex(self, v):
        """Add an isolated vertex.  Returns True if it was new."""
        if v in self._adj:
            return False
        self._adj[v] = set()
        self._num_isolated += 1
        return True

    def remove_vertex(self, v):
        """Remove ``v`` and all incident edges.  Returns True if present."""
        neighbours = self._adj.pop(v, None)
        if neighbours is None:
            return False
        if not neighbours:
            self._num_isolated -= 1
        for w in neighbours:
            peers = self._adj[w]
            peers.discard(v)
            if not peers:
                self._num_isolated += 1
        self._num_edges -= len(neighbours)
        return True

    def add_edge(self, u, v):
        """Add the undirected edge ``{u, v}``, creating endpoints as needed.

        Returns True if the edge was new.  Self-loops are rejected.
        """
        if u == v:
            raise ValueError(f"self-loop on vertex {u!r} is not allowed")
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            return False
        if not self._adj[u]:
            self._num_isolated -= 1
        if not self._adj[v]:
            self._num_isolated -= 1
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        return True

    def remove_edge(self, u, v):
        """Remove the edge ``{u, v}`` if present.  Returns True if removed.

        Endpoints are left in the graph even if isolated afterwards — the
        streaming use cases reap inactive vertices explicitly.
        """
        adj_u = self._adj.get(u)
        if adj_u is None or v not in adj_u:
            return False
        adj_u.discard(v)
        self._adj[v].discard(u)
        if not adj_u:
            self._num_isolated += 1
        if not self._adj[v]:
            self._num_isolated += 1
        self._num_edges -= 1
        return True

    # ------------------------------------------------------------------
    # Bulk mutation
    # ------------------------------------------------------------------

    def add_vertices(self, vertices):
        """Bulk :meth:`add_vertex`, in order.  Returns the count added."""
        added = 0
        for v in vertices:
            if self.add_vertex(v):
                added += 1
        return added

    def add_edges(self, pairs):
        """Bulk :meth:`add_edge`, in order.  Returns per-pair change flags.

        Endpoints are created as needed; duplicate pairs are skipped (their
        flag is False).  The flags double as presence answers — the batched
        ingestion path uses them instead of probing the graph separately.
        The compact backend overrides this with a single-pass loop.
        """
        return [self.add_edge(u, v) for u, v in pairs]

    def remove_edges(self, pairs):
        """Bulk :meth:`remove_edge`, in order.  Returns per-pair change
        flags (False for absent edges)."""
        return [self.remove_edge(u, v) for u, v in pairs]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, v):
        return v in self._adj

    def __len__(self):
        return len(self._adj)

    def __iter__(self):
        return iter(self._adj)

    @property
    def num_vertices(self):
        """Number of vertices currently in the graph."""
        return len(self._adj)

    @property
    def num_edges(self):
        """Number of undirected edges currently in the graph."""
        return self._num_edges

    @property
    def num_isolated(self):
        """Number of vertices with no incident edges (tracked, O(1))."""
        return self._num_isolated

    def has_edge(self, u, v):
        """True when the undirected edge ``{u, v}`` exists."""
        adj_u = self._adj.get(u)
        return adj_u is not None and v in adj_u

    def neighbors(self, v):
        """The (live) neighbour set of ``v``.

        Returns the internal set for speed; callers must not mutate it.
        """
        try:
            return self._adj[v]
        except KeyError:
            raise KeyError(f"vertex {v!r} not in graph") from None

    def degree(self, v):
        """Number of neighbours of ``v``."""
        return len(self.neighbors(v))

    def vertices(self):
        """Iterate over vertex identifiers (insertion order)."""
        return iter(self._adj)

    def edges(self):
        """Iterate over undirected edges, each reported once as ``(u, v)``.

        For orderable identifiers the smaller endpoint comes first; for mixed
        identifier types an arbitrary-but-deterministic endpoint order is
        used.
        """
        order = {v: i for i, v in enumerate(self._adj)}
        for u, neighbours in self._adj.items():
            rank = order[u]
            for v in neighbours:
                if order[v] < rank:
                    continue  # already emitted from v's side
                try:
                    yield (u, v) if u <= v else (v, u)
                except TypeError:
                    yield (u, v)

    def isolated_vertices(self):
        """Iterate over vertices with no incident edges."""
        for v, neighbours in self._adj.items():
            if not neighbours:
                yield v

    # ------------------------------------------------------------------
    # Derived views / bulk helpers
    # ------------------------------------------------------------------

    def copy(self):
        """Deep copy of the topology (identifiers are shared, sets are not)."""
        clone = Graph()
        clone._adj = {v: set(ns) for v, ns in self._adj.items()}
        clone._num_edges = self._num_edges
        clone._num_isolated = self._num_isolated
        return clone

    def subgraph(self, vertices):
        """Induced subgraph over ``vertices`` (missing ids are ignored).

        The subgraph is built on the same backend as ``self``.
        """
        # Keep the caller's order (deduplicated): the subgraph's vertex
        # insertion order — hence its iteration order — must not depend
        # on hash-table layout.
        seen = set()
        keep = []
        for v in vertices:
            if v in self._adj and v not in seen:
                seen.add(v)
                keep.append(v)
        sub = type(self)()
        for v in keep:
            sub.add_vertex(v)
        for v in keep:
            for w in self._adj[v]:
                if w in seen:
                    sub.add_edge(v, w)  # add_edge dedups the reverse visit
        return sub

    def degree_histogram(self):
        """Map degree -> number of vertices with that degree."""
        hist = {}
        for neighbours in self._adj.values():
            d = len(neighbours)
            hist[d] = hist.get(d, 0) + 1
        return hist

    def average_degree(self):
        """Mean vertex degree (0.0 for an empty graph)."""
        if not self._adj:
            return 0.0
        return 2.0 * self._num_edges / len(self._adj)

    def connected_components(self):
        """List of vertex sets, one per connected component (BFS)."""
        unvisited = set(self._adj)
        components = []
        # Roots come from insertion order, not set order, so the component
        # *list* order is a function of the graph's history alone.
        for root in self._adj:
            if root not in unvisited:
                continue
            component = {root}
            frontier = [root]
            unvisited.discard(root)
            while frontier:
                current = frontier.pop()
                for w in self._adj[current]:
                    if w in unvisited:
                        unvisited.discard(w)
                        component.add(w)
                        frontier.append(w)
            components.append(component)
        return components

    def giant_component_fraction(self):
        """Fraction of vertices in the largest connected component."""
        if not self._adj:
            return 0.0
        return max(len(c) for c in self.connected_components()) / len(self._adj)

    def validate(self):
        """Check internal invariants; raises AssertionError on corruption.

        Used by property-based tests after arbitrary mutation sequences.
        """
        edge_count = 0
        for v, neighbours in self._adj.items():
            if v in neighbours:
                raise AssertionError(f"self-loop stored on {v!r}")
            for w in neighbours:
                if w not in self._adj:
                    raise AssertionError(f"dangling neighbour {w!r} of {v!r}")
                if v not in self._adj[w]:
                    raise AssertionError(f"asymmetric edge {v!r}->{w!r}")
            edge_count += len(neighbours)
        if edge_count != 2 * self._num_edges:
            raise AssertionError(
                f"edge count drift: counted {edge_count // 2}, "
                f"stored {self._num_edges}"
            )
        isolated = sum(1 for ns in self._adj.values() if not ns)
        if isolated != self._num_isolated:
            raise AssertionError(
                f"isolated count drift: counted {isolated}, "
                f"stored {self._num_isolated}"
            )
        return True

    def __repr__(self):
        return f"Graph(|V|={self.num_vertices}, |E|={self.num_edges})"
