"""Timestamped event streams and batching.

The paper feeds changes to the system in two regimes:

* **continuous** (Twitter): events drain into the graph between supersteps as
  they arrive — modelled by :func:`batch_by_time` windows;
* **buffered** (CDR cliques): topology is frozen while a computation runs and
  all buffered changes apply at once — modelled by :func:`batch_by_count` or
  by draining a whole :class:`EventStream` slice.

Streams are plain sorted lists of :class:`TimedEvent` so they can be replayed
deterministically against multiple system configurations.  Events carrying
the *same* timestamp are totally ordered by a creation-order sequence number,
so replay order for ties is pinned FIFO — it can never depend on sort
internals or on the (non-comparable) event payloads.
"""

import bisect
import heapq
import itertools
from dataclasses import dataclass, field

from repro.graph.events import apply_event

__all__ = ["EventStream", "TimedEvent", "batch_by_count", "batch_by_time"]

# Global creation counter: ties on ``time`` resolve to creation order, which
# for any single producer is FIFO.  The absolute values are meaningless (and
# process-dependent); only the relative order of events within one producer
# ever matters — cross-stream tie order is pinned by :meth:`merged_with`'s
# rank-based merge, never by comparing seqs from different streams.
_SEQUENCE = itertools.count()


@dataclass(frozen=True, order=True)
class TimedEvent:
    """A mutation event stamped with an arrival time (seconds, arbitrary epoch).

    Ordering compares ``(time, seq)``.  The event payload is excluded from
    comparisons: payloads are plain frozen dataclasses with object-typed
    fields, so comparing them would raise for mixed identifier types — and
    relying on payload order for equal-time events would make tie order an
    accident of the payload encoding.
    """

    time: float
    event: object = field(compare=False)
    seq: int = field(default_factory=lambda: next(_SEQUENCE))


class EventStream:
    """An ordered, replayable sequence of timestamped graph events.

    >>> from repro.graph.events import AddEdge
    >>> s = EventStream()
    >>> s.push(1.0, AddEdge("a", "b"))
    >>> s.push(0.5, AddEdge("b", "c"))
    >>> [te.time for te in s]
    [0.5, 1.0]
    """

    def __init__(self, timed_events=None):
        self._events = sorted(timed_events) if timed_events else []

    def push(self, time, event):
        """Insert an event, keeping the stream time-ordered.

        Equal-time pushes land after existing events at that time (FIFO).
        """
        bisect.insort(self._events, TimedEvent(float(time), event))

    def extend(self, timed_events):
        """Bulk insert; re-sorts once (ties keep creation order)."""
        self._events.extend(timed_events)
        self._events.sort()

    def __len__(self):
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __getitem__(self, index):
        return self._events[index]

    @property
    def start_time(self):
        """Arrival time of the first event (None when empty)."""
        return self._events[0].time if self._events else None

    @property
    def end_time(self):
        """Arrival time of the last event (None when empty)."""
        return self._events[-1].time if self._events else None

    def window(self, t_start, t_end):
        """Events with ``t_start <= time < t_end`` as a list of TimedEvent."""
        lo = bisect.bisect_left(self._events, t_start, key=_time_of)
        hi = bisect.bisect_left(self._events, t_end, key=_time_of)
        return self._events[lo:hi]

    def events_between(self, t_start, t_end):
        """Bare events (no timestamps) in ``[t_start, t_end)``."""
        return [te.event for te in self.window(t_start, t_end)]

    def sliced(self, t_start, t_end):
        """New :class:`EventStream` over ``[t_start, t_end)``.

        The slice shares the original's :class:`TimedEvent` records, so
        relative order (including equal-time FIFO order) is preserved.
        """
        sliced = EventStream()
        sliced._events = self.window(t_start, t_end)
        return sliced

    def replay_into(self, graph, until=None):
        """Apply all events (optionally only those before ``until``) to a graph.

        Returns the number of events that changed the graph.
        """
        changed = 0
        for te in self._events:
            if until is not None and te.time >= until:
                break
            if apply_event(graph, te.event):
                changed += 1
        return changed

    def merged_with(self, other):
        """A new stream containing this stream's and ``other``'s events.

        Equal-time ties are pinned to ``(time, stream rank, per-stream
        order)``: all of this stream's events at a timestamp precede
        ``other``'s at that timestamp, and each side keeps its internal
        order.  Sorting the concatenation by the global creation ``seq``
        would instead make ties depend on which stream's *factory happened
        to run first anywhere in the process* — replaying a composed
        scenario after unrelated streams were built could flip tie order.
        The rank-based merge is a pure function of the two streams'
        contents, so composition is exactly as deterministic as its parts.

        The result is time-sorted but its tie order is the merge's, not
        creation order — a later :meth:`push` or :meth:`extend` (which
        re-sorts by creation ``seq``) may reorder ties; merge last when
        composing.
        """
        merged = EventStream()
        merged._events = list(heapq.merge(self._events, other, key=_time_of))
        return merged

    def __repr__(self):
        return (
            f"EventStream(n={len(self._events)}, "
            f"span=[{self.start_time}, {self.end_time}])"
        )


def _time_of(te):
    return te.time


def batch_by_time(stream, window):
    """Split a stream into consecutive fixed-duration windows.

    Yields ``(window_start_time, [events])``.  Empty windows inside the span
    are yielded too, so downstream supersteps tick at a constant rate — this
    matches the continuous Twitter regime where supersteps run even when the
    feed goes quiet.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    if len(stream) == 0:
        return
    t = stream.start_time
    end = stream.end_time
    while t <= end:
        yield t, stream.events_between(t, t + window)
        t += window


def batch_by_count(stream, batch_size):
    """Split a stream into batches of at most ``batch_size`` events.

    Yields plain event lists; models the buffered CDR regime where the graph
    freezes until a computation finishes and then absorbs the backlog.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    batch = []
    for te in stream:
        batch.append(te.event)
        if len(batch) == batch_size:
            yield batch
            batch = []
    if batch:
        yield batch
