"""Graph and partition persistence.

The reproduction generates all its graphs synthetically (no network
access), but downstream users will want to run the partitioner on real
edge lists — SNAP's wiki-Vote/Epinions, the Walshaw archive's 3elt/4elt —
and to persist/compare partitionings across runs.  This package provides
those formats:

* :mod:`edgelist` — whitespace/comment-tolerant edge-list reader/writer
  (the format SNAP and the Walshaw archive distribute);
* :mod:`partition` — save/load of vertex→partition assignments, and an
  event-log format for recorded mutation streams so experiments can be
  replayed bit-for-bit.
"""

from repro.io.edgelist import read_edgelist, write_edgelist
from repro.io.partition import (
    load_event_stream,
    load_partition,
    save_event_stream,
    save_partition,
)

__all__ = [
    "load_event_stream",
    "load_partition",
    "read_edgelist",
    "save_event_stream",
    "save_partition",
    "write_edgelist",
]
