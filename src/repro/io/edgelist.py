"""Edge-list files (the SNAP / Walshaw-archive interchange format).

One edge per line, two whitespace-separated vertex ids; ``#`` and ``%``
lines are comments (SNAP uses ``#``, the Walshaw archive's Chaco headers
start differently but converted lists commonly use ``%``).  Ids are read
as ints when every id in the file parses as one, else kept as strings —
mixed files would break id ordering, so the promotion is all-or-nothing.
"""

from repro.graph import make_graph

__all__ = ["read_edgelist", "write_edgelist"]

_COMMENT_PREFIXES = ("#", "%")


def read_edgelist(path, directed_dedup=True, backend="adjacency"):
    """Read an edge list into a graph on the chosen backend.

    ``directed_dedup``: SNAP ships directed pairs (both ``a b`` and
    ``b a``); the undirected graph stores each such tie once (the Graph
    handles duplicates natively — the flag exists only to document intent).
    ``backend`` names a :data:`repro.graph.GRAPH_BACKENDS` entry
    (``"adjacency"`` or ``"compact"``).

    Returns the graph.  Raises ``ValueError`` on malformed lines.
    """
    del directed_dedup  # duplicates collapse in the undirected Graph
    raw_edges = []
    all_int = True
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(_COMMENT_PREFIXES):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise ValueError(
                    f"{path}:{line_number}: expected two ids, got {stripped!r}"
                )
            u, v = parts[0], parts[1]
            if all_int:
                try:
                    int(u), int(v)
                except ValueError:
                    all_int = False
            raw_edges.append((u, v))
    graph = make_graph(backend)
    for u, v in raw_edges:
        if all_int:
            u, v = int(u), int(v)
        if u != v:  # real datasets occasionally contain self-loops; drop them
            graph.add_edge(u, v)
    return graph


def write_edgelist(graph, path, header=True):
    """Write a graph as an edge list (each undirected edge once)."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            handle.write(
                f"# undirected edge list: {graph.num_vertices} vertices, "
                f"{graph.num_edges} edges\n"
            )
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")
        # isolated vertices would be lost; record them as comments
        isolated = list(graph.isolated_vertices())
        if isolated:
            handle.write("# isolated: " + " ".join(map(str, isolated)) + "\n")
