"""Persistence of partition assignments and recorded event streams.

Both formats are line-oriented JSON (one record per line) so they stream,
diff and append cleanly — the properties a long-running experiment needs.
"""

import json

from repro.graph.events import AddEdge, AddVertex, RemoveEdge, RemoveVertex
from repro.graph.stream import EventStream
from repro.partitioning.base import PartitionState

__all__ = [
    "load_event_stream",
    "load_partition",
    "save_event_stream",
    "save_partition",
]

_EVENT_CODECS = {
    "add_vertex": (AddVertex, lambda e: [e.vertex]),
    "remove_vertex": (RemoveVertex, lambda e: [e.vertex]),
    "add_edge": (AddEdge, lambda e: [e.u, e.v]),
    "remove_edge": (RemoveEdge, lambda e: [e.u, e.v]),
}


def save_partition(state, path):
    """Write a partition assignment: a header line then one record per vertex."""
    with open(path, "w", encoding="utf-8") as handle:
        header = {
            "num_partitions": state.num_partitions,
            "capacities": [
                None if c == float("inf") else c for c in state.capacities
            ],
            "cut_edges": state.cut_edges,
        }
        handle.write(json.dumps(header) + "\n")
        for vertex, pid in state.assignment_items():
            handle.write(json.dumps([vertex, pid]) + "\n")


def load_partition(graph, path):
    """Load an assignment saved by :func:`save_partition` onto ``graph``.

    Vertices present in the file but absent from the graph are skipped
    (the graph may have churned since the save); the returned state's cut
    count is recomputed from the live graph, not trusted from the file.
    """
    with open(path, "r", encoding="utf-8") as handle:
        header = json.loads(handle.readline())
        capacities = [
            float("inf") if c is None else c for c in header["capacities"]
        ]
        state = PartitionState(graph, header["num_partitions"], capacities)
        for line in handle:
            if not line.strip():
                continue
            vertex, pid = json.loads(line)
            if vertex in graph:
                state.assign(vertex, pid)
    return state


def save_event_stream(stream, path):
    """Write a timestamped event stream, one ``[time, kind, args]`` per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for te in stream:
            kind = te.event.kind.value
            _, encode = _EVENT_CODECS[kind]
            handle.write(json.dumps([te.time, kind, encode(te.event)]) + "\n")


def load_event_stream(path):
    """Read a stream saved by :func:`save_event_stream`."""
    stream = EventStream()
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            time, kind, args = json.loads(line)
            try:
                cls, _ = _EVENT_CODECS[kind]
            except KeyError:
                raise ValueError(
                    f"{path}:{line_number}: unknown event kind {kind!r}"
                ) from None
            stream.push(time, cls(*args))
    return stream
