"""Observability: phase-span tracing, a metrics registry, trace exporters.

``repro.obs`` answers "where did the time and traffic go" without ever
touching what the run computes: a :class:`Tracer` collects nestable phase
spans across coordinator, executors and workers (worker-side spans ride
home in ``ShardDelta`` records and merge into one timeline with per-shard
lanes); a :class:`MetricsRegistry` holds the named counters/gauges/
histograms the scattered legacy attributes now read through to; and the
exporters write JSONL or Perfetto-loadable Chrome trace JSON.

The whole layer is determinism-safe by construction — tracing on or off,
golden digests are byte-identical, and the disabled path costs a single
attribute check (pinned by ``benchmarks/bench_obs.py``).  See
``docs/observability.md``.
"""

from .export import write_chrome_trace, write_jsonl, write_trace
from .metrics import Counter, CounterGroup, Gauge, Histogram, MetricsRegistry
from .trace import NULL_TRACER, Tracer, span_dict

__all__ = [
    "NULL_TRACER",
    "Counter",
    "CounterGroup",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "span_dict",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
