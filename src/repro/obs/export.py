"""Span exporters: JSONL sink and Chrome trace-event JSON.

Two on-disk shapes, both derived from the same span tuples:

* **JSONL** (``*.jsonl``) — one :func:`repro.obs.trace.span_dict` row per
  line; trivially greppable, streamable, and what
  ``tools/trace_summary.py`` reads fastest.
* **Chrome trace-event JSON** (anything else) — the
  ``{"traceEvents": [...]}`` format chrome://tracing and Perfetto load.
  Every span becomes a complete (``"ph": "X"``) event with microsecond
  ``ts``/``dur``; each lane becomes a ``tid`` with a ``thread_name``
  metadata record, so the UI shows one row per lane (coordinator first,
  then ``shard-0``, ``shard-1``, …) and infers nesting from time
  containment.

Timestamps are normalised to the earliest span's wall-clock start so the
viewer opens at t≈0 regardless of when the run happened.
"""

import json

from .trace import LANE, span_dict

__all__ = ["chrome_trace_events", "write_chrome_trace", "write_jsonl", "write_trace"]


def write_jsonl(spans, path):
    """Write spans as JSON-lines rows to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span_dict(span), sort_keys=True))
            fh.write("\n")


def _lane_order(lanes):
    """Stable display order: coordinator, shards by id, everything else."""

    def key(lane):
        if lane == "coordinator":
            return (0, 0, lane)
        if lane.startswith("shard-"):
            suffix = lane[len("shard-"):]
            if suffix.isdigit():
                return (1, int(suffix), lane)
        return (2, 0, lane)

    return sorted(lanes, key=key)


def chrome_trace_events(spans):
    """Spans as a Chrome trace-event list (metadata rows first)."""
    lanes = _lane_order({span[LANE] for span in spans})
    tids = {lane: tid for tid, lane in enumerate(lanes)}
    events = [
        {
            "ph": "M",
            "name": "thread_name",
            "pid": 0,
            "tid": tid,
            "args": {"name": lane},
        }
        for lane, tid in tids.items()
    ]
    origin = min((span[2] for span in spans), default=0.0)
    for name, lane, start, duration, args in spans:
        event = {
            "ph": "X",
            "name": name,
            "pid": 0,
            "tid": tids[lane],
            "ts": (start - origin) * 1e6,
            "dur": duration * 1e6,
        }
        if args:
            event["args"] = args
        events.append(event)
    return events


def write_chrome_trace(spans, path):
    """Write spans as a Perfetto-loadable Chrome trace file at ``path``."""
    document = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)
        fh.write("\n")


def write_trace(spans, path):
    """Write spans to ``path``, picking the format from the suffix.

    ``*.jsonl`` → JSON-lines span rows; anything else → Chrome trace JSON.
    """
    if str(path).endswith(".jsonl"):
        write_jsonl(spans, path)
    else:
        write_chrome_trace(spans, path)
