"""A registry of named counters, gauges and histograms.

The repo grew its instruments ad hoc — `SuperstepReport.decision_seconds`,
`PipelinedExecutor.merge_seconds`, `SocketExecutor.bytes_sent` — each with
its own lifecycle and none visible from the CLI.  :class:`MetricsRegistry`
is the single home: components create named instruments once and bump them
in place; the registry renders one text snapshot (``--show-metrics``) or a
JSON document (``--metrics-json``), and the legacy attributes stay alive
as read-through views so nothing breaks.

Naming is dotted and lowercase: ``phase.compute.seconds``,
``executor.bytes_sent.step``, ``ingest.events``.  The documented names
live in ``docs/observability.md``.

Determinism: instruments hold measurements *about* a run and never feed
back into it — nothing here enters ``superstep_digest()``.
"""

from collections.abc import Mapping

__all__ = ["Counter", "CounterGroup", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically-bumpable accumulator (reset only between sessions).

    Starts at the int 0, so counters fed ints (byte counts, event counts)
    stay ints while counters fed floats (seconds) become floats — callers
    that compare against exact integer totals keep working.
    """

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def add(self, amount):
        """Add ``amount`` (int or float) to the running total."""
        self.value += amount

    def reset(self):
        """Zero the counter (a new executor session, a new run)."""
        self.value = 0

    def __repr__(self):
        return f"Counter({self.name!r}, {self.value!r})"


class Gauge:
    """A last-write-wins instrument for point-in-time values."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        """Record the current value, replacing the previous one."""
        self.value = value

    def reset(self):
        """Zero the gauge."""
        self.value = 0

    def __repr__(self):
        return f"Gauge({self.name!r}, {self.value!r})"


class Histogram:
    """Count / total / min / max over observed samples.

    Deliberately bucket-free: enough to answer "how many, how big, how
    skewed" without committing to bucket boundaries in snapshots.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name):
        self.name = name
        self.reset()

    def observe(self, value):
        """Fold one sample into the summary."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def reset(self):
        """Forget every sample."""
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    @property
    def mean(self):
        """Average of the observed samples (0 when empty)."""
        return self.total / self.count if self.count else 0

    def summary(self):
        """The JSON-able summary dict this histogram snapshots as."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self):
        return f"Histogram({self.name!r}, n={self.count}, total={self.total!r})"


class CounterGroup(Mapping):
    """A live dict-like view over a family of counters sharing a prefix.

    ``SocketExecutor.bytes_sent`` used to be a plain dict keyed by command
    kind; it is now ``CounterGroup("executor.bytes_sent")`` over registry
    counters named ``executor.bytes_sent.<kind>``, and existing callers —
    ``set(view)``, ``view.values()``, ``view["step"]`` — keep working
    unchanged.  Kinds appear on first :meth:`add`.
    """

    def __init__(self, registry, prefix):
        self._registry = registry
        self._prefix = prefix
        self._kinds = []

    def add(self, kind, amount):
        """Bump the counter for ``kind``, creating it on first use."""
        if kind not in self._kinds:
            self._kinds.append(kind)
        self._registry.counter(f"{self._prefix}.{kind}").add(amount)

    def reset(self):
        """Zero every counter in the group and forget the seen kinds."""
        for kind in self._kinds:
            self._registry.counter(f"{self._prefix}.{kind}").reset()
        self._kinds = []

    def __getitem__(self, kind):
        if kind not in self._kinds:
            raise KeyError(kind)
        return self._registry.counter(f"{self._prefix}.{kind}").value

    def __iter__(self):
        return iter(self._kinds)

    def __len__(self):
        return len(self._kinds)

    def __repr__(self):
        return f"CounterGroup({self._prefix!r}, {dict(self)!r})"


class MetricsRegistry:
    """The named-instrument store for one run.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    for a name makes the instrument, later calls return the same object,
    so independent components converge on shared names without wiring.
    """

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    def counter(self, name):
        """The counter registered under ``name`` (created on first use)."""
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name):
        """The gauge registered under ``name`` (created on first use)."""
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name):
        """The histogram registered under ``name`` (created on first use)."""
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name)
        return inst

    def group(self, prefix):
        """A :class:`CounterGroup` over ``<prefix>.<kind>`` counters."""
        return CounterGroup(self, prefix)

    def snapshot(self):
        """Every instrument's current value as one JSON-able dict."""
        return {
            "counters": {
                name: inst.value
                for name, inst in sorted(self._counters.items())
            },
            "gauges": {
                name: inst.value for name, inst in sorted(self._gauges.items())
            },
            "histograms": {
                name: inst.summary()
                for name, inst in sorted(self._histograms.items())
            },
        }

    def phase_seconds(self):
        """``{phase: seconds}`` from the ``phase.<name>.seconds`` counters.

        The shape benchmarks record under ``record_result(..., phases=…)``.
        """
        out = {}
        for name, inst in sorted(self._counters.items()):
            if name.startswith("phase.") and name.endswith(".seconds"):
                out[name[len("phase."):-len(".seconds")]] = inst.value
        return out

    def render_text(self):
        """The aligned plain-text snapshot behind ``--show-metrics``."""
        lines = []
        snap = self.snapshot()

        def block(title, rows):
            if not rows:
                return
            lines.append(f"{title}:")
            width = max(len(name) for name in rows)
            for name, value in rows.items():
                if isinstance(value, float):
                    shown = f"{value:.6f}"
                elif isinstance(value, dict):
                    parts = ", ".join(
                        f"{k}={v if not isinstance(v, float) else f'{v:.6f}'}"
                        for k, v in value.items()
                    )
                    shown = parts
                else:
                    shown = str(value)
                lines.append(f"  {name:<{width}}  {shown}")

        block("counters", snap["counters"])
        block("gauges", snap["gauges"])
        block("histograms", snap["histograms"])
        if not lines:
            lines.append("(no metrics recorded)")
        return "\n".join(lines)

    def reset(self):
        """Zero every registered instrument (names stay registered)."""
        for table in (self._counters, self._gauges, self._histograms):
            for inst in table.values():
                inst.reset()

    def __repr__(self):
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )
