"""The span/metric name registry — the static observability vocabulary.

Every span and metric name the system emits as a *literal* must appear
here, and every entry here must be emitted somewhere: the OBS001 checker
(``tools/reprolint``) enforces both directions, so this file — and the
tables in ``docs/observability.md`` that mirror it — cannot silently
drift from the code.  Dynamic names are out of scope by design; the one
dynamic producer (:class:`~repro.obs.metrics.CounterGroup`) derives its
``<prefix>.<kind>`` counters from a prefix registered below.

Names are data, not API: nothing imports these sets at runtime on a hot
path.  They exist for the checker, the docs, and any trace tooling that
wants the authoritative vocabulary.
"""

__all__ = ["METRIC_NAMES", "METRIC_PREFIXES", "SPAN_NAMES"]

#: Tracer span names (``Tracer.span(...)`` / ``Tracer.record(...)``).
SPAN_NAMES = frozenset(
    {
        "superstep",      # one full superstep (coordinator/system lane)
        "compute",        # vertex-program sweep of one superstep or shard
        "decide",         # partitioning decision phase
        "apply-patch",    # shard applying a migration patch
        "barrier",        # superstep barrier (message + halt exchange)
        "barrier-merge",  # coordinator merging shard deltas at the barrier
        "arbitrate",      # migration arbitration among willing vertices
        "ingest",         # applying a graph-event batch
        "ingest-batch",   # one ingest segment inside the batch span
        "wire-send",      # socket executor: one framed message out
        "wire-recv",      # socket executor: one framed message in
    }
)

#: Metric names (``MetricsRegistry.counter``/``gauge``/``histogram``).
METRIC_NAMES = frozenset(
    {
        "supersteps",
        "phase.compute.seconds",
        "phase.decide.seconds",
        "phase.barrier.seconds",
        "ingest.events",
        "kernel.batched_blocks",
        "migrations.announced",
        "executor.merge_seconds",
        "executor.overlap_seconds",
        "executor.steps_streamed",
    }
)

#: CounterGroup prefixes: the group emits ``<prefix>.<kind>`` counters.
METRIC_PREFIXES = frozenset(
    {
        "executor.bytes_sent",
        "executor.bytes_received",
    }
)
