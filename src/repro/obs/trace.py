"""Phase-span tracing: where one run's wall-clock actually went.

A :class:`Tracer` collects **spans** — named, timed phases of a run
(``superstep``, ``compute``, ``decide``, ``barrier``, ``barrier-merge``,
``ingest``, ``apply-patch``, ``wire-send``/``wire-recv``, ``arbitrate``;
see ``docs/observability.md`` for the full taxonomy).  Every span is a
plain tuple

    ``(name, lane, start, duration, args)``

where ``name`` is the phase, ``lane`` names the timeline row it renders on
(``"coordinator"``, ``"shard-3"``, ``"wire"``), ``start`` is wall-clock
seconds (``time.time()`` — comparable *across processes*, which is what
lets worker-side spans merge into the coordinator's timeline), ``duration``
is measured with ``perf_counter`` deltas (monotonic, immune to clock
steps), and ``args`` is a small JSON-able dict or None.  Tuples rather
than objects because spans cross the cluster wire inside
:class:`~repro.cluster.shard.ShardDelta` records: the binary codec packs
them natively, no pickle needed.

**The determinism contract.**  Tracing is measurement, never semantics:

* a span can only *observe* a phase, it cannot reorder one — nothing in
  this module touches RNG streams, placements or values;
* spans never enter ``superstep_digest()`` or any golden fixture;
* the disabled path is one attribute check: every instrumentation site
  guards on :attr:`Tracer.enabled` (or calls :meth:`Tracer.span`, which
  returns a shared no-op scope without allocating), so a run with the
  default :data:`NULL_TRACER` does no timing calls at all.  The floor is
  pinned by ``benchmarks/bench_obs.py``.

Instances pickle (a shard's tracer ships to worker processes with the
shard); a disabled tracer stays disabled on the far side.
"""

from time import perf_counter, time

__all__ = ["NULL_TRACER", "Tracer", "span_dict"]

# Span tuple field indices, for readers that index rather than unpack.
NAME, LANE, START, DURATION, ARGS = range(5)


def span_dict(span):
    """One span tuple as a JSON-able dict (the JSONL exporter's row shape)."""
    name, lane, start, duration, args = span
    row = {"name": name, "lane": lane, "start": start, "dur": duration}
    if args:
        row["args"] = args
    return row


class _NullScope:
    """The shared no-op context manager a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NULL_SCOPE = _NullScope()


class _SpanScope:
    """An open span: records itself on the owning tracer at ``__exit__``."""

    __slots__ = ("_tracer", "_name", "_lane", "_args", "_wall", "_tick")

    def __init__(self, tracer, name, lane, args):
        self._tracer = tracer
        self._name = name
        self._lane = lane
        self._args = args

    def __enter__(self):
        self._wall = time()
        self._tick = perf_counter()
        return self

    def __exit__(self, *exc_info):
        self._tracer.spans.append(
            (
                self._name,
                self._lane,
                self._wall,
                perf_counter() - self._tick,
                self._args,
            )
        )
        return False


class Tracer:
    """A span collector for one lane of the run.

    ``enabled`` is the single hot-path switch: instrumentation sites guard
    on it, and every method on a disabled tracer is a no-op, so the
    default :data:`NULL_TRACER` costs one attribute read per site.
    ``lane`` is the default timeline row for spans recorded here — the
    coordinator's tracer uses ``"coordinator"``, each shard's its own
    ``"shard-<id>"`` lane.
    """

    def __init__(self, enabled=True, lane="coordinator"):
        self.enabled = bool(enabled)
        self.lane = lane
        self.spans = []

    def span(self, name, lane=None, **args):
        """A context manager timing one phase; no-op when disabled.

        Extra keyword arguments become the span's ``args`` dict (keep them
        small and wire-friendly: str/int/float values).
        """
        if not self.enabled:
            return _NULL_SCOPE
        return _SpanScope(self, name, lane or self.lane, args or None)

    def record(self, name, start, duration, lane=None, args=None):
        """Append one pre-measured span (for sites that time inline)."""
        if self.enabled:
            self.spans.append(
                (name, lane or self.lane, start, duration, args or None)
            )

    def absorb(self, spans):
        """Merge spans collected elsewhere (a shard's delta) into this
        tracer's timeline."""
        if self.enabled and spans:
            self.spans.extend(spans)

    def drain(self):
        """Return and clear the collected spans (the delta-shipping hook)."""
        spans = self.spans
        self.spans = []
        return spans

    def clear(self):
        """Drop every collected span."""
        self.spans = []

    def lanes(self):
        """The distinct lanes seen so far, coordinator first, shards sorted."""
        seen = {span[LANE] for span in self.spans}

        def key(lane):
            if lane == "coordinator":
                return (0, 0, lane)
            if lane.startswith("shard-"):
                suffix = lane[len("shard-"):]
                if suffix.isdigit():
                    return (1, int(suffix), lane)
            return (2, 0, lane)

        return sorted(seen, key=key)

    def __repr__(self):
        state = "on" if self.enabled else "off"
        return f"Tracer({state}, lane={self.lane!r}, spans={len(self.spans)})"


#: The shared disabled tracer every un-traced run uses.  Do not record on
#: it (its methods are no-ops anyway); pass a fresh ``Tracer()`` to trace.
NULL_TRACER = Tracer(enabled=False)
