"""Partition state and initial partitioning strategies.

The paper evaluates its adaptive heuristic starting from four initial
placements (§4.2.1) plus a centralised reference:

* **HSH** — hash partitioning, ``H(v) mod k`` (the large-scale default);
* **RND** — balanced pseudo-random placement;
* **DGR** — Stanton & Kliot's streaming *linear deterministic greedy*;
* **MNN** — the stream-based *minimum number of neighbours* heuristic of
  Prabhakaran et al.;
* **METIS line** — a centralised multilevel k-way partitioner
  (:mod:`repro.partitioning.multilevel`), our from-scratch stand-in for the
  METIS binary.

All strategies produce a :class:`PartitionState`, the bookkeeping structure
shared with the adaptive algorithm: vertex→partition assignment, partition
sizes, capacities, and an incrementally-maintained cut-edge count.
"""

from repro.partitioning.base import (
    PartitionState,
    Partitioner,
    balanced_capacities,
)
from repro.partitioning.hashing import HashPartitioner
from repro.partitioning.ldg import LinearDeterministicGreedy
from repro.partitioning.mnn import MinimumNeighbours
from repro.partitioning.multilevel import MultilevelPartitioner
from repro.partitioning.random_partition import RandomPartitioner
from repro.partitioning.registry import STRATEGIES, make_partitioner
from repro.partitioning.streaming import (
    BalancedPartitioner,
    ChunkingPartitioner,
    ExponentialGreedy,
    STREAMING_STRATEGIES,
    TriangleGreedy,
    UnweightedGreedy,
)

__all__ = [
    "BalancedPartitioner",
    "ChunkingPartitioner",
    "ExponentialGreedy",
    "HashPartitioner",
    "LinearDeterministicGreedy",
    "MinimumNeighbours",
    "MultilevelPartitioner",
    "PartitionState",
    "Partitioner",
    "RandomPartitioner",
    "STRATEGIES",
    "STREAMING_STRATEGIES",
    "TriangleGreedy",
    "UnweightedGreedy",
    "balanced_capacities",
    "make_partitioner",
]
