"""Partition bookkeeping shared by every strategy and the adaptive core.

:class:`PartitionState` maintains, incrementally and in O(deg v) per move:

* the vertex → partition assignment (every vertex in exactly one partition,
  the paper's partition definition);
* per-partition vertex counts and capacities ``C(i)``;
* the global cut-edge count ``|Ec|`` against a live graph.

The cut count is the paper's quality metric (reported normalised to ``|E|``
as the *cut ratio*), so its bookkeeping must stay exact under arbitrary
interleavings of vertex moves and graph mutations; property-based tests
compare it against from-scratch recomputation.
"""

import math
import types

__all__ = ["PartitionState", "Partitioner", "balanced_capacities"]


def balanced_capacities(num_vertices, num_partitions, slack=1.10):
    """Per-partition capacity at ``slack`` × the balanced load.

    The paper's experiments use "maximum capacity equal to 110 % of the
    balanced load" (Fig. 4); the balanced load is ``|V| / k`` rounded up.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    if slack < 1.0:
        raise ValueError("slack below 1.0 cannot hold all vertices")
    balanced = math.ceil(num_vertices / num_partitions)
    # Guard against float noise: 100 * 1.10 is 110.00000000000001, which
    # must cap at 110, not 111.
    capacity = max(1, math.ceil(balanced * slack - 1e-9))
    return [capacity for _ in range(num_partitions)]


class PartitionState:
    """Assignment of vertices to ``k`` partitions with exact cut tracking.

    The state is bound to a :class:`~repro.graph.Graph`; moves consult the
    graph's adjacency to maintain the cut count.  Graph mutations must be
    reported through :meth:`on_edge_added` / :meth:`on_edge_removed` /
    :meth:`remove_vertex` so the count stays exact (the Pregel layer does
    this automatically).
    """

    def __init__(self, graph, num_partitions, capacities=None):
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.graph = graph
        self.num_partitions = num_partitions
        if capacities is None:
            capacities = [math.inf] * num_partitions
        if len(capacities) != num_partitions:
            raise ValueError(
                f"capacities has {len(capacities)} entries for "
                f"{num_partitions} partitions"
            )
        self.capacities = list(capacities)
        self._assignment = {}
        self._sizes = [0] * num_partitions
        self._cut_edges = 0
        self._version = 0

    # ------------------------------------------------------------------
    # Assignment
    # ------------------------------------------------------------------

    @property
    def version(self):
        """Monotonic counter bumped on every assignment change.

        Derived flat views (the batch sweep's assignment array) compare it
        against the version they were built from to detect staleness from
        moves they did not witness.
        """
        return self._version

    def __contains__(self, vertex):
        return vertex in self._assignment

    def __len__(self):
        return len(self._assignment)

    def partition_of(self, vertex):
        """Partition id of ``vertex`` (KeyError when unassigned)."""
        return self._assignment[vertex]

    def partition_of_or_none(self, vertex):
        """Partition id of ``vertex`` or None when unassigned."""
        return self._assignment.get(vertex)

    def assignment_view(self):
        """Read-only live view of vertex → partition for bulk lookups.

        Hot per-message paths (the router's delivery loop) go through this
        proxy's C-level ``get`` instead of paying a Python method call per
        vertex; the proxy stays live, so no staleness to manage.
        """
        return types.MappingProxyType(self._assignment)

    def size(self, pid):
        """Current number of vertices in partition ``pid``."""
        return self._sizes[pid]

    @property
    def sizes(self):
        """Copy of the per-partition vertex counts."""
        return list(self._sizes)

    def remaining_capacity(self, pid):
        """``C(i) - |P(i)|`` — the paper's ``C_t(i)``."""
        return self.capacities[pid] - self._sizes[pid]

    def members(self, pid):
        """Set of vertices currently in ``pid`` (O(|V|) scan; for tests/reports)."""
        return {v for v, p in self._assignment.items() if p == pid}

    def assignment_items(self):
        """Iterate over ``(vertex, partition)`` pairs."""
        return self._assignment.items()

    def _external_degree(self, vertex, pid):
        """Number of ``vertex``'s neighbours outside partition ``pid``."""
        external = 0
        for w in self.graph.neighbors(vertex):
            assigned = self._assignment.get(w)
            if assigned is not None and assigned != pid:
                external += 1
        return external

    def neighbour_partition_counts(self, vertex):
        """Map partition id -> number of ``vertex``'s neighbours there.

        Only assigned neighbours count; this is exactly the local information
        the paper's heuristic allows a vertex to see.
        """
        counts = {}
        for w in self.graph.neighbors(vertex):
            pid = self._assignment.get(w)
            if pid is not None:
                counts[pid] = counts.get(pid, 0) + 1
        return counts

    def assign(self, vertex, pid, enforce_capacity=False):
        """Place an unassigned ``vertex`` into ``pid``.

        Raises when the vertex is already assigned; use :meth:`move` for
        relocation.  With ``enforce_capacity`` a full partition raises
        ``ValueError`` instead of over-filling.
        """
        if vertex in self._assignment:
            raise ValueError(f"vertex {vertex!r} already assigned")
        self._check_pid(pid)
        if enforce_capacity and self._sizes[pid] >= self.capacities[pid]:
            raise ValueError(f"partition {pid} is at capacity")
        cut_delta = self._external_degree(vertex, pid)
        self._assignment[vertex] = pid
        self._sizes[pid] += 1
        self._cut_edges += cut_delta
        self._version += 1

    def move(self, vertex, new_pid):
        """Relocate an assigned vertex, updating the cut count in O(deg v)."""
        self._check_pid(new_pid)
        old_pid = self._assignment[vertex]
        if old_pid == new_pid:
            return
        before = self._external_degree(vertex, old_pid)
        after = self._external_degree(vertex, new_pid)
        self._assignment[vertex] = new_pid
        self._sizes[old_pid] -= 1
        self._sizes[new_pid] += 1
        self._cut_edges += after - before
        self._version += 1

    def apply_bulk_moves(self, items, cut_delta):
        """Relocate many vertices at once with a caller-computed cut delta.

        ``items`` yields ``(vertex, old_pid, new_pid)`` for vertices that
        actually change partition.  The caller guarantees ``cut_delta``
        equals the sum of the per-move deltas :meth:`move` would have
        produced (batch application commutes because the final cut count is
        a function of the final assignment alone).  The batch sweep uses
        this to skip the per-move ``O(deg v)`` adjacency walks; the
        equivalence tests cross-check against :meth:`validate`.
        """
        assignment = self._assignment
        sizes = self._sizes
        count = 0
        for vertex, old_pid, new_pid in items:
            assignment[vertex] = new_pid
            sizes[old_pid] -= 1
            sizes[new_pid] += 1
            count += 1
        self._cut_edges += cut_delta
        self._version += count

    def assign_many(self, items):
        """Bulk :meth:`assign` of brand-new vertices with no assigned
        neighbours.

        ``items`` yields ``(vertex, pid)``.  Contract: every vertex is
        currently unassigned and none of its graph neighbours (if any) is
        assigned — true for just-created vertices placed before their first
        edge lands, which is the streaming-arrival shape the batched
        ingestion path feeds this.  Under that contract the cut count
        cannot change, so the per-vertex adjacency walk of :meth:`assign`
        is skipped; sizes and the version counter advance exactly as ``n``
        sequential assigns would.
        """
        assignment = self._assignment
        sizes = self._sizes
        num_partitions = self.num_partitions
        count = 0
        try:
            for vertex, pid in items:
                if vertex in assignment:
                    raise ValueError(f"vertex {vertex!r} already assigned")
                if not 0 <= pid < num_partitions:
                    self._check_pid(pid)
                assignment[vertex] = pid
                sizes[pid] += 1
                count += 1
        finally:
            # Version credit for every item that landed, even when a later
            # item raises mid-batch: version-keyed mirrors must see partial
            # application as the N changes it was, never as zero.
            self._version += count
        return count

    def apply_cut_delta(self, delta):
        """Adjust the cut count by a caller-computed bulk delta.

        The batched ingestion path computes one exact integer delta for a
        whole run of edge mutations (vectorised over endpoint-partition
        arrays) instead of calling :meth:`on_edge_added` /
        :meth:`on_edge_removed` per edge; the equivalence suite pins the
        result against the per-event bookkeeping.
        """
        self._cut_edges += delta

    def remove_vertex(self, vertex):
        """Forget a vertex (call *before* the graph drops its edges).

        Returns the partition it occupied, or None if unassigned.
        """
        pid = self._assignment.pop(vertex, None)
        if pid is None:
            return None
        self._sizes[pid] -= 1
        self._cut_edges -= self._external_degree(vertex, pid)
        self._version += 1
        return pid

    # ------------------------------------------------------------------
    # Graph-mutation notifications
    # ------------------------------------------------------------------

    def on_edge_added(self, u, v):
        """Update the cut count after edge ``{u, v}`` was added to the graph."""
        pu = self._assignment.get(u)
        pv = self._assignment.get(v)
        if pu is not None and pv is not None and pu != pv:
            self._cut_edges += 1

    def on_edge_removed(self, u, v):
        """Update the cut count after edge ``{u, v}`` was removed."""
        pu = self._assignment.get(u)
        pv = self._assignment.get(v)
        if pu is not None and pv is not None and pu != pv:
            self._cut_edges -= 1

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    @property
    def cut_edges(self):
        """Current number of cut edges ``|Ec|``."""
        return self._cut_edges

    def cut_ratio(self):
        """``|Ec| / |E|`` — the paper's gold-standard quality metric."""
        total = self.graph.num_edges
        if total == 0:
            return 0.0
        return self._cut_edges / total

    def imbalance(self):
        """Max partition size over the balanced load (1.0 = perfectly even)."""
        if not self._assignment:
            return 1.0
        balanced = len(self._assignment) / self.num_partitions
        return max(self._sizes) / balanced if balanced else 1.0

    def recompute_cut_edges(self):
        """From-scratch cut count (O(|E|)); ground truth for the tests."""
        cut = 0
        for u, v in self.graph.edges():
            pu = self._assignment.get(u)
            pv = self._assignment.get(v)
            if pu is not None and pv is not None and pu != pv:
                cut += 1
        return cut

    def validate(self):
        """Verify sizes and cut bookkeeping; raises AssertionError on drift."""
        sizes = [0] * self.num_partitions
        for pid in self._assignment.values():
            sizes[pid] += 1
        if sizes != self._sizes:
            raise AssertionError(f"size drift: counted {sizes}, stored {self._sizes}")
        actual = self.recompute_cut_edges()
        if actual != self._cut_edges:
            raise AssertionError(
                f"cut drift: counted {actual}, stored {self._cut_edges}"
            )
        for pid, size in enumerate(self._sizes):
            if size < 0:
                raise AssertionError(f"negative size in partition {pid}")
        return True

    def copy(self):
        """Independent copy bound to the same graph object."""
        clone = PartitionState(self.graph, self.num_partitions, list(self.capacities))
        clone._assignment = dict(self._assignment)
        clone._sizes = list(self._sizes)
        clone._cut_edges = self._cut_edges
        return clone

    def _check_pid(self, pid):
        if not 0 <= pid < self.num_partitions:
            raise ValueError(
                f"partition id {pid} out of range [0, {self.num_partitions})"
            )

    def __repr__(self):
        return (
            f"PartitionState(k={self.num_partitions}, |V|={len(self)}, "
            f"cut={self._cut_edges})"
        )


class Partitioner:
    """Interface for initial partitioning strategies.

    Subclasses implement :meth:`partition`, returning a fully-assigned
    :class:`PartitionState` over the given graph.  ``place`` (optional)
    supports streaming arrival of single vertices into an existing state —
    the Pregel layer uses it to place vertices injected from a stream.
    """

    name = "abstract"

    def partition(self, graph, num_partitions, capacities=None):
        raise NotImplementedError

    def place(self, state, vertex):
        """Streaming placement of one new vertex into ``state``.

        Default: hash placement — cheap and always applicable.
        """
        from repro.utils import stable_hash

        pid = stable_hash(vertex) % state.num_partitions
        if state.remaining_capacity(pid) <= 0:
            pid = max(
                range(state.num_partitions), key=state.remaining_capacity
            )
        state.assign(vertex, pid)
        return pid

    def place_many(self, state, vertices):
        """Streaming placement of many new vertices, in order.

        Returns the ``(vertex, pid)`` placements.  The default defers to
        :meth:`place` one vertex at a time, preserving any order-dependent
        behaviour (capacity spill-over) exactly; strategies whose placement
        is a pure per-vertex function (hash) override with a bulk path.
        """
        return [(v, self.place(state, v)) for v in vertices]
