"""HSH — hash partitioning, the large-scale systems default.

"Given a hashing function H(v), a vertex is assigned to partition P0(i) if
H(v) mod k = i" (§2).  Lightweight, no lookup table, uniform spread — and a
very high cut ratio, which is exactly why the adaptive heuristic exists.
"""

from repro.partitioning.base import Partitioner, PartitionState
from repro.utils import stable_hash

__all__ = ["HashPartitioner"]


class HashPartitioner(Partitioner):
    """Assign each vertex to ``stable_hash(v) mod k``.

    Deterministic across runs and processes (uses MD5-based hashing, not the
    per-process-salted builtin).  Capacities are recorded but not enforced at
    load time: hash placement is statistically balanced and the paper's
    capacity machinery belongs to the migration phase.
    """

    name = "HSH"

    def partition(self, graph, num_partitions, capacities=None):
        state = PartitionState(graph, num_partitions, capacities)
        for v in graph.vertices():
            state.assign(v, stable_hash(v) % num_partitions)
        return state

    def place(self, state, vertex):
        pid = stable_hash(vertex) % state.num_partitions
        state.assign(vertex, pid)
        return pid

    def place_many(self, state, vertices):
        """Bulk streaming placement of brand-new (still isolated) vertices.

        Hash placement is a pure per-vertex function, so a batch places
        exactly where ``n`` sequential :meth:`place` calls would; the state
        update collapses into one
        :meth:`~repro.partitioning.base.PartitionState.assign_many` call.
        Callers guarantee the vertices were just created and have no
        assigned neighbours yet (the streaming-arrival contract) — the
        batched ingestion path places endpoints before their first edge
        lands, exactly like the per-event path does.
        """
        k = state.num_partitions
        placements = [(v, stable_hash(v) % k) for v in vertices]
        state.assign_many(placements)
        return placements
