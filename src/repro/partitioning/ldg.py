"""DGR — linear deterministic greedy streaming partitioning.

Stanton & Kliot's best single-pass heuristic (KDD 2012), the paper's
strongest initial-placement baseline.  Vertices arrive in a stream; each is
placed in the partition maximising

    |N(v) ∩ P(i)| * (1 - |P(i)| / C(i))

i.e. neighbours-already-there, linearly discounted by fullness.  Note the
score consults the destinations of *all previously placed vertices* — the
global knowledge the paper points at when discussing DGR's scalability
limits (§4.2.1).
"""

from repro.partitioning.base import (
    Partitioner,
    PartitionState,
    balanced_capacities,
)

__all__ = ["LinearDeterministicGreedy"]


class LinearDeterministicGreedy(Partitioner):
    """Single-pass linear deterministic greedy placement.

    ``stream_order`` optionally fixes the arrival order (default: graph
    insertion order, matching how loaders feed real systems).
    """

    name = "DGR"

    def __init__(self, stream_order=None):
        self.stream_order = stream_order

    def partition(self, graph, num_partitions, capacities=None):
        if capacities is None:
            capacities = balanced_capacities(graph.num_vertices, num_partitions)
        state = PartitionState(graph, num_partitions, capacities)
        order = (
            self.stream_order if self.stream_order is not None else graph.vertices()
        )
        for v in order:
            self.place(state, v)
        return state

    def place(self, state, vertex):
        counts = state.neighbour_partition_counts(vertex)
        best_pid = None
        best_score = None
        for pid in range(state.num_partitions):
            capacity = state.capacities[pid]
            if capacity <= 0:
                continue
            fill = state.size(pid) / capacity
            if fill >= 1.0:
                continue
            score = counts.get(pid, 0) * (1.0 - fill)
            # Tie-break towards the emptier partition, then lower id for
            # determinism.
            key = (score, -fill)
            if best_score is None or key > best_score:
                best_score = key
                best_pid = pid
        if best_pid is None:
            # All partitions full: spill to the least loaded.
            best_pid = max(range(state.num_partitions), key=state.remaining_capacity)
        state.assign(vertex, best_pid)
        return best_pid
