"""MNN — stream-based "minimum number of neighbours" placement.

The paper's fourth strategy "applies the same stream-based approach to the
'minimum number of neighbours' heuristic presented in [28]" (Prabhakaran et
al., USENIX ATC 2012 — Grace).  Grace spreads a vertex *away* from where its
neighbours sit (minimising contention on multi-cores), so as an edge-cut
strategy it is intentionally adversarial: it produces many cut edges and,
like RND, exists to show the adaptive heuristic can recover from a bad
start.
"""

from repro.partitioning.base import (
    Partitioner,
    PartitionState,
    balanced_capacities,
)

__all__ = ["MinimumNeighbours"]


class MinimumNeighbours(Partitioner):
    """Place each arriving vertex where the *fewest* of its neighbours live.

    Ties break to the partition with more remaining capacity, then lower id,
    keeping the pass deterministic.
    """

    name = "MNN"

    def __init__(self, stream_order=None):
        self.stream_order = stream_order

    def partition(self, graph, num_partitions, capacities=None):
        if capacities is None:
            capacities = balanced_capacities(graph.num_vertices, num_partitions)
        state = PartitionState(graph, num_partitions, capacities)
        order = (
            self.stream_order if self.stream_order is not None else graph.vertices()
        )
        for v in order:
            self.place(state, v)
        return state

    def place(self, state, vertex):
        counts = state.neighbour_partition_counts(vertex)
        best_pid = None
        best_key = None
        for pid in range(state.num_partitions):
            remaining = state.remaining_capacity(pid)
            if remaining <= 0:
                continue
            key = (counts.get(pid, 0), -remaining, pid)
            if best_key is None or key < best_key:
                best_key = key
                best_pid = pid
        if best_pid is None:
            best_pid = max(range(state.num_partitions), key=state.remaining_capacity)
        state.assign(vertex, best_pid)
        return best_pid
