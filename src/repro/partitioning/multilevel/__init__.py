"""Multilevel k-way graph partitioner — our METIS stand-in.

The paper benchmarks its decentralised heuristic against METIS, "a
state-of-the-art centralised graph partitioning algorithm", shown as the
dashed reference line in Fig. 4.  METIS is a closed-source C binary we
cannot ship, so this subpackage implements the same classic multilevel
scheme (Karypis & Kumar) from scratch:

1. **Coarsening** (:mod:`coarsen`) — repeated heavy-edge matching collapses
   the graph by ~half per level while preserving cut structure in the edge
   weights;
2. **Initial partitioning** (:mod:`initial`) — greedy graph growing bisects
   the coarsest graph from a pseudo-peripheral seed;
3. **Refinement** (:mod:`refine`) — Fiduccia–Mattheyses boundary refinement
   with best-prefix rollback runs at every uncoarsening level;
4. **k-way** (:mod:`kway`) — recursive bisection composes bisections into a
   k-way partitioning for arbitrary k (the paper uses k = 9).

It is centralised and needs the whole graph in one place — exactly the
property the paper contrasts against — but it provides the quality
reference the decentralised heuristic is shown to approach.
"""

from repro.partitioning.multilevel.kway import MultilevelPartitioner

__all__ = ["MultilevelPartitioner"]
