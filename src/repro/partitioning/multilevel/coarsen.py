"""Heavy-edge-matching coarsening.

Each level computes a maximal matching preferring heavy edges, collapses
matched pairs into super-vertices, and sums parallel edges.  Heavy-edge
preference keeps heavy (i.e. many-original-edge) connections *inside*
super-vertices, so the coarse graph's cut is a faithful proxy for the fine
graph's.
"""

from repro.partitioning.multilevel.weighted import WeightedGraph

__all__ = ["CoarseningLevel", "coarsen_once", "coarsen_to_size"]


class CoarseningLevel:
    """One level of the hierarchy: the coarse graph plus the fine→coarse map."""

    __slots__ = ("fine", "coarse", "fine_to_coarse")

    def __init__(self, fine, coarse, fine_to_coarse):
        self.fine = fine
        self.coarse = coarse
        self.fine_to_coarse = fine_to_coarse

    def project(self, coarse_assignment):
        """Project a coarse partition assignment back onto fine vertices."""
        return {
            v: coarse_assignment[self.fine_to_coarse[v]]
            for v in self.fine.vertices()
        }


def _heavy_edge_matching(graph, rng):
    """Maximal matching preferring heavy edges; returns {vertex: mate|None}.

    Vertices are visited in random order (breaking adversarial structure);
    each unmatched vertex matches its heaviest unmatched neighbour, with ties
    broken towards the lighter vertex weight to keep super-vertices even.
    """
    mate = {}
    order = list(graph.vertices())
    rng.shuffle(order)
    for v in order:
        if v in mate:
            continue
        best = None
        best_key = None
        for w, edge_weight in graph.neighbors(v).items():
            if w in mate:
                continue
            key = (edge_weight, -graph.vertex_weight[w])
            if best_key is None or key > best_key:
                best_key = key
                best = w
        if best is None:
            mate[v] = None
        else:
            mate[v] = best
            mate[best] = v
    return mate


def coarsen_once(graph, rng):
    """Build the next coarser level; returns a :class:`CoarseningLevel`."""
    mate = _heavy_edge_matching(graph, rng)
    coarse = WeightedGraph()
    fine_to_coarse = {}
    next_id = 0
    for v in graph.vertices():
        if v in fine_to_coarse:
            continue
        partner = mate.get(v)
        weight = graph.vertex_weight[v]
        fine_to_coarse[v] = next_id
        if partner is not None:
            fine_to_coarse[partner] = next_id
            weight += graph.vertex_weight[partner]
        coarse.add_vertex(next_id, weight)
        next_id += 1
    for u, v, w in graph.edges():
        cu = fine_to_coarse[u]
        cv = fine_to_coarse[v]
        if cu != cv:
            coarse.add_edge(cu, cv, w)
    return CoarseningLevel(graph, coarse, fine_to_coarse)


def coarsen_to_size(graph, target_vertices, rng, shrink_floor=0.95):
    """Coarsen until ``target_vertices`` or progress stalls.

    Returns the list of levels, finest first.  Stops early when a level
    shrinks by less than ``1 - shrink_floor`` (matching saturates on dense or
    star-like graphs).
    """
    levels = []
    current = graph
    while current.num_vertices > target_vertices:
        level = coarsen_once(current, rng)
        levels.append(level)
        if level.coarse.num_vertices >= current.num_vertices * shrink_floor:
            break
        current = level.coarse
    return levels
