"""Initial bisection of the coarsest graph.

Greedy graph growing (GGGP): grow region 0 outward from a pseudo-peripheral
seed, always absorbing the frontier vertex whose move cuts the fewest edge
weight, until region 0 holds the target vertex weight.  Several seeds are
tried and the best bisection kept.
"""

import heapq

__all__ = ["greedy_bisection", "pseudo_peripheral_vertex"]


def pseudo_peripheral_vertex(graph, start, hops=2):
    """A vertex far from ``start``: repeat BFS-to-farthest ``hops`` times."""
    current = start
    for _ in range(hops):
        distances = {current: 0}
        frontier = [current]
        farthest = current
        while frontier:
            next_frontier = []
            for v in frontier:
                for w in graph.neighbors(v):
                    if w not in distances:
                        distances[w] = distances[v] + 1
                        next_frontier.append(w)
                        farthest = w
            frontier = next_frontier
        current = farthest
    return current


def _grow_from(graph, seed, target_weight):
    """Grow one region from ``seed``; returns the 0/1 assignment map."""
    assignment = {v: 1 for v in graph.vertices()}
    region_weight = 0
    # Max-heap on gain = (internal weight gained) - (external weight exposed);
    # approximated by weight-to-region minus weight-to-outside.
    in_region = set()
    counter = 0
    heap = [(0.0, counter, seed)]
    enqueued = {seed}
    while heap and region_weight < target_weight:
        _, __, v = heapq.heappop(heap)
        if v in in_region:
            continue
        in_region.add(v)
        assignment[v] = 0
        region_weight += graph.vertex_weight[v]
        for w in graph.neighbors(v):
            if w in in_region:
                continue
            to_region = sum(
                weight
                for x, weight in graph.neighbors(w).items()
                if x in in_region
            )
            gain = 2 * to_region - graph.weighted_degree(w)
            counter += 1
            if w not in enqueued:
                enqueued.add(w)
            heapq.heappush(heap, (-gain, counter, w))
        if not heap and region_weight < target_weight:
            # Disconnected remainder: seed a new component.
            outside = next(
                (u for u in graph.vertices() if u not in in_region), None
            )
            if outside is None:
                break
            counter += 1
            heapq.heappush(heap, (0.0, counter, outside))
    return assignment


def greedy_bisection(graph, target_weight, rng, num_tries=4):
    """Best-of-``num_tries`` greedy-grown bisection.

    Returns the 0/1 assignment map with the smallest cut weight whose region
    0 reaches approximately ``target_weight``.
    """
    vertices = list(graph.vertices())
    if not vertices:
        return {}
    best_assignment = None
    best_cut = None
    for attempt in range(num_tries):
        start = vertices[rng.randrange(len(vertices))]
        seed = pseudo_peripheral_vertex(graph, start) if attempt % 2 == 0 else start
        assignment = _grow_from(graph, seed, target_weight)
        cut = graph.cut_weight(assignment)
        if best_cut is None or cut < best_cut:
            best_cut = cut
            best_assignment = assignment
    return best_assignment
