"""k-way partitioning by recursive multilevel bisection.

For arbitrary k (the paper uses 9) the driver splits the target partition
count as evenly as possible at each level — e.g. 9 → (5, 4) → ((3, 2),
(2, 2)) — and asks the multilevel bisector for a weight split proportional
to the sub-counts.
"""

from repro.partitioning.base import Partitioner, PartitionState
from repro.partitioning.multilevel.coarsen import coarsen_to_size
from repro.partitioning.multilevel.initial import greedy_bisection
from repro.partitioning.multilevel.refine import fm_refine
from repro.partitioning.multilevel.weighted import WeightedGraph
from repro.utils import make_rng

__all__ = ["MultilevelPartitioner"]


def _multilevel_bisect(graph, fraction_0, rng, coarsest_size, tolerance):
    """Bisect a WeightedGraph; side 0 gets ``fraction_0`` of the weight.

    Returns the 0/1 assignment map over ``graph``'s vertices.
    """
    target_weight_0 = fraction_0 * graph.total_vertex_weight
    levels = coarsen_to_size(graph, coarsest_size, rng)
    coarsest = levels[-1].coarse if levels else graph
    assignment = greedy_bisection(coarsest, target_weight_0, rng)
    fm_refine(coarsest, assignment, target_weight_0, tolerance=tolerance)
    for level in reversed(levels):
        assignment = level.project(assignment)
        fm_refine(level.fine, assignment, target_weight_0, tolerance=tolerance)
    return assignment


def _split_partition_count(k):
    """Split k into the two halves recursive bisection will produce."""
    half = (k + 1) // 2
    return half, k - half


class MultilevelPartitioner(Partitioner):
    """Centralised multilevel k-way partitioner (the METIS reference line).

    Parameters:

    ``coarsest_size``
        Stop coarsening once the graph is this small (default 64 vertices).
    ``tolerance``
        Balance band for refinement, as a fraction of total weight
        (default 0.05, i.e. METIS-like 5 % imbalance allowance).
    ``seed``
        Seeds matching and seed-vertex selection; fixed seed → fixed output.
    """

    name = "METIS-like"

    def __init__(self, coarsest_size=64, tolerance=0.05, seed=0):
        self.coarsest_size = coarsest_size
        self.tolerance = tolerance
        self.seed = seed

    def partition(self, graph, num_partitions, capacities=None):
        state = PartitionState(graph, num_partitions, capacities)
        weighted = WeightedGraph.from_graph(graph)
        rng = make_rng(self.seed, "multilevel")
        assignment = {}
        self._recurse(weighted, 0, num_partitions, rng, assignment)
        for v in graph.vertices():
            state.assign(v, assignment[v])
        return state

    def _recurse(self, weighted, first_pid, k, rng, out_assignment):
        """Recursively bisect ``weighted`` into partitions [first_pid, first_pid+k)."""
        if k == 1 or weighted.num_vertices == 0:
            for v in weighted.vertices():
                out_assignment[v] = first_pid
            return
        k0, k1 = _split_partition_count(k)
        side_map = _multilevel_bisect(
            weighted,
            fraction_0=k0 / k,
            rng=rng,
            coarsest_size=self.coarsest_size,
            tolerance=self.tolerance,
        )
        side0 = WeightedGraph()
        side1 = WeightedGraph()
        for v in weighted.vertices():
            target = side0 if side_map[v] == 0 else side1
            target.add_vertex(v, weighted.vertex_weight[v])
        for u, v, w in weighted.edges():
            if side_map[u] == side_map[v]:
                target = side0 if side_map[u] == 0 else side1
                target.add_edge(u, v, w)
        self._recurse(side0, first_pid, k0, rng, out_assignment)
        self._recurse(side1, first_pid + k0, k1, rng, out_assignment)
