"""Fiduccia–Mattheyses boundary refinement for a bisection.

Classic FM with best-prefix rollback: each pass greedily moves the
highest-gain movable boundary vertex (each vertex at most once per pass),
tracking the running cut, and finally rewinds to the best prefix seen.
Balance is enforced as a weight band around the target split.
"""

import heapq

__all__ = ["fm_refine"]


def _gain(graph, assignment, v):
    """Cut-weight reduction if ``v`` switches sides."""
    side = assignment[v]
    internal = 0
    external = 0
    for w, weight in graph.neighbors(v).items():
        if assignment[w] == side:
            internal += weight
        else:
            external += weight
    return external - internal


def fm_refine(
    graph,
    assignment,
    target_weight_0,
    tolerance=0.05,
    max_passes=6,
    max_moves_per_pass=None,
):
    """Refine a 0/1 ``assignment`` in place; returns the final cut weight.

    ``target_weight_0`` is the desired vertex weight of side 0; moves keeping
    side 0 within ``±tolerance × total_weight`` are legal.  Passes repeat
    until no pass improves the cut.
    """
    total_weight = graph.total_vertex_weight
    band = tolerance * total_weight
    low = target_weight_0 - band
    high = target_weight_0 + band
    weight_0 = sum(
        graph.vertex_weight[v] for v in graph.vertices() if assignment[v] == 0
    )
    cut = graph.cut_weight(assignment)

    for _ in range(max_passes):
        start_cut = cut
        locked = set()
        heap = []
        counter = 0
        for v in graph.vertices():
            g = _gain(graph, assignment, v)
            heapq.heappush(heap, (-g, counter, v))
            counter += 1
        moves = []  # (vertex, cut_after, weight0_after)
        best_prefix = 0
        best_cut = cut
        running_cut = cut
        running_weight_0 = weight_0
        move_budget = (
            max_moves_per_pass
            if max_moves_per_pass is not None
            else graph.num_vertices
        )
        while heap and len(moves) < move_budget:
            neg_gain, _, v = heapq.heappop(heap)
            if v in locked:
                continue
            current_gain = _gain(graph, assignment, v)
            if -neg_gain != current_gain:
                # Stale entry: re-queue with the fresh gain.
                counter += 1
                heapq.heappush(heap, (-current_gain, counter, v))
                continue
            vw = graph.vertex_weight[v]
            if assignment[v] == 0:
                new_weight_0 = running_weight_0 - vw
            else:
                new_weight_0 = running_weight_0 + vw
            if not low <= new_weight_0 <= high:
                locked.add(v)
                continue
            # Execute the tentative move.
            assignment[v] = 1 - assignment[v]
            locked.add(v)
            running_cut -= current_gain
            running_weight_0 = new_weight_0
            moves.append(v)
            if running_cut < best_cut:
                best_cut = running_cut
                best_prefix = len(moves)
            # Neighbour gains changed; push fresh entries lazily.
            for w in graph.neighbors(v):
                if w not in locked:
                    counter += 1
                    heapq.heappush(heap, (-_gain(graph, assignment, w), counter, w))
        # Roll back past the best prefix.
        for v in moves[best_prefix:]:
            vw = graph.vertex_weight[v]
            if assignment[v] == 0:
                running_weight_0 -= vw
            else:
                running_weight_0 += vw
            assignment[v] = 1 - assignment[v]
        cut = graph.cut_weight(assignment)
        weight_0 = sum(
            graph.vertex_weight[v] for v in graph.vertices() if assignment[v] == 0
        )
        if cut >= start_cut:
            break
    return cut
