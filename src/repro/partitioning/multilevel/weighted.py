"""Weighted graph used internally by the multilevel partitioner.

Coarsening collapses matched vertex pairs into super-vertices; vertex
weights track how many original vertices a super-vertex represents and edge
weights track how many original edges run between two super-vertices.  Both
are needed for the coarse-level cut to equal the fine-level cut.
"""

__all__ = ["WeightedGraph"]


class WeightedGraph:
    """Undirected graph with integer vertex and edge weights."""

    __slots__ = ("adj", "vertex_weight", "total_vertex_weight")

    def __init__(self):
        self.adj = {}
        self.vertex_weight = {}
        self.total_vertex_weight = 0

    @classmethod
    def from_graph(cls, graph):
        """Lift an unweighted :class:`repro.graph.Graph` (all weights 1)."""
        wg = cls()
        for v in graph.vertices():
            wg.add_vertex(v, 1)
        for u, v in graph.edges():
            wg.add_edge(u, v, 1)
        return wg

    def add_vertex(self, v, weight=1):
        if v in self.adj:
            raise ValueError(f"duplicate vertex {v!r}")
        self.adj[v] = {}
        self.vertex_weight[v] = weight
        self.total_vertex_weight += weight

    def add_edge(self, u, v, weight=1):
        """Add or reinforce an undirected weighted edge."""
        if u == v:
            return
        self.adj[u][v] = self.adj[u].get(v, 0) + weight
        self.adj[v][u] = self.adj[v].get(u, 0) + weight

    @property
    def num_vertices(self):
        return len(self.adj)

    def vertices(self):
        return iter(self.adj)

    def neighbors(self, v):
        """Map neighbour -> edge weight."""
        return self.adj[v]

    def weighted_degree(self, v):
        return sum(self.adj[v].values())

    def edges(self):
        """Yield each undirected edge once as ``(u, v, weight)``."""
        seen = set()
        for u, neighbours in self.adj.items():
            for v, w in neighbours.items():
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    yield u, v, w

    def cut_weight(self, assignment):
        """Total weight of edges crossing the 0/1 ``assignment`` map."""
        cut = 0
        for u, v, w in self.edges():
            if assignment[u] != assignment[v]:
                cut += w
        return cut
