"""RND — balanced pseudo-random partitioning.

"Vertices were assigned to partitions through a pseudorandom generator,
still ensuring balanced partitions" (§4.2.1).  We implement the balanced
variant by shuffling the vertex list and dealing it round-robin, which gives
sizes differing by at most one.
"""

from repro.partitioning.base import Partitioner, PartitionState
from repro.utils import make_rng

__all__ = ["RandomPartitioner"]


class RandomPartitioner(Partitioner):
    """Shuffle vertices with a seeded RNG and deal them round-robin."""

    name = "RND"

    def __init__(self, seed=0):
        self.seed = seed

    def partition(self, graph, num_partitions, capacities=None):
        rng = make_rng(self.seed, "random_partitioner")
        state = PartitionState(graph, num_partitions, capacities)
        order = list(graph.vertices())
        rng.shuffle(order)
        for index, v in enumerate(order):
            state.assign(v, index % num_partitions)
        return state

    def place(self, state, vertex):
        rng = make_rng(self.seed, "random_place", vertex)
        pid = rng.randrange(state.num_partitions)
        if state.remaining_capacity(pid) <= 0:
            pid = max(range(state.num_partitions), key=state.remaining_capacity)
        state.assign(vertex, pid)
        return pid
