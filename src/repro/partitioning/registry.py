"""Name-based strategy registry.

Benchmarks and examples select initial strategies by the paper's labels
(DGR, HSH, MNN, RND, plus METIS for the reference line); the registry keeps
that mapping in one place.
"""

from repro.partitioning.hashing import HashPartitioner
from repro.partitioning.ldg import LinearDeterministicGreedy
from repro.partitioning.mnn import MinimumNeighbours
from repro.partitioning.multilevel import MultilevelPartitioner
from repro.partitioning.random_partition import RandomPartitioner

__all__ = ["STRATEGIES", "make_partitioner"]

STRATEGIES = {
    "HSH": HashPartitioner,
    "RND": RandomPartitioner,
    "DGR": LinearDeterministicGreedy,
    "MNN": MinimumNeighbours,
    "METIS": MultilevelPartitioner,
}


def make_partitioner(name, seed=0):
    """Instantiate a strategy by paper label; seeded where applicable.

    >>> make_partitioner("HSH").name
    'HSH'
    """
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {sorted(STRATEGIES)}"
        ) from None
    if cls in (RandomPartitioner, MultilevelPartitioner):
        return cls(seed=seed)
    return cls()
