"""The wider Stanton–Kliot streaming-heuristic family ([35]).

The paper's DGR baseline is the best of ~10 single-pass heuristics Stanton
& Kliot evaluate; this module ships the other commonly-cited ones so the
baseline comparison can be reproduced in full:

* :class:`BalancedPartitioner` — always the least-loaded partition (pure
  load balancing, ignores edges);
* :class:`ChunkingPartitioner` — contiguous stream chunks (what a naive
  loader does; good when stream order has locality, terrible otherwise);
* :class:`UnweightedGreedy` — most neighbours, capacity as a hard limit
  only (no linear penalty — the variant LDG improves upon);
* :class:`ExponentialGreedy` — neighbours weighted by an exponential
  fullness penalty ``1 − e^(fill − 1)`` instead of DGR's linear one;
* :class:`TriangleGreedy` — weights a candidate partition by the number of
  *edges among* the vertex's neighbours already there (closed triangles),
  rewarding dense placements.

All obey the :class:`~repro.partitioning.base.Partitioner` contract, so
they drop into the adaptive runner and benches exactly like DGR.
"""

import math

from repro.partitioning.base import (
    Partitioner,
    PartitionState,
    balanced_capacities,
)

__all__ = [
    "BalancedPartitioner",
    "ChunkingPartitioner",
    "ExponentialGreedy",
    "STREAMING_STRATEGIES",
    "TriangleGreedy",
    "UnweightedGreedy",
]


class _StreamingBase(Partitioner):
    """Shared single-pass driver: subclasses implement ``place``."""

    def __init__(self, stream_order=None):
        self.stream_order = stream_order

    def partition(self, graph, num_partitions, capacities=None):
        if capacities is None:
            capacities = balanced_capacities(graph.num_vertices, num_partitions)
        state = PartitionState(graph, num_partitions, capacities)
        order = (
            self.stream_order if self.stream_order is not None else graph.vertices()
        )
        for v in order:
            self.place(state, v)
        return state

    @staticmethod
    def _spill(state):
        """Fallback destination when every partition is full."""
        return max(range(state.num_partitions), key=state.remaining_capacity)


class BalancedPartitioner(_StreamingBase):
    """Place every vertex in the currently least-loaded partition."""

    name = "BAL"

    def place(self, state, vertex):
        pid = min(
            range(state.num_partitions),
            key=lambda p: (state.size(p), p),
        )
        state.assign(vertex, pid)
        return pid


class ChunkingPartitioner(_StreamingBase):
    """Fill partition 0 to capacity, then partition 1, and so on."""

    name = "CHUNK"

    def place(self, state, vertex):
        for pid in range(state.num_partitions):
            if state.remaining_capacity(pid) > 0:
                state.assign(vertex, pid)
                return pid
        pid = self._spill(state)
        state.assign(vertex, pid)
        return pid


class UnweightedGreedy(_StreamingBase):
    """Most neighbours wins; capacity is only a hard limit.

    Without DGR's fullness penalty this heuristic densifies early
    partitions — the pathology LDG's linear weighting fixes.
    """

    name = "UGR"

    def place(self, state, vertex):
        counts = state.neighbour_partition_counts(vertex)
        best_pid = None
        best_key = None
        for pid in range(state.num_partitions):
            if state.remaining_capacity(pid) <= 0:
                continue
            key = (counts.get(pid, 0), state.remaining_capacity(pid), -pid)
            if best_key is None or key > best_key:
                best_key = key
                best_pid = pid
        if best_pid is None:
            best_pid = self._spill(state)
        state.assign(vertex, best_pid)
        return best_pid


class ExponentialGreedy(_StreamingBase):
    """DGR with an exponential instead of linear fullness penalty."""

    name = "EGR"

    def place(self, state, vertex):
        counts = state.neighbour_partition_counts(vertex)
        best_pid = None
        best_key = None
        for pid in range(state.num_partitions):
            capacity = state.capacities[pid]
            if capacity <= 0:
                continue
            fill = state.size(pid) / capacity
            if fill >= 1.0:
                continue
            penalty = 1.0 - math.exp(fill - 1.0)
            key = (counts.get(pid, 0) * penalty, -fill)
            if best_key is None or key > best_key:
                best_key = key
                best_pid = pid
        if best_pid is None:
            best_pid = self._spill(state)
        state.assign(vertex, best_pid)
        return best_pid


class TriangleGreedy(_StreamingBase):
    """Score = closed triangles: edges among the vertex's neighbours that
    already live in the candidate partition, discounted by fullness."""

    name = "TGR"

    def place(self, state, vertex):
        graph = state.graph
        neighbours = [
            w for w in graph.neighbors(vertex) if state.partition_of_or_none(w) is not None
        ]
        triangle_scores = {}
        for i, u in enumerate(neighbours):
            pu = state.partition_of(u)
            triangle_scores.setdefault(pu, 0)
            for w in neighbours[i + 1:]:
                if state.partition_of(w) == pu and graph.has_edge(u, w):
                    triangle_scores[pu] += 1
        counts = state.neighbour_partition_counts(vertex)
        best_pid = None
        best_key = None
        for pid in range(state.num_partitions):
            capacity = state.capacities[pid]
            if capacity <= 0:
                continue
            fill = state.size(pid) / capacity
            if fill >= 1.0:
                continue
            score = (
                triangle_scores.get(pid, 0) + counts.get(pid, 0)
            ) * (1.0 - fill)
            key = (score, -fill)
            if best_key is None or key > best_key:
                best_key = key
                best_pid = pid
        if best_pid is None:
            best_pid = self._spill(state)
        state.assign(vertex, best_pid)
        return best_pid


STREAMING_STRATEGIES = {
    cls.name: cls
    for cls in (
        BalancedPartitioner,
        ChunkingPartitioner,
        UnweightedGreedy,
        ExponentialGreedy,
        TriangleGreedy,
    )
}
