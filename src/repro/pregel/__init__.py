"""Pregel-inspired continuous graph processing system (simulated cluster).

§3 of the paper integrates the adaptive partitioner into "a large-scale
graph processing system inspired by Pregel", differing from classic Pregel
in two ways: computation runs *continuously* once the graph is loaded, and
vertices/edges are injected/removed *from a stream* during computation.
This package reproduces that system as a faithful single-process simulation:

* real BSP semantics — per-worker message queues, one-superstep message
  delay, combiners, aggregators, vote-to-halt (ignored in continuous mode);
* the **deferred vertex migration** protocol of Fig. 3 — a vertex that
  decides to migrate at superstep t waits in "migrating" state and actually
  moves at t + 1, after all workers were notified, so no message is lost;
* the **capacity messaging** protocol — workers exchange predicted
  capacities ``C_{t+1}(i) = C_t(i) − V_out + V_in`` one superstep late;
* a **simulated network** that counts local vs remote messages and
  migrations per superstep, feeding the cost model that converts counts into
  the paper's "time per iteration";
* **failure injection and recovery** (the Fig. 8 worker-failure dip) backed
  by periodic checkpoints.

Substitution note (DESIGN.md §4): the paper ran on 5–63-blade clusters; we
run the same protocols over simulated workers.  The paper's reported times
are >80 % network-dominated, and our cost model makes remote-message volume
the driver of modelled time, so the relative shapes survive the
substitution.
"""

from repro.pregel.aggregators import Aggregators, MaxAggregator, MinAggregator, SumAggregator
from repro.pregel.capacity_protocol import CapacityProtocol
from repro.pregel.fault import FaultPlan
from repro.pregel.messages import MessageRouter, sum_combiner
from repro.pregel.migration import MigrationProtocol
from repro.pregel.network import NetworkStats, SuperstepTraffic
from repro.pregel.system import PregelConfig, PregelSystem, SuperstepReport
from repro.pregel.vertex import VertexContext, VertexProgram

__all__ = [
    "Aggregators",
    "CapacityProtocol",
    "FaultPlan",
    "MaxAggregator",
    "MessageRouter",
    "MigrationProtocol",
    "MinAggregator",
    "NetworkStats",
    "PregelConfig",
    "PregelSystem",
    "SumAggregator",
    "SuperstepReport",
    "SuperstepTraffic",
    "VertexContext",
    "VertexProgram",
    "sum_combiner",
]
