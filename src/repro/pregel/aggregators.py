"""Pregel aggregators.

Aggregators are the only global channel the model offers: every vertex may
contribute a value during superstep t and every vertex may read the folded
result during t + 1.  The capacity protocol and convergence accounting of
the background partitioner ride on the same mechanism, exactly as the
paper's "partitioning API" extends the Pregel API.
"""

__all__ = ["Aggregators", "MaxAggregator", "MinAggregator", "SumAggregator"]


class SumAggregator:
    """Folds contributions by addition (zero when nobody contributes)."""

    zero = 0

    @staticmethod
    def fold(accumulator, value):
        """Add ``value`` into the accumulator."""
        return accumulator + value


class MaxAggregator:
    """Keeps the maximum contribution (None when nobody contributes)."""

    zero = None

    @staticmethod
    def fold(accumulator, value):
        """Keep the larger of accumulator and ``value``."""
        if accumulator is None:
            return value
        return max(accumulator, value)


class MinAggregator:
    """Keeps the minimum contribution (None when nobody contributes)."""

    zero = None

    @staticmethod
    def fold(accumulator, value):
        """Keep the smaller of accumulator and ``value``."""
        if accumulator is None:
            return value
        return min(accumulator, value)


class Aggregators:
    """Named aggregator registry with the one-superstep visibility delay."""

    def __init__(self):
        self._kinds = {}
        self._current = {}
        self._previous = {}

    def register(self, name, kind):
        """Register an aggregator under ``name`` (e.g. ``SumAggregator``)."""
        self._kinds[name] = kind
        self._current[name] = kind.zero
        self._previous[name] = kind.zero

    def contribute(self, name, value):
        """Fold a contribution into the current superstep's accumulator."""
        kind = self._kinds.get(name)
        if kind is None:
            raise KeyError(f"aggregator {name!r} not registered")
        self._current[name] = kind.fold(self._current[name], value)

    def previous(self, name):
        """Value folded during the previous superstep."""
        if name not in self._kinds:
            raise KeyError(f"aggregator {name!r} not registered")
        return self._previous[name]

    def barrier(self):
        """Superstep barrier: expose current values, reset accumulators."""
        for name, kind in self._kinds.items():
            self._previous[name] = self._current[name]
            self._current[name] = kind.zero

    def names(self):
        """Registered aggregator names, in registration order."""
        return list(self._kinds)
