"""Worker-to-worker capacity messaging (§3).

Vertices need every partition's remaining capacity to compute quotas, but
remote messaging obeys the one-iteration Pregel delay.  The paper has each
worker send its *predicted* capacity for t + 1:

    C_{t+1}(i) = C_t(i) − V_out^{t+1}(i) + V_in^{t+1}(i)

where both migration terms are known one iteration early thanks to the
deferred-migration announcements.  In the simulation the prediction is
realised by snapshotting remaining capacities at the barrier *after*
announcements were applied — i.e. the capacities that will actually hold
during the next superstep — and exposing exactly that (one-superstep-old
but self-consistent) vector to the next superstep's migration decisions.

The broadcast itself is metered: k workers each send k − 1 capacity
messages per superstep, the paper's "proportional to the total number of
partitions" overhead.
"""

__all__ = ["CapacityProtocol"]


class CapacityProtocol:
    """Publishes the post-announcement capacity vector once per barrier."""

    def __init__(self, network, num_workers):
        self._network = network
        self._num_workers = num_workers
        self._published = None

    def publish(self, remaining_capacities):
        """Barrier: broadcast the predicted next-superstep capacities."""
        self._published = list(remaining_capacities)
        if self._num_workers > 1:
            self._network.count_capacity_message(
                self._num_workers * (self._num_workers - 1)
            )

    def visible_capacities(self):
        """The capacity vector migration decisions may consult this superstep.

        None before the first barrier (the paper's first iteration has no
        capacity information either — no migrations happen at superstep 0).
        """
        return None if self._published is None else list(self._published)
