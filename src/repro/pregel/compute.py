"""The shard-callable compute loop shared by both execution engines.

:func:`compute_block` is the paper's *compute phase* over one block of
vertices, written as a pure function of a **host** — the object that owns
the block's state.  Two hosts exist:

* :class:`~repro.pregel.system.PregelSystem` passes itself and the whole
  vertex set: the classic single-process reference loop;
* :class:`~repro.cluster.shard.Shard` passes itself and its resident
  vertices: the sharded execution layer runs one block per shard, possibly
  in another thread or process.

The host contract is exactly what :class:`~repro.pregel.vertex.VertexContext`
reads plus the loop's own needs:

==================  =====================================================
attribute            contract
==================  =====================================================
``program``          the :class:`VertexProgram` being run
``continuous``       ignore vote-to-halt (the paper's always-on mode)
``values``           mutable mapping vertex id → value
``halted``           mutable set of halted vertex ids
``graph``            ``neighbors(v)`` / ``degree(v)`` / ``num_vertices``
``router``           ``send(source_id, target_id, message)``
``aggregators``      ``contribute(name, value)`` / ``previous(name)``
``note_cost(v, c)``  account one vertex's modelled compute cost
==================  =====================================================

Because every effect flows through the host, a block's outcome is a pure
function of (host state, inbox, superstep) — the property the cluster layer
relies on for bit-identical results across executors.

**The batched kernel path.**  When the program is a
:class:`~repro.pregel.vertex.BatchedVertexProgram`, numpy is importable and
``REPRO_BATCH_KERNEL`` does not disable it, :func:`compute_block` evaluates
the whole block through ``program.compute_batch`` instead of the scalar
loop: pack slot-indexed value/degree/inbox arrays, run the kernel, reduce
its three-column outbox in the canonical (first-send) order and commit —
values, halt votes, router absorption, cost accounting — exactly as the
scalar loop would have, bit for bit.  The packing stage is read-only, so
any mismatch (non-numeric values or ids-as-labels, an exotic combiner, a
kernel that declines by returning None) falls back to the scalar loop with
no state touched.  Batching hosts extend the contract with four optional
members (hosts without them simply never batch):

==========================  =============================================
``batch_table``              a :class:`~repro.core.sweep.BlockTable` local
                             CSR (or None to rebuild topology per block)
``batch_workers(ids)``       per-row source worker ids, or None to decline
``note_costs(ids, costs)``   vectorised ``note_cost`` over the block
``note_batched_block()``     count one batched block (observability)
==========================  =============================================

Known caveat, by design: the canonical reductions start sums at ``+0.0``
and take numpy minima, so a program whose messages include ``-0.0`` or
NaN payloads is outside the bit-identity contract (every shipped batched
program emits strictly positive finite messages).

:func:`decide_block` is the matching *decision step* of the paper's
background partitioner: heuristic evaluation plus the vertex-local
willingness coin over one block of candidate vertices, against a frozen
:class:`~repro.core.heuristic.DecisionContext` snapshot.  The same two
hosts run it — the single-process system over the whole candidate set, a
shard over its resident slice — and because every willingness draw is
keyed by ``(lane, round, vertex)`` (no shared stream), the union of the
blocks' proposals is a pure function of the start-of-round state no matter
how the blocks are split.  The host contract adds two members:

==================  =====================================================
``heuristic``        the :class:`MigrationHeuristic` being evaluated
``placement_of(v)``  partition id of any vertex, or None when unassigned
==================  =====================================================
"""

import os
from itertools import chain as _chain

from repro.pregel.messages import min_combiner, sum_combiner
from repro.pregel.vertex import BlockContext, VertexContext
from repro.utils.rng import WillingnessSource

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional
    _np = None

__all__ = ["batch_kernel_enabled", "compute_block", "decide_block"]


def batch_kernel_enabled():
    """True unless ``REPRO_BATCH_KERNEL`` disables the batched path.

    Read per compute call (not cached) so test suites and the CI matrix
    leg can flip the gate between runs of one process.  Any of ``off``,
    ``0``, ``false`` or ``no`` (case-insensitive) disables; everything
    else — including unset — leaves the kernel on.
    """
    value = os.environ.get("REPRO_BATCH_KERNEL", "")
    return value.strip().lower() not in {"off", "0", "false", "no"}


def compute_block(host, vertex_ids, inbox, superstep):
    """Run the host's program over ``vertex_ids`` against ``inbox``.

    ``inbox`` maps vertex id → message list (absent = no mail).  Halted
    vertices without mail are skipped unless the host is ``continuous``;
    mail wakes a halted vertex.  ``host.note_cost`` is called exactly once
    per computed vertex.  Returns the number of vertices computed.

    Programs that declare ``compute_batch`` take the batched kernel path
    when it applies (see the module docstring); the scalar loop below is
    the reference semantics and the universal fallback.
    """
    program = host.program
    if (
        program.compute_batch is not None
        and _np is not None
        and batch_kernel_enabled()
    ):
        computed = _batched_block(host, vertex_ids, inbox, superstep)
        if computed is not None:
            return computed
    continuous = host.continuous
    halted = host.halted
    computed = 0
    for v in vertex_ids:
        messages = inbox.get(v, ())
        if not continuous and v in halted and not messages:
            continue
        if messages:
            halted.discard(v)
        ctx = VertexContext(host, v, superstep)
        program.compute(ctx, list(messages))
        host.note_cost(v, program.compute_cost(ctx, messages))
        computed += 1
    return computed


def _batched_block(host, vertex_ids, inbox, superstep):
    """Attempt the batched path; returns the computed count or None.

    None means "decline": nothing was mutated (packing is read-only and
    the outbox reduction happens before any commit), so the caller simply
    runs the scalar loop instead.
    """
    program = host.program
    combiner = program.combiner()
    if not (
        combiner is None or combiner is sum_combiner or combiner is min_combiner
    ):
        return None
    batch_workers = getattr(host, "batch_workers", None)
    note_costs = getattr(host, "note_costs", None)
    if batch_workers is None or note_costs is None:
        return None
    try:
        dtype = _np.dtype(program.batch_dtype)
    except TypeError:
        return None
    if combiner is sum_combiner and dtype.kind != "f":
        return None  # the bincount reduction accumulates in float64
    halted = host.halted
    continuous = host.continuous
    # Row selection: exactly the scalar loop's skip rule, in its order.
    if continuous:
        row_ids = list(vertex_ids)
    else:
        row_ids = [v for v in vertex_ids if v not in halted or inbox.get(v)]
    if not row_ids:
        return 0
    block, mailed, slot_ids = _pack_block(host, row_ids, inbox, superstep, dtype)
    if block is None:
        return None
    result = program.compute_batch(block)
    if result is None:
        return None  # the kernel declined (a shape it cannot reproduce)
    out = None
    if result.out is not None:
        out = _reduce_outbox(host, row_ids, slot_ids, result.out, combiner)
        if out is None:
            return None
    # ---- commit: from here on, mirror the scalar loop's effects ----
    host.values.update(zip(row_ids, result.values.tolist()))
    halted.difference_update(mailed)
    halt = result.halt
    if halt is True:
        halted.update(row_ids)
    elif halt is not False:
        halted.update(row_ids[i] for i in _np.flatnonzero(halt).tolist())
    if out is not None:
        host.router.absorb_columns(*out)
    costs = result.costs
    if costs is None:
        costs = 1.0 + block.msg_counts
    note_costs(row_ids, costs)
    note_batched = getattr(host, "note_batched_block", None)
    if note_batched is not None:
        note_batched()
    return len(row_ids)


def _pack_block(host, row_ids, inbox, superstep, dtype):
    """Build the read-only ``(block, mailed, slot_ids)`` triple, or Nones.

    Strict about types: every value and message must be exactly the Python
    scalar type the kernel dtype round-trips losslessly (``float`` for
    ``f``-kind, non-bool ``int`` for ``i``-kind) — anything else (string
    labels, mixed int/float values, ints beyond int64) declines, because a
    lossy cast would leak into digests on write-back.
    """
    decline = (None, None, None)
    if dtype.kind == "f":
        py_type = float
    elif dtype.kind == "i":
        py_type = int
    else:
        return decline
    values_map = host.values
    raw = [values_map[v] for v in row_ids]
    if set(map(type, raw)) - {py_type}:
        return decline
    n = len(row_ids)
    inbox_get = inbox.get
    boxes = list(map(inbox_get, row_ids))
    if all(boxes):
        # Steady-state fast path (every row has mail — e.g. PageRank past
        # superstep 1): no Python-level loop at all.  ``len`` reports the
        # logical (pre-combining) count, ``list.__len__`` the physical one
        # (a ``CombinedMessages`` mailbox differs in the two).
        mailed = row_ids
        counts = _np.fromiter(map(len, boxes), dtype=_np.int64, count=n)
        phys = _np.fromiter(map(list.__len__, boxes), dtype=_np.int64, count=n)
        msg_vals = list(_chain.from_iterable(boxes))
        msg_rows = _np.repeat(_np.arange(n, dtype=_np.int64), phys)
    else:
        counts_list = []
        msg_vals = []
        mailed = []
        mailed_rows = []
        phys = []
        extend_vals = msg_vals.extend
        for i, msgs in enumerate(boxes):
            if not msgs:
                counts_list.append(0)
                continue
            mailed.append(row_ids[i])
            mailed_rows.append(i)
            counts_list.append(len(msgs))  # logical (CombinedMessages) count
            before = len(msg_vals)
            extend_vals(msgs)  # iteration sees the physical (folded) entries
            phys.append(len(msg_vals) - before)
        counts = _np.fromiter(counts_list, dtype=_np.int64, count=n)
        msg_rows = _np.repeat(
            _np.fromiter(mailed_rows, dtype=_np.int64, count=len(mailed_rows)),
            _np.fromiter(phys, dtype=_np.int64, count=len(phys)),
        )
    if set(map(type, msg_vals)) - {py_type}:
        return decline
    try:
        values = _np.array(raw, dtype=dtype)
        msg_values = _np.array(msg_vals, dtype=dtype)
    except (OverflowError, ValueError):
        return decline
    topology = _block_topology(host, row_ids)
    if topology is None:
        return decline
    degrees, indptr, targets, slot_ids = topology
    block = BlockContext(
        superstep=superstep,
        num_vertices=host.graph.num_vertices,
        values=values,
        degrees=degrees,
        indptr=indptr,
        targets=targets,
        msg_values=msg_values,
        msg_row=msg_rows,
        msg_counts=counts,
    )
    return block, mailed, slot_ids


def _block_topology(host, row_ids):
    """``(degrees, indptr, targets, slot_ids)`` for the block's rows.

    A host with a live :class:`~repro.core.sweep.BlockTable` answers from
    its incremental local CSR; otherwise the topology is rebuilt from the
    host's graph each block — same arrays, linear in edges, no amortised
    state.  ``targets`` holds block indices into ``slot_ids`` (rows first,
    then every non-computed neighbour), in adjacency order per row.
    """
    table = getattr(host, "batch_table", None)
    if table is not None:
        return table.gather(row_ids)
    neighbors = host.graph.neighbors
    n = len(row_ids)
    index = {}
    for i, v in enumerate(row_ids):
        index[v] = i
    if len(index) != n:
        return None  # duplicate ids cannot be indexed positionally
    slot_ids = list(row_ids)
    degs = []
    flat = []
    for v in row_ids:
        ns = list(neighbors(v))
        degs.append(len(ns))
        for w in ns:
            j = index.get(w)
            if j is None:
                j = len(slot_ids)
                index[w] = j
                slot_ids.append(w)
            flat.append(j)
    degrees = _np.fromiter(degs, dtype=_np.int64, count=n)
    indptr = _np.zeros(n + 1, dtype=_np.int64)
    _np.cumsum(degrees, out=indptr[1:])
    targets = _np.fromiter(flat, dtype=_np.int64, count=len(flat))
    return degrees, indptr, targets, slot_ids


def _reduce_outbox(host, row_ids, slot_ids, out, combiner):
    """Reduce kernel outbox columns to router-ready unique-key columns.

    Folds duplicate ``(source_worker, target)`` keys with the program's
    combiner in the emission order the arrays carry — which the block
    context built to match the scalar loop's send order — and returns the
    keys in first-send order, so the router's outbox dict ends byte-equal
    with the scalar path's.  Returns ``(workers, targets, payloads)``
    columns of Python scalars, or None to decline (an unplaced source).
    """
    src, dst, payloads = out
    if not len(src):
        return [], [], []
    workers = host.batch_workers(row_ids)
    if workers is None:
        return None
    worker_of_row = _np.asarray(workers, dtype=_np.int64)
    stride = len(slot_ids)
    codes = worker_of_row[src] * stride + dst
    # Dense-code reduction: key space is (max worker + 1) × stride, small
    # enough to scatter into directly — O(E) bincounts instead of an
    # O(E log E) unique over every emitted message.  The reversed scatter
    # leaves each key's *first* emission index, giving first-send order.
    size = int(codes[0]) + 1 if len(codes) == 1 else int(codes.max()) + 1
    occupied = _np.flatnonzero(_np.bincount(codes, minlength=size))
    first = _np.empty(size, dtype=_np.int64)
    first[codes[::-1]] = _np.arange(len(codes) - 1, -1, -1)
    order = _np.argsort(first[occupied])  # first-send order, distinct keys
    keys = occupied[order]
    if combiner is sum_combiner:
        # Per-key accumulation happens in emission order from +0.0, the
        # same addition sequence the scalar combiner fold performs.
        sums = _np.bincount(codes, weights=payloads, minlength=size)
        reduced = sums[keys].tolist()
    elif combiner is min_combiner:
        by_key = _np.argsort(codes, kind="stable")
        bounds = _np.searchsorted(codes[by_key], occupied)
        mins = _np.minimum.reduceat(_np.asarray(payloads)[by_key], bounds)
        reduced = mins[order].tolist()
    else:  # no combiner: per-key message lists, emission order within key
        by_key = _np.argsort(codes, kind="stable")
        splits = _np.searchsorted(codes[by_key], occupied[1:])
        groups = [
            g.tolist() for g in _np.split(_np.asarray(payloads)[by_key], splits)
        ]
        reduced = [groups[i] for i in order.tolist()]
    out_workers = (keys // stride).tolist()
    out_targets = [slot_ids[i] for i in (keys % stride).tolist()]
    return out_workers, out_targets, reduced


def decide_block(host, context, candidates):
    """Run the decision step over ``candidates``; returns the proposals.

    For each assigned candidate the heuristic picks a desired partition
    from the neighbour histogram (read through ``host.placement_of``, so a
    shard answers from its placement mirror and the reference system from
    the authoritative state) and movers flip the keyed willingness coin.
    Returns ``[(vertex, current, desired, willing), ...]`` in candidate
    order — only movers, since settled vertices are no-ops to arbitration.
    """
    placement_of = host.placement_of
    neighbors = host.graph.neighbors
    source = WillingnessSource(context.lane)
    round_index = context.round_index
    s = context.willingness

    def histograms():
        """Yield (vertex, current, neighbour-partition counts) per candidate."""
        for v in candidates:
            current = placement_of(v)
            if current is None:
                continue
            counts = {}
            for w in neighbors(v):
                pid = placement_of(w)
                if pid is not None:
                    counts[pid] = counts.get(pid, 0) + 1
            yield v, current, counts

    return [
        (v, current, desired, source.willing(round_index, v, s))
        for v, current, desired in host.heuristic.desired_partitions(
            context, histograms()
        )
        if desired != current
    ]
