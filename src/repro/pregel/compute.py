"""The shard-callable compute loop shared by both execution engines.

:func:`compute_block` is the paper's *compute phase* over one block of
vertices, written as a pure function of a **host** — the object that owns
the block's state.  Two hosts exist:

* :class:`~repro.pregel.system.PregelSystem` passes itself and the whole
  vertex set: the classic single-process reference loop;
* :class:`~repro.cluster.shard.Shard` passes itself and its resident
  vertices: the sharded execution layer runs one block per shard, possibly
  in another thread or process.

The host contract is exactly what :class:`~repro.pregel.vertex.VertexContext`
reads plus the loop's own needs:

==================  =====================================================
attribute            contract
==================  =====================================================
``program``          the :class:`VertexProgram` being run
``continuous``       ignore vote-to-halt (the paper's always-on mode)
``values``           mutable mapping vertex id → value
``halted``           mutable set of halted vertex ids
``graph``            ``neighbors(v)`` / ``degree(v)`` / ``num_vertices``
``router``           ``send(source_id, target_id, message)``
``aggregators``      ``contribute(name, value)`` / ``previous(name)``
``note_cost(v, c)``  account one vertex's modelled compute cost
==================  =====================================================

Because every effect flows through the host, a block's outcome is a pure
function of (host state, inbox, superstep) — the property the cluster layer
relies on for bit-identical results across executors.

:func:`decide_block` is the matching *decision step* of the paper's
background partitioner: heuristic evaluation plus the vertex-local
willingness coin over one block of candidate vertices, against a frozen
:class:`~repro.core.heuristic.DecisionContext` snapshot.  The same two
hosts run it — the single-process system over the whole candidate set, a
shard over its resident slice — and because every willingness draw is
keyed by ``(lane, round, vertex)`` (no shared stream), the union of the
blocks' proposals is a pure function of the start-of-round state no matter
how the blocks are split.  The host contract adds two members:

==================  =====================================================
``heuristic``        the :class:`MigrationHeuristic` being evaluated
``placement_of(v)``  partition id of any vertex, or None when unassigned
==================  =====================================================
"""

from repro.pregel.vertex import VertexContext
from repro.utils.rng import WillingnessSource

__all__ = ["compute_block", "decide_block"]


def compute_block(host, vertex_ids, inbox, superstep):
    """Run the host's program over ``vertex_ids`` against ``inbox``.

    ``inbox`` maps vertex id → message list (absent = no mail).  Halted
    vertices without mail are skipped unless the host is ``continuous``;
    mail wakes a halted vertex.  ``host.note_cost`` is called exactly once
    per computed vertex.  Returns the number of vertices computed.
    """
    program = host.program
    continuous = host.continuous
    halted = host.halted
    computed = 0
    for v in vertex_ids:
        messages = inbox.get(v, ())
        if not continuous and v in halted and not messages:
            continue
        if messages:
            halted.discard(v)
        ctx = VertexContext(host, v, superstep)
        program.compute(ctx, list(messages))
        host.note_cost(v, program.compute_cost(ctx, messages))
        computed += 1
    return computed


def decide_block(host, context, candidates):
    """Run the decision step over ``candidates``; returns the proposals.

    For each assigned candidate the heuristic picks a desired partition
    from the neighbour histogram (read through ``host.placement_of``, so a
    shard answers from its placement mirror and the reference system from
    the authoritative state) and movers flip the keyed willingness coin.
    Returns ``[(vertex, current, desired, willing), ...]`` in candidate
    order — only movers, since settled vertices are no-ops to arbitration.
    """
    placement_of = host.placement_of
    neighbors = host.graph.neighbors
    source = WillingnessSource(context.lane)
    round_index = context.round_index
    s = context.willingness

    def histograms():
        """Yield (vertex, current, neighbour-partition counts) per candidate."""
        for v in candidates:
            current = placement_of(v)
            if current is None:
                continue
            counts = {}
            for w in neighbors(v):
                pid = placement_of(w)
                if pid is not None:
                    counts[pid] = counts.get(pid, 0) + 1
            yield v, current, counts

    return [
        (v, current, desired, source.willing(round_index, v, s))
        for v, current, desired in host.heuristic.desired_partitions(
            context, histograms()
        )
        if desired != current
    ]
