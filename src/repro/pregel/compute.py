"""The shard-callable compute loop shared by both execution engines.

:func:`compute_block` is the paper's *compute phase* over one block of
vertices, written as a pure function of a **host** — the object that owns
the block's state.  Two hosts exist:

* :class:`~repro.pregel.system.PregelSystem` passes itself and the whole
  vertex set: the classic single-process reference loop;
* :class:`~repro.cluster.shard.Shard` passes itself and its resident
  vertices: the sharded execution layer runs one block per shard, possibly
  in another thread or process.

The host contract is exactly what :class:`~repro.pregel.vertex.VertexContext`
reads plus the loop's own needs:

==================  =====================================================
attribute            contract
==================  =====================================================
``program``          the :class:`VertexProgram` being run
``continuous``       ignore vote-to-halt (the paper's always-on mode)
``values``           mutable mapping vertex id → value
``halted``           mutable set of halted vertex ids
``graph``            ``neighbors(v)`` / ``degree(v)`` / ``num_vertices``
``router``           ``send(source_id, target_id, message)``
``aggregators``      ``contribute(name, value)`` / ``previous(name)``
``note_cost(v, c)``  account one vertex's modelled compute cost
==================  =====================================================

Because every effect flows through the host, a block's outcome is a pure
function of (host state, inbox, superstep) — the property the cluster layer
relies on for bit-identical results across executors.
"""

from repro.pregel.vertex import VertexContext

__all__ = ["compute_block"]


def compute_block(host, vertex_ids, inbox, superstep):
    """Run the host's program over ``vertex_ids`` against ``inbox``.

    ``inbox`` maps vertex id → message list (absent = no mail).  Halted
    vertices without mail are skipped unless the host is ``continuous``;
    mail wakes a halted vertex.  ``host.note_cost`` is called exactly once
    per computed vertex.  Returns the number of vertices computed.
    """
    program = host.program
    continuous = host.continuous
    halted = host.halted
    computed = 0
    for v in vertex_ids:
        messages = inbox.get(v, ())
        if not continuous and v in halted and not messages:
            continue
        if messages:
            halted.discard(v)
        ctx = VertexContext(host, v, superstep)
        program.compute(ctx, list(messages))
        host.note_cost(v, program.compute_cost(ctx, messages))
        computed += 1
    return computed
