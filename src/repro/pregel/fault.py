"""Failure injection and checkpoint-based recovery.

Fig. 8's trace contains "a failure in one of the workers that led to the
triggering of recovery mechanism" — a sudden drop in throughput and
superstep time while the system restores state.  We make that mechanism
first-class and testable:

* the system checkpoints all vertex values every ``checkpoint_interval``
  barriers;
* a :class:`FaultPlan` kills a chosen worker at a chosen superstep: the
  values of every vertex hosted there roll back to the last checkpoint,
  all in-flight messages are dropped (the BSP barrier cannot complete), and
  a recovery event with a modelled time penalty is recorded.

Vertices stay on their partition across the failure (the worker restarts in
place), matching the paper's behaviour where the partitioning survives.
"""

from dataclasses import dataclass, field

__all__ = ["Checkpointer", "FaultPlan"]


@dataclass
class FaultPlan:
    """Scheduled worker failures: {superstep: worker_id}."""

    failures: dict = field(default_factory=dict)

    def worker_failing_at(self, superstep):
        """Worker id scheduled to fail at ``superstep``, or None."""
        return self.failures.get(superstep)

    def add(self, superstep, worker_id):
        """Schedule ``worker_id`` to fail at ``superstep``; returns self."""
        self.failures[superstep] = worker_id
        return self


class Checkpointer:
    """Periodic copy of vertex values (the recovery source)."""

    def __init__(self, interval=10):
        if interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.interval = interval
        self._snapshot = {}
        self._snapshot_superstep = None

    def maybe_checkpoint(self, superstep, values):
        """Snapshot at every ``interval``-th barrier; returns True if taken."""
        if superstep % self.interval != 0:
            return False
        self._snapshot = dict(values)
        self._snapshot_superstep = superstep
        return True

    @property
    def last_checkpoint_superstep(self):
        """Superstep of the most recent snapshot (None before the first)."""
        return self._snapshot_superstep

    def restore_vertices(self, vertex_ids, values, reinitialise):
        """Roll the given vertices back to the snapshot.

        Vertices born after the snapshot (no entry) are re-initialised via
        ``reinitialise(vertex_id)``.  Returns the number restored.
        """
        restored = 0
        for vid in vertex_ids:
            if vid in self._snapshot:
                values[vid] = self._snapshot[vid]
            else:
                values[vid] = reinitialise(vid)
            restored += 1
        return restored
