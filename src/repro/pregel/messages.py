"""Message routing with BSP delivery semantics.

Messages sent during superstep t are delivered at t + 1.  The router decides
*remote vs local* using the destination vertex's worker **at delivery
time** — which is exactly the correctness problem deferred migration solves:
because a migrating vertex only moves after all workers were notified
(:mod:`repro.pregel.migration`), the router's view at delivery time is
always accurate and no message is mis-addressed (Fig. 3, bottom).

Combiners fold messages addressed to the same destination *on the sending
worker*, reducing remote traffic the way Pregel combiners do.
"""

from operator import eq as _eq

__all__ = ["MessageRouter", "min_combiner", "sum_combiner"]


def sum_combiner(a, b):
    """The classic combiner for numeric messages."""
    return a + b


def min_combiner(a, b):
    """Keep the smaller message (min-label flood, shortest paths)."""
    return a if a <= b else b


class MessageRouter:
    """Per-superstep outboxes with combining and local/remote accounting."""

    def __init__(self, placement, network):
        """``placement`` maps vertex id → worker id (live object, shared with
        the system); ``network`` is the :class:`NetworkStats` collector."""
        self._placement = placement
        self._network = network
        self._combiner = None
        self._outbox = {}
        self._inbox = {}

    def set_combiner(self, combiner):
        """Install a message combiner (or None to disable)."""
        self._combiner = combiner

    def send(self, source_id, target_id, message):
        """Queue a message for delivery next superstep.

        With a combiner installed, messages to the same target sent from the
        same *worker* fold immediately (per-worker outboxes are what a real
        implementation combines in).
        """
        source_worker = self._placement.get(source_id)
        key = (source_worker, target_id)
        if self._combiner is not None:
            existing = self._outbox.get(key)
            if existing is not None:
                self._outbox[key] = self._combiner(existing, message)
                return
            self._outbox[key] = message
        else:
            self._outbox.setdefault(key, []).append(message)

    def absorb(self, entries):
        """Merge shard-produced outbox entries into this superstep's outbox.

        ``entries`` iterates ``((source_worker, target_id), payload)`` pairs
        in the producing shard's send order, where ``payload`` follows this
        router's combining convention (a combined message with a combiner
        installed, else a message list).  The cluster layer calls this once
        per shard at the barrier, in shard-id order; keys never collide
        across shards because a worker's vertices live on exactly one shard,
        so a plain insert preserves both combining semantics and the
        deterministic delivery order.
        """
        outbox = self._outbox
        for key, payload in entries:
            outbox[key] = payload

    def absorb_columns(self, workers, targets, payloads):
        """Merge a batched kernel's reduced outbox columns.

        Column layout mirrors the wire codec's outbox frame: parallel
        ``source_worker`` / ``target_id`` / ``payload`` sequences, one entry
        per *distinct* outbox key, already reduced in the canonical order
        (the batched reducer folded duplicate keys before handing them
        over, so no per-message Python objects exist to iterate).  Plain
        inserts — same contract as :meth:`absorb`: keys arrive in the
        producing block's first-send order and never collide with keys
        already present.
        """
        self._outbox.update(zip(zip(workers, targets), payloads))

    def deliver(self):
        """Flush outboxes into inboxes, counting local vs remote traffic.

        Called at the superstep barrier *after* migrations were applied, so
        remote/local classification reflects the destination's new worker.
        Returns the inbox map {vertex_id: [messages]}.
        """
        # One C-level dict probe per entry instead of a Python method call
        # chain; the ``bulk`` view is live, so classification still sees
        # post-migration placements.  Traffic counters accumulate locally
        # and post once — integer sums, so the totals are unchanged.
        bulk = getattr(self._placement, "bulk", None)
        placement_get = self._placement.get if bulk is None else bulk().get
        outbox = self._outbox
        local = remote = 0
        if self._combiner is not None and outbox:
            # Collision-free bulk path: when no target hears from two
            # workers and nothing vanished, the inbox is a straight
            # re-keying of the outbox — built with C-level iteration only.
            targets = [t for _, t in outbox]
            target_workers = list(map(placement_get, targets))
            if None not in target_workers and len(set(targets)) == len(
                targets
            ):
                inbox = dict(
                    zip(targets, [[p] for p in outbox.values()])
                )
                local = sum(
                    map(_eq, [w for w, _ in outbox], target_workers)
                )
                self._network.count_local(local)
                self._network.count_remote(len(targets) - local)
                self._outbox = {}
                self._inbox = inbox
                return inbox
        inbox = {}
        inbox_get = inbox.get
        if self._combiner is not None:
            for (source_worker, target_id), payload in self._outbox.items():
                target_worker = placement_get(target_id)
                if target_worker is None:
                    continue  # destination vanished (removed mid-flight)
                box = inbox_get(target_id)
                if box is None:
                    inbox[target_id] = [payload]
                else:
                    box.append(payload)
                if source_worker == target_worker:
                    local += 1
                else:
                    remote += 1
        else:
            for (source_worker, target_id), payload in self._outbox.items():
                target_worker = placement_get(target_id)
                if target_worker is None:
                    continue  # destination vanished (removed mid-flight)
                box = inbox_get(target_id)
                if box is None:
                    inbox[target_id] = list(payload)
                else:
                    box.extend(payload)
                if source_worker == target_worker:
                    local += len(payload)
                else:
                    remote += len(payload)
        if local:
            self._network.count_local(local)
        if remote:
            self._network.count_remote(remote)
        self._outbox = {}
        self._inbox = inbox
        return inbox

    @property
    def pending_inbox(self):
        """Messages awaiting processing this superstep."""
        return self._inbox

    def drop_vertex(self, vertex_id):
        """Discard queued state for a removed vertex."""
        self._inbox.pop(vertex_id, None)

    def has_pending(self):
        """True when any vertex has undelivered or unprocessed messages."""
        return bool(self._outbox) or bool(self._inbox)
