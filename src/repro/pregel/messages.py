"""Message routing with BSP delivery semantics.

Messages sent during superstep t are delivered at t + 1.  The router decides
*remote vs local* using the destination vertex's worker **at delivery
time** — which is exactly the correctness problem deferred migration solves:
because a migrating vertex only moves after all workers were notified
(:mod:`repro.pregel.migration`), the router's view at delivery time is
always accurate and no message is mis-addressed (Fig. 3, bottom).

Combiners fold messages addressed to the same destination *on the sending
worker*, reducing remote traffic the way Pregel combiners do.
"""

__all__ = ["MessageRouter", "sum_combiner"]


def sum_combiner(a, b):
    """The classic combiner for numeric messages."""
    return a + b


class MessageRouter:
    """Per-superstep outboxes with combining and local/remote accounting."""

    def __init__(self, placement, network):
        """``placement`` maps vertex id → worker id (live object, shared with
        the system); ``network`` is the :class:`NetworkStats` collector."""
        self._placement = placement
        self._network = network
        self._combiner = None
        self._outbox = {}
        self._inbox = {}

    def set_combiner(self, combiner):
        """Install a message combiner (or None to disable)."""
        self._combiner = combiner

    def send(self, source_id, target_id, message):
        """Queue a message for delivery next superstep.

        With a combiner installed, messages to the same target sent from the
        same *worker* fold immediately (per-worker outboxes are what a real
        implementation combines in).
        """
        source_worker = self._placement.get(source_id)
        key = (source_worker, target_id)
        if self._combiner is not None:
            existing = self._outbox.get(key)
            if existing is not None:
                self._outbox[key] = self._combiner(existing, message)
                return
            self._outbox[key] = message
        else:
            self._outbox.setdefault(key, []).append(message)

    def absorb(self, entries):
        """Merge shard-produced outbox entries into this superstep's outbox.

        ``entries`` iterates ``((source_worker, target_id), payload)`` pairs
        in the producing shard's send order, where ``payload`` follows this
        router's combining convention (a combined message with a combiner
        installed, else a message list).  The cluster layer calls this once
        per shard at the barrier, in shard-id order; keys never collide
        across shards because a worker's vertices live on exactly one shard,
        so a plain insert preserves both combining semantics and the
        deterministic delivery order.
        """
        outbox = self._outbox
        for key, payload in entries:
            outbox[key] = payload

    def deliver(self):
        """Flush outboxes into inboxes, counting local vs remote traffic.

        Called at the superstep barrier *after* migrations were applied, so
        remote/local classification reflects the destination's new worker.
        Returns the inbox map {vertex_id: [messages]}.
        """
        inbox = {}
        for (source_worker, target_id), payload in self._outbox.items():
            target_worker = self._placement.get(target_id)
            if target_worker is None:
                continue  # destination vanished (vertex removed mid-flight)
            messages = [payload] if self._combiner is not None else payload
            if source_worker == target_worker:
                self._network.count_local(len(messages))
            else:
                self._network.count_remote(len(messages))
            inbox.setdefault(target_id, []).extend(messages)
        self._outbox = {}
        self._inbox = inbox
        return inbox

    @property
    def pending_inbox(self):
        """Messages awaiting processing this superstep."""
        return self._inbox

    def drop_vertex(self, vertex_id):
        """Discard queued state for a removed vertex."""
        self._inbox.pop(vertex_id, None)

    def has_pending(self):
        """True when any vertex has undelivered or unprocessed messages."""
        return bool(self._outbox) or bool(self._inbox)
