"""Deferred vertex migration (Fig. 3).

Migrating a vertex the instant it decides would lose messages: neighbours
addressed it at its old worker.  The paper's protocol defers the move by one
iteration — at the end of iteration t the origin worker *announces* the
migration to all workers, so from iteration t + 1 onwards new messages are
addressed to the new destination, while messages produced during t still
drain to the old location.

The simulation realises this with a strict barrier ordering (enforced by
:class:`repro.pregel.system.PregelSystem`):

1. messages produced during superstep t are delivered against the *pre-*
   announcement placement (old location — nothing is lost);
2. announced migrations then update the placement, so everything produced
   from t + 1 onwards routes to the new location;
3. the physical state transfer happens while t + 1 computes, and the vertex
   is counted as migrated (and its "migrating" flag cleared) at the t + 1
   barrier.

Requests made *during* a superstep are therefore never visible to that same
superstep — the property the protocol exists to guarantee.
"""

__all__ = ["MigrationProtocol"]


class MigrationProtocol:
    """Collects migration requests and applies them with one-step deferral."""

    def __init__(self, network, num_workers):
        self._network = network
        self._num_workers = num_workers
        self._requested = []  # decided this superstep, not yet announced
        self._in_flight = {}  # vertex -> (old, new); transferring during t+1

    def request(self, vertex_id, old_worker, new_worker):
        """A vertex decided (during the current superstep) to migrate."""
        if old_worker == new_worker:
            raise ValueError("migration to the same worker is not a migration")
        self._requested.append((vertex_id, old_worker, new_worker))

    @property
    def requested_count(self):
        """Requests queued during the in-flight superstep."""
        return len(self._requested)

    def is_migrating(self, vertex_id):
        """True while a vertex is in the red-dashed "migrating" state."""
        return vertex_id in self._in_flight

    def announce_barrier(self, placement_update):
        """Barrier step 2: publish this superstep's requests to all workers.

        ``placement_update(vertex_id, new_worker)`` flips the routing
        placement (the system passes ``PartitionState.move``).  Each origin
        worker with at least one announcement sends one notification message
        to every other worker; those messages ride the same network and are
        counted.  Returns the list of announced ``(vertex, old, new)``.
        """
        announced = self._requested
        self._requested = []
        origins = set()
        for vertex_id, old_worker, new_worker in announced:
            placement_update(vertex_id, new_worker)
            self._in_flight[vertex_id] = (old_worker, new_worker)
            origins.add(old_worker)
        if self._num_workers > 1:
            self._network.count_migration_notification(
                len(origins) * (self._num_workers - 1)
            )
        return announced

    def complete_barrier(self):
        """Barrier step 3 (next superstep): finish in-flight transfers.

        Counts the physical migrations on the network and clears the
        migrating flags.  Returns the completed ``{vertex: (old, new)}``.
        """
        completed = self._in_flight
        self._in_flight = {}
        self._network.count_migration(len(completed))
        return completed

    def cancel_vertex(self, vertex_id):
        """Forget any protocol state for a removed vertex."""
        self._in_flight.pop(vertex_id, None)
        self._requested = [
            r for r in self._requested if r[0] != vertex_id
        ]
