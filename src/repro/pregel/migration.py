"""Deferred vertex migration (Fig. 3).

Migrating a vertex the instant it decides would lose messages: neighbours
addressed it at its old worker.  The paper's protocol defers the move by one
iteration — at the end of iteration t the origin worker *announces* the
migration to all workers, so from iteration t + 1 onwards new messages are
addressed to the new destination, while messages produced during t still
drain to the old location.

The simulation realises this with a strict barrier ordering (enforced by
:class:`repro.pregel.system.PregelSystem`):

1. messages produced during superstep t are delivered against the *pre-*
   announcement placement (old location — nothing is lost);
2. announced migrations then update the placement, so everything produced
   from t + 1 onwards routes to the new location;
3. the physical state transfer happens while t + 1 computes, and the vertex
   is counted as migrated (and its "migrating" flag cleared) at the t + 1
   barrier.

Requests made *during* a superstep are therefore never visible to that same
superstep — the property the protocol exists to guarantee.

The *decision* side is split in two, mirroring the paper's division of
labour: **proposal generation** is vertex-local (heuristic + willingness
coin, see :func:`~repro.pregel.compute.decide_block` — it runs inside
shards) and **arbitration** (:func:`arbitrate_proposals`) is the only
centrally-serialised step: consuming lane quotas in a keyed round-specific
permutation and filing the admitted requests with the protocol.
"""

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional
    _np = None

__all__ = [
    "MigrationProtocol",
    "arbitrate_proposals",
    "permute_proposals",
    "sort_proposals",
]


def sort_proposals(proposals, priority=None):
    """Proposals in deterministic arbitration order (mixed-id-type safe).

    Arbitration consumes quota lanes first-come; making "first" a pure
    function of the proposal *set* (never of which shard produced a
    proposal or in which order deltas arrived) is what keeps arbitration
    executor- and mode-independent.  The base order is canonical vertex
    order; ``priority`` (a ``vertex -> sortable`` key, in practice a keyed
    per-round draw) then reshuffles it so quota contention is *unbiased* —
    a fixed canonical order would hand scarce lanes to the lowest-sorting
    ids every round, where the paper's uncoordinated workers starve nobody
    systematically.  The canonical pre-sort makes the stable reshuffle's
    tie-break deterministic too.
    """
    try:
        ordered = sorted(proposals, key=lambda p: p[0])
    except TypeError:  # mixed identifier types: order by (type, repr)
        ordered = sorted(
            proposals, key=lambda p: (type(p[0]).__name__, repr(p[0]))
        )
    if priority is not None:
        ordered.sort(key=lambda p: priority(p[0]))
    return ordered


def permute_proposals(order, round_index, proposals):
    """Arbitration order for one round: keyed permutation, vectorised.

    Equivalent to ``sort_proposals(proposals, priority=order.draw)`` —
    canonical pre-sort, then a stable reshuffle by each vertex's keyed
    per-round draw — but the draws and the argsort run as one numpy pass
    when every vertex id is a plain int (stable argsort over identical
    draw values reproduces the scalar path's ordering bit for bit).
    """
    proposals = sort_proposals(proposals)
    if _np is not None and proposals:
        try:
            ids = _np.fromiter(
                (p[0] for p in proposals),
                dtype=_np.int64,
                count=len(proposals),
            )
        except (TypeError, ValueError, OverflowError):
            pass
        else:
            if all(type(p[0]) is int for p in proposals):
                draws = order.draw_keys(round_index, ids.view(_np.uint64))
                return [
                    proposals[i]
                    for i in _np.argsort(draws, kind="stable").tolist()
                ]
    draws = order.draw_map(round_index, (p[0] for p in proposals))
    proposals.sort(key=lambda p: draws[p[0]])
    return proposals


def arbitrate_proposals(proposals, protocol, quotas, load_of):
    """Admit one round's migration proposals against the quota table.

    ``proposals`` is the round's ``(vertex, current, desired, willing)``
    list **in arbitration order** (see :func:`sort_proposals`); vertices
    still physically migrating are skipped entirely (they are not counted
    and drop out of the active set, exactly as when decisions ran in the
    coordinator).  Unwilling movers count as requested but consume nothing;
    willing movers consume ``load_of(vertex)`` from their lane or are
    blocked.  Returns ``(requested, blocked, kept_active)``.
    """
    requested = 0
    blocked = 0
    kept_active = set()
    for vertex, current, desired, willing in proposals:
        if protocol.is_migrating(vertex):
            continue
        requested += 1
        kept_active.add(vertex)
        if not willing:
            continue
        if not quotas.try_consume(current, desired, load_of(vertex)):
            blocked += 1
            continue
        protocol.request(vertex, current, desired)
    return requested, blocked, kept_active


class MigrationProtocol:
    """Collects migration requests and applies them with one-step deferral."""

    def __init__(self, network, num_workers):
        self._network = network
        self._num_workers = num_workers
        self._requested = []  # decided this superstep, not yet announced
        self._in_flight = {}  # vertex -> (old, new); transferring during t+1

    def request(self, vertex_id, old_worker, new_worker):
        """A vertex decided (during the current superstep) to migrate."""
        if old_worker == new_worker:
            raise ValueError("migration to the same worker is not a migration")
        self._requested.append((vertex_id, old_worker, new_worker))

    @property
    def requested_count(self):
        """Requests queued during the in-flight superstep."""
        return len(self._requested)

    def is_migrating(self, vertex_id):
        """True while a vertex is in the red-dashed "migrating" state."""
        return vertex_id in self._in_flight

    def announce_barrier(self, placement_update):
        """Barrier step 2: publish this superstep's requests to all workers.

        ``placement_update(vertex_id, new_worker)`` flips the routing
        placement (the system passes ``PartitionState.move``).  Each origin
        worker with at least one announcement sends one notification message
        to every other worker; those messages ride the same network and are
        counted.  Returns the list of announced ``(vertex, old, new)``.
        """
        announced = self._requested
        self._requested = []
        origins = set()
        for vertex_id, old_worker, new_worker in announced:
            placement_update(vertex_id, new_worker)
            self._in_flight[vertex_id] = (old_worker, new_worker)
            origins.add(old_worker)
        if self._num_workers > 1:
            self._network.count_migration_notification(
                len(origins) * (self._num_workers - 1)
            )
        return announced

    def complete_barrier(self):
        """Barrier step 3 (next superstep): finish in-flight transfers.

        Counts the physical migrations on the network and clears the
        migrating flags.  Returns the completed ``{vertex: (old, new)}``.
        """
        completed = self._in_flight
        self._in_flight = {}
        self._network.count_migration(len(completed))
        return completed

    def cancel_vertex(self, vertex_id):
        """Forget any protocol state for a removed vertex."""
        self._in_flight.pop(vertex_id, None)
        self._requested = [
            r for r in self._requested if r[0] != vertex_id
        ]
