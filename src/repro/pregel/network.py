"""Simulated network accounting.

The paper's clusters spend >80 % of iteration time exchanging messages, so
what our simulation must get right is the *traffic*, not wall-clock.  Every
superstep records local messages, remote messages, migrations and compute
units into a :class:`SuperstepTraffic` record; the cost model
(:mod:`repro.analysis.cost_model`) turns those into the paper's normalised
"time per iteration".
"""

from dataclasses import dataclass, field

__all__ = ["NetworkStats", "SuperstepTraffic"]


@dataclass
class SuperstepTraffic:
    """Raw counters for one superstep."""

    superstep: int = 0
    local_messages: int = 0
    remote_messages: int = 0
    migrations: int = 0
    migration_notifications: int = 0
    capacity_messages: int = 0
    compute_units: float = 0.0
    recovery_events: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def total_messages(self):
        """Local + remote application messages this superstep."""
        return self.local_messages + self.remote_messages

    @property
    def remote_fraction(self):
        """Fraction of messages that crossed workers (0.0 when none sent)."""
        total = self.total_messages
        return self.remote_messages / total if total else 0.0


class NetworkStats:
    """Accumulates per-superstep traffic records."""

    def __init__(self):
        self._history = []
        self._current = SuperstepTraffic(superstep=0)

    @property
    def current(self):
        """The record being accumulated for the in-flight superstep."""
        return self._current

    @property
    def history(self):
        """Completed superstep records, oldest first."""
        return self._history

    def count_local(self, n=1):
        """Meter ``n`` worker-local application messages."""
        self._current.local_messages += n

    def count_remote(self, n=1):
        """Meter ``n`` cross-worker application messages."""
        self._current.remote_messages += n

    def count_migration(self, n=1):
        """Meter ``n`` vertex migrations (transfer traffic)."""
        self._current.migrations += n

    def count_migration_notification(self, n=1):
        """Meter ``n`` migration announcements (broadcast traffic)."""
        self._current.migration_notifications += n

    def count_capacity_message(self, n=1):
        """Meter ``n`` capacity-protocol broadcast messages."""
        self._current.capacity_messages += n

    def count_compute(self, units):
        """Meter ``units`` of vertex compute cost."""
        self._current.compute_units += units

    def count_recovery(self, n=1):
        """Meter ``n`` fault-recovery events."""
        self._current.recovery_events += n

    def barrier(self, superstep):
        """Close the current record and open the next one; returns the closed
        record."""
        closed = self._current
        closed.superstep = superstep
        self._history.append(closed)
        self._current = SuperstepTraffic(superstep=superstep + 1)
        return closed

    def totals(self):
        """Aggregate counters over all completed supersteps."""
        total = SuperstepTraffic()
        for record in self._history:
            total.local_messages += record.local_messages
            total.remote_messages += record.remote_messages
            total.migrations += record.migrations
            total.migration_notifications += record.migration_notifications
            total.capacity_messages += record.capacity_messages
            total.compute_units += record.compute_units
            total.recovery_events += record.recovery_events
        return total
