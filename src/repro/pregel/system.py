"""The Pregel-inspired system facade.

:class:`PregelSystem` wires the pieces together the way Fig. 2 draws them:
user applications and the background partitioning algorithm both run on the
vertex-program API; the partitioning algorithm additionally uses the
extended API (migration requests + capacity access).  One call to
:meth:`run_superstep` executes:

1. **compute** — every active vertex runs the user program against the
   messages delivered at the previous barrier;
2. **background partitioning** (when ``config.adaptive``) — each vertex
   evaluates the migration heuristic against the capacity vector published
   one superstep ago, flips the willingness coin, claims lane quota and
   files a migration request;
3. **barrier** — in the protocol-mandated order: complete last superstep's
   in-flight transfers → deliver messages against the *old* placement →
   announce this superstep's migrations (placement flips now) → apply
   queued stream mutations → publish predicted capacities → aggregator
   barrier → checkpoint → scheduled worker failure/recovery → close the
   traffic record.

The system is deliberately single-process: workers are partitions of a
shared store plus honest per-worker accounting (DESIGN.md §4 explains why
this substitution preserves the paper's measured shapes).
"""

from dataclasses import dataclass, field

from repro.core.balance import VertexBalance
from repro.core.capacity import QuotaTable
from repro.core.convergence import ConvergenceDetector
from repro.core.heuristic import GreedyMaxNeighbours, make_heuristic
from repro.core.incremental import IncrementalMetrics
from repro.core.sweep import generic_decisions, make_sweeper, sort_vertices
from repro.graph.events import AddEdge, AddVertex, RemoveEdge, RemoveVertex
from repro.partitioning.base import PartitionState
from repro.partitioning.hashing import HashPartitioner
from repro.pregel.aggregators import Aggregators, SumAggregator
from repro.pregel.capacity_protocol import CapacityProtocol
from repro.pregel.compute import compute_block
from repro.pregel.fault import Checkpointer, FaultPlan
from repro.pregel.messages import MessageRouter
from repro.pregel.migration import MigrationProtocol
from repro.pregel.network import NetworkStats
from repro.utils import make_rng

__all__ = ["PregelConfig", "PregelSystem", "SuperstepReport"]


@dataclass
class PregelConfig:
    """System-level knobs.

    ``adaptive`` toggles the background partitioner (the paper's paired
    clusters are this flag's two values); ``continuous`` ignores
    vote-to-halt, matching the paper's always-on deployment; the remaining
    fields mirror :class:`repro.core.runner.AdaptiveConfig`.
    """

    num_workers: int = 9
    adaptive: bool = True
    continuous: bool = True
    willingness: float = 0.5
    heuristic: object = field(default_factory=GreedyMaxNeighbours)
    balance: object = field(default_factory=VertexBalance)
    initial_partitioner: object = field(default_factory=HashPartitioner)
    placement: object = field(default_factory=HashPartitioner)
    seed: int = 0
    checkpoint_interval: int = 10
    quiet_window: int = 30
    metrics: str = "incremental"

    def __post_init__(self):
        if self.num_workers < 1:
            raise ValueError("need at least one worker")
        if not 0.0 <= self.willingness <= 1.0:
            raise ValueError("willingness must be in [0, 1]")
        if isinstance(self.heuristic, str):
            self.heuristic = make_heuristic(self.heuristic)
        if self.metrics not in ("incremental", "recompute"):
            raise ValueError('metrics must be "incremental" or "recompute"')


@dataclass
class SuperstepReport:
    """Everything observable about one completed superstep."""

    superstep: int
    traffic: object
    migrations_requested: int
    migrations_announced: int
    migrations_blocked: int
    cut_edges: int
    cut_ratio: float
    sizes: list
    computed_vertices: int
    mutations_applied: int
    failed_worker: object = None
    per_worker_compute: list = field(default_factory=list)


class _PlacementView:
    """Read-only dict-like adapter over PartitionState for the router."""

    __slots__ = ("_state",)

    def __init__(self, state):
        self._state = state

    def get(self, vertex_id, default=None):
        pid = self._state.partition_of_or_none(vertex_id)
        return default if pid is None else pid


class PregelSystem:
    """A simulated Pregel cluster running one vertex program continuously."""

    def __init__(self, graph, program, config=None, fault_plan=None):
        self.graph = graph
        self.program = program
        self.config = config or PregelConfig()
        k = self.config.num_workers
        capacities = self.config.balance.capacities(graph, k)
        self.state = self.config.initial_partitioner.partition(
            graph, k, list(capacities)
        )
        self.values = {
            v: program.initial_value(v, graph) for v in graph.vertices()
        }
        self.halted = set()
        self.network = NetworkStats()
        self.router = MessageRouter(_PlacementView(self.state), self.network)
        combiner = program.combiner()
        if combiner is not None:
            self.router.set_combiner(combiner)
        self.aggregators = Aggregators()
        self.aggregators.register("__migrations__", SumAggregator)
        self.migration = MigrationProtocol(self.network, k)
        self.capacity_protocol = CapacityProtocol(self.network, k)
        self.checkpointer = Checkpointer(self.config.checkpoint_interval)
        self.fault_plan = fault_plan or FaultPlan()
        self.detector = ConvergenceDetector(self.config.quiet_window)
        self.superstep = 0
        self.reports = []
        self._rng = make_rng(self.config.seed, "pregel_system")
        self._sweeper = make_sweeper(graph, self.state, self.config.heuristic)
        self._pending_events = []
        self._capacities = list(capacities)
        self.metrics = IncrementalMetrics(graph, self.state, self.config.balance)
        self._active = set(graph.vertices())
        # Superstep 0 has no published capacities yet (the paper's protocol
        # needs one barrier to propagate them), so publish the initial view.
        self.capacity_protocol.publish(self._remaining_capacities())
        self.checkpointer.maybe_checkpoint(0, self.values)

    # ------------------------------------------------------------------
    # Load / capacity bookkeeping
    # ------------------------------------------------------------------

    def _refresh_capacities(self):
        self._capacities = list(
            self.config.balance.capacities(self.graph, self.config.num_workers)
        )
        # Keep the shared state's view consistent with the policy's.
        self.state.capacities = list(self._capacities)

    def _remaining_capacities(self):
        return self.metrics.remaining(self._capacities)

    # ------------------------------------------------------------------
    # Stream mutations
    # ------------------------------------------------------------------

    def inject_events(self, events):
        """Queue stream mutations; they apply at the next barrier."""
        self._pending_events.extend(events)

    def _apply_pending_events(self):
        applied = 0
        for event in self._pending_events:
            if self._apply_event(event):
                applied += 1
        self._pending_events = []
        if applied:
            self.detector.reset()
            self._refresh_capacities()
        return applied

    def _place_new_vertex(self, vertex):
        """Streaming placement of a just-added vertex, with delta upkeep."""
        state = self.state
        self.config.placement.place(state, vertex)
        self.metrics.on_vertex_placed(vertex)
        if self._sweeper is not None:
            pid = state.partition_of_or_none(vertex)
            if pid is not None:
                self._sweeper.note_assign(vertex, pid)
        self.values[vertex] = self.program.initial_value(vertex, self.graph)

    def _apply_event(self, event):
        graph = self.graph
        state = self.state
        metrics = self.metrics
        if isinstance(event, AddVertex):
            if event.vertex in graph:
                return False
            graph.add_vertex(event.vertex)
            self._place_new_vertex(event.vertex)
            self._active.add(event.vertex)
            return True
        if isinstance(event, RemoveVertex):
            if event.vertex not in graph:
                return False
            neighbours = list(graph.neighbors(event.vertex))
            snapshot = metrics.pre_remove_vertex(event.vertex)
            state.remove_vertex(event.vertex)
            if self._sweeper is not None:
                self._sweeper.note_remove(event.vertex)
            graph.remove_vertex(event.vertex)
            metrics.post_remove_vertex(snapshot)
            self.values.pop(event.vertex, None)
            self.halted.discard(event.vertex)
            self._active.discard(event.vertex)
            self.migration.cancel_vertex(event.vertex)
            self.router.drop_vertex(event.vertex)
            self._active.update(neighbours)
            return True
        if isinstance(event, AddEdge):
            for endpoint in (event.u, event.v):
                if endpoint not in graph:
                    graph.add_vertex(endpoint)
                    self._place_new_vertex(endpoint)
            if graph.has_edge(event.u, event.v):
                return False
            snapshot = metrics.pre_edge(event.u, event.v)
            graph.add_edge(event.u, event.v)
            state.on_edge_added(event.u, event.v)
            metrics.post_edge(snapshot)
            self._active.add(event.u)
            self._active.add(event.v)
            return True
        if isinstance(event, RemoveEdge):
            if not graph.has_edge(event.u, event.v):
                return False
            snapshot = metrics.pre_edge(event.u, event.v)
            graph.remove_edge(event.u, event.v)
            state.on_edge_removed(event.u, event.v)
            metrics.post_edge(snapshot)
            if event.u in graph:
                self._active.add(event.u)
            if event.v in graph:
                self._active.add(event.v)
            return True
        raise TypeError(f"unknown graph event {event!r}")

    # ------------------------------------------------------------------
    # Superstep phases
    # ------------------------------------------------------------------

    @property
    def continuous(self):
        """The host contract of :func:`~repro.pregel.compute.compute_block`."""
        return self.config.continuous

    def note_cost(self, vertex, cost):
        """Account one vertex's modelled compute cost (compute-host hook)."""
        pid = self.state.partition_of_or_none(vertex)
        if pid is not None:
            self._per_worker_costs[pid] += cost
        self.network.count_compute(cost)

    def _compute_phase(self, inbox):
        """Run the user program; returns (computed_count, per_worker_cost)."""
        self._per_worker_costs = [0.0] * self.config.num_workers
        computed = compute_block(
            self, list(self.graph.vertices()), inbox, self.superstep
        )
        return computed, self._per_worker_costs

    def _partitioning_phase(self):
        """Background migration decisions; returns (requested, blocked)."""
        visible = self.capacity_protocol.visible_capacities()
        if visible is None:
            return 0, 0
        quotas = QuotaTable(visible, self.config.num_workers)
        heuristic = self.config.heuristic
        balance = self.config.balance
        track_active = not getattr(heuristic, "uses_capacity", False)
        candidates = (
            sort_vertices(self._active)
            if track_active
            else list(self.graph.vertices())
        )
        self._rng.shuffle(candidates)
        if self._sweeper is not None:
            decisions = self._sweeper.decisions(candidates, visible)
        else:
            decisions = generic_decisions(
                self.state, heuristic, candidates, visible
            )
        requested = 0
        blocked = 0
        kept_active = set()
        for v, current, desired in decisions:
            if self.migration.is_migrating(v):
                continue
            if desired == current:
                continue
            requested += 1
            kept_active.add(v)
            if self._rng.random() >= self.config.willingness:
                continue
            load = balance.load_of(self.graph, v)
            if not quotas.try_consume(current, desired, load):
                blocked += 1
                continue
            self.migration.request(v, current, desired)
        if track_active:
            self._active = kept_active
        return requested, blocked

    def _placement_update(self, vertex_id, new_worker):
        """Flip one announced migration in the placement, with delta upkeep.

        A method (not a closure) so the sharded
        :class:`~repro.cluster.coordinator.Coordinator` can observe moves.
        """
        old = self.state.partition_of(vertex_id)
        self.state.move(vertex_id, new_worker)
        if self._sweeper is not None:
            self._sweeper.note_move(vertex_id, new_worker)
        load = self.config.balance.load_of(self.graph, vertex_id)
        self.metrics.on_move(vertex_id, old, new_worker, load)
        self._active.add(vertex_id)
        for w in self.graph.neighbors(vertex_id):
            self._active.add(w)

    def _announce_migrations(self):
        """Apply this superstep's migration announcements to the placement."""
        return self.migration.announce_barrier(self._placement_update)

    def _maybe_fail_worker(self):
        """Execute a scheduled worker failure; returns the worker or None."""
        worker = self.fault_plan.worker_failing_at(self.superstep)
        if worker is None:
            return None
        victims = [
            v
            for v, pid in self.state.assignment_items()
            if pid == worker
        ]
        self.checkpointer.restore_vertices(
            victims,
            self.values,
            reinitialise=lambda vid: self.program.initial_value(vid, self.graph),
        )
        # The barrier cannot complete: all in-flight messages are lost.
        self.router.deliver()
        self.router.pending_inbox.clear()
        self.network.count_recovery()
        return worker

    def _after_barrier(self):
        """Hook at the very end of the barrier (all state settled).

        The sharded :class:`~repro.cluster.coordinator.Coordinator` builds
        its shard patches here; the single-process system needs nothing.
        """

    # ------------------------------------------------------------------
    # The superstep
    # ------------------------------------------------------------------

    def run_superstep(self):
        """Execute one full superstep; returns its :class:`SuperstepReport`."""
        self.superstep += 1
        inbox = dict(self.router.pending_inbox)
        self.router.pending_inbox.clear()

        computed, per_worker = self._compute_phase(inbox)
        # Hot-spot aware balancing (§6 future work): feed measured
        # per-worker compute back into the balance policy so hot workers
        # offer less capacity and shed vertices.
        observe = getattr(self.config.balance, "observe_activity", None)
        if observe is not None and any(per_worker):
            observe(per_worker)
        if self.config.adaptive:
            requested, blocked = self._partitioning_phase()
        else:
            requested, blocked = 0, 0

        # ---- barrier (order matters; see module docstring) ----
        self.migration.complete_barrier()
        self.router.deliver()  # classified against the old placement
        announced = self._announce_migrations()
        mutations = self._apply_pending_events()
        self._refresh_capacities()
        if self.config.metrics == "recompute":
            self.metrics.cross_check()  # per-superstep full-recompute audit
        self.capacity_protocol.publish(self._remaining_capacities())
        self.aggregators.barrier()
        self.checkpointer.maybe_checkpoint(self.superstep, self.values)
        failed_worker = self._maybe_fail_worker()
        self._after_barrier()
        traffic = self.network.barrier(self.superstep)

        self.detector.observe(len(announced))
        report = SuperstepReport(
            superstep=self.superstep,
            traffic=traffic,
            migrations_requested=requested,
            migrations_announced=len(announced),
            migrations_blocked=blocked,
            cut_edges=self.state.cut_edges,
            cut_ratio=self.state.cut_ratio(),
            sizes=self.state.sizes,
            computed_vertices=computed,
            mutations_applied=mutations,
            failed_worker=failed_worker,
            per_worker_compute=per_worker,
        )
        self.reports.append(report)
        return report

    def run(self, num_supersteps):
        """Run a fixed number of supersteps; returns their reports."""
        return [self.run_superstep() for _ in range(num_supersteps)]

    def run_until_quiescent(self, max_supersteps=10000):
        """Classic (non-continuous) mode: run until all halted and no mail."""
        reports = []
        while self.superstep < max_supersteps:
            reports.append(self.run_superstep())
            all_halted = len(self.halted) >= self.graph.num_vertices
            if not self.config.continuous and all_halted and not self.router.has_pending():
                break
        return reports

    @property
    def partitioning_converged(self):
        """True after ``quiet_window`` supersteps without announcements."""
        return self.detector.converged
