"""The Pregel-inspired system facade.

:class:`PregelSystem` wires the pieces together the way Fig. 2 draws them:
user applications and the background partitioning algorithm both run on the
vertex-program API; the partitioning algorithm additionally uses the
extended API (migration requests + capacity access).  One call to
:meth:`run_superstep` executes:

1. **compute** — every active vertex runs the user program against the
   messages delivered at the previous barrier;
2. **background partitioning** (when ``config.adaptive``) — split the way
   the paper splits it: *proposal generation* is vertex-local — each
   candidate vertex evaluates the migration heuristic against the frozen
   :class:`~repro.core.heuristic.DecisionContext` snapshot (the capacity
   vector published one superstep ago) and flips its keyed willingness
   coin — while *arbitration* (quota lanes + filing requests) is the only
   serialised step.  ``config.decisions`` selects where generation runs:
   ``"shard"`` (default) evaluates inside the shards of the sharded
   :class:`~repro.cluster.coordinator.Coordinator`; ``"coordinator"``
   evaluates in the coordinator between barriers.  Both run the identical
   rule against the identical snapshot with the identical
   counter-split RNG, so timelines are byte-identical across the two modes
   (and a single-process system, which has no shards, always evaluates
   in-process through the same code path);
3. **barrier** — in the protocol-mandated order: complete last superstep's
   in-flight transfers → deliver messages against the *old* placement →
   announce this superstep's migrations (placement flips now) → apply
   queued stream mutations → publish predicted capacities (skipped on
   barriers whose decision snapshot will be reused, when
   ``snapshot_staleness > 0``) → aggregator barrier → checkpoint →
   scheduled worker failure/recovery → close the traffic record.

The system is deliberately single-process: workers are partitions of a
shared store plus honest per-worker accounting (DESIGN.md §4 explains why
this substitution preserves the paper's measured shapes).
"""

from dataclasses import dataclass, field
from time import perf_counter, time

from repro.core.balance import VertexBalance
from repro.core.capacity import QuotaTable
from repro.core.convergence import ConvergenceDetector
from repro.core.heuristic import (
    DecisionContext,
    GreedyMaxNeighbours,
    make_heuristic,
)
from repro.core.incremental import IncrementalMetrics
from repro.core.ingest import make_ingestor
from repro.core.sweep import make_sweeper, sort_vertices
from repro.graph.events import (
    AddEdge,
    AddVertex,
    EventBatch,
    RemoveEdge,
    RemoveVertex,
)
from repro.obs import NULL_TRACER, MetricsRegistry
from repro.partitioning.base import PartitionState
from repro.partitioning.hashing import HashPartitioner
from repro.pregel.aggregators import Aggregators, SumAggregator
from repro.pregel.capacity_protocol import CapacityProtocol
from repro.pregel.compute import compute_block, decide_block
from repro.pregel.fault import Checkpointer, FaultPlan
from repro.pregel.messages import MessageRouter
from repro.pregel.migration import (
    MigrationProtocol,
    arbitrate_proposals,
    permute_proposals,
)
from repro.pregel.network import NetworkStats
from repro.utils import WillingnessSource, derive_seed

__all__ = ["PregelConfig", "PregelSystem", "SuperstepReport"]


@dataclass
class PregelConfig:
    """System-level knobs.

    ``adaptive`` toggles the background partitioner (the paper's paired
    clusters are this flag's two values); ``continuous`` ignores
    vote-to-halt, matching the paper's always-on deployment; the remaining
    fields mirror :class:`repro.core.runner.AdaptiveConfig`.

    ``decisions`` selects where migration proposals are generated:
    ``"shard"`` (default) inside the shards of a sharded
    :class:`~repro.cluster.coordinator.Coordinator`, ``"coordinator"``
    centrally between barriers.  The knob moves work, never results —
    timelines are byte-identical either way (a single-process
    :class:`PregelSystem` has no shards, so it always evaluates in-process
    whatever the value).  ``batch_events`` mirrors
    :class:`~repro.core.runner.AdaptiveConfig.batch_events`: ``"auto"``
    routes injected event batches through the bulk ingestion path where
    that is provably equivalent to the per-event loop, ``"off"`` forces
    the loop.

    ``snapshot_staleness`` relaxes the synchrony of the *decision inputs*
    (§6's "what if the barrier is not strict" question): the frozen
    :class:`~repro.core.heuristic.DecisionContext` — capacity vector plus
    snapshot epoch — is reused for up to ``k`` supersteps before a resync
    barrier publishes a fresh one.  Placement deltas still broadcast at
    *every* barrier (shard placement mirrors stay exact; message routing
    and migration announcements are untouched) — only what decisions and
    quota arbitration *see* ages, and the metered capacity broadcast drops
    to one publish per ``k + 1`` barriers.  ``0`` (default) is the paper's
    strict BSP behaviour, bit-identical to the golden timelines.
    """

    num_workers: int = 9
    adaptive: bool = True
    continuous: bool = True
    willingness: float = 0.5
    heuristic: object = field(default_factory=GreedyMaxNeighbours)
    balance: object = field(default_factory=VertexBalance)
    initial_partitioner: object = field(default_factory=HashPartitioner)
    placement: object = field(default_factory=HashPartitioner)
    seed: int = 0
    checkpoint_interval: int = 10
    quiet_window: int = 30
    metrics: str = "incremental"
    decisions: str = "shard"
    batch_events: str = "auto"
    snapshot_staleness: int = 0

    def __post_init__(self):
        if self.num_workers < 1:
            raise ValueError("need at least one worker")
        if not 0.0 <= self.willingness <= 1.0:
            raise ValueError("willingness must be in [0, 1]")
        if isinstance(self.heuristic, str):
            self.heuristic = make_heuristic(self.heuristic)
        if self.metrics not in ("incremental", "recompute"):
            raise ValueError('metrics must be "incremental" or "recompute"')
        if self.decisions not in ("shard", "coordinator"):
            raise ValueError('decisions must be "shard" or "coordinator"')
        if self.batch_events not in ("auto", "off"):
            raise ValueError('batch_events must be "auto" or "off"')
        if not isinstance(self.snapshot_staleness, int) or (
            self.snapshot_staleness < 0
        ):
            raise ValueError("snapshot_staleness must be an int >= 0")


@dataclass
class SuperstepReport:
    """Everything observable about one completed superstep.

    ``decision_seconds`` is the wall-clock the *coordinator* spent on the
    decision phase this superstep (candidate selection, central heuristic
    evaluation when ``decisions="coordinator"``, quota arbitration).  It is
    measurement, not semantics: never part of the golden digests, but the
    number ``benchmarks/bench_decisions.py`` pins the decentralisation win
    with.
    """

    superstep: int
    traffic: object
    migrations_requested: int
    migrations_announced: int
    migrations_blocked: int
    cut_edges: int
    cut_ratio: float
    sizes: list
    computed_vertices: int
    mutations_applied: int
    failed_worker: object = None
    per_worker_compute: list = field(default_factory=list)
    decision_seconds: float = 0.0


class _PlacementView:
    """Read-only dict-like adapter over PartitionState for the router."""

    __slots__ = ("_state",)

    def __init__(self, state):
        self._state = state

    def get(self, vertex_id, default=None):
        pid = self._state.partition_of_or_none(vertex_id)
        return default if pid is None else pid

    def bulk(self):
        """Read-only mapping view for bulk lookups (delivery loop)."""
        return self._state.assignment_view()


class PregelSystem:
    """A simulated Pregel cluster running one vertex program continuously."""

    def __init__(self, graph, program, config=None, fault_plan=None,
                 tracer=None, metrics_registry=None):
        self.graph = graph
        self.program = program
        self.config = config or PregelConfig()
        # Observability: the tracer defaults to the shared no-op (spans cost
        # one attribute check); the registry always exists — its phase
        # counters are per-superstep, not per-vertex, so keeping them live
        # costs a handful of perf_counter() calls per superstep.  Note
        # ``metrics_registry``, not ``metrics``: that name already means
        # the incremental partition metrics below.
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.metrics_registry = (
            MetricsRegistry() if metrics_registry is None else metrics_registry
        )
        registry = self.metrics_registry
        self._supersteps_counter = registry.counter("supersteps")
        self._compute_counter = registry.counter("phase.compute.seconds")
        self._decide_counter = registry.counter("phase.decide.seconds")
        self._barrier_counter = registry.counter("phase.barrier.seconds")
        self._ingest_counter = registry.counter("ingest.events")
        self._migrations_counter = registry.counter("migrations.announced")
        # Which compute path ran: blocks evaluated through the batched
        # vertex-kernel path (the shard layer reports per-delta counts).
        self._batched_counter = registry.counter("kernel.batched_blocks")
        k = self.config.num_workers
        capacities = self.config.balance.capacities(graph, k)
        self.state = self.config.initial_partitioner.partition(
            graph, k, list(capacities)
        )
        self.values = {
            v: program.initial_value(v, graph) for v in graph.vertices()
        }
        self.halted = set()
        self.network = NetworkStats()
        self.router = MessageRouter(_PlacementView(self.state), self.network)
        combiner = program.combiner()
        if combiner is not None:
            self.router.set_combiner(combiner)
        self.aggregators = Aggregators()
        self.aggregators.register("__migrations__", SumAggregator)
        self.migration = MigrationProtocol(self.network, k)
        self.capacity_protocol = CapacityProtocol(self.network, k)
        self.checkpointer = Checkpointer(self.config.checkpoint_interval)
        self.fault_plan = fault_plan or FaultPlan()
        self.detector = ConvergenceDetector(self.config.quiet_window)
        self.superstep = 0
        self.reports = []
        # Willingness draws are counter-split, not streamed: every draw is
        # a pure function of (lane, superstep, vertex), so any shard can
        # draw for its own residents with no coordination.
        self._willingness_lane = derive_seed(self.config.seed, "pregel_willingness")
        self._last_decision_remaining = None  # capacity trigger (uses_capacity)
        self._decision_ctx = None
        self._snapshot_age = 0  # rounds the current decision snapshot served
        self._decision_seconds = 0.0
        self._sweeper = make_sweeper(graph, self.state, self.config.heuristic)
        self._pending_events = []
        self._capacities = list(capacities)
        self.metrics = IncrementalMetrics(graph, self.state, self.config.balance)
        self._active = set(graph.vertices())
        self._ingestor = make_ingestor(self)
        # Superstep 0 has no published capacities yet (the paper's protocol
        # needs one barrier to propagate them), so publish the initial view.
        self.capacity_protocol.publish(self._remaining_capacities())
        self.checkpointer.maybe_checkpoint(0, self.values)

    # ------------------------------------------------------------------
    # Load / capacity bookkeeping
    # ------------------------------------------------------------------

    def _refresh_capacities(self):
        self._capacities = list(
            self.config.balance.capacities(self.graph, self.config.num_workers)
        )
        # Keep the shared state's view consistent with the policy's.
        self.state.capacities = list(self._capacities)

    def _remaining_capacities(self):
        return self.metrics.remaining(self._capacities)

    # ------------------------------------------------------------------
    # Stream mutations
    # ------------------------------------------------------------------

    def inject_events(self, events):
        """Queue stream mutations; they apply at the next barrier."""
        self._pending_events.extend(events)

    def _apply_pending_events(self):
        """Apply queued mutations at the barrier; returns the changed count.

        Where the bulk ingestion path applies (compact graph, numpy, hash
        placement, degree-insensitive balance — see
        :mod:`repro.core.ingest`), runs of edge events apply array-at-a-time
        with bit-identical results; everything else falls back to the
        per-event loop.
        """
        events = self._pending_events
        self._pending_events = []
        if not events:
            return 0
        if self.tracer.enabled:
            with self.tracer.span("ingest", events=len(events)):
                applied = self._ingest_events(events)
        else:
            applied = self._ingest_events(events)
        self._ingest_counter.add(applied)
        if applied:
            self.detector.reset()
            self._refresh_capacities()
        return applied

    def _ingest_events(self, events):
        """Apply one barrier's events (bulk path when provably equivalent)."""
        applied = None
        if self._ingestor is not None:
            batch = EventBatch.from_events(events)
            if not batch.unsupported:
                applied = self._ingestor.apply(batch)
        if applied is None:
            applied = 0
            for event in events:
                if self._apply_event(event):
                    applied += 1
        return applied

    def _apply_one(self, event):
        """The bulk ingestor's per-event fallback (its host contract)."""
        return self._apply_event(event)

    def _note_bulk_placements(self, placements):
        """Bulk-ingestion hook: new endpoints were just interned + placed.

        The per-event path initialises a new vertex's program value inside
        :meth:`_place_new_vertex`; the bulk path places endpoints through
        one ``place_many`` call, so the value initialisation lands here.
        """
        for vertex, _ in placements:
            self.values[vertex] = self.program.initial_value(vertex, self.graph)

    def _note_bulk_edge_changes(self, us, vs, changed):
        """Bulk-ingestion hook: one edge run applied; ``changed`` flags it.

        The single-process system needs nothing (active-set upkeep happens
        inside the kernel); the sharded coordinator marks the changed
        endpoints dirty so shard adjacency mirrors stay current.
        """

    def _place_new_vertex(self, vertex):
        """Streaming placement of a just-added vertex, with delta upkeep."""
        state = self.state
        self.config.placement.place(state, vertex)
        self.metrics.on_vertex_placed(vertex)
        if self._sweeper is not None:
            pid = state.partition_of_or_none(vertex)
            if pid is not None:
                self._sweeper.note_assign(vertex, pid)
        self.values[vertex] = self.program.initial_value(vertex, self.graph)

    def _apply_event(self, event):
        graph = self.graph
        state = self.state
        metrics = self.metrics
        if isinstance(event, AddVertex):
            if event.vertex in graph:
                return False
            graph.add_vertex(event.vertex)
            self._place_new_vertex(event.vertex)
            self._active.add(event.vertex)
            return True
        if isinstance(event, RemoveVertex):
            if event.vertex not in graph:
                return False
            neighbours = list(graph.neighbors(event.vertex))
            snapshot = metrics.pre_remove_vertex(event.vertex)
            state.remove_vertex(event.vertex)
            if self._sweeper is not None:
                self._sweeper.note_remove(event.vertex)
            graph.remove_vertex(event.vertex)
            metrics.post_remove_vertex(snapshot)
            self.values.pop(event.vertex, None)
            self.halted.discard(event.vertex)
            self._active.discard(event.vertex)
            self.migration.cancel_vertex(event.vertex)
            self.router.drop_vertex(event.vertex)
            self._active.update(neighbours)
            return True
        if isinstance(event, AddEdge):
            for endpoint in (event.u, event.v):
                if endpoint not in graph:
                    graph.add_vertex(endpoint)
                    self._place_new_vertex(endpoint)
            if graph.has_edge(event.u, event.v):
                return False
            snapshot = metrics.pre_edge(event.u, event.v)
            graph.add_edge(event.u, event.v)
            state.on_edge_added(event.u, event.v)
            metrics.post_edge(snapshot)
            self._active.add(event.u)
            self._active.add(event.v)
            return True
        if isinstance(event, RemoveEdge):
            if not graph.has_edge(event.u, event.v):
                return False
            snapshot = metrics.pre_edge(event.u, event.v)
            graph.remove_edge(event.u, event.v)
            state.on_edge_removed(event.u, event.v)
            metrics.post_edge(snapshot)
            if event.u in graph:
                self._active.add(event.u)
            if event.v in graph:
                self._active.add(event.v)
            return True
        raise TypeError(f"unknown graph event {event!r}")

    # ------------------------------------------------------------------
    # Superstep phases
    # ------------------------------------------------------------------

    @property
    def continuous(self):
        """The host contract of :func:`~repro.pregel.compute.compute_block`."""
        return self.config.continuous

    def note_cost(self, vertex, cost):
        """Account one vertex's modelled compute cost (compute-host hook)."""
        pid = self.state.partition_of_or_none(vertex)
        if pid is not None:
            self._per_worker_costs[pid] += cost
        self.network.count_compute(cost)

    # The single-process system keeps no incremental CSR; the batched path
    # rebuilds block topology from the live graph each superstep.  (The
    # sharded Coordinator's shards override this with real BlockTables.)
    batch_table = None

    def batch_workers(self, vertex_ids):
        """Per-row source worker ids for a batched block (or None).

        Mirrors what :meth:`MessageRouter.send` would look up per message;
        an unplaced vertex declines the whole block — the scalar loop is
        the reference for that edge case.
        """
        partition_of = self.state.partition_of_or_none
        workers = []
        for v in vertex_ids:
            pid = partition_of(v)
            if pid is None:
                return None
            workers.append(pid)
        return workers

    def note_costs(self, vertex_ids, costs):
        """Per-block cost accounting: the per-vertex hook, in row order.

        Deliberately a loop over :meth:`note_cost`: the single-process
        system's per-worker accumulation and traffic counting are
        per-vertex float operations, and replaying them in the exact
        scalar order is what keeps digests bit-identical.
        """
        note = self.note_cost
        for v, c in zip(vertex_ids, costs.tolist()):
            note(v, c)

    def note_batched_block(self, count=1):
        """Observability hook: one block ran through the batched kernel."""
        self._batched_counter.add(count)

    def _compute_phase(self, inbox):
        """Run the user program; returns (computed_count, per_worker_cost)."""
        self._per_worker_costs = [0.0] * self.config.num_workers
        computed = compute_block(
            self, list(self.graph.vertices()), inbox, self.superstep
        )
        return computed, self._per_worker_costs

    # ------------------------------------------------------------------
    # The decision phase: vertex-local proposals, central arbitration
    # ------------------------------------------------------------------

    @property
    def heuristic(self):
        """The decision-host contract of :func:`decide_block`."""
        return self.config.heuristic

    @property
    def placement_of(self):
        """Vertex → partition lookup (None when unassigned), for decisions."""
        return self.state.partition_of_or_none

    def _fresh_decision_context(self):
        """A new decision snapshot at the current epoch, or None before the
        first capacity broadcast."""
        visible = self.capacity_protocol.visible_capacities()
        if visible is None:
            return None
        return DecisionContext(
            round_index=self.superstep,
            remaining=tuple(visible),
            willingness=self.config.willingness,
            lane=self._willingness_lane,
            version=self.superstep,
        )

    def _decision_context(self):
        """This superstep's decision snapshot, honouring the staleness knob.

        With ``snapshot_staleness=0`` every superstep takes a fresh
        snapshot of the last published capacities — the strict-BSP
        behaviour the golden timelines pin.  With ``k > 0`` a snapshot is
        resynced only once its age would exceed ``k``; in between, the
        previous snapshot is re-keyed to the current round
        (:meth:`DecisionContext.aged` — capacity vector and epoch frozen,
        willingness/arbitration draws still per-round).  Updates
        ``_snapshot_age`` as a side effect.
        """
        previous = self._decision_ctx
        if previous is None or self._snapshot_age >= self.config.snapshot_staleness:
            fresh = self._fresh_decision_context()
            if fresh is not None:
                self._snapshot_age = 0
            return fresh
        self._snapshot_age += 1
        return previous.aged(self.superstep)

    def _resync_next_superstep(self):
        """True when the next superstep will take a fresh decision snapshot.

        The barrier consults this to decide whether the (metered) capacity
        broadcast must run: skipping it on barriers whose snapshot will be
        reused is the relaxed-synchrony saving, but the barrier *before* a
        resync must publish or the resync would read epoch-old data.
        """
        return (
            self._decision_ctx is None
            or self._snapshot_age >= self.config.snapshot_staleness
        )

    def _decision_needs_full_sweep(self, context):
        """True when this round must evaluate every vertex.

        The active set is exact for heuristics that read only neighbour
        locations; a capacity-consulting heuristic (``uses_capacity``)
        additionally re-evaluates everything on any change of the
        remaining-capacity snapshot — any component change can flip a
        capacity-weighted comparison, so the trigger is conservative by
        design.  Rounds with an unchanged snapshot keep the cheap
        neighbour-of-changed activation.
        """
        return getattr(self.config.heuristic, "uses_capacity", False) and (
            self._last_decision_remaining != context.remaining
        )

    def _generate_proposals(self, context):
        """Central proposal generation (the ``decisions="coordinator"``
        path, and the only path a shard-less single-process system has).

        Returns ``(vertex, current, desired, willing)`` proposals for every
        candidate that wants to move, in canonical candidate order.  The
        sharded coordinator overrides this to hand back the proposals its
        shards returned with their compute deltas.
        """
        candidates = sort_vertices(
            self.graph.vertices()
            if self._decision_needs_full_sweep(context)
            else self._active
        )
        if self._sweeper is not None:
            source = WillingnessSource(context.lane)
            round_index = context.round_index
            s = context.willingness
            return [
                (v, current, desired, source.willing(round_index, v, s))
                for v, current, desired in self._sweeper.decisions(
                    candidates, context.remaining
                )
            ]
        return decide_block(self, context, candidates)

    def _partitioning_phase(self):
        """Background migration decisions; returns (requested, blocked)."""
        context = self._decision_ctx
        if context is None:
            return 0, 0
        started = perf_counter()
        # Arbitration order is a keyed per-round permutation: deterministic
        # and mode/executor-independent like the willingness draws (its own
        # derived lane, so priority never correlates with the coin), but
        # unbiased across rounds — a fixed canonical order would hand
        # scarce quota lanes to the lowest ids every superstep.
        order = WillingnessSource(context.lane, "arbitration")
        proposals = permute_proposals(
            order, context.round_index, self._generate_proposals(context)
        )
        quotas = QuotaTable(context.remaining, self.config.num_workers)
        balance = self.config.balance
        graph = self.graph
        if self.tracer.enabled:
            with self.tracer.span(
                "arbitrate",
                superstep=self.superstep,
                proposals=len(proposals),
            ):
                requested, blocked, kept_active = arbitrate_proposals(
                    proposals,
                    self.migration,
                    quotas,
                    lambda v: balance.load_of(graph, v),
                )
        else:
            requested, blocked, kept_active = arbitrate_proposals(
                proposals,
                self.migration,
                quotas,
                lambda v: balance.load_of(graph, v),
            )
        self._active = kept_active
        self._last_decision_remaining = context.remaining
        self._decision_seconds += perf_counter() - started
        return requested, blocked

    def _placement_update(self, vertex_id, new_worker):
        """Flip one announced migration in the placement, with delta upkeep.

        A method (not a closure) so the sharded
        :class:`~repro.cluster.coordinator.Coordinator` can observe moves.
        """
        old = self.state.partition_of(vertex_id)
        self.state.move(vertex_id, new_worker)
        if self._sweeper is not None:
            self._sweeper.note_move(vertex_id, new_worker)
        load = self.config.balance.load_of(self.graph, vertex_id)
        self.metrics.on_move(vertex_id, old, new_worker, load)
        self._active.add(vertex_id)
        for w in self.graph.neighbors(vertex_id):
            self._active.add(w)

    def _announce_migrations(self):
        """Apply this superstep's migration announcements to the placement."""
        return self.migration.announce_barrier(self._placement_update)

    def _maybe_fail_worker(self):
        """Execute a scheduled worker failure; returns the worker or None."""
        worker = self.fault_plan.worker_failing_at(self.superstep)
        if worker is None:
            return None
        victims = [
            v
            for v, pid in self.state.assignment_items()
            if pid == worker
        ]
        self.checkpointer.restore_vertices(
            victims,
            self.values,
            reinitialise=lambda vid: self.program.initial_value(vid, self.graph),
        )
        # The barrier cannot complete: all in-flight messages are lost.
        self.router.deliver()
        self.router.pending_inbox.clear()
        self.network.count_recovery()
        return worker

    def _after_barrier(self):
        """Hook at the very end of the barrier (all state settled).

        The sharded :class:`~repro.cluster.coordinator.Coordinator` builds
        its shard patches here; the single-process system needs nothing.
        """

    # ------------------------------------------------------------------
    # The superstep
    # ------------------------------------------------------------------

    def run_superstep(self):
        """Execute one full superstep; returns its :class:`SuperstepReport`."""
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("superstep", superstep=self.superstep + 1):
                return self._run_superstep(tracer, True)
        return self._run_superstep(tracer, False)

    def _run_superstep(self, tracer, traced):
        """The superstep body; ``traced`` caches ``tracer.enabled``."""
        self.superstep += 1
        # Freeze the decision snapshot before compute: the sharded
        # coordinator ships it with the compute tasks, the single-process
        # system reads it afterwards — both therefore decide against the
        # identical pre-compute state (compute never changes placement,
        # adjacency or capacities).
        self._decision_ctx = (
            self._decision_context() if self.config.adaptive else None
        )
        self._decision_seconds = 0.0
        inbox = dict(self.router.pending_inbox)
        self.router.pending_inbox.clear()

        phase_wall = time()
        phase_tick = perf_counter()
        computed, per_worker = self._compute_phase(inbox)
        compute_elapsed = perf_counter() - phase_tick
        self._compute_counter.add(compute_elapsed)
        if traced:
            tracer.record(
                "compute", phase_wall, compute_elapsed,
                args={"superstep": self.superstep, "computed": computed},
            )
        # Hot-spot aware balancing (§6 future work): feed measured
        # per-worker compute back into the balance policy so hot workers
        # offer less capacity and shed vertices.
        observe = getattr(self.config.balance, "observe_activity", None)
        if observe is not None and any(per_worker):
            observe(per_worker)
        if self.config.adaptive:
            requested, blocked = self._partitioning_phase()
        else:
            requested, blocked = 0, 0

        # ---- barrier (order matters; see module docstring) ----
        phase_wall = time()
        phase_tick = perf_counter()
        self.migration.complete_barrier()
        self.router.deliver()  # classified against the old placement
        announced = self._announce_migrations()
        mutations = self._apply_pending_events()
        self._refresh_capacities()
        if self.config.metrics == "recompute":
            self.metrics.cross_check()  # per-superstep full-recompute audit
        if self._resync_next_superstep():
            # Relaxed synchrony: barriers whose snapshot will be reused skip
            # the metered capacity broadcast entirely (with staleness 0 this
            # publishes every barrier, exactly the strict protocol).
            self.capacity_protocol.publish(self._remaining_capacities())
        self.aggregators.barrier()
        self.checkpointer.maybe_checkpoint(self.superstep, self.values)
        failed_worker = self._maybe_fail_worker()
        self._after_barrier()
        traffic = self.network.barrier(self.superstep)
        barrier_elapsed = perf_counter() - phase_tick
        self._barrier_counter.add(barrier_elapsed)
        if traced:
            tracer.record(
                "barrier", phase_wall, barrier_elapsed,
                args={"superstep": self.superstep, "announced": len(announced)},
            )

        self._supersteps_counter.add(1)
        self._decide_counter.add(self._decision_seconds)
        self._migrations_counter.add(len(announced))
        self.detector.observe(len(announced))
        report = SuperstepReport(
            superstep=self.superstep,
            traffic=traffic,
            migrations_requested=requested,
            migrations_announced=len(announced),
            migrations_blocked=blocked,
            cut_edges=self.state.cut_edges,
            cut_ratio=self.state.cut_ratio(),
            sizes=self.state.sizes,
            computed_vertices=computed,
            mutations_applied=mutations,
            failed_worker=failed_worker,
            per_worker_compute=per_worker,
            decision_seconds=self._decision_seconds,
        )
        self.reports.append(report)
        return report

    def run(self, num_supersteps):
        """Run a fixed number of supersteps; returns their reports."""
        return [self.run_superstep() for _ in range(num_supersteps)]

    def run_until_quiescent(self, max_supersteps=10000):
        """Classic (non-continuous) mode: run until all halted and no mail."""
        reports = []
        while self.superstep < max_supersteps:
            reports.append(self.run_superstep())
            all_halted = len(self.halted) >= self.graph.num_vertices
            if not self.config.continuous and all_halted and not self.router.has_pending():
                break
        return reports

    @property
    def partitioning_converged(self):
        """True after ``quiet_window`` supersteps without announcements."""
        return self.detector.converged
