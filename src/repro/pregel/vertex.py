"""Vertex program API.

User applications subclass :class:`VertexProgram` and implement
:meth:`compute`, which receives a :class:`VertexContext` — the vertex's
window onto the system: its value, its neighbours, message sending,
aggregators and halting.  The same API hosts the user applications *and*
the background partitioning algorithm, mirroring the paper's layered
architecture (Fig. 2) where both sit on the Pregel API.
"""

__all__ = ["VertexContext", "VertexProgram"]


class VertexProgram:
    """Base class for Pregel computations.

    ``initial_value(vertex_id, graph)`` seeds per-vertex state;
    ``compute(ctx, messages)`` runs once per active vertex per superstep;
    ``compute_cost(ctx, messages)`` returns the modelled CPU units this call
    consumed (default: 1 + number of messages), feeding the cost model —
    the biomedical kernel overrides it to express its heavy per-vertex ODE
    load.
    """

    name = "abstract"

    def initial_value(self, vertex_id, graph):
        """Value a vertex starts with (and restarts with after recovery)."""
        return None

    def compute(self, ctx, messages):
        """One superstep of work for one vertex."""
        raise NotImplementedError

    def compute_cost(self, ctx, messages):
        """Modelled CPU units for this compute call."""
        return 1.0 + len(messages)

    def combiner(self):
        """Optional message combiner ``f(msg_a, msg_b) -> msg`` or None."""
        return None


class VertexContext:
    """Everything a vertex may see and do during ``compute``.

    The context enforces the paper's locality discipline: a vertex reads its
    own value and neighbour list, sends messages along ids it knows, and
    contributes to global aggregators — nothing else.
    """

    __slots__ = ("_system", "vertex_id", "superstep", "_sent")

    def __init__(self, system, vertex_id, superstep):
        self._system = system
        self.vertex_id = vertex_id
        self.superstep = superstep
        self._sent = 0

    @property
    def value(self):
        """This vertex's current value."""
        return self._system.values[self.vertex_id]

    @value.setter
    def value(self, new_value):
        """Replace this vertex's value."""
        self._system.values[self.vertex_id] = new_value

    def neighbors(self):
        """The vertex's current neighbour ids (live view, do not mutate)."""
        return self._system.graph.neighbors(self.vertex_id)

    def degree(self):
        """Number of neighbours."""
        return self._system.graph.degree(self.vertex_id)

    @property
    def num_vertices(self):
        """Global vertex count (a Pregel master-provided statistic)."""
        return self._system.graph.num_vertices

    def send_message(self, target_id, message):
        """Queue ``message`` for ``target_id``, delivered next superstep."""
        self._system.router.send(self.vertex_id, target_id, message)
        self._sent += 1

    def send_to_neighbors(self, message):
        """Queue ``message`` to every neighbour."""
        for w in self.neighbors():
            self.send_message(w, message)

    def aggregate(self, name, value):
        """Contribute ``value`` to the named aggregator for this superstep."""
        self._system.aggregators.contribute(name, value)

    def aggregated(self, name):
        """Read the named aggregator's value from the previous superstep."""
        return self._system.aggregators.previous(name)

    def vote_to_halt(self):
        """Deactivate until a message arrives (no-op in continuous mode)."""
        self._system.halted.add(self.vertex_id)

    @property
    def messages_sent(self):
        """Messages this context sent during the current compute call."""
        return self._sent
