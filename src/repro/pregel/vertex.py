"""Vertex program API.

User applications subclass :class:`VertexProgram` and implement
:meth:`compute`, which receives a :class:`VertexContext` — the vertex's
window onto the system: its value, its neighbours, message sending,
aggregators and halting.  The same API hosts the user applications *and*
the background partitioning algorithm, mirroring the paper's layered
architecture (Fig. 2) where both sit on the Pregel API.

:class:`BatchedVertexProgram` is the optional fast path: a program that
*additionally* implements :meth:`~BatchedVertexProgram.compute_batch`,
evaluating a whole block of vertices as array operations over a
:class:`BlockContext`.  ``compute`` stays mandatory — it is the reference
semantics, the numpy-free fallback, and what non-numeric graphs run — and
the two must agree bit for bit (the batch-kernel property suite pins
this for every shipped program).
"""

try:  # numpy is optional everywhere in this repo
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the numpy-free CI leg
    _np = None

__all__ = [
    "BatchedVertexProgram",
    "BlockContext",
    "BlockResult",
    "VertexContext",
    "VertexProgram",
]


class VertexProgram:
    """Base class for Pregel computations.

    ``initial_value(vertex_id, graph)`` seeds per-vertex state;
    ``compute(ctx, messages)`` runs once per active vertex per superstep;
    ``compute_cost(ctx, messages)`` returns the modelled CPU units this call
    consumed (default: 1 + number of messages), feeding the cost model —
    the biomedical kernel overrides it to express its heavy per-vertex ODE
    load.
    """

    name = "abstract"

    #: Batched fast path, or None.  :class:`BatchedVertexProgram`
    #: overrides this with a real method; the dispatcher's whole
    #: "does this program batch?" check is this one attribute load.
    compute_batch = None

    def initial_value(self, vertex_id, graph):
        """Value a vertex starts with (and restarts with after recovery)."""
        return None

    def compute(self, ctx, messages):
        """One superstep of work for one vertex."""
        raise NotImplementedError

    def compute_cost(self, ctx, messages):
        """Modelled CPU units for this compute call."""
        return 1.0 + len(messages)

    def combiner(self):
        """Optional message combiner ``f(msg_a, msg_b) -> msg`` or None."""
        return None


class VertexContext:
    """Everything a vertex may see and do during ``compute``.

    The context enforces the paper's locality discipline: a vertex reads its
    own value and neighbour list, sends messages along ids it knows, and
    contributes to global aggregators — nothing else.
    """

    __slots__ = ("_system", "vertex_id", "superstep", "_sent")

    def __init__(self, system, vertex_id, superstep):
        self._system = system
        self.vertex_id = vertex_id
        self.superstep = superstep
        self._sent = 0

    @property
    def value(self):
        """This vertex's current value."""
        return self._system.values[self.vertex_id]

    @value.setter
    def value(self, new_value):
        """Replace this vertex's value."""
        self._system.values[self.vertex_id] = new_value

    def neighbors(self):
        """The vertex's current neighbour ids (live view, do not mutate)."""
        return self._system.graph.neighbors(self.vertex_id)

    def degree(self):
        """Number of neighbours."""
        return self._system.graph.degree(self.vertex_id)

    @property
    def num_vertices(self):
        """Global vertex count (a Pregel master-provided statistic)."""
        return self._system.graph.num_vertices

    def send_message(self, target_id, message):
        """Queue ``message`` for ``target_id``, delivered next superstep."""
        self._system.router.send(self.vertex_id, target_id, message)
        self._sent += 1

    def send_to_neighbors(self, message):
        """Queue ``message`` to every neighbour."""
        for w in self.neighbors():
            self.send_message(w, message)

    def aggregate(self, name, value):
        """Contribute ``value`` to the named aggregator for this superstep."""
        self._system.aggregators.contribute(name, value)

    def aggregated(self, name):
        """Read the named aggregator's value from the previous superstep."""
        return self._system.aggregators.previous(name)

    def vote_to_halt(self):
        """Deactivate until a message arrives (no-op in continuous mode)."""
        self._system.halted.add(self.vertex_id)

    @property
    def messages_sent(self):
        """Messages this context sent during the current compute call."""
        return self._sent


class BlockContext:
    """Slot-indexed view of one block of computed vertices.

    All arrays are positional over the block's ``n`` computed rows, in the
    exact order the scalar loop would have visited them.  Vertex ids never
    appear — rows and neighbour entries are *slots* (row indices into the
    block), which is what lets a kernel run without touching Python
    objects.  Row ``i`` sees:

    - ``values[i]`` — current value (dtype = program's ``batch_dtype``)
    - ``degrees[i]`` — neighbour count
    - ``targets[indptr[i]:indptr[i + 1]]`` — neighbour slots, adjacency
      order (slots index ``slot_ids``; a slot ≥ ``n`` is a vertex that is
      present in the graph but not computed this superstep)
    - ``msg_values[msg_row == i]`` — inbox payloads (combiner-folded, so
      at most one physical entry per sender group); ``msg_counts[i]`` is
      the *logical* message count the scalar cost model would see.

    ``superstep`` and ``num_vertices`` mirror :class:`VertexContext`.
    """

    __slots__ = (
        "superstep",
        "num_vertices",
        "values",
        "degrees",
        "indptr",
        "targets",
        "msg_values",
        "msg_row",
        "msg_counts",
    )

    def __init__(
        self,
        superstep,
        num_vertices,
        values,
        degrees,
        indptr,
        targets,
        msg_values,
        msg_row,
        msg_counts,
    ):
        self.superstep = superstep
        self.num_vertices = num_vertices
        self.values = values
        self.degrees = degrees
        self.indptr = indptr
        self.targets = targets
        self.msg_values = msg_values
        self.msg_row = msg_row
        self.msg_counts = msg_counts

    def __len__(self):
        """Number of computed rows in the block."""
        return len(self.values)

    def emit_to_neighbors(self, payloads, rows=None):
        """Build the (src, dst, payload) outbox columns for a broadcast.

        ``payloads`` carries one payload per selected row — length ``n``
        when ``rows`` is None, length ``len(rows)`` otherwise (``rows``
        must be ascending, which ``np.flatnonzero``-style masks give for
        free).  Every selected row sends its payload to each of its
        neighbours in the same row-major × adjacency order the scalar
        loop's ``send_to_neighbors`` produces — which is what keeps the
        reduced outbox byte-identical.
        """
        payloads = _np.asarray(payloads)
        counts = _np.diff(self.indptr)
        if rows is None:
            src = _np.repeat(_np.arange(len(counts), dtype=_np.int64), counts)
            return src, self.targets, _np.repeat(payloads, counts)
        rows = _np.asarray(rows, dtype=_np.int64)
        counts = counts[rows]
        keep = counts > 0  # zero-degree rows emit nothing
        if not keep.all():
            rows, payloads, counts = rows[keep], payloads[keep], counts[keep]
        src = _np.repeat(rows, counts)
        payload = _np.repeat(payloads, counts)
        if not len(rows):
            return src, self.targets[:0], payload
        # Gather each selected row's contiguous target extent: a cumsum
        # over per-element deltas that step by 1 inside a row and jump to
        # the next row's indptr start at each boundary.
        starts = self.indptr[rows]
        deltas = _np.ones(int(counts.sum()), dtype=_np.int64)
        deltas[0] = starts[0]
        bounds = _np.cumsum(counts)[:-1]
        deltas[bounds] = starts[1:] - starts[:-1] - counts[:-1] + 1
        return src, self.targets[_np.cumsum(deltas)], payload


class BlockResult:
    """What a batched kernel hands back for one block.

    ``values`` — new per-row values (same length/order as the block).
    ``out`` — outbox columns ``(src_rows, dst_slots, payloads)`` or None.
    ``halt`` — halt votes: True (all rows vote), False (none do), or a
    per-row bool array.
    ``costs`` — per-row modelled CPU units, or None for the default
    ``1 + logical message count`` (matching ``compute_cost``).
    """

    __slots__ = ("values", "out", "halt", "costs")

    def __init__(self, values, out=None, halt=False, costs=None):
        self.values = values
        self.out = out
        self.halt = halt
        self.costs = costs


class BatchedVertexProgram(VertexProgram):
    """A :class:`VertexProgram` with an additional whole-block fast path.

    Subclasses implement :meth:`compute_batch` as pure array operations
    over a :class:`BlockContext` (reprolint ``KER001`` rejects per-vertex
    Python loops inside it) and declare ``batch_dtype`` — the numpy dtype
    the block's value/message arrays are built with.  The scalar
    :meth:`~VertexProgram.compute` remains mandatory and authoritative:
    the dispatcher falls back to it whenever numpy is missing, the gate
    env var disables the kernel, or the live values/messages don't fit
    ``batch_dtype`` exactly (e.g. string labels) — and the batched path
    must reproduce it bit for bit.
    """

    #: numpy dtype name for the value/message arrays ("float64"/"int64").
    batch_dtype = "float64"

    def __init_subclass__(cls, **kwargs):
        """Disable an inherited kernel when only ``compute`` is overridden.

        A kernel is only valid paired with the ``compute`` it mirrors: a
        subclass that redefines the scalar semantics without redefining
        ``compute_batch`` would silently keep running the parent's kernel,
        so it drops back to the scalar loop instead.
        """
        super().__init_subclass__(**kwargs)
        if "compute" in cls.__dict__ and "compute_batch" not in cls.__dict__:
            cls.compute_batch = None

    def compute_batch(self, block):
        """Evaluate a whole block; returns a :class:`BlockResult`."""
        raise NotImplementedError
