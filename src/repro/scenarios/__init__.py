"""Deterministic, replayable dynamic-scenario workloads.

The paper's core claim is *adaptation*: the partitioner keeps cut quality
while the graph churns underneath it.  This package turns that claim into
first-class, regression-testable workloads:

* :mod:`churn` — seeded :class:`~repro.graph.stream.EventStream` factories
  for every churn regime (growth, decay, rewiring, flash crowds, rolling
  windows, the Twitter drip, weekly CDR batches);
* :mod:`spec` — the declarative :class:`Scenario` record: graph generator +
  churn schedule + runner configuration;
* :mod:`engine` — :func:`play_scenario`, replaying a scenario through
  :class:`~repro.core.runner.AdaptiveRunner` round by round (or without
  adaptation: the static-hash paired cluster), or — ``engine="pregel"`` —
  through the sharded :class:`~repro.cluster.coordinator.Coordinator` on
  any executor backend;
* :mod:`io` — user-defined scenario specs from JSON/TOML files;
* :mod:`registry` — the named catalog (``repro scenario --list``).

Timelines are bit-for-bit reproducible across backends and metrics modes;
``tests/test_golden_timelines.py`` pins three of them as JSON fixtures.
"""

from repro.scenarios.churn import CHURNS, make_churn
from repro.scenarios.engine import (
    ENGINES,
    RoundRecord,
    ScenarioResult,
    play_scenario,
)
from repro.scenarios.io import load_scenario, scenario_from_dict
from repro.scenarios.registry import (
    SCENARIOS,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.spec import GRAPH_KINDS, ChurnSpec, GraphSpec, Scenario, scaled

__all__ = [
    "CHURNS",
    "ENGINES",
    "GRAPH_KINDS",
    "ChurnSpec",
    "GraphSpec",
    "RoundRecord",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "get_scenario",
    "load_scenario",
    "make_churn",
    "play_scenario",
    "register_scenario",
    "scaled",
    "scenario_from_dict",
    "scenario_names",
]
