"""Seeded churn-schedule factories: deterministic dynamic workloads.

Each factory takes the (settled) base graph plus knobs and returns a
replayable :class:`~repro.graph.stream.EventStream`.  All randomness flows
through :func:`repro.utils.make_rng`, and events emitted at equal times rely
on the stream's FIFO tie order — so a schedule is a pure function of
``(graph topology, parameters, seed)`` and replays identically against every
backend and system configuration (the paper's paired-cluster methodology).

The regimes mirror the paper's dynamic workloads:

* :func:`growth_churn` — forest-fire arrivals dripped over time (Fig. 7(b));
* :func:`decay_churn` — subscribers leaving with all their edges;
* :func:`rewire_churn` — topology rewiring at constant size;
* :func:`flash_crowd_churn` — a trending hub absorbing a burst of new
  vertices in a short window;
* :func:`rolling_window_churn` — edges arrive continuously and expire after
  a fixed horizon (the telco rolling window);
* :func:`twitter_churn` — the diurnal mention stream (Fig. 8);
* :func:`cdr_churn` — buffered weekly add/remove subscriber churn (Fig. 9).
"""

import bisect

from repro.core.sweep import sort_vertices
from repro.generators.cdr import CdrStreamConfig, generate_cdr_stream
from repro.generators.forest_fire import forest_fire_expansion
from repro.generators.social import TweetStreamConfig, generate_tweet_stream
from repro.graph.events import AddEdge, AddVertex, RemoveEdge, RemoveVertex
from repro.graph.stream import EventStream
from repro.utils import make_rng

__all__ = [
    "CHURNS",
    "cdr_churn",
    "decay_churn",
    "flash_crowd_churn",
    "growth_churn",
    "make_churn",
    "rewire_churn",
    "rolling_window_churn",
    "twitter_churn",
]


def _edge_key(edge):
    return tuple((type(x).__name__, repr(x)) for x in edge)


def _sorted_edges(edges):
    """Canonically ordered edge list (mixed-type safe, like sort_vertices)."""
    edges = list(edges)
    try:
        return sorted(edges)
    except TypeError:
        return sorted(edges, key=_edge_key)


def _sorted_insert(edges, pair):
    """Insert ``pair`` keeping the list in :func:`_sorted_edges` order."""
    try:
        bisect.insort(edges, pair)
    except TypeError:  # mixed identifier types: re-sort under the key
        edges.append(pair)
        edges.sort(key=_edge_key)


def _sorted_remove(edges, pair):
    """Remove ``pair`` from a :func:`_sorted_edges`-ordered list."""
    try:
        idx = bisect.bisect_left(edges, pair)
    except TypeError:
        edges.remove(pair)
        return
    if idx < len(edges) and edges[idx] == pair:
        edges.pop(idx)
    else:  # key-ordered fallback list: position differs from natural order
        edges.remove(pair)


def growth_churn(
    graph,
    *,
    seed=0,
    num_vertices=50,
    duration=32.0,
    burn_probability=0.35,
    id_prefix="grow",
):
    """Forest-fire arrivals spread uniformly over ``[0, duration)``.

    Each arrival is one ``AddVertex`` plus its burn's ``AddEdge`` events, all
    stamped with the arrival's time (FIFO tie order keeps the vertex ahead of
    its edges).
    """
    if num_vertices < 1:
        raise ValueError("num_vertices must be >= 1")
    events, _ = forest_fire_expansion(
        graph,
        num_vertices,
        burn_probability=burn_probability,
        seed=seed,
        id_prefix=id_prefix,
    )
    stream = EventStream()
    arrival = -1
    for event in events:
        if isinstance(event, AddVertex):
            arrival += 1
        stream.push(duration * arrival / num_vertices, event)
    return stream


def decay_churn(graph, *, seed=0, fraction=0.2, duration=32.0):
    """A random ``fraction`` of the current vertices leaves over ``duration``.

    Victims depart with all their incident edges (``RemoveVertex``), evenly
    spaced in time — the CDR use case's subscriber loss in isolation.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rng = make_rng(seed, "decay_churn")
    population = list(graph.vertices())
    count = int(len(population) * fraction)
    victims = rng.sample(population, count) if count else []
    stream = EventStream()
    for i, victim in enumerate(victims):
        stream.push(duration * i / max(1, count), RemoveVertex(victim))
    return stream


def rewire_churn(graph, *, seed=0, num_rewires=50, duration=32.0):
    """Constant-size topology churn: drop a random edge, add a random one.

    Each rewiring step emits ``RemoveEdge(u, v)`` then ``AddEdge(u, w)`` at
    the same time stamp, keeping vertex count and (approximately) edge count
    stable while the cut structure drifts — the regime where a static initial
    partition decays and only adaptation can recover.
    """
    if num_rewires < 0:
        raise ValueError("num_rewires must be >= 0")
    rng = make_rng(seed, "rewire_churn")
    working = graph.copy()
    stream = EventStream()
    vertices = list(working.vertices())
    # Canonical edge order: edges() interleaves per-vertex *set* iteration,
    # which is not contractually identical across backend bridges.  Sorted
    # once up front, then maintained incrementally (each rewire changes at
    # most two entries — re-sorting per step would be O(R·E log E)).
    edges = _sorted_edges(working.edges())
    for i in range(num_rewires):
        if not edges or len(vertices) < 3:
            break
        u, v = edges[rng.randrange(len(edges))]
        anchor = u if rng.random() < 0.5 else v
        target = vertices[rng.randrange(len(vertices))]
        attempts = 0
        while (
            target == anchor or working.has_edge(anchor, target)
        ) and attempts < 20:
            target = vertices[rng.randrange(len(vertices))]
            attempts += 1
        t = duration * i / num_rewires
        stream.push(t, RemoveEdge(u, v))
        working.remove_edge(u, v)
        _sorted_remove(edges, (u, v))
        if target != anchor and not working.has_edge(anchor, target):
            stream.push(t, AddEdge(anchor, target))
            working.add_edge(anchor, target)
            _sorted_insert(edges, tuple(sort_vertices((anchor, target))))
    return stream


def flash_crowd_churn(
    graph,
    *,
    seed=0,
    num_fans=40,
    at=8.0,
    duration=4.0,
    fan_ties=2,
    id_prefix="fan",
):
    """A trending hub: ``num_fans`` new vertices pile onto one vertex fast.

    The hub is the highest-degree vertex (canonical tie-break).  Every fan
    links to the hub plus ``fan_ties`` extra targets drawn from the hub's
    neighbourhood and earlier fans — the flash-crowd hotspot that stresses
    capacity quotas around a single partition.
    """
    if num_fans < 1:
        raise ValueError("num_fans must be >= 1")
    rng = make_rng(seed, "flash_crowd")
    candidates = sort_vertices(graph.vertices())
    if not candidates:
        raise ValueError("flash crowd needs a non-empty base graph")
    hub = max(candidates, key=graph.degree)
    pool = sort_vertices(graph.neighbors(hub)) or [hub]
    stream = EventStream()
    for i in range(num_fans):
        fan = f"{id_prefix}:{i}"
        t = at + duration * i / num_fans
        stream.push(t, AddVertex(fan))
        stream.push(t, AddEdge(fan, hub))
        for _ in range(fan_ties):
            target = pool[rng.randrange(len(pool))]
            if target != fan:
                stream.push(t, AddEdge(fan, target))
        pool.append(fan)
    return stream


def rolling_window_churn(
    graph,
    *,
    seed=0,
    rate=8.0,
    duration=60.0,
    horizon=10.0,
    locality=0.7,
):
    """Edges arrive continuously and expire ``horizon`` seconds later.

    Arrivals pick one endpoint uniformly; the other comes from the first
    endpoint's two-hop neighbourhood with probability ``locality`` (the
    community structure adaptation exploits), else uniformly.  Every added
    edge is scheduled for removal at ``t + horizon``, so the live graph is a
    rolling window over the arrival stream — the paper's always-on telco
    regime, and the workload the incremental-metrics benchmark times.
    """
    if rate <= 0 or duration <= 0 or horizon <= 0:
        raise ValueError("rate, duration and horizon must be positive")
    rng = make_rng(seed, "rolling_window")
    vertices = list(graph.vertices())
    if len(vertices) < 2:
        raise ValueError("rolling window needs at least two vertices")
    stream = EventStream()
    live = {}  # canonical pair -> expiry time
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= duration:
            break
        u = vertices[rng.randrange(len(vertices))]
        v = None
        if rng.random() < locality:
            # Sorted neighbour views: raw set order is not backend-portable.
            hops = sort_vertices(graph.neighbors(u))
            if hops:
                w = hops[rng.randrange(len(hops))]
                two_hops = sort_vertices(graph.neighbors(w))
                if two_hops:
                    v = two_hops[rng.randrange(len(two_hops))]
        if v is None or v == u:
            v = vertices[rng.randrange(len(vertices))]
        if v == u:
            continue
        a, b = sort_vertices((u, v))
        if graph.has_edge(a, b):
            continue  # base edges are permanent; the window covers arrivals
        expiry = live.get((a, b))
        if expiry is not None and expiry > t:
            continue  # still live from an earlier arrival
        stream.push(t, AddEdge(a, b))
        stream.push(t + horizon, RemoveEdge(a, b))
        live[(a, b)] = t + horizon
    return stream


def twitter_churn(
    graph,
    *,
    seed=0,
    duration=1800.0,
    mean_rate=4.0,
    num_users=400,
    burst_at=None,
    burst_magnitude=3.0,
):
    """The diurnal Twitter mention drip (continuous regime, Fig. 8).

    Ignores the base graph: the mention stream creates its own ``u<k>``
    population, so pair it with an empty base graph.
    """
    del graph
    return generate_tweet_stream(
        TweetStreamConfig(
            duration=duration,
            mean_rate=mean_rate,
            num_users=num_users,
            burst_at=burst_at,
            burst_magnitude=burst_magnitude,
            seed=seed,
        )
    )


def cdr_churn(graph, *, seed=0, subscribers=400, weeks=4, ties=4):
    """Weekly CDR subscriber churn (buffered regime, Fig. 9).

    Ignores the base graph: the stream seeds its own ``s<k>`` population.
    """
    del graph
    stream, _ = generate_cdr_stream(
        CdrStreamConfig(
            initial_subscribers=subscribers,
            num_weeks=weeks,
            ties_per_subscriber=ties,
            seed=seed,
        )
    )
    return stream


CHURNS = {
    "growth": growth_churn,
    "decay": decay_churn,
    "rewire": rewire_churn,
    "flash-crowd": flash_crowd_churn,
    "rolling-window": rolling_window_churn,
    "twitter-drip": twitter_churn,
    "cdr-weekly": cdr_churn,
}


def make_churn(kind, graph, seed=0, **params):
    """Build the named churn schedule against ``graph`` (ValueError if unknown)."""
    try:
        factory = CHURNS[kind]
    except KeyError:
        raise ValueError(
            f"unknown churn kind {kind!r}; choose from {sorted(CHURNS)}"
        ) from None
    return factory(graph, seed=seed, **params)
