"""The scenario engine: replay a churn schedule through an execution stack.

:func:`play_scenario` is the single entry point the CLI, the benchmarks and
the golden-timeline regression suites share.  Two engines replay the same
churn schedule:

* ``engine="adaptive"`` (default) — the logical round loop: build the seed
  graph, hash-partition it, optionally let the adaptive algorithm settle,
  then drain the schedule round by round through
  :class:`~repro.core.runner.AdaptiveRunner`.  With ``adaptive=False`` the
  engine never steps — new vertices still land by hash placement, which is
  exactly the paper's static-hash cluster of the paired experiment.
* ``engine="pregel"`` — the full distributed simulation: the same rounds
  drive a sharded :class:`~repro.cluster.coordinator.Coordinator` (vertex
  program + messages + deferred-migration protocol + capacity broadcasts),
  one superstep per adaptive iteration, on any
  :mod:`~repro.cluster.executor` backend.  The per-superstep
  :class:`~repro.pregel.system.SuperstepReport` timeline is exposed via
  :meth:`ScenarioResult.superstep_digest` and is bit-identical across
  executors (the cluster golden suite pins it).

Timelines are a pure function of ``(scenario, engine, adaptive[, program])``
— backend, metrics mode and executor provably do not matter (the golden
suites pin the first two, the cross-executor suite the third).
"""

from dataclasses import dataclass

from repro.analysis.cost_model import CostModel
from repro.core.balance import VertexBalance
from repro.core.runner import AdaptiveConfig, AdaptiveRunner
from repro.graph.stream import batch_by_count, batch_by_time
from repro.partitioning.base import balanced_capacities
from repro.partitioning.hashing import HashPartitioner
from repro.pregel.network import SuperstepTraffic

__all__ = ["ENGINES", "RoundRecord", "ScenarioResult", "play_scenario"]

ENGINES = ("adaptive", "pregel")

# One model for every engine's "modelled superstep cost" column, so numbers
# are comparable across engines and scenarios.
_COST_MODEL = CostModel()


@dataclass(frozen=True)
class RoundRecord:
    """Everything observable about one scenario round."""

    round: int
    time: float
    events: int          # events offered in this round's batch
    changed: int         # events that actually changed the graph
    migrations: int      # migrations executed across the round's iterations
    cut_edges: int
    cut_ratio: float
    sizes: tuple
    num_vertices: int
    num_edges: int
    imbalance: float     # max partition size over the balanced load
    quiet_iterations: int  # convergence-window fill after the round
    converged: bool      # quiet window full at end of round
    superstep_cost: float  # modelled cost of the round's iterations


class ScenarioResult:
    """A completed scenario run: per-round records plus summaries."""

    def __init__(self, scenario, backend, adaptive, rounds, settle_iterations,
                 engine="adaptive", reports=None, tracer=None,
                 metrics_registry=None):
        self.scenario = scenario
        self.backend = backend
        self.adaptive = adaptive
        self.rounds = rounds
        self.settle_iterations = settle_iterations
        self.engine = engine
        self.reports = reports  # pregel engine: the SuperstepReport timeline
        self.tracer = tracer    # pregel engine: the run's span collector
        self.metrics_registry = metrics_registry  # pregel engine: counters

    def __len__(self):
        return len(self.rounds)

    def series(self, attribute):
        """Extract one per-round column, e.g. ``result.series("cut_ratio")``."""
        return [getattr(r, attribute) for r in self.rounds]

    def final_cut_ratio(self):
        return self.rounds[-1].cut_ratio if self.rounds else None

    def total_migrations(self):
        return sum(r.migrations for r in self.rounds)

    def peak_cut_ratio(self):
        return max((r.cut_ratio for r in self.rounds), default=None)

    def total_cost(self):
        """Modelled cost summed over every round."""
        return sum(r.superstep_cost for r in self.rounds)

    def digest(self):
        """JSON-able exact record for golden-timeline comparison.

        Floats survive a JSON round-trip exactly (``repr`` round-trips), so
        fixtures written from one run compare ``==`` against any later run.
        """
        return {
            "scenario": self.scenario.name,
            "seed": self.scenario.seed,
            "engine": self.engine,
            "adaptive": self.adaptive,
            "rounds": [
                {
                    "round": r.round,
                    "events": r.events,
                    "changed": r.changed,
                    "migrations": r.migrations,
                    "cut_edges": r.cut_edges,
                    "cut_ratio": r.cut_ratio,
                    "sizes": list(r.sizes),
                    "num_vertices": r.num_vertices,
                    "num_edges": r.num_edges,
                    "imbalance": r.imbalance,
                    "quiet_iterations": r.quiet_iterations,
                    "converged": r.converged,
                    "superstep_cost": r.superstep_cost,
                }
                for r in self.rounds
            ],
        }

    def superstep_digest(self):
        """JSON-able exact :class:`SuperstepReport` timeline (pregel engine).

        This is the record the cross-executor golden suite pins: every
        executor backend must reproduce it bit-for-bit.
        """
        if self.reports is None:
            raise ValueError(
                "superstep timelines exist only for engine='pregel' runs"
            )
        return {
            "scenario": self.scenario.name,
            "seed": self.scenario.seed,
            "engine": self.engine,
            "adaptive": self.adaptive,
            "supersteps": [
                {
                    "superstep": r.superstep,
                    "requested": r.migrations_requested,
                    "announced": r.migrations_announced,
                    "blocked": r.migrations_blocked,
                    "cut_edges": r.cut_edges,
                    "cut_ratio": r.cut_ratio,
                    "sizes": list(r.sizes),
                    "computed": r.computed_vertices,
                    "mutations": r.mutations_applied,
                    "failed_worker": r.failed_worker,
                    "per_worker_compute": list(r.per_worker_compute),
                    "traffic": {
                        "local": r.traffic.local_messages,
                        "remote": r.traffic.remote_messages,
                        "migrations": r.traffic.migrations,
                        "notifications": r.traffic.migration_notifications,
                        "capacity": r.traffic.capacity_messages,
                        "compute_units": r.traffic.compute_units,
                        "recovery": r.traffic.recovery_events,
                    },
                }
                for r in self.reports
            ],
        }

    def __repr__(self):
        return (
            f"ScenarioResult({self.scenario.name!r}, engine={self.engine!r}, "
            f"backend={self.backend!r}, adaptive={self.adaptive}, "
            f"rounds={len(self.rounds)})"
        )


def _batches(scenario, stream):
    """Yield ``(time, events)`` rounds according to the scenario's regime."""
    if scenario.regime == "continuous":
        yield from batch_by_time(stream, scenario.window)
    else:
        for i, events in enumerate(batch_by_count(stream, scenario.batch_size)):
            yield float(i), events


def play_scenario(
    scenario,
    backend="adjacency",
    adaptive=True,
    metrics="incremental",
    max_rounds=None,
    engine="adaptive",
    executor=None,
    program=None,
    decisions="shard",
    staleness=0,
    trace=None,
    metrics_registry=None,
):
    """Run ``scenario`` end to end; returns a :class:`ScenarioResult`.

    ``adaptive=False`` replays the identical event sequence without any
    migration activity (the static-hash paired cluster).  ``metrics``
    forwards to the execution config — pass ``"recompute"`` to cross-check
    every round against full recomputation.  ``max_rounds`` truncates long
    streams (benchmarks use it; golden fixtures never do).

    ``engine="pregel"`` replays the scenario through the sharded
    :class:`~repro.cluster.coordinator.Coordinator`; ``executor`` then
    selects the backend (None/name/instance, see
    :func:`~repro.cluster.executor.make_executor`), ``program`` the vertex
    program (default: PageRank), ``decisions`` where migration
    proposals are generated (``"shard"``, the default, evaluates the
    heuristic inside the shards; ``"coordinator"`` keeps it central — the
    knob moves work, never results) and ``staleness`` the relaxed-synchrony
    window (:class:`~repro.pregel.system.PregelConfig.snapshot_staleness`:
    decision snapshots are reused for up to that many supersteps between
    capacity resyncs; ``0``, the default, is the strict-BSP behaviour the
    golden fixtures pin).  All four are ignored by the adaptive engine.

    ``trace`` turns on phase-span tracing (pregel engine only): pass a
    :class:`~repro.obs.Tracer` to collect spans in-process, or a path to
    export them on completion (``*.jsonl`` span rows, anything else Chrome
    trace JSON — see :mod:`repro.obs.export`).  ``metrics_registry``
    supplies the run's :class:`~repro.obs.MetricsRegistry` (one is created
    either way; passing yours lets several runs share counters).  Both are
    pure measurement — timelines and digests are byte-identical with them
    on or off.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    if engine == "pregel":
        return _play_pregel(
            scenario, backend, adaptive, metrics, max_rounds, executor,
            program, decisions, staleness, trace, metrics_registry,
        )
    if trace is not None or metrics_registry is not None:
        raise ValueError(
            "trace/metrics_registry require engine='pregel' (the adaptive "
            "round loop has no phase instrumentation)"
        )
    return _play_adaptive(scenario, backend, adaptive, metrics, max_rounds)


# ----------------------------------------------------------------------
# engine="adaptive": the logical round loop
# ----------------------------------------------------------------------


def _adaptive_round_cost(scenario, step_stats):
    """Modelled cost of one adaptive round, via the shared cost model.

    The logical runner exchanges no application messages, so the modelled
    cost covers what the distributed system would have paid for the round's
    partitioning work: one heuristic evaluation per active vertex (compute
    units), the admitted migrations, and the per-iteration capacity
    broadcast (k·(k−1) messages each).
    """
    k = scenario.num_partitions
    traffic = SuperstepTraffic(
        migrations=sum(s.migrations for s in step_stats),
        capacity_messages=k * (k - 1) * len(step_stats),
        compute_units=float(sum(s.active_vertices for s in step_stats)),
    )
    return _COST_MODEL.time_of(traffic)


def _play_adaptive(scenario, backend, adaptive, metrics, max_rounds):
    graph = scenario.build_graph(backend)
    capacities = balanced_capacities(
        max(1, graph.num_vertices), scenario.num_partitions, scenario.slack
    )
    state = HashPartitioner().partition(
        graph, scenario.num_partitions, list(capacities)
    )
    config = AdaptiveConfig(
        willingness=scenario.willingness,
        quiet_window=scenario.quiet_window,
        seed=scenario.seed,
        # The scenario's slack must reach the balance policy: the runner
        # refreshes capacities from it, not from the initial vector above.
        balance=VertexBalance(slack=scenario.slack),
        metrics=metrics,
    )
    runner = AdaptiveRunner(graph, state, config)
    if adaptive and scenario.settle_iterations:
        runner.run_until_convergence(max_iterations=scenario.settle_iterations)
    settle_iterations = runner.iteration

    stream = scenario.build_stream(graph)
    rounds = []

    def record(index, time, offered, changed, step_stats):
        sizes = state.sizes
        rounds.append(
            RoundRecord(
                round=index,
                time=time,
                events=offered,
                changed=changed,
                migrations=sum(s.migrations for s in step_stats),
                cut_edges=state.cut_edges,
                cut_ratio=state.cut_ratio(),
                sizes=tuple(sizes),
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
                imbalance=state.imbalance(),
                quiet_iterations=runner.quiet_iterations,
                converged=runner.converged,
                superstep_cost=_adaptive_round_cost(scenario, step_stats),
            )
        )

    index = 0
    for time, events in _batches(scenario, stream):
        if max_rounds is not None and index >= max_rounds:
            break
        changed = runner.apply_events(events)
        step_stats = []
        if adaptive:
            for _ in range(scenario.steps_per_round):
                step_stats.append(runner.step())
        record(index, time, len(events), changed, step_stats)
        index += 1

    if adaptive:
        # Cooldown rounds carry no stream time; -1.0 marks them (NaN would
        # break the golden fixtures' exact equality).
        for _ in range(scenario.cooldown_rounds):
            step_stats = [
                runner.step() for _ in range(scenario.steps_per_round)
            ]
            record(index, -1.0, 0, 0, step_stats)
            index += 1

    return ScenarioResult(scenario, backend, adaptive, rounds, settle_iterations)


# ----------------------------------------------------------------------
# engine="pregel": the sharded distributed simulation
# ----------------------------------------------------------------------


def _play_pregel(scenario, backend, adaptive, metrics, max_rounds, executor,
                 program, decisions="shard", staleness=0, trace=None,
                 metrics_registry=None):
    from repro.apps.pagerank import PageRank
    from repro.cluster.coordinator import Coordinator
    from repro.obs import Tracer, write_trace
    from repro.pregel.system import PregelConfig

    tracer = None
    trace_path = None
    if trace is not None:
        if isinstance(trace, Tracer):
            tracer = trace
        else:
            trace_path = trace
            tracer = Tracer()
    if scenario.steps_per_round < 1:
        raise ValueError(
            "the pregel engine needs steps_per_round >= 1: stream mutations "
            "apply at superstep barriers, so a round must run at least one"
        )
    graph = scenario.build_graph(backend)
    if program is None:
        program = PageRank()
    config = PregelConfig(
        num_workers=scenario.num_partitions,
        adaptive=adaptive,
        continuous=True,
        willingness=scenario.willingness,
        balance=VertexBalance(slack=scenario.slack),
        seed=scenario.seed,
        quiet_window=scenario.quiet_window,
        metrics=metrics,
        decisions=decisions,
        snapshot_staleness=staleness,
    )
    # Context-managed: an exception anywhere mid-scenario (bad spec, a
    # worker crash, a failing program) must stop the executor's worker
    # processes, never orphan them.
    with Coordinator(
        graph, program, config, executor=executor, tracer=tracer,
        metrics_registry=metrics_registry,
    ) as system:
        settle_iterations = 0
        if adaptive and scenario.settle_iterations:
            while (
                not system.partitioning_converged
                and settle_iterations < scenario.settle_iterations
            ):
                system.run_superstep()
                settle_iterations += 1

        stream = scenario.build_stream(graph)
        state = system.state
        rounds = []

        def run_round(index, time, events):
            system.inject_events(events)
            reports = [
                system.run_superstep()
                for _ in range(scenario.steps_per_round)
            ]
            rounds.append(
                RoundRecord(
                    round=index,
                    time=time,
                    events=len(events),
                    changed=sum(r.mutations_applied for r in reports),
                    migrations=sum(r.migrations_announced for r in reports),
                    cut_edges=state.cut_edges,
                    cut_ratio=state.cut_ratio(),
                    sizes=tuple(state.sizes),
                    num_vertices=graph.num_vertices,
                    num_edges=graph.num_edges,
                    imbalance=state.imbalance(),
                    quiet_iterations=system.detector.quiet_iterations,
                    converged=system.detector.converged,
                    superstep_cost=sum(
                        _COST_MODEL.time_of(r.traffic) for r in reports
                    ),
                )
            )

        index = 0
        for time, events in _batches(scenario, stream):
            if max_rounds is not None and index >= max_rounds:
                break
            run_round(index, time, events)
            index += 1

        if adaptive:
            for _ in range(scenario.cooldown_rounds):
                run_round(index, -1.0, [])
                index += 1

        result = ScenarioResult(
            scenario,
            backend,
            adaptive,
            rounds,
            settle_iterations,
            engine="pregel",
            reports=list(system.reports),
            tracer=system.tracer,
            metrics_registry=system.metrics_registry,
        )
    # Export outside the with-block: the executor is stopped, so every
    # worker-side span the run will ever produce has been absorbed.
    if trace_path is not None:
        write_trace(tracer.spans, trace_path)
    return result
