"""The scenario engine: replay a churn schedule through the adaptive stack.

:func:`play_scenario` is the single entry point the CLI, the benchmarks and
the golden-timeline regression suite share.  It builds the scenario's seed
graph on the requested backend, hash-partitions it, optionally lets the
adaptive algorithm settle, then drains the churn schedule round by round:
apply one batch of events, run the configured adaptive iterations, record
one :class:`RoundRecord`.  With ``adaptive=False`` the engine never steps —
new vertices still land by hash placement, which is exactly the paper's
static-hash cluster of the paired experiment.

Timelines are a pure function of ``(scenario, adaptive)`` — backend and
metrics mode provably do not matter (the golden suite pins the former, the
equivalence property tests the latter).
"""

from dataclasses import dataclass

from repro.core.balance import VertexBalance
from repro.core.runner import AdaptiveConfig, AdaptiveRunner
from repro.graph.stream import batch_by_count, batch_by_time
from repro.partitioning.base import balanced_capacities
from repro.partitioning.hashing import HashPartitioner

__all__ = ["RoundRecord", "ScenarioResult", "play_scenario"]


@dataclass(frozen=True)
class RoundRecord:
    """Everything observable about one scenario round."""

    round: int
    time: float
    events: int          # events offered in this round's batch
    changed: int         # events that actually changed the graph
    migrations: int      # migrations executed across the round's iterations
    cut_edges: int
    cut_ratio: float
    sizes: tuple
    num_vertices: int
    num_edges: int


class ScenarioResult:
    """A completed scenario run: per-round records plus summaries."""

    def __init__(self, scenario, backend, adaptive, rounds, settle_iterations):
        self.scenario = scenario
        self.backend = backend
        self.adaptive = adaptive
        self.rounds = rounds
        self.settle_iterations = settle_iterations

    def __len__(self):
        return len(self.rounds)

    def series(self, attribute):
        """Extract one per-round column, e.g. ``result.series("cut_ratio")``."""
        return [getattr(r, attribute) for r in self.rounds]

    def final_cut_ratio(self):
        return self.rounds[-1].cut_ratio if self.rounds else None

    def total_migrations(self):
        return sum(r.migrations for r in self.rounds)

    def peak_cut_ratio(self):
        return max((r.cut_ratio for r in self.rounds), default=None)

    def digest(self):
        """JSON-able exact record for golden-timeline comparison.

        Floats survive a JSON round-trip exactly (``repr`` round-trips), so
        fixtures written from one run compare ``==`` against any later run.
        """
        return {
            "scenario": self.scenario.name,
            "seed": self.scenario.seed,
            "adaptive": self.adaptive,
            "rounds": [
                {
                    "round": r.round,
                    "events": r.events,
                    "changed": r.changed,
                    "migrations": r.migrations,
                    "cut_edges": r.cut_edges,
                    "cut_ratio": r.cut_ratio,
                    "sizes": list(r.sizes),
                    "num_vertices": r.num_vertices,
                    "num_edges": r.num_edges,
                }
                for r in self.rounds
            ],
        }

    def __repr__(self):
        return (
            f"ScenarioResult({self.scenario.name!r}, backend={self.backend!r}, "
            f"adaptive={self.adaptive}, rounds={len(self.rounds)})"
        )


def _batches(scenario, stream):
    """Yield ``(time, events)`` rounds according to the scenario's regime."""
    if scenario.regime == "continuous":
        yield from batch_by_time(stream, scenario.window)
    else:
        for i, events in enumerate(batch_by_count(stream, scenario.batch_size)):
            yield float(i), events


def play_scenario(
    scenario,
    backend="adjacency",
    adaptive=True,
    metrics="incremental",
    max_rounds=None,
):
    """Run ``scenario`` end to end; returns a :class:`ScenarioResult`.

    ``adaptive=False`` replays the identical event sequence without any
    migration iterations (the static-hash paired cluster).  ``metrics``
    forwards to :class:`~repro.core.runner.AdaptiveConfig` — pass
    ``"recompute"`` to cross-check every round against full recomputation.
    ``max_rounds`` truncates long streams (benchmarks use it; golden
    fixtures never do).
    """
    graph = scenario.build_graph(backend)
    capacities = balanced_capacities(
        max(1, graph.num_vertices), scenario.num_partitions, scenario.slack
    )
    state = HashPartitioner().partition(
        graph, scenario.num_partitions, list(capacities)
    )
    config = AdaptiveConfig(
        willingness=scenario.willingness,
        quiet_window=scenario.quiet_window,
        seed=scenario.seed,
        # The scenario's slack must reach the balance policy: the runner
        # refreshes capacities from it, not from the initial vector above.
        balance=VertexBalance(slack=scenario.slack),
        metrics=metrics,
    )
    runner = AdaptiveRunner(graph, state, config)
    if adaptive and scenario.settle_iterations:
        runner.run_until_convergence(max_iterations=scenario.settle_iterations)
    settle_iterations = runner.iteration

    stream = scenario.build_stream(graph)
    rounds = []

    def record(index, time, offered, changed, migrations):
        sizes = state.sizes
        rounds.append(
            RoundRecord(
                round=index,
                time=time,
                events=offered,
                changed=changed,
                migrations=migrations,
                cut_edges=state.cut_edges,
                cut_ratio=state.cut_ratio(),
                sizes=tuple(sizes),
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
            )
        )

    index = 0
    for time, events in _batches(scenario, stream):
        if max_rounds is not None and index >= max_rounds:
            break
        changed = runner.apply_events(events)
        migrations = 0
        if adaptive:
            for _ in range(scenario.steps_per_round):
                migrations += runner.step().migrations
        record(index, time, len(events), changed, migrations)
        index += 1

    if adaptive:
        # Cooldown rounds carry no stream time; -1.0 marks them (NaN would
        # break the golden fixtures' exact equality).
        for _ in range(scenario.cooldown_rounds):
            migrations = 0
            for _ in range(scenario.steps_per_round):
                migrations += runner.step().migrations
            record(index, -1.0, 0, 0, migrations)
            index += 1

    return ScenarioResult(scenario, backend, adaptive, rounds, settle_iterations)
