"""Load user-defined :class:`Scenario` specs from JSON / TOML files.

The CLI's ``repro scenario --spec path`` reads a declarative document and
builds the same frozen :class:`~repro.scenarios.spec.Scenario` record the
catalog uses, so a file-defined scenario replays, composes and golden-pins
exactly like a built-in one.  Document shape (JSON shown; TOML is the same
table structure)::

    {
      "name": "my-burst",
      "description": "flash crowd atop the diurnal drip",
      "graph": {"kind": "powerlaw", "params": {"num_vertices": 300, "m": 3}},
      "churn": [
        {"kind": "twitter-drip", "params": {"duration": 600.0}},
        {"kind": "flash-crowd", "params": {"at": 120.0}, "seed_offset": 1}
      ],
      "regime": "continuous",
      "window": 30.0,
      "num_partitions": 4
    }

``churn`` may be one object or a list (composition by stream merging);
every scalar field of :class:`Scenario` may appear top-level.  TOML parses
via :mod:`tomllib` (Python ≥ 3.11) or, on 3.10, via the API-compatible
:mod:`tomli` backport when installed (a ``dev`` extra there); with neither
available a clear error points at JSON.
"""

import json
from pathlib import Path

from repro.scenarios.spec import ChurnSpec, GraphSpec, Scenario

try:
    import tomllib as _toml
except ImportError:  # pragma: no cover - Python 3.10
    try:
        import tomli as _toml  # same API; the stdlib module started as it
    except ImportError:
        _toml = None

__all__ = ["load_scenario", "scenario_from_dict"]

_SCALAR_FIELDS = (
    "regime",
    "window",
    "batch_size",
    "num_partitions",
    "willingness",
    "quiet_window",
    "slack",
    "seed",
    "settle_iterations",
    "steps_per_round",
    "cooldown_rounds",
)


def _churn_spec(data):
    if not isinstance(data, dict) or "kind" not in data:
        raise ValueError(
            f"churn entry must be an object with a 'kind': got {data!r}"
        )
    unknown = set(data) - {"kind", "params", "seed_offset"}
    if unknown:
        raise ValueError(f"unknown churn keys {sorted(unknown)}")
    return ChurnSpec(
        kind=data["kind"],
        params=dict(data.get("params", {})),
        seed_offset=int(data.get("seed_offset", 0)),
    )


def scenario_from_dict(data):
    """Build a :class:`Scenario` from a plain (JSON/TOML-shaped) dict."""
    if not isinstance(data, dict):
        raise ValueError(f"scenario document must be an object, got {data!r}")
    missing = {"name", "graph", "churn"} - set(data)
    if missing:
        raise ValueError(f"scenario document lacks {sorted(missing)}")
    unknown = set(data) - {"name", "description", "graph", "churn"} - set(
        _SCALAR_FIELDS
    )
    if unknown:
        raise ValueError(f"unknown scenario keys {sorted(unknown)}")
    graph_data = data["graph"]
    if not isinstance(graph_data, dict) or "kind" not in graph_data:
        raise ValueError("'graph' must be an object with a 'kind'")
    unknown = set(graph_data) - {"kind", "params"}
    if unknown:
        raise ValueError(f"unknown graph keys {sorted(unknown)}")
    graph = GraphSpec(
        kind=graph_data["kind"], params=dict(graph_data.get("params", {}))
    )
    churn_data = data["churn"]
    if isinstance(churn_data, dict):
        churn = _churn_spec(churn_data)
    else:
        churn = tuple(_churn_spec(entry) for entry in churn_data)
    fields = {k: data[k] for k in _SCALAR_FIELDS if k in data}
    return Scenario(
        name=data["name"],
        description=data.get("description", f"user scenario {data['name']}"),
        graph=graph,
        churn=churn,
        **fields,
    )


def load_scenario(path):
    """Read a scenario spec file (``.json`` or ``.toml``, by extension)."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".json":
        with open(path, "rb") as fh:
            data = json.load(fh)
    elif suffix == ".toml":
        if _toml is None:
            raise ValueError(
                "TOML scenario specs need Python >= 3.11 (tomllib) or the "
                "tomli backport installed; use a JSON spec instead"
            )
        with open(path, "rb") as fh:
            data = _toml.load(fh)
    else:
        raise ValueError(
            f"unsupported scenario spec {path.name!r}: use .json or .toml"
        )
    return scenario_from_dict(data)
