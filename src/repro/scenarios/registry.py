"""The named scenario catalog.

Small, laptop-fast instances of every churn regime.  Benchmarks scale them
up with :func:`repro.scenarios.spec.scaled`; the golden-timeline regression
suite replays a subset bit-for-bit on every backend.
"""

from repro.scenarios.spec import ChurnSpec, GraphSpec, Scenario

__all__ = ["SCENARIOS", "get_scenario", "register_scenario", "scenario_names"]

SCENARIOS = {}


def register_scenario(scenario):
    """Add a scenario to the catalog (last registration wins); returns it."""
    SCENARIOS[scenario.name] = scenario
    return scenario


def scenario_names():
    """Sorted catalog names."""
    return sorted(SCENARIOS)


def get_scenario(name):
    """Look up a catalog scenario (ValueError with the catalog if unknown)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from None


register_scenario(
    Scenario(
        name="mesh-growth",
        description="6³ FEM mesh growing 25% by forest-fire arrivals (Fig. 7b)",
        graph=GraphSpec("mesh", {"nx": 6}),
        churn=ChurnSpec("growth", {"num_vertices": 54, "duration": 32.0}),
        regime="continuous",
        window=2.0,
    )
)

register_scenario(
    Scenario(
        name="powerlaw-decay",
        description="Holme–Kim graph losing 25% of its vertices over time",
        graph=GraphSpec("powerlaw", {"num_vertices": 240, "m": 3, "seed": 7}),
        churn=ChurnSpec("decay", {"fraction": 0.25, "duration": 32.0}),
        regime="continuous",
        window=2.0,
    )
)

register_scenario(
    Scenario(
        name="grid-rewire",
        description="2-D grid under constant-size random rewiring",
        graph=GraphSpec("grid", {"nx": 16, "ny": 16}),
        churn=ChurnSpec("rewire", {"num_rewires": 60, "duration": 30.0}),
        regime="continuous",
        window=2.0,
    )
)

register_scenario(
    Scenario(
        name="flash-crowd",
        description="power-law graph hit by a 60-fan burst on its hottest hub",
        graph=GraphSpec("powerlaw", {"num_vertices": 300, "m": 3, "seed": 11}),
        churn=ChurnSpec("flash-crowd", {"num_fans": 60, "at": 4.0, "duration": 4.0}),
        regime="continuous",
        window=1.0,
    )
)

register_scenario(
    Scenario(
        name="rolling-window",
        description="ring community graph with edges expiring on a rolling horizon",
        graph=GraphSpec("ring", {"num_vertices": 300, "neighbours_each_side": 3}),
        churn=ChurnSpec(
            "rolling-window",
            {"rate": 6.0, "duration": 48.0, "horizon": 12.0},
        ),
        regime="continuous",
        window=4.0,
    )
)

register_scenario(
    Scenario(
        name="twitter-drip",
        description="diurnal mention stream building a graph from nothing (Fig. 8)",
        graph=GraphSpec("empty"),
        churn=ChurnSpec(
            "twitter-drip",
            {"duration": 1800.0, "mean_rate": 1.2, "num_users": 400},
        ),
        regime="continuous",
        window=120.0,
        settle_iterations=0,
    )
)

register_scenario(
    Scenario(
        name="mesh-growth-flash",
        description="growing FEM mesh hit mid-stream by a hub flash crowd "
        "(composed churn: growth ⊕ flash-crowd)",
        graph=GraphSpec("mesh", {"nx": 6}),
        churn=(
            ChurnSpec("growth", {"num_vertices": 54, "duration": 32.0}),
            ChurnSpec(
                "flash-crowd",
                {"num_fans": 40, "at": 16.0, "duration": 4.0},
                seed_offset=1,
            ),
        ),
        regime="continuous",
        window=2.0,
    )
)

register_scenario(
    Scenario(
        name="cdr-weekly",
        description="buffered weekly subscriber churn over a month of CDRs (Fig. 9)",
        graph=GraphSpec("empty"),
        churn=ChurnSpec("cdr-weekly", {"subscribers": 300, "weeks": 4, "ties": 4}),
        regime="buffered",
        batch_size=400,
        settle_iterations=0,
        num_partitions=6,
    )
)
