"""Declarative scenario specifications.

A :class:`Scenario` bundles the three things a dynamic experiment needs —
a seed-graph generator, a churn schedule and the runner configuration — as
plain data, so a scenario can be named, listed, replayed bit-for-bit on any
backend, serialised into a golden fixture and compared across paired system
configurations (adaptive vs static hash), exactly the paper's methodology.
"""

from dataclasses import dataclass, field, replace

from repro.generators.forest_fire import forest_fire_graph
from repro.generators.mesh import grid_2d, mesh_3d
from repro.generators.powerlaw import powerlaw_cluster_graph
from repro.generators.random_graphs import erdos_renyi_graph, ring_lattice
from repro.graph.backend import make_graph, to_backend
from repro.scenarios.churn import make_churn

__all__ = ["GRAPH_KINDS", "GraphSpec", "ChurnSpec", "Scenario", "scaled"]


def _empty_graph():
    return make_graph("adjacency")


GRAPH_KINDS = {
    "mesh": mesh_3d,
    "grid": grid_2d,
    "powerlaw": powerlaw_cluster_graph,
    "erdos-renyi": erdos_renyi_graph,
    "ring": ring_lattice,
    "forest-fire": forest_fire_graph,
    "empty": _empty_graph,
}


@dataclass(frozen=True)
class GraphSpec:
    """A named generator plus its keyword arguments."""

    kind: str
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in GRAPH_KINDS:
            raise ValueError(
                f"unknown graph kind {self.kind!r}; choose from {sorted(GRAPH_KINDS)}"
            )

    def build(self, backend="adjacency"):
        """Generate the seed graph and bridge it onto ``backend``."""
        graph = GRAPH_KINDS[self.kind](**self.params)
        return to_backend(graph, backend)


@dataclass(frozen=True)
class ChurnSpec:
    """A named churn schedule plus its keyword arguments (seed excluded).

    ``seed_offset`` decorrelates the RNG streams of composed schedules: a
    scenario composing two specs of the same kind would otherwise hand both
    the identical stream.  The effective seed is ``scenario.seed +
    seed_offset``.
    """

    kind: str
    params: dict = field(default_factory=dict)
    seed_offset: int = 0

    def build(self, graph, seed=0):
        """Generate the event stream against the (settled) base graph."""
        return make_churn(
            self.kind, graph, seed=seed + self.seed_offset, **self.params
        )


@dataclass(frozen=True)
class Scenario:
    """One replayable dynamic experiment.

    ``regime`` selects how the stream drains into rounds: ``"continuous"``
    slices it into fixed ``window``-length time batches (the Twitter mode —
    empty windows still tick), ``"buffered"`` into ``batch_size``-event
    batches (the CDR mode).  Per round the engine applies the batch, then
    runs ``steps_per_round`` adaptive iterations; after the stream drains it
    appends ``cooldown_rounds`` pure-adaptation rounds so re-convergence is
    part of the timeline.  ``settle_iterations`` bounds the pre-churn
    convergence run that gives adaptation a settled starting point.

    ``churn`` is one :class:`ChurnSpec` or a tuple of them; multiple specs
    compose by time-merging their streams
    (:meth:`~repro.graph.stream.EventStream.merged_with`) — e.g. a flash
    crowd landing on top of a diurnal drip.  Equal-time ordering across the
    merged parts follows the specs' declaration order (earlier spec wins
    the tie), with each part keeping its internal FIFO order — a pure
    function of the composed streams, never of what else the process
    happened to build.
    """

    name: str
    description: str
    graph: GraphSpec
    churn: object  # ChurnSpec or tuple of ChurnSpecs
    regime: str = "continuous"
    window: float = 2.0
    batch_size: int = 64
    num_partitions: int = 4
    willingness: float = 0.5
    quiet_window: int = 10
    slack: float = 1.10
    seed: int = 0
    settle_iterations: int = 200
    steps_per_round: int = 2
    cooldown_rounds: int = 10

    def __post_init__(self):
        churn = self.churn
        if isinstance(churn, ChurnSpec):
            churn = (churn,)
        else:
            churn = tuple(churn)
        if not churn or not all(isinstance(c, ChurnSpec) for c in churn):
            raise TypeError(
                "churn must be a ChurnSpec or a non-empty sequence of them"
            )
        object.__setattr__(self, "churn", churn)  # frozen: normalised form
        if self.regime not in ("continuous", "buffered"):
            raise ValueError('regime must be "continuous" or "buffered"')
        if self.regime == "continuous" and self.window <= 0:
            raise ValueError("continuous regime needs a positive window")
        if self.regime == "buffered" and self.batch_size < 1:
            raise ValueError("buffered regime needs batch_size >= 1")
        if self.num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if self.steps_per_round < 0 or self.cooldown_rounds < 0:
            raise ValueError("steps_per_round/cooldown_rounds must be >= 0")

    def build_graph(self, backend="adjacency"):
        return self.graph.build(backend)

    def build_stream(self, graph):
        """The scenario's event stream: composed parts time-merged."""
        streams = [spec.build(graph, seed=self.seed) for spec in self.churn]
        merged = streams[0]
        for stream in streams[1:]:
            merged = merged.merged_with(stream)
        return merged


def scaled(scenario, **overrides):
    """A copy of ``scenario`` with field overrides (name kept unless given).

    Convenience for benchmarks that take a registry scenario up to stress
    scale: ``scaled(s, graph=GraphSpec(...), window=30.0)``.
    """
    return replace(scenario, **overrides)
