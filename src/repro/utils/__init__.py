"""Shared low-level utilities: deterministic RNG, stable hashing, statistics.

These helpers underpin every experiment in the reproduction.  Determinism is a
hard requirement — the paper reports means of 10 repetitions, and our tests
assert bit-for-bit reproducibility under a fixed seed — so all randomness in
the library flows through :func:`repro.utils.rng.make_rng` and all vertex
placement hashing flows through :func:`repro.utils.hashing.stable_hash`
(Python's builtin ``hash`` is salted per process and therefore unusable).
"""

from repro.utils.hashing import stable_hash
from repro.utils.rng import WillingnessSource, derive_seed, make_rng, vertex_key
from repro.utils.stats import (
    RunningStats,
    mean,
    mean_and_error,
    stderr_of_mean,
)

__all__ = [
    "RunningStats",
    "WillingnessSource",
    "derive_seed",
    "make_rng",
    "mean",
    "mean_and_error",
    "stable_hash",
    "stderr_of_mean",
    "vertex_key",
]
