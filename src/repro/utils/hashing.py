"""Process-stable hashing used for hash partitioning.

The paper's default initial placement is ``H(v) mod k``.  Python's builtin
``hash`` is randomised per interpreter process (PYTHONHASHSEED), which would
make experiments unreproducible, so we hash through MD5 instead.  MD5 is
adequate here: we need dispersion, not cryptographic strength.
"""

import hashlib

__all__ = ["stable_hash"]


def stable_hash(value):
    """Return a stable non-negative 64-bit integer hash of ``value``.

    Accepts ints, strings and bytes — the vertex-identifier types supported
    by the library.  Ints hash via their decimal rendering so that equal ints
    of different widths agree.
    """
    if isinstance(value, bytes):
        payload = value
    elif isinstance(value, str):
        payload = value.encode("utf-8")
    elif isinstance(value, int):
        payload = str(value).encode("ascii")
    else:
        raise TypeError(
            "vertex identifiers must be int, str or bytes, got "
            f"{type(value).__name__}"
        )
    digest = hashlib.md5(payload).digest()
    return int.from_bytes(digest[:8], "big")
