"""Deterministic random number generation.

Every stochastic component in the library (willingness-to-move draws, random
initial partitioning, synthetic graph generators, stream generators, failure
injection) receives its own :class:`random.Random` instance created here.
Components never share RNG state; instead each derives a child seed from the
experiment seed plus a distinct label, so adding a new consumer of randomness
never perturbs the draws seen by existing ones.

Two sharing disciplines coexist:

* **stream RNGs** (:func:`make_rng`) — a sequential :class:`random.Random`
  per component.  Right for single-process loops, but a stream position is
  global state: consumers must draw in one agreed order, which is exactly
  what a sharded decision phase cannot guarantee.
* **counter-split draws** (:class:`WillingnessSource`) — each draw is a pure
  function of ``(lane, round, vertex)``, with no stream position at all.
  Any worker can draw for any vertex in any order — or in parallel, or
  vectorised over a whole shard block — and every draw comes out identical.
  This is what makes the shard-local partitioning phase bit-reproducible
  across executors, shard counts and decision modes.
"""

import hashlib
import random

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional
    _np = None

__all__ = ["WillingnessSource", "derive_seed", "make_rng", "vertex_key"]

_SEED_SPACE = 2**63
_MASK64 = 0xFFFFFFFFFFFFFFFF
# splitmix64 constants (Steele, Lea & Flood): a measured-quality finalizer.
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_ROUND_SALT = 0xC2B2AE3D27D4EB4F  # keeps the round key off the vertex lane


def derive_seed(base_seed, *labels):
    """Derive a child seed from ``base_seed`` and a sequence of labels.

    The derivation is a SHA-256 over the textual rendering of the base seed
    and labels, so it is stable across processes and Python versions (unlike
    ``hash``).  Labels may be any objects with a stable ``repr`` — in practice
    strings and integers.

    >>> derive_seed(42, "partitioner") == derive_seed(42, "partitioner")
    True
    >>> derive_seed(42, "partitioner") != derive_seed(42, "generator")
    True
    """
    digest = hashlib.sha256()
    digest.update(repr(base_seed).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(repr(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") % _SEED_SPACE


def make_rng(base_seed, *labels):
    """Create an independent :class:`random.Random` for one component.

    ``make_rng(seed)`` seeds directly; ``make_rng(seed, "label", 3)`` first
    derives a child seed via :func:`derive_seed`.
    """
    if labels:
        return random.Random(derive_seed(base_seed, *labels))
    return random.Random(base_seed)


def _mix64(x):
    """The splitmix64 finalizer: a 64-bit bijection with strong avalanche."""
    x = ((x ^ (x >> 30)) * _MIX1) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX2) & _MASK64
    return x ^ (x >> 31)


def vertex_key(vertex):
    """A stable 64-bit integer key for one vertex id.

    Plain ints key as themselves (wrapped to 64 bits, so negative ids are
    legal); any other hashable id keys through SHA-256 of its ``repr`` —
    stable across processes and Python versions, like :func:`derive_seed`.
    bools are not ints here: ``True`` must not collide with vertex ``1``
    only on the scalar path while an int64 array path sees them as 0/1.
    """
    if type(vertex) is int:
        return vertex & _MASK64
    digest = hashlib.sha256(repr(vertex).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class WillingnessSource:
    """Per-vertex keyed willingness draws for the migration decision phase.

    Each draw is a pure function of ``(lane, round, vertex)`` — no shared
    stream position — so shards can draw for their own residents without
    coordination and the result is invariant to shard count, executor
    backend and evaluation order.  The scalar and numpy paths compute the
    identical splitmix64 chain, so timelines are bit-identical with and
    without numpy (the ``(x >> 11) * 2**-53`` float conversion is exact in
    both).

    ``lane`` is a 64-bit key derived from the experiment seed (one lane per
    system, via :func:`derive_seed`), so willingness draws can never collide
    with any other consumer of the seed.
    """

    __slots__ = ("lane",)

    def __init__(self, base_seed, *labels):
        self.lane = (
            derive_seed(base_seed, *labels) if labels else int(base_seed) & _MASK64
        )

    def _state(self, round_index):
        # Fold the round into the lane once; per-vertex work is one _mix64.
        return _mix64(
            (self.lane ^ ((round_index * _ROUND_SALT) & _MASK64)) & _MASK64
        )

    def draw(self, round_index, vertex):
        """Uniform float in [0, 1) keyed by ``(lane, round, vertex)``.

        >>> s = WillingnessSource(42, "willingness")
        >>> s.draw(3, 17) == s.draw(3, 17)
        True
        >>> 0.0 <= s.draw(3, 17) < 1.0
        True
        """
        state = self._state(round_index)
        bits = _mix64((state + (vertex_key(vertex) * _GOLDEN)) & _MASK64)
        return (bits >> 11) * 2.0**-53

    def willing(self, round_index, vertex, s):
        """The willingness coin: True with probability ``s``."""
        return self.draw(round_index, vertex) < s

    def draw_keys(self, round_index, keys):
        """Vectorised :meth:`draw` over an array of 64-bit vertex keys.

        ``keys`` is a numpy integer array of :func:`vertex_key` values (a
        plain-int id *is* its key, so int id arrays pass through directly).
        Bit-identical to the scalar path, element for element.
        """
        state = _np.uint64(self._state(round_index))
        x = keys.astype(_np.uint64) * _np.uint64(_GOLDEN) + state
        x = (x ^ (x >> _np.uint64(30))) * _np.uint64(_MIX1)
        x = (x ^ (x >> _np.uint64(27))) * _np.uint64(_MIX2)
        x ^= x >> _np.uint64(31)
        return (x >> _np.uint64(11)).astype(_np.float64) * 2.0**-53

    def draw_map(self, round_index, vertices):
        """Draws for many vertices at once, as a ``{vertex: draw}`` dict.

        One vectorised pass when numpy is present and every id is a plain
        int64-sized int (the common case); the scalar path otherwise —
        values are bit-identical either way, so callers can treat this as
        a pure convenience over :meth:`draw`.
        """
        vertices = list(vertices)
        if _np is not None and vertices:
            try:
                ids = _np.fromiter(
                    iter(vertices), dtype=_np.int64, count=len(vertices)
                )
            except (TypeError, ValueError, OverflowError):
                pass
            else:
                if all(type(v) is int for v in vertices):
                    draws = self.draw_keys(
                        round_index, ids.view(_np.uint64)
                    )
                    return dict(zip(vertices, draws.tolist()))
        draw = self.draw
        return {v: draw(round_index, v) for v in vertices}
