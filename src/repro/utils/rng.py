"""Deterministic random number generation.

Every stochastic component in the library (willingness-to-move draws, random
initial partitioning, synthetic graph generators, stream generators, failure
injection) receives its own :class:`random.Random` instance created here.
Components never share RNG state; instead each derives a child seed from the
experiment seed plus a distinct label, so adding a new consumer of randomness
never perturbs the draws seen by existing ones.
"""

import hashlib
import random

__all__ = ["derive_seed", "make_rng"]

_SEED_SPACE = 2**63


def derive_seed(base_seed, *labels):
    """Derive a child seed from ``base_seed`` and a sequence of labels.

    The derivation is a SHA-256 over the textual rendering of the base seed
    and labels, so it is stable across processes and Python versions (unlike
    ``hash``).  Labels may be any objects with a stable ``repr`` — in practice
    strings and integers.

    >>> derive_seed(42, "partitioner") == derive_seed(42, "partitioner")
    True
    >>> derive_seed(42, "partitioner") != derive_seed(42, "generator")
    True
    """
    digest = hashlib.sha256()
    digest.update(repr(base_seed).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(repr(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") % _SEED_SPACE


def make_rng(base_seed, *labels):
    """Create an independent :class:`random.Random` for one component.

    ``make_rng(seed)`` seeds directly; ``make_rng(seed, "label", 3)`` first
    derives a child seed via :func:`derive_seed`.
    """
    if labels:
        return random.Random(derive_seed(base_seed, *labels))
    return random.Random(base_seed)
