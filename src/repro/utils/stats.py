"""Small statistics helpers for experiment reporting.

The paper reports "the mean of n = 10 repetitions" with "errors ... in the
form of estimated error in the mean".  :func:`mean_and_error` computes exactly
that pair; :class:`RunningStats` is a Welford accumulator for per-iteration
series where holding every sample would be wasteful.
"""

import math

__all__ = ["RunningStats", "mean", "mean_and_error", "stderr_of_mean"]


def mean(samples):
    """Arithmetic mean of a non-empty sequence."""
    samples = list(samples)
    if not samples:
        raise ValueError("mean of empty sequence")
    return sum(samples) / len(samples)


def stderr_of_mean(samples):
    """Estimated standard error of the mean: s / sqrt(n).

    Returns 0.0 for a single sample (no spread information).
    """
    samples = list(samples)
    if not samples:
        raise ValueError("stderr of empty sequence")
    n = len(samples)
    if n == 1:
        return 0.0
    mu = sum(samples) / n
    variance = sum((x - mu) ** 2 for x in samples) / (n - 1)
    return math.sqrt(variance / n)


def mean_and_error(samples):
    """Return ``(mean, stderr_of_mean)`` for a sample sequence."""
    samples = list(samples)
    return mean(samples), stderr_of_mean(samples)


class RunningStats:
    """Streaming mean/variance accumulator (Welford's algorithm).

    >>> rs = RunningStats()
    >>> for x in [1.0, 2.0, 3.0]:
    ...     rs.add(x)
    >>> rs.mean
    2.0
    >>> rs.n
    3
    """

    __slots__ = ("n", "mean", "_m2", "min", "max")

    def __init__(self):
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value):
        """Fold one sample into the accumulator."""
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def variance(self):
        """Unbiased sample variance (0.0 below two samples)."""
        if self.n < 2:
            return 0.0
        return self._m2 / (self.n - 1)

    @property
    def stdev(self):
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def stderr(self):
        """Estimated error of the mean."""
        if self.n < 2:
            return 0.0
        return math.sqrt(self.variance / self.n)

    def merge(self, other):
        """Combine another accumulator into this one (parallel Welford)."""
        if other.n == 0:
            return self
        if self.n == 0:
            self.n = other.n
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return self
        total = self.n + other.n
        delta = other.mean - self.mean
        self._m2 = self._m2 + other._m2 + delta * delta * self.n * other.n / total
        self.mean = (self.mean * self.n + other.mean * other.n) / total
        self.n = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def as_dict(self):
        """Summary dict for report rendering."""
        return {
            "n": self.n,
            "mean": self.mean,
            "stdev": self.stdev,
            "stderr": self.stderr,
            "min": self.min if self.n else None,
            "max": self.max if self.n else None,
        }

    def __repr__(self):
        return (
            f"RunningStats(n={self.n}, mean={self.mean:.6g}, "
            f"stdev={self.stdev:.6g})"
        )
