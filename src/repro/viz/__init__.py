"""Text-mode visualisation of partition evolution.

The paper links a video of "how partitioning evolves in real time in a 2d
slice of a 3d cube ... where every vertex is physically surrounded by its
neighbours" — hash colours scattered everywhere slowly coalescing into
contiguous colour regions.  No plotting stack is available offline, so
:mod:`slices` renders the same thing as character frames: one glyph per
lattice vertex, one glyph class per partition.
"""

from repro.viz.slices import partition_histogram, render_mesh_slice

__all__ = ["partition_histogram", "render_mesh_slice"]
