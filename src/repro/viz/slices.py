"""ASCII rendering of mesh-slice partitionings (the paper's video, in text).

Works with the dense integer ids :func:`repro.generators.mesh.mesh_3d`
assigns (row-major ``(x · ny + y) · nz + z``), rendering the ``z = k``
plane as a character grid — contiguous same-character regions are what a
good partitioning looks like; hash partitioning renders as noise.
"""

__all__ = ["partition_histogram", "render_mesh_slice"]

# 36 visually distinct glyphs; partitions beyond that wrap.
_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyz"


def render_mesh_slice(state, nx, ny, nz, z=None):
    """Render the ``z``-plane (default: middle) of a mesh partitioning.

    ``state`` is a :class:`~repro.partitioning.PartitionState` over a
    ``mesh_3d(nx, ny, nz)`` graph.  Vertices missing from the state render
    as ``.``.  Returns the frame as a newline-joined string (y across, x
    down, matching the generator's lattice).
    """
    if z is None:
        z = nz // 2
    if not 0 <= z < nz:
        raise ValueError(f"z={z} outside [0, {nz})")
    rows = []
    for x in range(nx):
        row = []
        for y in range(ny):
            vertex = (x * ny + y) * nz + z
            pid = state.partition_of_or_none(vertex)
            row.append("." if pid is None else _GLYPHS[pid % len(_GLYPHS)])
        rows.append("".join(row))
    return "\n".join(rows)


def partition_histogram(state, width=40):
    """Horizontal bar chart of partition sizes (sanity view of balance).

    >>> from repro.graph import Graph
    >>> from repro.partitioning import PartitionState
    >>> g = Graph(vertices=range(4))
    >>> s = PartitionState(g, 2)
    >>> for v in range(3): s.assign(v, 0)
    >>> s.assign(3, 1)
    >>> print(partition_histogram(s, width=6))  # doctest: +NORMALIZE_WHITESPACE
    p0 |######| 3
    p1 |##    | 1
    """
    sizes = state.sizes
    peak = max(sizes) if sizes else 0
    lines = []
    for pid, size in enumerate(sizes):
        filled = 0 if peak == 0 else round(width * size / peak)
        bar = "#" * filled + " " * (width - filled)
        lines.append(f"p{pid} |{bar}| {size}")
    return "\n".join(lines)
