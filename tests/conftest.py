"""Shared fixtures for the test suite."""

import pytest

from repro.generators import mesh_3d, powerlaw_cluster_graph
from repro.graph import Graph


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json fixtures from the current code "
        "(then re-run without the flag and commit the diff deliberately)",
    )


@pytest.fixture
def regen_golden(request):
    """True when this run should rewrite the golden fixtures."""
    return request.config.getoption("--regen-golden")


@pytest.fixture
def triangle():
    """A 3-clique."""
    return Graph([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path_graph():
    """A 6-vertex path 0-1-2-3-4-5."""
    return Graph([(i, i + 1) for i in range(5)])


@pytest.fixture
def two_cliques():
    """Two 4-cliques joined by a single bridge edge (0..3) - (4..7)."""
    edges = []
    for block in (range(0, 4), range(4, 8)):
        block = list(block)
        for i in range(len(block)):
            for j in range(i + 1, len(block)):
                edges.append((block[i], block[j]))
    edges.append((3, 4))
    return Graph(edges)


@pytest.fixture
def small_mesh():
    """A 6×6×6 FEM mesh (216 vertices)."""
    return mesh_3d(6)


@pytest.fixture
def small_powerlaw():
    """A 300-vertex Holme–Kim graph."""
    return powerlaw_cluster_graph(300, m=3, seed=7)
