"""CAP001 fixture: honest, lying, and silently-capable executors."""

from dataclasses import dataclass


@dataclass(frozen=True)
class ExecutorCapabilities:
    """Mini twin of the real capability dataclass."""

    supports_pipelining: bool = False
    releases_gil: bool = False
    remote: bool = False
    requires_picklable: bool = False


class Executor:
    """Base: no claims, stub protocol methods."""

    capabilities = ExecutorCapabilities()

    def step_stream(self, tasks):
        """Protocol stub — does not count as an implementation."""
        raise NotImplementedError

    def _transport_send(self, payload):
        """Protocol stub."""
        raise NotImplementedError

    def _transport_recv(self):
        """Protocol stub."""
        raise NotImplementedError


class HonestPipelined(Executor):
    """Claims pipelining and really implements step_stream: clean."""

    capabilities = ExecutorCapabilities(supports_pipelining=True)

    def step_stream(self, tasks):
        """A real implementation."""
        for task in tasks:
            yield task


class LyingPipelined(Executor):
    """Claims pipelining over the inherited stub: CAP001."""

    capabilities = ExecutorCapabilities(supports_pipelining=True)  # line 48


class SilentStreamer(Executor):
    """Implements step_stream but never claims it: CAP001 (reverse)."""

    capabilities = ExecutorCapabilities(releases_gil=True)

    def step_stream(self, tasks):  # line 56
        """A real implementation the coordinator would never use."""
        return list(tasks)


class LyingRemote(Executor):
    """Claims remote with only one real transport: CAP001."""

    capabilities = ExecutorCapabilities(False, True, True)  # line 64

    def _transport_send(self, payload):
        """A real sender — but recv stays the inherited stub."""
        return len(payload)
