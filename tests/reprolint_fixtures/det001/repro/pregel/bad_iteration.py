"""DET001 fixture: order-leaking iteration in a det-critical path."""

table = {"a": 1, "b": 2}
pending = {3, 1, 2}


def sweep(system):
    """Three violations: for-loop, list() conversion, comprehension."""
    out = []
    for v in pending:  # line 10: DET001
        out.append(v)
    snapshot = list({v for v in out})  # line 12: DET001
    doubled = [k for k in table.keys()]  # line 13: DET001
    return out, snapshot, doubled
