"""DET001 fixture: canonical-order wrappers and aggregations are clean."""

pending = {3, 1, 2}


def sort_vertices(vertices):
    """Stand-in for repro.core.sweep.sort_vertices."""
    return sorted(vertices)


def sweep():
    """No violations: wrapped, aggregated, or order-free."""
    ordered = [v for v in sorted(pending)]
    canonical = sort_vertices(pending)
    count = len(pending)
    biggest = max(pending)
    return ordered, canonical, count, biggest
