"""DET002 fixture: module-RNG calls that bypass repro.utils.rng."""

import random
from random import Random, shuffle

import numpy as np


def pick(items):
    """Four violations and two allowed constructions."""
    roll = random.random()  # line 11: DET002 (module RNG)
    shuffle(items)  # line 12: DET002 (re-exported module RNG)
    noise = np.random.rand(3)  # line 13: DET002 (numpy global RNG)
    unseeded = Random()  # line 14: DET002 (no seed argument)
    seeded = Random(1234)  # allowed: explicitly seeded instance
    also_seeded = random.Random(1234)  # allowed: explicitly seeded
    return roll, noise, unseeded, seeded, also_seeded
