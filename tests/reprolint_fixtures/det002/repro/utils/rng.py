"""DET002 fixture: the rng module itself may touch ``random`` freely."""

import random


def make_rng(seed):
    """The one sanctioned seeding point (exempt module)."""
    random.seed(seed)
    return random.Random(seed)
