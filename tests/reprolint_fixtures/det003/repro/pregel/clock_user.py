"""DET003 fixture: wall-clock reads in a det-critical module."""

import datetime
import time
from time import perf_counter

STARTED = time.time()  # line 7: DET003 (module level)


class Meter:
    """One allowlistable site and two violations."""

    def observe(self):
        """Allowlisted by the staleness test's custom config."""
        return perf_counter()  # line 15: DET003 under the default config

    def stamp(self):
        """Two violations: datetime and time_ns."""
        when = datetime.datetime.now()  # line 19: DET003
        tick = time.time_ns()  # line 20: DET003
        return when, tick
