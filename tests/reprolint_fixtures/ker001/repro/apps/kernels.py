"""KER001 fixture: vectorised, looping, and pragma-suppressed kernels."""

import numpy as np


class VectorisedKernel:
    """Pure array operations: clean."""

    def compute_batch(self, block):
        """Sum incoming mail per row with a single scatter-add."""
        incoming = np.bincount(
            block.msg_row, weights=block.msg_values, minlength=len(block)
        )
        return incoming * 0.85

    def compute(self, ctx, messages):
        """The scalar reference loop is allowed to iterate."""
        total = 0.0
        for message in messages:
            total += message
        return total


class LoopingKernel:
    """Per-vertex Python iteration inside the kernel: four findings."""

    def compute_batch(self, block):
        """Every loop form the rule must catch."""
        totals = [sum(box) for box in block.boxes]
        folded = {row: t for row, t in enumerate(totals)}
        for row in range(len(block)):
            folded[row] += 1.0
        while folded:
            folded.popitem()
        return totals


class NestedLoopKernel:
    """Hiding the loop in a nested helper does not vectorise it."""

    def compute_batch(self, block):
        """One finding: the generator inside the helper."""

        def fold(boxes):
            return sum(sum(box) for box in boxes)

        return fold(block.boxes)


class DecliningKernel:
    """A bounded, explained loop under a pragma: clean."""

    def compute_batch(self, block):
        """Three label classes, never block rows."""
        for bucket in (0, 1, 2):  # reprolint: allow-KER001 fixture shows a bounded non-row loop under pragma
            if bucket in block.classes:
                return None
        return block.values
