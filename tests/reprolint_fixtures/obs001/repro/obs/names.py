"""OBS001 fixture: a registry with one stale entry per pool."""

SPAN_NAMES = frozenset({"superstep", "never-emitted"})

METRIC_NAMES = frozenset({"supersteps", "orphan.metric"})

METRIC_PREFIXES = frozenset({"executor.bytes_sent"})
