"""OBS001 fixture: registered, unregistered, and dynamic name usages."""


def run(tracer, metrics, lane):
    """One clean usage per pool, one violation, and skipped dynamics."""
    with tracer.span("superstep"):  # registered: clean
        metrics.counter("supersteps").add(1)  # registered: clean
        metrics.group("executor.bytes_sent")  # registered prefix: clean
        metrics.counter("executor.bytes_sent.worker")  # prefix ext: clean
        tracer.record("mystery-span", 0.0, 1.0)  # line 10: OBS001
        metrics.gauge(f"lane.{lane}.depth")  # dynamic: skipped
