"""Pragma fixture: every malformed-pragma shape is a PRAGMA001 finding."""

pending = {3, 1, 2}


def sweep():
    """Reason-less, unknown-directive, and in-string pragmas."""
    for v in pending:  # reprolint: allow-DET001
        print(v)
    # reprolint: ignore-DET001 unknown directive shape
    snapshot = list(pending)  # line 11: DET001 (the pragma above is invalid)
    note = "# reprolint: allow-DET001 inside a string, never a pragma"
    return snapshot, note
