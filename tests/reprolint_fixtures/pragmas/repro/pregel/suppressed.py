"""Pragma fixture: valid suppressions, a stale one, and malformed ones."""

pending = {3, 1, 2}


def sweep():
    """Inline and standalone suppressions, both with reasons."""
    for v in pending:  # reprolint: allow-DET001 fixture demonstrates an explained inline suppression
        print(v)
    # reprolint: allow-DET001 fixture demonstrates a standalone suppression
    snapshot = list(pending)
    return snapshot


def clean():
    """A pragma that suppresses nothing is itself a finding."""
    # reprolint: allow-DET001 stale reason kept for the PRAGMA002 test
    return sorted(pending)
