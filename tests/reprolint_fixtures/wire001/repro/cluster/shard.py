"""WIRE001 fixture: wire structs with deliberate codec-coverage gaps."""

from dataclasses import dataclass

from repro.core.heuristic import DecisionContext, make_context


@dataclass(frozen=True)
class ShardTask:
    """Covered fields plus ``extra``, which the codec never touches."""

    superstep: int
    inbox: dict
    extra: float


@dataclass(frozen=True)
class ShardPatch:
    """Absent from the codec's dispatch table entirely."""

    upserts: dict


@dataclass(frozen=True)
class ShardDelta:
    """Fully covered, but references a non-picklable imported type."""

    shard_id: int
    context: DecisionContext


__all__ = ["ShardDelta", "ShardPatch", "ShardTask", "make_context"]
