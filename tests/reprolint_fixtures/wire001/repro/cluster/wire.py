"""WIRE001 fixture: a miniature codec with deliberate gaps."""

from repro.cluster.shard import ShardDelta, ShardTask

_TAG_TASK = 1
_TAG_DELTA = 2


def _encode_task(obj, out):
    """Reads superstep and inbox but never ``extra``."""
    out.append((_TAG_TASK, obj.superstep, obj.inbox))


def _encode_delta(obj, out):
    """Reads every ShardDelta field."""
    out.append((_TAG_DELTA, obj.shard_id, obj.context))


_ENCODERS = {
    ShardTask: _encode_task,
    ShardDelta: _encode_delta,
}


def _decode(payload):
    """Reconstructs ShardTask without ``inbox``/``extra``; delta fully."""
    tag = payload[0]
    if tag == _TAG_TASK:
        return ShardTask(superstep=payload[1])
    return ShardDelta(shard_id=payload[1], context=payload[2])
