"""WIRE001 fixture: a type that is NOT pickle-fallback-safe.

``DecisionContext`` is built by a class factory, so it is not a top-level
class in this module — ``pickle`` cannot re-import it by qualified name.
"""


def _make_class():
    """Return a class object defined inside a function (pickle-unsafe)."""

    class DecisionContext:
        """Not reachable as ``repro.core.heuristic.DecisionContext``."""

        round_index = 0

    return DecisionContext


DecisionContext = _make_class()


def make_context():
    """Factory the shard fixture re-exports."""
    return DecisionContext()
