"""Unit tests for the cost model and report rendering."""

import pytest

from repro.analysis import (
    CostModel,
    calibrate_compute_weight,
    format_series,
    format_table,
    normalise_series,
)
from repro.pregel import SuperstepTraffic


def traffic(**kw):
    defaults = dict(
        superstep=1,
        local_messages=100,
        remote_messages=50,
        migrations=2,
        migration_notifications=4,
        capacity_messages=6,
        compute_units=200.0,
        recovery_events=0,
    )
    defaults.update(kw)
    return SuperstepTraffic(**defaults)


class TestCostModel:
    def test_linear_combination(self):
        model = CostModel(
            remote_cost=1.0,
            local_cost=0.1,
            compute_cost=0.01,
            migration_cost=5.0,
            notification_cost=0.5,
            capacity_cost=0.25,
        )
        t = traffic()
        expected = 50 * 1.0 + 100 * 0.1 + 200 * 0.01 + 2 * 5.0 + 4 * 0.5 + 6 * 0.25
        assert model.time_of(t) == pytest.approx(expected)

    def test_remote_messages_dominate_default_weights(self):
        model = CostModel()
        t = traffic(remote_messages=1000, local_messages=1000, compute_units=100)
        breakdown = model.breakdown(t)
        assert breakdown["remote"] > 0.8 * sum(
            v for k, v in breakdown.items() if k != "remote"
        )

    def test_times_of_series(self):
        model = CostModel()
        records = [traffic(remote_messages=i) for i in (10, 20)]
        times = model.times_of(records)
        assert times[1] > times[0]

    def test_breakdown_sums_to_total(self):
        model = CostModel(recovery_penalty=3.0, fixed_overhead=1.0)
        t = traffic(recovery_events=2)
        assert sum(model.breakdown(t).values()) == pytest.approx(
            model.time_of(t)
        )

    def test_recovery_penalty(self):
        model = CostModel(recovery_penalty=100.0)
        quiet = traffic()
        failed = traffic(recovery_events=1)
        assert model.time_of(failed) - model.time_of(quiet) == pytest.approx(100.0)


class TestCalibration:
    def test_hits_target_fraction(self):
        base = CostModel()
        t = traffic(compute_units=500.0)
        for target in (0.17, 0.5, 0.9):
            calibrated = calibrate_compute_weight(base, t, target)
            breakdown = calibrated.breakdown(t)
            fraction = breakdown["compute"] / calibrated.time_of(t)
            assert fraction == pytest.approx(target, rel=1e-6)

    def test_other_weights_untouched(self):
        base = CostModel(remote_cost=2.0)
        calibrated = calibrate_compute_weight(base, traffic(), 0.2)
        assert calibrated.remote_cost == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            calibrate_compute_weight(CostModel(), traffic(), 0.0)
        with pytest.raises(ValueError):
            calibrate_compute_weight(CostModel(), traffic(compute_units=0), 0.5)


class TestNormalise:
    def test_divides_by_baseline(self):
        assert normalise_series([2.0, 4.0], 2.0) == [1.0, 2.0]

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalise_series([1.0], 0.0)


class TestFormatting:
    def test_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1.23456], ["long-name", 2]], precision=2
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in text
        assert "long-name" in text

    def test_table_title(self):
        text = format_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_series_downsamples(self):
        xs = list(range(1000))
        ys = [x * 0.5 for x in xs]
        text = format_series("cuts", xs, ys, max_points=10)
        assert text.count("(") <= 12
        assert "(999" in text  # last point always kept

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1, 2], [1])
