"""Tests for exponential-decay fitting — including the paper's claim that
the adaptive algorithm's migration counts decay exponentially."""

import math

import pytest

from repro.analysis import fit_exponential_decay, half_life
from repro.core import AdaptiveConfig, AdaptiveRunner
from repro.generators import mesh_3d
from repro.partitioning import HashPartitioner, balanced_capacities


class TestFitMechanics:
    def test_exact_exponential(self):
        series = [100 * math.exp(-0.3 * i) for i in range(20)]
        fit = fit_exponential_decay(series)
        assert fit.rate == pytest.approx(0.3, rel=1e-6)
        assert fit.amplitude == pytest.approx(100, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)

    def test_zeros_skipped(self):
        series = [8, 4, 2, 1, 0, 0, 0]
        fit = fit_exponential_decay(series)
        assert fit.num_points == 4
        assert fit.rate == pytest.approx(math.log(2), rel=1e-6)

    def test_custom_xs(self):
        xs = [0, 2, 4, 6]
        series = [16, 4, 1, 0.25]
        fit = fit_exponential_decay(series, xs=xs)
        assert fit.rate == pytest.approx(math.log(2), rel=1e-6)

    def test_predict(self):
        fit = fit_exponential_decay([10, 5, 2.5])
        assert fit.predict(0) == pytest.approx(10, rel=1e-6)
        assert fit.predict(3) == pytest.approx(1.25, rel=1e-6)

    def test_half_life(self):
        fit = fit_exponential_decay([8, 4, 2, 1])
        assert half_life(fit) == pytest.approx(1.0, rel=1e-6)

    def test_growing_series_negative_rate(self):
        fit = fit_exponential_decay([1, 2, 4, 8])
        assert fit.rate < 0
        assert half_life(fit) == math.inf

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_exponential_decay([5, 0, 0])

    def test_noisy_series_lower_r_squared(self):
        clean = [100 * math.exp(-0.2 * i) for i in range(15)]
        noisy = [y * (1.5 if i % 2 else 0.6) for i, y in enumerate(clean)]
        assert (
            fit_exponential_decay(noisy).r_squared
            < fit_exponential_decay(clean).r_squared
        )


class TestPaperClaim:
    def test_migrations_decay_exponentially(self):
        """§2.3: 'the number of migrations decreases exponentially with the
        number of iterations'."""
        # a graph large enough that quota throttling doesn't dominate the
        # series (tiny graphs emit a noisy trickle of 1-2 per lane)
        graph = mesh_3d(12)
        caps = balanced_capacities(graph.num_vertices, 9)
        state = HashPartitioner().partition(graph, 9, list(caps))
        runner = AdaptiveRunner(graph, state, AdaptiveConfig(seed=0))
        runner.run_until_convergence(max_iterations=400)
        migrations = runner.timeline.series("migrations")
        # drop the ramp-up, fit the decay phase
        peak_index = migrations.index(max(migrations))
        fit = fit_exponential_decay(
            migrations[peak_index:],
            xs=range(peak_index, len(migrations)),
        )
        assert fit.rate > 0
        assert fit.r_squared > 0.8  # strongly exponential, noise allowed
