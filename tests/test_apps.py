"""Correctness tests for the vertex programs."""

import math

import pytest

from repro.apps import (
    CardiacFemSimulation,
    ConnectedComponents,
    MaximalCliqueFinder,
    PageRank,
    SingleSourceShortestPaths,
    TunkRank,
)
from repro.apps.maximal_clique import MAX_CLIQUE_AGGREGATOR
from repro.generators import mesh_3d, powerlaw_cluster_graph
from repro.graph import Graph
from repro.pregel import MaxAggregator, PregelConfig, PregelSystem


def run_program(graph, program, supersteps=None, k=2, adaptive=False, **kw):
    config = PregelConfig(
        num_workers=k, adaptive=adaptive, continuous=False, seed=0, **kw
    )
    system = PregelSystem(graph, program, config)
    if supersteps is None:
        system.run_until_quiescent(200)
    else:
        system.run(supersteps)
    return system


class TestPageRank:
    def test_sums_to_one_on_connected_graph(self):
        graph = mesh_3d(4)
        system = run_program(graph, PageRank(), supersteps=30)
        total = sum(system.values.values())
        assert total == pytest.approx(1.0, abs=0.05)

    def test_stationary_rank_proportional_to_degree(self):
        # Undirected random walk: rank_i → (1−d)/n + d·deg_i/(2|E|).
        graph = mesh_3d(4)
        system = run_program(graph, PageRank(damping=0.85), supersteps=50)
        n = graph.num_vertices
        two_m = 2 * graph.num_edges
        for v in graph.vertices():
            expected = 0.15 / n + 0.85 * graph.degree(v) / two_m
            assert system.values[v] == pytest.approx(expected, rel=0.10)

    def test_higher_degree_higher_rank(self):
        graph = powerlaw_cluster_graph(150, m=2, seed=0)
        system = run_program(graph, PageRank(), supersteps=40)
        hub = max(graph.vertices(), key=graph.degree)
        leaf = min(graph.vertices(), key=graph.degree)
        assert system.values[hub] > system.values[leaf]

    def test_damping_validated(self):
        with pytest.raises(ValueError):
            PageRank(damping=1.0)

    def test_result_invariant_under_adaptive_partitioning(self):
        # Migrating vertices must not change the computed ranks.
        graph_a = mesh_3d(4)
        static = run_program(graph_a, PageRank(), supersteps=40, adaptive=False)
        graph_b = mesh_3d(4)
        adaptive = run_program(
            graph_b, PageRank(), supersteps=40, adaptive=True, k=3
        )
        for v in graph_a.vertices():
            assert static.values[v] == pytest.approx(
                adaptive.values[v], rel=1e-6
            )


class TestConnectedComponents:
    def test_matches_bfs_ground_truth(self):
        graph = Graph([(1, 2), (2, 3), (10, 11), (20, 21), (21, 22)])
        graph.add_vertex(99)
        system = run_program(graph, ConnectedComponents())
        labels = {}
        for component in graph.connected_components():
            representative = min(component)
            for v in component:
                labels[v] = representative
        assert system.values == labels

    def test_single_component_mesh(self):
        graph = mesh_3d(3)
        system = run_program(graph, ConnectedComponents())
        assert set(system.values.values()) == {0}

    def test_halts_before_limit(self):
        graph = mesh_3d(3)
        system = run_program(graph, ConnectedComponents())
        assert system.superstep < 60


class TestSssp:
    def _bfs(self, graph, source):
        dist = {source: 0.0}
        frontier = [source]
        while frontier:
            nxt = []
            for v in frontier:
                for w in graph.neighbors(v):
                    if w not in dist:
                        dist[w] = dist[v] + 1
                        nxt.append(w)
            frontier = nxt
        return dist

    def test_matches_bfs(self):
        graph = mesh_3d(4)
        source = 0
        system = run_program(graph, SingleSourceShortestPaths(source))
        expected = self._bfs(graph, source)
        for v in graph.vertices():
            assert system.values[v] == expected[v]

    def test_unreachable_stays_infinite(self):
        graph = Graph([(1, 2)])
        graph.add_vertex(99)
        system = run_program(graph, SingleSourceShortestPaths(1))
        assert system.values[99] == math.inf


class TestTunkRank:
    def test_influence_grows_with_audience(self):
        graph = powerlaw_cluster_graph(200, m=2, seed=1)
        system = run_program(graph, TunkRank(), supersteps=25)
        hub = max(graph.vertices(), key=graph.degree)
        leaf = min(graph.vertices(), key=graph.degree)
        assert system.values[hub] > system.values[leaf]

    def test_star_centre_influence(self):
        # Star: centre's influence = Σ_leaves (1 + p·I_leaf)/deg_leaf with
        # deg_leaf = 1 and I_leaf = (1 + p·I_centre)/deg_centre.
        n_leaves = 10
        graph = Graph([("c", f"l{i}") for i in range(n_leaves)])
        p = 0.05
        system = run_program(graph, TunkRank(p), supersteps=40)
        influence_centre = system.values["c"]
        influence_leaf = system.values["l0"]
        expected_leaf = (1 + p * influence_centre) / n_leaves
        expected_centre = n_leaves * (1 + p * expected_leaf)
        assert influence_leaf == pytest.approx(expected_leaf, rel=1e-3)
        assert influence_centre == pytest.approx(expected_centre, rel=1e-3)

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            TunkRank(retweet_probability=1.0)


class TestMaximalClique:
    def _run_clique(self, graph, k=2):
        config = PregelConfig(
            num_workers=k, adaptive=False, continuous=False, seed=0
        )
        system = PregelSystem(graph, MaximalCliqueFinder(), config)
        system.aggregators.register(MAX_CLIQUE_AGGREGATOR, MaxAggregator)
        # Two compute supersteps; superstep 2's barrier publishes the
        # aggregated maximum (a later barrier would reset it).
        system.run(2)
        return system

    def test_finds_triangle(self):
        graph = Graph([(0, 1), (1, 2), (0, 2), (2, 3)])
        system = self._run_clique(graph)
        assert system.aggregators.previous(MAX_CLIQUE_AGGREGATOR) == 3

    def test_finds_embedded_k4(self, two_cliques):
        system = self._run_clique(two_cliques)
        assert system.aggregators.previous(MAX_CLIQUE_AGGREGATOR) == 4

    def test_clique_members_are_mutually_adjacent(self, two_cliques):
        system = self._run_clique(two_cliques)
        for v, (size, members) in system.values.items():
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    assert two_cliques.has_edge(a, b), (v, members)

    def test_path_graph_max_clique_is_edge(self, path_graph):
        system = self._run_clique(path_graph)
        assert system.aggregators.previous(MAX_CLIQUE_AGGREGATOR) == 2

    def test_heavy_message_cost_model(self, two_cliques):
        config = PregelConfig(num_workers=2, adaptive=False, seed=0)
        system = PregelSystem(two_cliques, MaximalCliqueFinder(), config)
        system.aggregators.register(MAX_CLIQUE_AGGREGATOR, MaxAggregator)
        reports = system.run(2)
        # superstep 2 processes the fat neighbour-list messages
        assert reports[1].traffic.compute_units > reports[1].superstep


class TestCardiacFem:
    def test_wave_propagates_from_stimulus(self):
        graph = mesh_3d(4)
        program = CardiacFemSimulation(stimulus_vertices={0})
        config = PregelConfig(num_workers=2, adaptive=False, seed=0)
        system = PregelSystem(graph, program, config)
        system.run(60)
        stimulated_v = system.values[0][0]
        resting = CardiacFemSimulation().initial_value(None, graph)[0]
        assert stimulated_v != pytest.approx(resting, abs=1e-3)
        # neighbours of the stimulus should have been excited too
        neighbour = next(iter(graph.neighbors(0)))
        assert system.values[neighbour][0] != pytest.approx(resting, abs=1e-3)

    def test_no_stimulus_stays_at_rest(self):
        graph = mesh_3d(3)
        program = CardiacFemSimulation()
        config = PregelConfig(num_workers=2, adaptive=False, seed=0)
        system = PregelSystem(graph, program, config)
        system.run(20)
        for v, (potential, _) in system.values.items():
            assert abs(potential - (-1.2)) < 0.2

    def test_compute_cost_reflects_ode_load(self):
        graph = mesh_3d(3)
        program = CardiacFemSimulation()
        config = PregelConfig(num_workers=2, adaptive=False, seed=0)
        system = PregelSystem(graph, program, config)
        report = system.run_superstep()
        assert report.traffic.compute_units >= 32.0 * graph.num_vertices

    def test_values_stay_finite(self):
        graph = mesh_3d(3)
        program = CardiacFemSimulation(stimulus_vertices={0, 1})
        config = PregelConfig(num_workers=2, adaptive=True, seed=0)
        system = PregelSystem(graph, program, config)
        system.run(100)
        for v, (potential, recovery) in system.values.items():
            assert math.isfinite(potential) and math.isfinite(recovery)
            assert abs(potential) < 5.0

    def test_substeps_one_is_the_original_kernel(self):
        """``substeps=1`` must be bit-identical to the pre-subcycling code."""
        def run(program):
            system = PregelSystem(
                mesh_3d(3), program,
                PregelConfig(num_workers=2, adaptive=False, seed=0),
            )
            system.run(15)
            return dict(system.values)

        base = run(CardiacFemSimulation(stimulus_vertices={0}))
        explicit = run(CardiacFemSimulation(stimulus_vertices={0}, substeps=1))
        assert base == explicit
        with pytest.raises(ValueError):
            CardiacFemSimulation(substeps=0)

    def test_substeps_refine_towards_same_trajectory(self):
        def run(substeps):
            system = PregelSystem(
                mesh_3d(3),
                CardiacFemSimulation(stimulus_vertices={0}, substeps=substeps),
                PregelConfig(num_workers=2, adaptive=False, seed=0),
            )
            reports = system.run(30)
            return dict(system.values), reports[-1]

        coarse, report1 = run(1)
        fine, report4 = run(4)
        for v in coarse:
            assert coarse[v][0] == pytest.approx(fine[v][0], abs=0.2)
        # Sub-cycling multiplies modelled CPU, not messaging.
        assert report4.traffic.compute_units > report1.traffic.compute_units
        assert report4.traffic.total_messages == report1.traffic.total_messages

    def test_combined_variant_matches_plain_kernel(self):
        """The combiner variant follows the same wave with ~k× fewer
        messages crossing worker boundaries."""
        from repro.apps.fem_simulation import CombinedCardiacFemSimulation

        def run(program):
            system = PregelSystem(
                mesh_3d(4), program,
                PregelConfig(num_workers=3, adaptive=False, seed=0),
            )
            reports = system.run(40)
            totals = system.network.totals()
            return dict(system.values), totals

        plain_values, plain_traffic = run(
            CardiacFemSimulation(stimulus_vertices={0})
        )
        combined_values, combined_traffic = run(
            CombinedCardiacFemSimulation(stimulus_vertices={0})
        )
        for v in plain_values:
            assert combined_values[v][0] == pytest.approx(
                plain_values[v][0], abs=1e-6
            )
        # Under scattered hash placement messages fold per sending worker
        # (the ratio improves further as adaptation co-locates neighbours).
        assert (
            combined_traffic.total_messages
            < 0.75 * plain_traffic.total_messages
        )
