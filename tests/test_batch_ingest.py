"""Batched event ingestion: batch-vs-loop equivalence and the bulk APIs.

The contract under test is the one :mod:`repro.core.ingest` documents:
dispatching ``AdaptiveRunner.apply_events`` through the array path must be
**bit-identical** to the per-event loop — same changed counts, same
assignment, same metrics, same active set, and (because neither path draws
randomness) the same RNG stream for every subsequent iteration.  The
property tests replay arbitrary event interleavings — duplicate adds,
removes of absent edges, add/remove cancellations inside one batch,
implicit endpoint creation, vertex events splitting edge runs — through
paired runners and compare everything observable.

The golden timelines pin the same equivalence on full catalog scenarios
(the compact backend now takes the batch path); these tests cover the
adversarial corners fixtures cannot reach.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ingest
from repro.core.balance import EdgeBalance
from repro.core.runner import AdaptiveConfig, AdaptiveRunner
from repro.graph import AddEdge, AddVertex, Graph, RemoveEdge, RemoveVertex
from repro.graph.compact import CompactGraph
from repro.graph.events import EventBatch
from repro.partitioning import HashPartitioner, balanced_capacities
from repro.partitioning.base import Partitioner, PartitionState
from repro.partitioning.random_partition import RandomPartitioner

needs_numpy = pytest.mark.skipif(
    ingest._np is None, reason="batched ingestion needs numpy"
)

INT_IDS = st.integers(min_value=0, max_value=13)
STR_IDS = st.sampled_from(["s0", "s1", "s2", "s3"])
MIXED_IDS = st.one_of(INT_IDS, STR_IDS)


def event_strategy(ids):
    pair = st.tuples(ids, ids).filter(lambda p: p[0] != p[1])
    return st.one_of(
        pair.map(lambda p: AddEdge(*p)),
        pair.map(lambda p: RemoveEdge(*p)),
        st.builds(AddVertex, ids),
        st.builds(RemoveVertex, ids),
    )


def seed_edges(ids):
    return st.sets(
        st.tuples(ids, ids).filter(lambda p: p[0] != p[1]), max_size=20
    )


def _paired_runners(edges, heuristic="greedy", seed=3):
    runners = []
    for mode in ("auto", "off"):
        graph = CompactGraph(edges=list(edges))
        caps = balanced_capacities(max(1, graph.num_vertices), 3, 1.10)
        state = HashPartitioner().partition(graph, 3, list(caps))
        config = AdaptiveConfig(
            seed=seed, heuristic=heuristic, batch_events=mode
        )
        runners.append(AdaptiveRunner(graph, state, config))
    assert runners[0]._ingestor is not None, "batch path must engage"
    assert runners[1]._ingestor is None
    return runners


def _assert_equivalent(batch, loop):
    assert batch.state.cut_edges == loop.state.cut_edges
    assert batch.state.sizes == loop.state.sizes
    assert dict(batch.state.assignment_items()) == dict(
        loop.state.assignment_items()
    )
    assert batch.metrics.loads == loop.metrics.loads
    assert batch._active == loop._active
    assert set(batch.graph.vertices()) == set(loop.graph.vertices())
    assert {v: set(batch.graph.neighbors(v)) for v in batch.graph.vertices()} == {
        v: set(loop.graph.neighbors(v)) for v in loop.graph.vertices()
    }
    batch.graph.validate()
    batch.state.validate()
    batch.metrics.cross_check()


@needs_numpy
class TestBatchLoopEquivalence:
    @given(
        edges=seed_edges(INT_IDS),
        rounds=st.lists(
            st.lists(event_strategy(INT_IDS), max_size=30), max_size=4
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_int_ids_identical_across_paths(self, edges, rounds):
        batch, loop = _paired_runners(edges)
        for events in rounds:
            assert batch.apply_events(events) == loop.apply_events(events)
            # One iteration per round: the shared RNG stream, the active
            # set and the sweeper mirror all feed the step — any batch
            # drift surfaces as diverging IterationStats.
            assert batch.step() == loop.step()
        _assert_equivalent(batch, loop)
        assert list(batch.timeline) == list(loop.timeline)

    @given(
        edges=seed_edges(MIXED_IDS),
        rounds=st.lists(
            st.lists(event_strategy(MIXED_IDS), max_size=25), max_size=3
        ),
    )
    @settings(max_examples=75, deadline=None)
    def test_mixed_ids_identical_across_paths(self, edges, rounds):
        """String ids force the dict-lookup slot path; same contract."""
        batch, loop = _paired_runners(edges)
        for events in rounds:
            assert batch.apply_events(events) == loop.apply_events(events)
            assert batch.step() == loop.step()
        _assert_equivalent(batch, loop)

    @given(
        edges=seed_edges(INT_IDS),
        rounds=st.lists(
            st.lists(event_strategy(INT_IDS), max_size=25), max_size=3
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_non_greedy_heuristic_identical_across_paths(self, edges, rounds):
        """No sweeper (hysteresis heuristic): pids come from the state."""
        batch, loop = _paired_runners(edges, heuristic="hysteresis")
        assert batch._sweeper is None
        for events in rounds:
            assert batch.apply_events(events) == loop.apply_events(events)
            assert batch.step() == loop.step()
        _assert_equivalent(batch, loop)

    def test_cancelling_batch_leaves_graph_untouched_but_counts_changes(self):
        batch, loop = _paired_runners([(0, 1)])
        events = [AddEdge(2, 3), RemoveEdge(2, 3), AddEdge(0, 1),
                  RemoveEdge(0, 1), AddEdge(0, 1)]
        assert batch.apply_events(events) == loop.apply_events(events) == 4
        _assert_equivalent(batch, loop)
        assert batch.graph.has_edge(0, 1)
        assert not batch.graph.has_edge(2, 3)
        assert 2 in batch.graph and 3 in batch.graph  # implicit creation

    def test_self_loop_add_falls_back_and_raises_like_the_loop(self):
        batch, loop = _paired_runners([(0, 1)])
        events = [AddEdge(1, 2), AddEdge(3, 3)]
        with pytest.raises(ValueError, match="self-loop"):
            batch.apply_events(events)
        with pytest.raises(ValueError, match="self-loop"):
            loop.apply_events(events)
        # Both paths applied the prefix before raising — identical state.
        assert batch.graph.has_edge(1, 2) and loop.graph.has_edge(1, 2)
        assert dict(batch.state.assignment_items()) == dict(
            loop.state.assignment_items()
        )

    def test_unknown_event_type_falls_back_to_the_loop(self):
        batch, _ = _paired_runners([(0, 1)])
        with pytest.raises(TypeError, match="unknown graph event"):
            batch.apply_events([AddEdge(1, 2), object()])
        assert batch.graph.has_edge(1, 2)  # prefix applied, loop semantics


class TestIngestorGating:
    def _runner(self, **config_fields):
        graph = CompactGraph([(0, 1), (1, 2)])
        caps = balanced_capacities(graph.num_vertices, 2, 1.10)
        state = HashPartitioner().partition(graph, 2, list(caps))
        return AdaptiveRunner(graph, state, AdaptiveConfig(**config_fields))

    def test_off_disables_the_ingestor(self):
        assert self._runner(batch_events="off")._ingestor is None

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="batch_events"):
            AdaptiveConfig(batch_events="sometimes")

    def test_degree_sensitive_balance_falls_back(self):
        assert self._runner(balance=EdgeBalance())._ingestor is None

    def test_non_hash_placement_falls_back(self):
        assert self._runner(placement=RandomPartitioner())._ingestor is None

    def test_adjacency_backend_falls_back(self):
        graph = Graph([(0, 1), (1, 2)])
        caps = balanced_capacities(graph.num_vertices, 2, 1.10)
        state = HashPartitioner().partition(graph, 2, list(caps))
        runner = AdaptiveRunner(graph, state, AdaptiveConfig())
        assert runner._ingestor is None


class TestEventBatch:
    def test_segments_split_on_vertex_events(self):
        batch = EventBatch.from_events(
            [AddEdge(0, 1), RemoveEdge(0, 1), AddVertex(9),
             AddEdge(2, 3), RemoveVertex(9)]
        )
        assert not batch.unsupported
        assert [s[0] for s in batch.segments] == [
            "edges", "loop", "edges", "loop"
        ]
        kinds, us, vs = batch.segments[0][1:]
        assert kinds == [True, False] and us == [0, 0] and vs == [1, 1]
        assert batch.num_events == 5
        assert batch.num_edge_events == 3

    def test_self_loop_add_marks_unsupported(self):
        assert EventBatch.from_events([AddEdge(1, 1)]).unsupported

    def test_self_loop_remove_is_supported(self):
        batch = EventBatch.from_events([RemoveEdge(1, 1)])
        assert not batch.unsupported  # the loop treats it as a no-op

    def test_unknown_event_marks_unsupported(self):
        assert EventBatch.from_events([AddEdge(0, 1), "bogus"]).unsupported


class TestBulkGraphOps:
    @pytest.mark.parametrize("graph_cls", [Graph, CompactGraph])
    def test_add_edges_flags_and_counters(self, graph_cls):
        graph = graph_cls([(0, 1)])
        flags = graph.add_edges([(0, 1), (1, 2), (2, 3), (1, 2)])
        assert flags == [False, True, True, False]
        assert graph.num_edges == 3
        assert graph.num_isolated == 0
        graph.validate()

    @pytest.mark.parametrize("graph_cls", [Graph, CompactGraph])
    def test_remove_edges_flags_and_isolation(self, graph_cls):
        graph = graph_cls([(0, 1), (1, 2)])
        flags = graph.remove_edges([(0, 1), (0, 1), (5, 6), (2, 1)])
        assert flags == [True, False, False, True]
        assert graph.num_edges == 0
        assert graph.num_isolated == 3
        graph.validate()

    @pytest.mark.parametrize("graph_cls", [Graph, CompactGraph])
    def test_add_vertices_counts_new_only(self, graph_cls):
        graph = graph_cls([(0, 1)])
        assert graph.add_vertices([0, 7, 8, 7]) == 2
        assert graph.num_vertices == 4

    def test_compact_add_edges_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            CompactGraph().add_edges([(4, 4)])

    def test_compact_bulk_ops_keep_csr_consistent(self):
        graph = CompactGraph([(0, 1), (1, 2)])
        graph.ensure_csr()
        graph.add_edges([(2, 3), (3, 4), (0, 2)])
        graph.remove_edges([(0, 1)])
        graph.validate()  # validates the CSR mirror against adjacency

    def test_dirty_slot_count_tracks_pending_repairs(self):
        graph = CompactGraph([(0, 1)])
        assert graph.dirty_slot_count == graph.num_slots  # never built
        graph.ensure_csr()
        assert graph.dirty_slot_count == 0
        graph.add_edges([(1, 2)])
        assert graph.dirty_slot_count == 2  # endpoint slots of the new edge
        graph.ensure_csr()
        assert graph.dirty_slot_count == 0


class TestBulkStateAndPlacement:
    def _state(self, k=3):
        graph = CompactGraph([(0, 1), (1, 2)])
        caps = balanced_capacities(graph.num_vertices, k, 2.0)
        return graph, HashPartitioner().partition(graph, k, list(caps))

    def test_assign_many_matches_sequential_assign(self):
        graph, state = self._state()
        twin = state.copy()
        graph.add_vertices([10, 11, 12])
        version_before = state.version
        state.assign_many([(10, 0), (11, 2), (12, 1)])
        for v, pid in [(10, 0), (11, 2), (12, 1)]:
            twin.assign(v, pid)
        assert dict(state.assignment_items()) == dict(twin.assignment_items())
        assert state.sizes == twin.sizes
        assert state.cut_edges == twin.cut_edges
        assert state.version == version_before + 3
        state.validate()

    def test_assign_many_rejects_reassignment_and_bad_pid(self):
        graph, state = self._state()
        with pytest.raises(ValueError, match="already assigned"):
            state.assign_many([(0, 1)])
        graph.add_vertex(99)
        with pytest.raises(ValueError, match="out of range"):
            state.assign_many([(99, 7)])

    def test_assign_many_version_credits_partial_application(self):
        # A mid-batch failure must still advance the version by the items
        # that landed — version-keyed mirrors treat "unchanged version" as
        # "nothing changed", which would silently serve stale assignments.
        graph, state = self._state()
        graph.add_vertices([30, 31])
        before = state.version
        with pytest.raises(ValueError, match="already assigned"):
            state.assign_many([(30, 0), (0, 1)])  # vertex 0 pre-assigned
        assert state.version == before + 1
        assert state.partition_of(30) == 0
        state.validate()

    def test_apply_cut_delta(self):
        _, state = self._state()
        before = state.cut_edges
        state.apply_cut_delta(4)
        state.apply_cut_delta(-4)
        assert state.cut_edges == before

    def test_hash_place_many_matches_sequential_place(self):
        graph, state = self._state()
        twin = state.copy()
        new = [20, 21, "w", 23]
        graph.add_vertices(new)
        placements = HashPartitioner().place_many(state, new)
        for v in new:
            HashPartitioner().place(twin, v)
        assert dict(state.assignment_items()) == dict(twin.assignment_items())
        assert placements == [(v, twin.partition_of(v)) for v in new]

    def test_base_place_many_preserves_capacity_spillover_order(self):
        graph = CompactGraph(vertices=range(4))
        state = PartitionState(graph, 2, capacities=[2, 100])
        partitioner = Partitioner()  # base: hash place with spill-over
        twin_graph = CompactGraph(vertices=range(4))
        twin = PartitionState(twin_graph, 2, capacities=[2, 100])
        new = list(range(4))
        placements = partitioner.place_many(state, new)
        for v in new:
            partitioner.place(twin, v)
        assert dict(state.assignment_items()) == dict(twin.assignment_items())
        assert [p for _, p in placements] == [twin.partition_of(v) for v in new]


@needs_numpy
class TestSweeperBulkHooks:
    def _runner(self):
        graph = CompactGraph([(i, i + 1) for i in range(8)])
        caps = balanced_capacities(graph.num_vertices, 3, 1.10)
        state = HashPartitioner().partition(graph, 3, list(caps))
        return AdaptiveRunner(graph, state, AdaptiveConfig(seed=0))

    def test_batch_placements_keep_mirror_and_table_warm(self):
        runner = self._runner()
        sweeper = runner._sweeper
        rebuilds_before = sweeper._id_lookup_rebuilds
        # A growth round: new endpoints appear via implicit edge creation.
        runner.apply_events([AddEdge(100, 0), AddEdge(101, 4), AddEdge(102, 7)])
        assert sweeper._synced_version == runner.state.version
        assert sweeper._id_lookup_version == runner.graph.intern_version
        assert sweeper._id_lookup_rebuilds == rebuilds_before  # warm() built it
        runner.step()
        runner.metrics.cross_check()

    def test_note_assign_many_out_of_contract_stays_stale_but_correct(self):
        import numpy as np

        runner = self._runner()
        sweeper = runner._sweeper
        graph, state = runner.graph, runner.state
        graph.add_vertices([200, 201, 202])
        state.assign(200, 0)
        state.assign(201, 1)
        state.assign(202, 2)
        # Three unwitnessed changes but only two reported: the sole-change
        # contract is broken, so the mirror must refuse the fast-forward…
        sweeper.note_assign_many([(201, 1), (202, 2)])
        assert sweeper._stale()
        # …and the next query resyncs from the authoritative state.
        slots = np.array(
            [graph.slot_of(200), graph.slot_of(201), graph.slot_of(202)],
            dtype=np.int64,
        )
        assert list(sweeper.assignment_of_slots(slots)) == [0, 1, 2]
        assert not sweeper._stale()

    def test_lookup_slots_flags_absent_ids(self):
        import numpy as np

        runner = self._runner()
        sweeper = runner._sweeper
        slots = sweeper.lookup_slots(np.array([0, 5, 4096, -3], dtype=np.int64))
        assert slots is not None
        assert slots[0] == runner.graph.slot_of(0)
        assert slots[1] == runner.graph.slot_of(5)
        assert slots[2] == -1 and slots[3] == -1
