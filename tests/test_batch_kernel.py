"""Batched-kernel equivalence suite: batched == scalar, bit for bit.

The numpy block kernel (:meth:`BatchedVertexProgram.compute_batch`) is an
optimisation, never semantics: every observable — superstep reports,
final values *and their Python types*, halted transitions, traffic
counters — must replay the scalar reference loop exactly.  The suite
drives each batched app through the situations where a vectorised
rewrite classically drifts:

* mixed halted/woken vertices (components converging at different
  supersteps, label propagation's adopt-nothing rounds);
* empty inboxes and isolated vertices (TunkRank's kernel *declines* the
  block there — scalar ``sum(())`` is an int, digest-visible);
* adaptive churn (migrations re-slot vertices between blocks mid-run);
* string vertex ids (object-dtype-free packing must still engage);
* a numpy-free interpreter (the dispatch gate falls back to scalar);
* the committed golden timelines with the kernel *forced* on (CI's
  ``REPRO_BATCH_KERNEL=off`` matrix leg pins the scalar side).

``decision_seconds`` is wall-clock and excluded from comparisons, the
same as the golden digests do.
"""

import dataclasses
import json
from pathlib import Path

import pytest

import repro.pregel.compute as compute_mod
from repro.apps import ConnectedComponents, PageRank, TunkRank
from repro.apps.label_propagation import LabelPropagation
from repro.cluster import Coordinator
from repro.generators import erdos_renyi_graph
from repro.graph import Graph
from repro.obs import MetricsRegistry
from repro.pregel.system import PregelConfig, PregelSystem
from repro.scenarios import get_scenario, play_scenario

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_SCENARIOS = ["mesh-growth", "grid-rewire", "cdr-weekly"]
APPS = [PageRank, TunkRank, LabelPropagation, ConnectedComponents]
HOSTS = [PregelSystem, Coordinator]


def _app_id(app):
    return app.__name__


def _sparse_graph():
    """Random graph with isolated vertices and uneven degrees.

    Isolated vertices never receive mail (TunkRank's decline path, empty
    inboxes in the packer); the sparse components converge at different
    supersteps, so later rounds mix halted and woken vertices.
    """
    return erdos_renyi_graph(220, 0.02, seed=11)


def _string_id_graph():
    """The sparse graph re-keyed onto string vertex ids."""
    base = _sparse_graph()
    graph = Graph()
    for v in base.vertices():
        graph.add_vertex(f"u{v:03d}")
    for u, v in base.edges():
        graph.add_edge(f"u{u:03d}", f"u{v:03d}")
    return graph


def _run(host_cls, graph, program, monkeypatch, enabled, supersteps=8):
    """Replay ``supersteps`` supersteps; return (reports, values, blocks).

    Adaptive partitioning stays on so migrations re-slot vertices between
    kernel blocks mid-run — the churn case.  Reports are normalised by
    zeroing ``decision_seconds`` (wall-clock, not digest-pinned).
    ``blocks`` is the ``kernel.batched_blocks`` counter — proof the fast
    path actually engaged rather than silently declining everywhere.
    """
    monkeypatch.setenv("REPRO_BATCH_KERNEL", "on" if enabled else "off")
    registry = MetricsRegistry()
    config = PregelConfig(num_workers=4, seed=3, adaptive=True)
    host = host_cls(graph, program, config, metrics_registry=registry)
    try:
        reports = [
            dataclasses.replace(host.run_superstep(), decision_seconds=0.0)
            for _ in range(supersteps)
        ]
        values = dict(host.values)
    finally:
        close = getattr(host, "close", None)
        if close is not None:
            close()
    return reports, values, registry.counter("kernel.batched_blocks").value


def _assert_equivalent(host_cls, graph_factory, app, monkeypatch,
                       expect_kernel=True):
    batched = _run(host_cls, graph_factory(), app(), monkeypatch, True)
    scalar = _run(host_cls, graph_factory(), app(), monkeypatch, False)
    assert batched[0] == scalar[0], "superstep reports diverged"
    assert batched[1] == scalar[1], "final values diverged"
    for key, value in batched[1].items():
        assert type(value) is type(scalar[1][key]), (
            f"value type drifted for {key!r}: "
            f"{type(value).__name__} != {type(scalar[1][key]).__name__}"
        )
    if expect_kernel and compute_mod._np is not None:
        assert batched[2] > 0, "batched leg never took the kernel"
    assert scalar[2] == 0, "scalar leg took the kernel despite the gate"


@pytest.mark.parametrize("host_cls", HOSTS, ids=lambda c: c.__name__)
@pytest.mark.parametrize("app", APPS, ids=_app_id)
def test_batched_matches_scalar(host_cls, app, monkeypatch):
    """Sparse churn graph: reports, values and value types are identical."""
    _assert_equivalent(host_cls, _sparse_graph, app, monkeypatch)


@pytest.mark.parametrize("app", APPS, ids=_app_id)
def test_string_id_graphs(app, monkeypatch):
    """String vertex ids replay identically.

    The float-valued apps still take the kernel (values are numeric
    regardless of id type); the label-flood apps carry the *ids* as
    values, so their int64 packers decline every block and the scalar
    loop must cover — both sides of the decline protocol, same digest.
    """
    _assert_equivalent(
        Coordinator,
        _string_id_graph,
        app,
        monkeypatch,
        expect_kernel=app in (PageRank, TunkRank),
    )


@pytest.mark.parametrize("app", APPS, ids=_app_id)
def test_numpy_free_fallback(app, monkeypatch):
    """Without numpy the dispatch gate must fall back to the scalar loop."""
    scalar = _run(Coordinator, _sparse_graph(), app(), monkeypatch, False)
    monkeypatch.setattr(compute_mod, "_np", None)
    fallback = _run(Coordinator, _sparse_graph(), app(), monkeypatch, True)
    assert fallback[:2] == scalar[:2]
    assert fallback[2] == 0, "kernel engaged without numpy"


def test_kernel_declines_partial_inboxes(monkeypatch):
    """TunkRank's decline path engages and still replays the scalar run.

    On the sparse graph some mailed blocks contain vertices whose inbox
    is empty at superstep 2+; the kernel returns ``None`` there and the
    scalar loop must take over for the whole block.
    """
    _assert_equivalent(Coordinator, _sparse_graph, TunkRank, monkeypatch)


@pytest.mark.parametrize("name", GOLDEN_SCENARIOS)
def test_golden_replay_with_kernel_forced_on(name, monkeypatch):
    """The committed pregel fixtures replay exactly with the kernel on."""
    monkeypatch.setenv("REPRO_BATCH_KERNEL", "on")
    digest = (
        play_scenario(get_scenario(name), engine="pregel")
        .superstep_digest()
    )
    expected = json.loads(
        (GOLDEN_DIR / f"pregel-{name}.json").read_text(encoding="utf-8")
    )
    assert digest == expected, (
        f"{name} diverged from its golden timeline with the batched "
        "kernel forced on"
    )
