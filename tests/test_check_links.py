"""The docs link checker: file resolution plus GitHub-slug anchors."""

import subprocess
import sys
from pathlib import Path

from tools.check_links import dead_links, heading_anchors

REPO = Path(__file__).resolve().parents[1]


class TestHeadingAnchors:
    def test_github_slug_rules(self):
        text = (
            "# Big Title\n"
            "## CLI & flags (v2)\n"
            "## under_scored\n"
        )
        assert heading_anchors(text) == {
            "big-title",
            "cli--flags-v2",
            "under_scored",
        }

    def test_duplicate_headings_get_numeric_suffixes(self):
        text = "## Setup\n## Setup\n## Setup\n"
        assert heading_anchors(text) == {"setup", "setup-1", "setup-2"}

    def test_code_fence_comments_do_not_mint_anchors(self):
        text = "```python\n# not a heading\n```\n# Real\n"
        assert heading_anchors(text) == {"real"}

    def test_links_in_headings_reduce_to_their_label(self):
        assert heading_anchors("## See [the docs](docs/x.md)\n") == {
            "see-the-docs"
        }


class TestDeadLinks:
    def test_in_page_anchor_is_verified(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        doc = tmp_path / "doc.md"
        doc.write_text("# Alpha\n[ok](#alpha)\n[bad](#missing)\n")
        assert list(dead_links(doc)) == [(3, "#missing")]

    def test_cross_file_anchor_is_verified(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "other.md").write_text("## Section Two\n")
        doc = tmp_path / "doc.md"
        doc.write_text(
            "[ok](other.md#section-two)\n[bad](other.md#section-three)\n"
        )
        assert list(dead_links(doc)) == [(2, "other.md#section-three")]

    def test_missing_file_still_reported(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        doc = tmp_path / "doc.md"
        doc.write_text("[gone](nowhere.md#any)\n")
        assert list(dead_links(doc)) == [(1, "nowhere.md#any")]

    def test_fragment_into_non_markdown_is_not_checked(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "conf.py").write_text("x = 1\n")
        doc = tmp_path / "doc.md"
        doc.write_text("[src](conf.py#L1)\n")
        assert list(dead_links(doc)) == []


def test_repo_docs_have_no_dead_links():
    proc = subprocess.run(
        [
            sys.executable,
            "tools/check_links.py",
            "README.md",
            "ROADMAP.md",
            "docs",
        ],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr + proc.stdout
