"""The sharded execution layer: executors, determinism, shard consistency.

The suite runs its cross-executor cases on every backend named in
``REPRO_CLUSTER_EXECUTORS`` (comma-separated; default inline, thread,
process and socket) — the CI executor-matrix job sets it to exercise each
backend in isolation.
"""

import atexit
import gc
import os
import threading
import time

import pytest

from repro.apps.connected_components import ConnectedComponents
from repro.apps.pagerank import PageRank
from repro.cluster import (
    Coordinator,
    ExecutorCapabilities,
    InlineExecutor,
    LocalWorkerPool,
    PipelinedExecutor,
    ProcessExecutor,
    SocketExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.cluster.shard import Shard
from repro.generators import mesh_3d, powerlaw_cluster_graph
from repro.graph.events import AddEdge, AddVertex, RemoveEdge, RemoveVertex
from repro.pregel.fault import FaultPlan
from repro.pregel.system import PregelConfig, PregelSystem

EXECUTOR_NAMES = [
    name.strip()
    for name in os.environ.get(
        "REPRO_CLUSTER_EXECUTORS", "inline,thread,process,socket"
    ).split(",")
    if name.strip()
]

_POOL = None


def _socket_addresses():
    """One shared localhost worker pool for the whole test process."""
    global _POOL
    if _POOL is None:
        _POOL = LocalWorkerPool(2)
        atexit.register(_POOL.close)
    return _POOL.addresses


def _executor(name):
    # Small worker counts keep the suite light; determinism must not
    # depend on them (shard-id merge order is the invariant).
    if name == "process":
        return ProcessExecutor(workers=2)
    if name == "thread":
        return ThreadExecutor(workers=2)
    if name == "pipelined":
        return PipelinedExecutor(workers=2)
    if name == "socket":
        return SocketExecutor(_socket_addresses())
    return InlineExecutor()


def _report_digest(reports):
    return [
        (
            r.superstep,
            r.migrations_requested,
            r.migrations_announced,
            r.migrations_blocked,
            r.cut_edges,
            tuple(r.sizes),
            r.computed_vertices,
            r.mutations_applied,
            r.failed_worker,
            tuple(r.per_worker_compute),
            r.traffic.local_messages,
            r.traffic.remote_messages,
            r.traffic.migrations,
            r.traffic.capacity_messages,
            r.traffic.compute_units,
        )
        for r in reports
    ]


def _churn_run(executor_name, metrics="incremental", check_each_step=False):
    """A 14-superstep run with churn, migrations and one worker failure."""
    graph = mesh_3d(6)
    config = PregelConfig(
        num_workers=4, seed=3, quiet_window=5, metrics=metrics
    )
    fault_plan = FaultPlan().add(9, 2)
    system = Coordinator(
        graph,
        PageRank(),
        config,
        fault_plan=fault_plan,
        executor=_executor(executor_name),
    )
    try:
        for step in range(14):
            if step == 4:
                system.inject_events(
                    [
                        AddVertex(1000),
                        AddEdge(1000, 0),
                        RemoveVertex(43),
                        AddEdge(1000, 87),
                        AddEdge(1001, 1002),
                        RemoveEdge(0, 1),
                    ]
                )
            if step == 7:
                system.inject_events([RemoveVertex(1001), AddEdge(1002, 5)])
            system.run_superstep()
            if check_each_step:
                system.shard_consistency_check()
        return (
            _report_digest(system.reports),
            dict(system.values),
            dict(system.state.assignment_items()),
            set(system.halted),
        )
    finally:
        system.close()


class TestCrossExecutorDeterminism:
    def test_churn_run_identical_across_executors(self):
        """Reports, values, placement and halt state match bit-for-bit."""
        results = {name: _churn_run(name) for name in EXECUTOR_NAMES}
        reference_name = EXECUTOR_NAMES[0]
        reference = results[reference_name]
        for name, result in results.items():
            for got, want, what in zip(
                result,
                reference,
                ("reports", "values", "assignment", "halted"),
            ):
                assert got == want, (
                    f"{what} diverged between {name} and {reference_name}"
                )

    @pytest.mark.parametrize("executor_name", EXECUTOR_NAMES)
    def test_shard_state_consistent_throughout(self, executor_name):
        _churn_run(executor_name, check_each_step=True)

    @pytest.mark.parametrize("executor_name", EXECUTOR_NAMES)
    def test_metrics_modes_identical_and_cross_checked(self, executor_name):
        """Shard-merged incremental metrics == per-superstep recompute.

        ``metrics="recompute"`` re-derives loads/sizes/cut from scratch at
        every barrier and raises on drift, so a green recompute run *is*
        the property; equality of the two timelines shows the audit is
        observationally free.
        """
        incremental = _churn_run(executor_name, metrics="incremental")
        recompute = _churn_run(executor_name, metrics="recompute")
        assert incremental == recompute

    def test_worker_count_does_not_change_results(self):
        graph = mesh_3d(5)

        def run(executor):
            system = Coordinator(
                graph.copy(),
                PageRank(),
                PregelConfig(num_workers=6, seed=1, quiet_window=5),
                executor=executor,
            )
            try:
                system.run(6)
                return _report_digest(system.reports), dict(system.values)
            finally:
                system.close()

        reference = run(InlineExecutor())
        for workers in (1, 3, 5):
            assert run(ProcessExecutor(workers=workers)) == reference


class TestAgainstSerialReference:
    @pytest.mark.parametrize("executor_name", EXECUTOR_NAMES)
    def test_reports_match_single_process_system(self, executor_name):
        """On a static graph the sharded system IS the serial system.

        Superstep reports (counts, cut, sizes, traffic) match bit-for-bit;
        vertex values may differ in float summation order when a vertex
        receives from several workers, so they are compared only through an
        order-insensitive program below.
        """
        config = PregelConfig(num_workers=4, seed=2, quiet_window=5)
        serial = PregelSystem(mesh_3d(5), PageRank(), config)
        serial.run(8)
        clustered = Coordinator(
            mesh_3d(5), PageRank(), config, executor=_executor(executor_name)
        )
        try:
            clustered.run(8)
            assert _report_digest(clustered.reports) == _report_digest(
                serial.reports
            )
        finally:
            clustered.close()

    def test_values_match_for_order_insensitive_programs(self):
        graph_factory = lambda: powerlaw_cluster_graph(120, m=2, seed=3)  # noqa: E731
        config = PregelConfig(num_workers=4, seed=2, quiet_window=5)
        serial = PregelSystem(graph_factory(), ConnectedComponents(), config)
        serial.run(10)
        clustered = Coordinator(
            graph_factory(),
            ConnectedComponents(),
            config,
            executor=InlineExecutor(),
        )
        try:
            clustered.run(10)
            assert clustered.values == serial.values
            assert clustered.halted == serial.halted
        finally:
            clustered.close()

    def test_non_continuous_mode_reaches_quiescence(self):
        config = PregelConfig(
            num_workers=3, seed=0, continuous=False, adaptive=False
        )
        system = Coordinator(mesh_3d(4), ConnectedComponents(), config)
        try:
            reports = system.run_until_quiescent(max_supersteps=200)
            assert len(reports) < 200
            assert len(system.halted) == system.graph.num_vertices
            components = set(system.values.values())
            assert len(components) == 1  # the mesh is connected
        finally:
            system.close()


class _HangingShard:
    """Picklable shard stand-in whose compute never returns.

    It also shrugs off SIGTERM, so reaping it exercises the full stop
    escalation: bounded ack wait → join → terminate → kill.
    """

    def run_superstep(self, task):  # pragma: no cover - runs in the worker
        import signal
        import time

        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        time.sleep(3600)

    def apply_patch(self, patch):  # pragma: no cover - runs in the worker
        pass

    def snapshot(self):
        return ({}, set())


class _ExplodingProgram(PageRank):
    """Module-level (picklable) program that fails during compute."""

    def compute(self, ctx, messages):
        raise RuntimeError("boom in worker")


class _ErringShard:
    """Picklable shard stub whose compute always fails worker-side."""

    def run_superstep(self, task):  # pragma: no cover - runs in the worker
        raise RuntimeError("boom in worker")

    def apply_patch(self, patch):  # pragma: no cover - runs in the worker
        pass

    def snapshot(self):
        return ("snapshot", "err")


class _StubShard:
    """Picklable shard stub with distinguishable step/snapshot replies."""

    def __init__(self, sid):
        self.sid = sid

    def run_superstep(self, task):
        return ("delta", self.sid)

    def apply_patch(self, patch):
        pass

    def snapshot(self):
        return ("snapshot", self.sid)


class _LambdaCombinerProgram(PageRank):
    """A program whose combiner cannot be pickled (lambda)."""

    def combiner(self):
        return lambda a, b: a + b


class TestExecutors:
    def test_make_executor_resolution(self):
        assert isinstance(make_executor(None), InlineExecutor)
        assert isinstance(make_executor("inline"), InlineExecutor)
        assert isinstance(make_executor("thread"), ThreadExecutor)
        assert isinstance(make_executor("process"), ProcessExecutor)
        instance = InlineExecutor()
        assert make_executor(instance) is instance
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("gpu")

    def test_process_executor_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ProcessExecutor(workers=0)

    def test_executor_context_manager_and_idempotent_stop(self):
        with ProcessExecutor(workers=1) as executor:
            executor.start({0: Shard(0, PageRank(), None, True)})
            assert executor.snapshot() == {0: ({}, set())}
        executor.stop()  # second stop must be a no-op

    def test_process_executor_surfaces_worker_failures(self):
        system = Coordinator(
            mesh_3d(3),
            _ExplodingProgram(),
            PregelConfig(num_workers=2, seed=0),
            executor=ProcessExecutor(workers=1),
        )
        try:
            # The program raises inside the worker process; the traceback
            # must surface as a coordinator-side RuntimeError.
            with pytest.raises(RuntimeError, match="shard worker 0"):
                system.run_superstep()
        finally:
            system.close()

    def test_unpicklable_shard_state_fails_fast_without_leaking(self):
        # The lambda combiner cannot cross the pipe; construction must
        # raise (any pickling error) and leave no worker processes behind.
        with pytest.raises(Exception):
            Coordinator(
                mesh_3d(3),
                _LambdaCombinerProgram(),
                PregelConfig(num_workers=2, seed=0),
                executor=ProcessExecutor(workers=1),
            )

    def test_stop_reaps_a_hard_stuck_worker(self):
        # A worker wedged in compute (and ignoring SIGTERM) must not hang
        # stop(): the ack wait is bounded and escalation ends in kill().
        executor = ProcessExecutor(workers=1)
        executor._ACK_TIMEOUT = 0.1
        executor._JOIN_TIMEOUT = 0.3
        executor.start({0: _HangingShard()})
        proc = executor._procs[0]
        # Dispatch the never-returning step without awaiting the reply
        # (executor.step() would block on it forever, like a real caller
        # abandoning a stuck superstep would have).
        executor._pipes[0].send(("step", {0: (None, None)}))
        deadline = time.monotonic() + 30
        executor.stop()
        assert time.monotonic() < deadline, "stop() hung on a stuck worker"
        assert not proc.is_alive()
        executor.stop()  # idempotent after escalation too

    def test_dropped_executor_is_reaped_by_the_finalizer(self):
        executor = ProcessExecutor(workers=1)
        executor.start({0: Shard(0, PageRank(), None, True)})
        proc = executor._procs[0]
        assert proc.is_alive()
        reaper = executor._reaper
        del executor
        gc.collect()
        assert not reaper.alive  # finalizer ran at collection
        proc.join(timeout=10)
        assert not proc.is_alive()

    def test_dead_worker_surfaces_clear_error_then_stops_cleanly(self):
        executor = ProcessExecutor(workers=1)
        executor.start({0: Shard(0, PageRank(), None, True)})
        executor._procs[0].kill()
        executor._procs[0].join(timeout=10)
        with pytest.raises(RuntimeError, match="shard worker 0 died"):
            executor.snapshot()
        executor.stop()  # broken pipes must not break the teardown

    def test_close_is_part_of_coordinator_context_manager(self):
        with Coordinator(
            mesh_3d(3),
            PageRank(),
            PregelConfig(num_workers=2, seed=0),
            executor=ProcessExecutor(workers=1),
        ) as system:
            system.run(2)
        # Exiting the context stopped the workers; a fresh close is a no-op.
        system.close()


class TestCapabilityProtocol:
    def test_declared_capability_records(self):
        assert InlineExecutor.capabilities == ExecutorCapabilities()
        assert ThreadExecutor.capabilities == ExecutorCapabilities()
        assert PipelinedExecutor.capabilities == ExecutorCapabilities(
            supports_pipelining=True
        )
        assert ProcessExecutor.capabilities == ExecutorCapabilities(
            releases_gil=True, requires_picklable=True
        )
        assert SocketExecutor.capabilities == ExecutorCapabilities(
            releases_gil=True, remote=True, requires_picklable=True
        )

    def test_validate_rejects_a_missing_or_wrong_typed_record(self):
        class NoRecord(InlineExecutor):
            capabilities = {"supports_pipelining": False}

        with pytest.raises(TypeError, match="ExecutorCapabilities"):
            make_executor(NoRecord())

    def test_validate_rejects_pipelining_claim_without_step_stream(self):
        class FalseClaim(InlineExecutor):
            capabilities = ExecutorCapabilities(supports_pipelining=True)

        with pytest.raises(ValueError, match="does not implement"):
            make_executor(FalseClaim())

    def test_validate_rejects_step_stream_without_the_declaration(self):
        class Smuggler(InlineExecutor):
            def step_stream(self, tasks, patches):
                deltas = self.step(tasks, patches)
                yield from sorted(deltas.items())

        with pytest.raises(ValueError, match="does not declare"):
            make_executor(Smuggler())

    def test_honest_subclass_passes_validation(self):
        class Streamer(InlineExecutor):
            capabilities = ExecutorCapabilities(supports_pipelining=True)

            def step_stream(self, tasks, patches):
                deltas = self.step(tasks, patches)
                yield from sorted(deltas.items())

        assert make_executor(Streamer()).capabilities.supports_pipelining

    def test_coordinator_consults_the_capability_record(self):
        # A pipelining-capable executor streams; a strict one never does.
        config = PregelConfig(num_workers=3, seed=0)
        pipelined = PipelinedExecutor(workers=2)
        with Coordinator(
            mesh_3d(4), PageRank(), config, executor=pipelined
        ) as system:
            system.run(2)
            assert pipelined.steps_streamed == 2


class TestExecutorRegressions:
    """Pinned fixes for the executor-layer bug sweep."""

    @pytest.mark.parametrize(
        "factory",
        [ThreadExecutor, PipelinedExecutor, ProcessExecutor, SocketExecutor],
        ids=lambda f: f.name,
    )
    def test_pooled_executors_reject_nonpositive_worker_counts(self, factory):
        # workers=0 used to fall through ThreadExecutor's `or`-style
        # default and silently size the pool as if unset.
        for bad in (0, -2):
            with pytest.raises(ValueError, match="at least one"):
                factory(workers=bad)

    def test_coordinator_close_is_safe_before_the_executor_exists(self):
        # close() on a coordinator whose __init__ never got as far as
        # creating the executor must be a no-op, not an AttributeError —
        # callers run close() in finally blocks around construction.
        system = Coordinator.__new__(Coordinator)
        system.close()

    def test_abandoned_step_stream_drains_in_flight_futures(self):
        # A consumer that closes the stream mid-superstep (merge-loop
        # failure) must not leave pool threads mutating shards while the
        # caller moves on: the generator's cleanup blocks on every
        # submitted future.
        finished = [threading.Event() for _ in range(3)]

        class SlowShard:
            def __init__(self, idx):
                self.idx = idx

            def run_superstep(self, task):
                if self.idx:
                    time.sleep(0.3)
                finished[self.idx].set()
                return ("delta", self.idx)

            def apply_patch(self, patch):
                pass

            def snapshot(self):
                return ({}, set())

        with PipelinedExecutor(workers=3) as executor:
            executor.start({i: SlowShard(i) for i in range(3)})
            stream = executor.step_stream(
                {i: None for i in range(3)}, {}
            )
            sid, delta = next(stream)
            assert sid == 0 and delta == ("delta", 0)
            stream.close()  # abandon with shards 1 and 2 still computing
            assert all(event.is_set() for event in finished), (
                "stream.close() returned with shard compute still in flight"
            )

    def test_failing_step_stream_still_drains_before_raising(self):
        finished = threading.Event()

        class FailingShard:
            def run_superstep(self, task):
                raise RuntimeError("boom")

            def apply_patch(self, patch):
                pass

            def snapshot(self):
                return ({}, set())

        class SlowShard:
            def run_superstep(self, task):
                time.sleep(0.3)
                finished.set()
                return ("delta", 1)

            def apply_patch(self, patch):
                pass

            def snapshot(self):
                return ({}, set())

        with PipelinedExecutor(workers=2) as executor:
            executor.start({0: FailingShard(), 1: SlowShard()})
            with pytest.raises(RuntimeError, match="boom"):
                for _ in executor.step_stream({0: None, 1: None}, {}):
                    pass  # pragma: no cover - first result already raises
            assert finished.is_set(), (
                "the stream propagated shard 0's failure while shard 1 "
                "was still computing"
            )

    @pytest.mark.parametrize("transport", ["process", "socket"])
    def test_worker_failure_does_not_desync_the_reply_protocol(
        self, transport
    ):
        # One reply per touched worker per command is the protocol
        # invariant: a failed step used to raise on worker 0's error
        # *before* reading worker 1's reply, so the next command consumed
        # the stale step delta as its own answer.
        if transport == "process":
            executor = ProcessExecutor(workers=2)
        else:
            executor = SocketExecutor(_socket_addresses())
        with executor:
            executor.start({0: _ErringShard(), 1: _StubShard(1)})
            with pytest.raises(RuntimeError, match="shard worker 0 failed"):
                executor.step({0: None, 1: None}, {})
            # The snapshot must see snapshot replies, not the abandoned
            # barrier's queued step delta.
            assert executor.snapshot() == {
                0: ("snapshot", "err"),
                1: ("snapshot", 1),
            }

    def test_all_worker_failures_surface_the_first_one(self):
        with ProcessExecutor(workers=2) as executor:
            executor.start({0: _ErringShard(), 1: _ErringShard()})
            with pytest.raises(RuntimeError, match="shard worker 0 failed"):
                executor.step({0: None, 1: None}, {})
            executor.stop()
