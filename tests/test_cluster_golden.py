"""Golden superstep timelines: the cluster layer's bit-identity contract.

The three catalog scenarios already pinned by ``test_golden_timelines.py``
replay here through the **pregel engine** — vertex program, messages,
deferred-migration protocol, capacity broadcasts — and the exact
per-superstep :class:`SuperstepReport` digest is pinned as a JSON fixture.
Every executor backend must reproduce the fixture byte-for-byte: a shard
that computes out of canonical order, a merge that folds deltas in
completion order, or a patch that misses a barrier mutation all fail
loudly here.

Regenerate after an *intentional* semantic change::

    python -m pytest tests/test_cluster_golden.py --regen-golden
    git diff tests/golden/   # review the drift before committing it

``REPRO_CLUSTER_EXECUTORS`` (comma-separated) narrows the executor axis —
the CI matrix job uses it to run each backend in isolation.
"""

import atexit
import json
import os
from pathlib import Path

import pytest

from repro.cluster import LocalWorkerPool, SocketExecutor
from repro.scenarios import get_scenario, play_scenario

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_SCENARIOS = ["mesh-growth", "grid-rewire", "cdr-weekly"]
EXECUTORS = [
    name.strip()
    for name in os.environ.get(
        "REPRO_CLUSTER_EXECUTORS", "inline,thread,pipelined,process,socket"
    ).split(",")
    if name.strip()
]

_POOL = None


def _fixture_path(name):
    return GOLDEN_DIR / f"pregel-{name}.json"


def _replay(name, executor):
    if executor == "socket":
        # One localhost worker pool backs every socket replay; each run is
        # its own coordinator session on a fresh SocketExecutor (the
        # coordinator stops its executor at close).
        global _POOL
        if _POOL is None:
            _POOL = LocalWorkerPool(2)
            atexit.register(_POOL.close)
        executor = SocketExecutor(_POOL.addresses)
    result = play_scenario(
        get_scenario(name), engine="pregel", executor=executor
    )
    return result


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("name", GOLDEN_SCENARIOS)
def test_pregel_golden_timeline(name, executor, regen_golden):
    result = _replay(name, executor)
    digest = result.superstep_digest()
    path = _fixture_path(name)
    if regen_golden and executor == EXECUTORS[0]:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(
            json.dumps(digest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    assert path.exists(), (
        f"missing fixture {path}; generate it with "
        "`python -m pytest tests/test_cluster_golden.py --regen-golden`"
    )
    expected = json.loads(path.read_text(encoding="utf-8"))
    assert digest == expected, (
        f"{name} on the {executor} executor diverged from the golden "
        "superstep timeline — if this change is intentional, regenerate "
        "with --regen-golden and commit the fixture diff"
    )
    # The per-round view must stay consistent with the superstep view.
    rounds = result.digest()["rounds"]
    assert sum(r["migrations"] for r in rounds) == sum(
        s["announced"] for s in digest["supersteps"][result.settle_iterations:]
    )


@pytest.mark.parametrize("name", GOLDEN_SCENARIOS)
def test_pregel_golden_fixture_is_nontrivial(name):
    """Fixtures must pin a live distributed run, not a frozen one."""
    expected = json.loads(_fixture_path(name).read_text(encoding="utf-8"))
    supersteps = expected["supersteps"]
    assert len(supersteps) >= 10
    assert sum(s["announced"] for s in supersteps) > 0, "no migrations pinned"
    assert sum(s["mutations"] for s in supersteps) > 0, "no churn applied"
    assert any(
        s["traffic"]["local"] + s["traffic"]["remote"] > 0 for s in supersteps
    ), "no messages exchanged"
    for s in supersteps:
        assert sum(s["sizes"]) >= 0
        assert s["traffic"]["capacity"] > 0  # the broadcast is metered


@pytest.mark.parametrize("name", GOLDEN_SCENARIOS)
def test_pregel_metrics_recompute_matches_golden(name):
    """The per-barrier full-recompute audit replays the identical timeline."""
    digest = play_scenario(
        get_scenario(name),
        engine="pregel",
        executor="inline",
        metrics="recompute",
    ).superstep_digest()
    expected = json.loads(_fixture_path(name).read_text(encoding="utf-8"))
    assert digest == expected
