"""Cross-backend equivalence: CompactGraph must be indistinguishable from
Graph — structurally (under arbitrary mutation sequences) and behaviourally
(bit-identical AdaptiveRunner / Pregel timelines for fixed seeds)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.sweep as sweep_module
from repro.core import AdaptiveConfig, AdaptiveRunner, EdgeBalance, VertexBalance
from repro.core.heuristic import GreedyMaxNeighbours
from repro.core.sweep import CompactSweeper, make_sweeper

# The batch fast path needs numpy; without it every test below still pins
# cross-backend equivalence through the portable per-vertex path.
HAS_NUMPY = sweep_module._np is not None
needs_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="the vectorised sweeper requires numpy"
)
from repro.generators import mesh_3d, powerlaw_cluster_graph
from repro.graph import (
    GRAPH_BACKENDS,
    AddEdge,
    AddVertex,
    CompactGraph,
    Graph,
    RemoveEdge,
    RemoveVertex,
    as_adjacency,
    as_compact,
    graph_backend,
    make_graph,
    to_backend,
)
from repro.partitioning import HashPartitioner, balanced_capacities

VERTEX_IDS = st.integers(min_value=0, max_value=25)

OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("add_vertex"), VERTEX_IDS),
        st.tuples(st.just("remove_vertex"), VERTEX_IDS),
        st.tuples(st.just("add_edge"), VERTEX_IDS, VERTEX_IDS),
        st.tuples(st.just("remove_edge"), VERTEX_IDS, VERTEX_IDS),
        st.tuples(st.just("sync")),  # force a dirty-region CSR repair
    ),
    max_size=120,
)


def apply_op(graph, op):
    kind = op[0]
    if kind == "add_vertex":
        return graph.add_vertex(op[1])
    if kind == "remove_vertex":
        return graph.remove_vertex(op[1])
    if kind == "add_edge":
        if op[1] == op[2]:
            return None  # self-loops raise identically on both backends
        return graph.add_edge(op[1], op[2])
    if kind == "remove_edge":
        return graph.remove_edge(op[1], op[2])
    if kind == "sync":
        if isinstance(graph, CompactGraph):
            graph.ensure_csr()
        return None
    raise AssertionError(kind)


def assert_same_topology(dense, compact):
    assert dense.num_vertices == compact.num_vertices
    assert dense.num_edges == compact.num_edges
    assert list(dense.vertices()) == list(compact.vertices())
    assert sorted(dense.edges()) == sorted(compact.edges())
    for v in dense.vertices():
        assert dense.degree(v) == compact.degree(v)
        assert set(dense.neighbors(v)) == set(compact.neighbors(v))
    assert sorted(sorted(c) for c in dense.connected_components()) == sorted(
        sorted(c) for c in compact.connected_components()
    )


class TestStructuralEquivalence:
    @given(ops=OPERATIONS)
    @settings(max_examples=80, deadline=None)
    def test_random_mutation_sequences(self, ops):
        dense = Graph()
        compact = CompactGraph()
        for op in ops:
            assert apply_op(dense, op) == apply_op(compact, op)
        assert_same_topology(dense, compact)
        dense.validate()
        compact.validate()

    @given(ops=OPERATIONS)
    @settings(max_examples=40, deadline=None)
    def test_degree_histogram_and_isolated(self, ops):
        dense = Graph()
        compact = CompactGraph()
        for op in ops:
            apply_op(dense, op)
            apply_op(compact, op)
        assert dense.degree_histogram() == compact.degree_histogram()
        assert sorted(dense.isolated_vertices()) == sorted(
            compact.isolated_vertices()
        )
        assert dense.average_degree() == compact.average_degree()


class TestCsrMirror:
    def test_in_place_patch_after_edge_removal(self):
        g = as_compact(mesh_3d(3))
        g.ensure_csr()
        assert g.remove_edge(0, 1)
        starts, lens, _ = g.ensure_csr()
        assert lens[g.slot_of(0)] == g.degree(0)
        g.validate()

    def test_relocation_when_capacity_exceeded(self):
        g = CompactGraph([(0, 1)])
        g.ensure_csr()
        # Grow vertex 0's neighbourhood past its reserved headroom.
        for w in range(2, 40):
            g.add_edge(0, w)
        g.validate()  # validate() re-ensures and checks the mirror

    def test_garbage_triggers_full_rebuild(self):
        g = CompactGraph([(i, i + 1) for i in range(50)])
        g.ensure_csr()
        for i in range(0, 50, 2):
            g.remove_vertex(i)
        g.ensure_csr()
        for i in range(100, 140):
            g.add_edge(i, i + 1)
        g.validate()

    def test_slot_recycling(self):
        g = CompactGraph([(0, 1), (1, 2)])
        slot = g.slot_of(2)
        g.remove_vertex(2)
        g.add_vertex(99)
        assert g.slot_of(99) == slot  # freed slot is reused
        assert g.id_of(slot) == 99
        g.validate()


class TestBridgesAndRegistry:
    def test_as_compact_preserves_orders(self):
        dense = mesh_3d(3)
        compact = as_compact(dense)
        assert list(dense.vertices()) == list(compact.vertices())
        assert dense.num_edges == compact.num_edges
        assert as_compact(compact) is compact  # no-op on the same backend

    def test_as_adjacency_round_trip(self):
        compact = as_compact(mesh_3d(3))
        dense = as_adjacency(compact)
        assert type(dense) is Graph
        assert_same_topology(dense, compact)
        assert as_adjacency(dense) is dense

    def test_registry(self):
        assert graph_backend("compact") is CompactGraph
        assert graph_backend("adjacency") is Graph
        with pytest.raises(ValueError):
            graph_backend("bogus")
        assert set(GRAPH_BACKENDS) == {"adjacency", "compact"}
        g = make_graph("compact", edges=[(1, 2)])
        assert isinstance(g, CompactGraph) and g.num_edges == 1
        assert isinstance(to_backend(g, "adjacency"), Graph)

    def test_copy_and_subgraph_stay_compact(self):
        g = as_compact(mesh_3d(3))
        assert isinstance(g.copy(), CompactGraph)
        sub = g.subgraph(range(9))
        assert isinstance(sub, CompactGraph)
        sub.validate()
        dense_sub = as_adjacency(g).subgraph(range(9))
        assert_same_topology(dense_sub, sub)

    def test_generators_accept_backend(self):
        compact = mesh_3d(3, graph_cls=CompactGraph)
        assert isinstance(compact, CompactGraph)
        assert_same_topology(mesh_3d(3), compact)
        plaw = powerlaw_cluster_graph(60, m=2, seed=1, graph_cls=CompactGraph)
        assert_same_topology(
            powerlaw_cluster_graph(60, m=2, seed=1), plaw
        )


def _runner(graph, seed=0, k=4, **config_kw):
    caps = balanced_capacities(graph.num_vertices, k, 1.10)
    state = HashPartitioner().partition(graph, k, list(caps))
    return AdaptiveRunner(graph, state, AdaptiveConfig(seed=seed, **config_kw))


def _paired_runners(make, seed=0, **config_kw):
    dense = make()
    compact = as_compact(dense.copy())
    return (
        _runner(dense, seed=seed, **config_kw),
        _runner(compact, seed=seed, **config_kw),
    )


class TestRunnerTimelineEquivalence:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    @pytest.mark.parametrize(
        "make",
        [
            lambda: mesh_3d(6),
            lambda: powerlaw_cluster_graph(250, m=2, seed=1),
        ],
        ids=["mesh", "powerlaw"],
    )
    def test_identical_timelines_fixed_seed(self, make, seed):
        dense, compact = _paired_runners(make, seed=seed)
        if HAS_NUMPY:
            assert compact._sweeper is not None  # the fast path is engaged
        for _ in range(50):
            assert dense.step() == compact.step()
        assert dict(dense.state.assignment_items()) == dict(
            compact.state.assignment_items()
        )
        assert dense.state.cut_edges == compact.state.cut_edges
        assert dense.loads == compact.loads
        compact.state.validate()  # bulk-move cut bookkeeping stayed exact

    @pytest.mark.parametrize("heuristic", ["hysteresis", "capacity-weighted"])
    def test_non_greedy_heuristics_use_generic_path(self, heuristic):
        dense, compact = _paired_runners(
            lambda: mesh_3d(5), seed=2, heuristic=heuristic
        )
        assert compact._sweeper is None  # only the exact greedy rule batches
        for _ in range(30):
            assert dense.step() == compact.step()

    def test_full_sweep_mode_matches(self):
        dense, compact = _paired_runners(
            lambda: mesh_3d(5), seed=1, track_active=False
        )
        for _ in range(30):
            assert dense.step() == compact.step()

    def test_edge_balance_matches(self):
        dense, compact = _paired_runners(
            lambda: powerlaw_cluster_graph(200, m=2, seed=0),
            seed=4,
            balance=EdgeBalance(slack=1.2),
        )
        for _ in range(30):
            assert dense.step() == compact.step()
        assert dense.loads == compact.loads

    def test_dynamic_events_match(self):
        dense, compact = _paired_runners(lambda: mesh_3d(5), seed=0)
        events = [
            AddVertex(900),
            AddEdge(900, 3),
            AddEdge(900, 17),
            RemoveVertex(5),
            RemoveEdge(0, 1),
            AddEdge(901, 902),
            AddVertex(5),
            AddEdge(5, 900),
        ]
        for _ in range(8):
            assert dense.step() == compact.step()
        assert dense.apply_events(events) == compact.apply_events(events)
        for _ in range(30):
            assert dense.step() == compact.step()
        assert dict(dense.state.assignment_items()) == dict(
            compact.state.assignment_items()
        )
        compact.graph.validate()
        compact.state.validate()

    def test_convergence_time_matches(self):
        dense, compact = _paired_runners(lambda: mesh_3d(6), seed=7)
        dense.run_until_convergence(max_iterations=400)
        compact.run_until_convergence(max_iterations=400)
        assert dense.converged == compact.converged
        assert dense.convergence_time == compact.convergence_time
        assert list(dense.timeline) == list(compact.timeline)

    def test_generic_path_on_compact_matches_when_numpy_absent(
        self, monkeypatch
    ):
        monkeypatch.setattr(sweep_module, "_np", None)
        dense, compact = _paired_runners(lambda: mesh_3d(5), seed=0)
        assert compact._sweeper is None
        for _ in range(20):
            assert dense.step() == compact.step()


class TestPregelEquivalence:
    def test_superstep_reports_match_across_backends(self):
        from repro.pregel import PregelConfig, PregelSystem, VertexProgram

        class Echo(VertexProgram):
            def initial_value(self, vertex_id, graph):
                return 0

            def compute(self, ctx, messages):
                ctx.send_to_neighbors(1)

        dense = mesh_3d(5)
        compact = as_compact(dense.copy())
        reports = []
        for graph in (dense, compact):
            system = PregelSystem(
                graph, Echo(), PregelConfig(num_workers=4, seed=0)
            )
            reports.append(system.run(25))
        for dense_report, compact_report in zip(*reports):
            assert dense_report.cut_edges == compact_report.cut_edges
            assert dense_report.sizes == compact_report.sizes
            assert (
                dense_report.migrations_announced
                == compact_report.migrations_announced
            )
            assert (
                dense_report.migrations_requested
                == compact_report.migrations_requested
            )


@needs_numpy
class TestSweeperInternals:
    def test_supports_requires_exact_greedy(self):
        class Sneaky(GreedyMaxNeighbours):
            def desired_partition(self, current, counts, remaining):
                return current

        g = as_compact(mesh_3d(3))
        assert CompactSweeper.supports(g, GreedyMaxNeighbours())
        assert not CompactSweeper.supports(g, Sneaky())
        assert not CompactSweeper.supports(mesh_3d(3), GreedyMaxNeighbours())

    def test_external_state_moves_trigger_resync(self):
        g = as_compact(mesh_3d(4))
        runner = _runner(g, seed=0)
        runner.step()
        state = runner.state
        # A move applied behind the sweeper's back (version bump) must be
        # observed by the next step, not silently ignored.
        vertex = next(iter(state.assignment_items()))[0]
        state.move(vertex, (state.partition_of(vertex) + 1) % 4)
        runner.step()
        sweeper = runner._sweeper
        index = g.slot_index
        for v, pid in state.assignment_items():
            assert sweeper._assign[index[v]] == pid

    def test_make_sweeper_on_non_int_ids(self):
        g = CompactGraph([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
        caps = balanced_capacities(g.num_vertices, 2, 2.0)
        state = HashPartitioner().partition(g, 2, list(caps))
        sweeper = make_sweeper(g, state, GreedyMaxNeighbours())
        assert sweeper is not None
        runner = AdaptiveRunner(g, state, AdaptiveConfig(seed=0))
        dense = Graph([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
        dense_state = HashPartitioner().partition(dense, 2, list(caps))
        dense_runner = AdaptiveRunner(dense, dense_state, AdaptiveConfig(seed=0))
        for _ in range(20):
            assert dense_runner.step() == runner.step()


class TestIdLookupDeltaMaintenance:
    """The dense id → slot table must survive streaming churn without
    O(|V|) rebuilds — it is delta-updated from note_assign/note_remove
    under the same sole-change contract as the assignment mirror."""

    def _churn_events(self, graph, rng, next_id):
        vertices = list(graph.vertices())
        return [
            AddVertex(next_id),
            AddEdge(next_id, rng.choice(vertices)),
            RemoveVertex(rng.choice(vertices)),
        ]

    @needs_numpy
    def test_no_rebuild_under_streaming_churn(self):
        import random

        g = as_compact(mesh_3d(6))
        runner = _runner(g, seed=1)
        for _ in range(3):
            runner.step()
        sweeper = runner._sweeper
        baseline = sweeper._id_lookup_rebuilds
        assert baseline >= 1  # the initial build happened
        rng = random.Random(0)
        next_id = 216
        for _ in range(150):
            runner.apply_events(self._churn_events(g, rng, next_id))
            next_id += 1
            runner.step()
        assert sweeper._id_lookup_rebuilds == baseline, (
            "interning churn forced a full id-lookup rebuild"
        )
        # The delta-maintained table is exact.
        assert sweeper._id_lookup is not None
        for v, slot in g.slot_index.items():
            assert sweeper._id_lookup[v] == slot
        runner.metrics.cross_check()

    def test_churn_timeline_matches_dense_backend(self):
        """Delta maintenance must not change a single decision."""
        import random

        def run(backend_graph):
            runner = _runner(backend_graph, seed=5)
            rng = random.Random(7)
            next_id = 216
            stats = []
            for _ in range(40):
                runner.apply_events(
                    self._churn_events(backend_graph, rng, next_id)
                )
                next_id += 1
                stats.append(runner.step())
            return stats

        dense = mesh_3d(6)
        compact = as_compact(dense.copy())
        assert run(dense) == run(compact)

    @needs_numpy
    def test_sparse_ids_fall_back_to_dict_path(self):
        g = as_compact(mesh_3d(4))
        runner = _runner(g, seed=0)
        runner.step()
        sweeper = runner._sweeper
        assert sweeper._id_lookup is not None
        # An id far beyond 4x the vertex count ends table eligibility …
        runner.apply_events([AddVertex(10_000_000), AddEdge(10_000_000, 0)])
        runner.step()
        assert sweeper._id_lookup is None
        assert sweeper._id_lookup_dict_path
        rebuilds = sweeper._id_lookup_rebuilds
        # … and later churn stays on the dict path without rebuilding.
        runner.apply_events([AddVertex(10_000_001), RemoveVertex(10_000_000)])
        runner.step()
        assert sweeper._id_lookup_rebuilds == rebuilds
        runner.metrics.cross_check()

    @needs_numpy
    def test_non_int_arrival_falls_back_safely(self):
        g = as_compact(mesh_3d(4))
        runner = _runner(g, seed=0)
        runner.step()
        sweeper = runner._sweeper
        assert sweeper._id_lookup is not None
        runner.apply_events([AddEdge("late-comer", 0)])
        runner.step()
        assert sweeper._id_lookup is None  # dict path from here on
        runner.apply_events([RemoveVertex("late-comer")])
        runner.step()
        runner.metrics.cross_check()
        runner.state.validate()

    @needs_numpy
    def test_unwitnessed_interning_triggers_rebuild(self):
        """Interning the sweeper never saw must stay stale-safe."""
        g = as_compact(mesh_3d(4))
        runner = _runner(g, seed=0)
        runner.step()
        sweeper = runner._sweeper
        rebuilds = sweeper._id_lookup_rebuilds
        # Mutate the graph + state behind the sweeper's back.
        g.add_vertex(900)
        g.add_edge(900, 0)
        runner.state.assign(900, 0)
        runner.metrics.on_vertex_placed(900)
        runner._activate(900)
        runner.step()
        assert sweeper._id_lookup_rebuilds == rebuilds + 1
        assert sweeper._id_lookup[900] == g.slot_index[900]

    @needs_numpy
    def test_aborted_removal_never_yields_wrong_slots(self):
        """note_remove's anticipatory credit must be confirmed at query
        time: a caller that aborts before the graph drops the vertex costs
        a rebuild, never a wrong slot (the 'stale, never wrong' contract)."""
        g = as_compact(mesh_3d(3))
        runner = _runner(g, seed=0, k=2)
        runner.step()
        sweeper = runner._sweeper
        victim = next(iter(g.vertices()))
        # Simulate the aborted protocol: state + sweeper told, graph never.
        runner.state.remove_vertex(victim)
        sweeper.note_remove(victim)
        # An unrelated interning lands the graph on the anticipated version.
        g.add_vertex(2000)
        runner.state.assign(2000, 0)
        sweeper.note_assign(2000, 0)
        slots = sweeper._candidate_slots([victim, 2000])
        assert slots[0] == g.slot_index[victim]  # not a stale -1
        assert slots[1] == g.slot_index[2000]
