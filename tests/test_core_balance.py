"""Unit tests for balance policies (vertex, edge, hotspot)."""

import pytest

from repro.core import EdgeBalance, HotspotBalance, VertexBalance
from repro.generators import mesh_3d


class TestVertexBalance:
    def test_unit_load(self, triangle):
        policy = VertexBalance()
        assert policy.load_of(triangle, 0) == 1.0

    def test_capacity_is_slack_times_balanced(self, small_mesh):
        policy = VertexBalance(slack=1.10)
        caps = policy.capacities(small_mesh, 9)
        assert len(caps) == 9
        balanced = small_mesh.num_vertices / 9
        assert all(balanced <= c <= balanced * 1.2 + 1 for c in caps)

    def test_slack_validated(self):
        with pytest.raises(ValueError):
            VertexBalance(slack=0.9)


class TestEdgeBalance:
    def test_load_is_degree(self, two_cliques):
        policy = EdgeBalance()
        assert policy.load_of(two_cliques, 0) == 3.0
        assert policy.load_of(two_cliques, 3) == 4.0

    def test_isolated_vertex_still_weighs_one(self):
        from repro.graph import Graph

        g = Graph(vertices=["x"])
        assert EdgeBalance().load_of(g, "x") == 1.0

    def test_capacity_scales_with_edges(self):
        small = mesh_3d(4)
        big = mesh_3d(6)
        policy = EdgeBalance()
        assert policy.capacities(big, 4)[0] > policy.capacities(small, 4)[0]

    def test_total_capacity_fits_total_load(self, small_mesh):
        policy = EdgeBalance(slack=1.10)
        caps = policy.capacities(small_mesh, 4)
        total_load = sum(
            policy.load_of(small_mesh, v) for v in small_mesh.vertices()
        )
        assert sum(caps) >= total_load


class TestHotspotBalance:
    def test_defaults_to_base_without_activity(self, small_mesh):
        policy = HotspotBalance()
        base = VertexBalance()
        assert policy.capacities(small_mesh, 4) == base.capacities(small_mesh, 4)

    def test_hot_partition_shrinks(self, small_mesh):
        policy = HotspotBalance(max_shrink=0.3)
        policy.observe_activity([100.0, 10.0, 10.0, 10.0])
        caps = policy.capacities(small_mesh, 4)
        base = VertexBalance().capacities(small_mesh, 4)
        assert caps[0] < base[0]
        # cold partitions keep their full capacity (factor clamped at 1)
        assert caps[1] == pytest.approx(base[1])

    def test_shrink_clamped(self, small_mesh):
        policy = HotspotBalance(max_shrink=0.3)
        policy.observe_activity([1000.0, 1.0, 1.0, 1.0])
        caps = policy.capacities(small_mesh, 4)
        base = VertexBalance().capacities(small_mesh, 4)
        assert caps[0] >= 0.7 * base[0] - 1

    def test_uniform_activity_no_change(self, small_mesh):
        policy = HotspotBalance()
        policy.observe_activity([5.0, 5.0, 5.0, 5.0])
        assert policy.capacities(small_mesh, 4) == VertexBalance().capacities(
            small_mesh, 4
        )

    def test_stale_activity_length_ignored(self, small_mesh):
        policy = HotspotBalance()
        policy.observe_activity([1.0, 2.0])  # wrong k
        assert policy.capacities(small_mesh, 4) == VertexBalance().capacities(
            small_mesh, 4
        )

    def test_zero_total_activity(self, small_mesh):
        policy = HotspotBalance()
        policy.observe_activity([0.0, 0.0, 0.0, 0.0])
        assert policy.capacities(small_mesh, 4) == VertexBalance().capacities(
            small_mesh, 4
        )

    def test_negative_activity_rejected(self):
        with pytest.raises(ValueError):
            HotspotBalance().observe_activity([-1.0])

    def test_max_shrink_validated(self):
        with pytest.raises(ValueError):
            HotspotBalance(max_shrink=1.0)

    def test_wraps_edge_balance(self, two_cliques):
        policy = HotspotBalance(base=EdgeBalance())
        assert policy.load_of(two_cliques, 0) == 3.0
