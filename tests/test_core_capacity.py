"""Unit tests for the per-iteration quota table."""

import pytest

from repro.core import QuotaTable


class TestQuotaMaths:
    def test_paper_formula(self):
        # Q(i, j) = C_t(j) / (k - 1)
        table = QuotaTable([8, 4, 0], num_partitions=3)
        assert table.quota(1, 0) == pytest.approx(4.0)
        assert table.quota(0, 1) == pytest.approx(2.0)
        assert table.quota(0, 2) == 0.0

    def test_negative_capacity_clamps_to_zero(self):
        # An over-full partition (e.g. after a load spike) offers no quota.
        table = QuotaTable([-5, 10], num_partitions=2)
        assert table.quota(1, 0) == 0.0

    def test_single_partition_no_lanes(self):
        table = QuotaTable([10], num_partitions=1)
        with pytest.raises(ValueError):
            table.quota(0, 0)


class TestConsumption:
    def test_consume_until_exhausted(self):
        table = QuotaTable([4, 4], num_partitions=2)  # quota 4 each lane
        for _ in range(4):
            assert table.try_consume(0, 1) is True
        assert table.try_consume(0, 1) is False
        assert table.available(0, 1) == pytest.approx(0.0)

    def test_lanes_are_independent(self):
        table = QuotaTable([2, 2, 2], num_partitions=3)  # quota 1 per lane
        assert table.try_consume(0, 2) is True
        assert table.try_consume(0, 2) is False
        assert table.try_consume(1, 2) is True  # other lane unaffected

    def test_worst_case_never_exceeds_capacity(self):
        # All sources exhaust their quota towards j: total <= C_t(j).
        k = 5
        remaining = [7] * k
        table = QuotaTable(remaining, num_partitions=k)
        destination = 3
        admitted = 0
        for source in range(k):
            if source == destination:
                continue
            while table.try_consume(source, destination):
                admitted += 1
        assert admitted <= remaining[destination]
        assert table.total_admitted_to(destination) == admitted

    def test_weighted_loads(self):
        table = QuotaTable([10, 10], num_partitions=2)  # quota 10
        assert table.try_consume(0, 1, load=6.0) is True
        assert table.try_consume(0, 1, load=6.0) is False  # would overdraw
        assert table.try_consume(0, 1, load=4.0) is True

    def test_whole_load_or_nothing(self):
        table = QuotaTable([3, 3], num_partitions=2)
        assert table.try_consume(0, 1, load=2.0) is True
        # remaining lane quota is 1; a 2-unit vertex must be rejected whole
        assert table.try_consume(0, 1, load=2.0) is False
        assert table.consumed(0, 1) == pytest.approx(2.0)

    def test_invalid_load(self):
        table = QuotaTable([3, 3], num_partitions=2)
        with pytest.raises(ValueError):
            table.try_consume(0, 1, load=0)

    def test_bad_partition_ids(self):
        table = QuotaTable([3, 3], num_partitions=2)
        with pytest.raises(ValueError):
            table.try_consume(0, 5)
        with pytest.raises(ValueError):
            table.try_consume(0, 0)

    def test_num_partitions_validated(self):
        with pytest.raises(ValueError):
            QuotaTable([], num_partitions=0)
