"""Unit tests for convergence detection and iteration metrics."""

import pytest

from repro.core import ConvergenceDetector, IterationStats, Timeline
from repro.core.convergence import PAPER_QUIET_WINDOW


class TestConvergenceDetector:
    def test_paper_default_window(self):
        assert ConvergenceDetector().quiet_window == PAPER_QUIET_WINDOW == 30

    def test_converges_after_window(self):
        d = ConvergenceDetector(quiet_window=3)
        assert d.observe(5) is False
        assert d.observe(0) is False
        assert d.observe(0) is False
        assert d.observe(0) is True
        assert d.converged

    def test_migration_resets_quiet_run(self):
        d = ConvergenceDetector(quiet_window=2)
        d.observe(0)
        d.observe(3)
        d.observe(0)
        assert not d.converged
        d.observe(0)
        assert d.converged

    def test_reset_rearms(self):
        d = ConvergenceDetector(quiet_window=1)
        d.observe(0)
        assert d.converged
        d.reset()
        assert not d.converged
        assert d.total_iterations == 1  # reset does not erase history

    def test_convergence_time_excludes_quiet_tail(self):
        d = ConvergenceDetector(quiet_window=3)
        for m in (4, 2, 1, 0, 0, 0):
            d.observe(m)
        # 3 busy iterations, then the quiet window
        assert d.convergence_time == 3

    def test_convergence_time_none_before_convergence(self):
        d = ConvergenceDetector(quiet_window=5)
        d.observe(0)
        assert d.convergence_time is None

    def test_immediately_quiet_graph(self):
        d = ConvergenceDetector(quiet_window=2)
        d.observe(0)
        d.observe(0)
        assert d.convergence_time == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ConvergenceDetector().observe(-1)

    def test_window_validated(self):
        with pytest.raises(ValueError):
            ConvergenceDetector(quiet_window=0)


def make_stats(i, migrations=0, cut_ratio=0.5, **kw):
    defaults = dict(
        iteration=i,
        migrations=migrations,
        wanted_migrations=migrations,
        blocked_migrations=0,
        cut_edges=int(cut_ratio * 100),
        cut_ratio=cut_ratio,
        max_partition_size=10,
        min_partition_size=8,
        imbalance=1.1,
    )
    defaults.update(kw)
    return IterationStats(**defaults)


class TestTimeline:
    def test_append_and_series(self):
        tl = Timeline()
        for i in range(5):
            tl.append(make_stats(i, migrations=5 - i))
        assert len(tl) == 5
        assert tl.series("migrations") == [5, 4, 3, 2, 1]
        assert tl.last.iteration == 4

    def test_total_migrations(self):
        tl = Timeline()
        for i in range(4):
            tl.append(make_stats(i, migrations=2))
        assert tl.total_migrations() == 8

    def test_final_cut_ratio(self):
        tl = Timeline()
        assert tl.final_cut_ratio() is None
        tl.append(make_stats(0, cut_ratio=0.9))
        tl.append(make_stats(1, cut_ratio=0.3))
        assert tl.final_cut_ratio() == 0.3

    def test_peak(self):
        tl = Timeline()
        for i, m in enumerate([1, 9, 4]):
            tl.append(make_stats(i, migrations=m))
        value, iteration = tl.peak("migrations")
        assert (value, iteration) == (9, 1)

    def test_peak_empty(self):
        assert Timeline().peak("migrations") == (None, None)

    def test_downsample_includes_last(self):
        tl = Timeline()
        for i in range(10):
            tl.append(make_stats(i))
        sampled = tl.downsample(4)
        assert sampled[0].iteration == 0
        assert sampled[-1].iteration == 9

    def test_downsample_validates(self):
        with pytest.raises(ValueError):
            Timeline().downsample(0)

    def test_to_rows(self):
        tl = Timeline()
        tl.append(make_stats(0, migrations=3))
        rows = tl.to_rows(["iteration", "migrations"])
        assert rows == [(0, 3)]

    def test_indexing_and_iter(self):
        tl = Timeline()
        tl.append(make_stats(0))
        tl.append(make_stats(1))
        assert tl[1].iteration == 1
        assert [s.iteration for s in tl] == [0, 1]
