"""Unit tests for migration decision heuristics."""

import pytest

from repro.core import (
    CapacityWeightedGreedy,
    GreedyMaxNeighbours,
    HEURISTICS,
    make_heuristic,
)
from repro.core.heuristic import DegreeDiscountedGreedy

CAPS = [10, 10, 10]


class TestGreedyMaxNeighbours:
    def setup_method(self):
        self.h = GreedyMaxNeighbours()

    def test_no_neighbours_stays(self):
        assert self.h.desired_partition(1, {}, CAPS) == 1

    def test_moves_to_majority(self):
        assert self.h.desired_partition(0, {1: 5, 2: 2}, CAPS) == 1

    def test_prefers_stay_on_tie(self):
        # "the heuristic will preferentially choose to stay in the current
        # partition if it is one of the candidates"
        assert self.h.desired_partition(0, {0: 3, 1: 3}, CAPS) == 0

    def test_stays_when_current_is_strict_max(self):
        assert self.h.desired_partition(2, {2: 4, 0: 1}, CAPS) == 2

    def test_deterministic_tie_break_among_foreign(self):
        assert self.h.desired_partition(0, {2: 3, 1: 3}, CAPS) == 1

    def test_zero_neighbours_here_moves(self):
        assert self.h.desired_partition(0, {1: 1}, CAPS) == 1

    def test_ignores_capacity_vector(self):
        # the paper's greedy rule is capacity-blind (quotas enforce balance)
        assert self.h.desired_partition(0, {1: 5}, [0, 0, 0]) == 1


class TestCapacityWeightedGreedy:
    def setup_method(self):
        self.h = CapacityWeightedGreedy()

    def test_no_neighbours_stays(self):
        assert self.h.desired_partition(0, {}, CAPS) == 0

    def test_moves_to_open_majority(self):
        assert self.h.desired_partition(0, {1: 5, 2: 2}, [10, 10, 10]) == 1

    def test_avoids_full_destination(self):
        # Partition 1 has more neighbours but zero remaining capacity.
        assert self.h.desired_partition(0, {1: 5, 2: 4}, [10, 0, 10]) == 2

    def test_never_moves_without_gain(self):
        assert self.h.desired_partition(0, {0: 3, 1: 3}, CAPS) == 0


class TestHysteresisGreedy:
    def setup_method(self):
        self.h = DegreeDiscountedGreedy()

    def test_requires_margin(self):
        # needs strictly more than here + 1 + margin(1) neighbours
        assert self.h.desired_partition(0, {0: 2, 1: 3}, CAPS) == 0
        assert self.h.desired_partition(0, {0: 2, 1: 4}, CAPS) == 1

    def test_no_neighbours_stays(self):
        assert self.h.desired_partition(0, {}, CAPS) == 0


class TestRegistry:
    def test_all_names_constructible(self):
        for name in HEURISTICS:
            assert make_heuristic(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_heuristic("nope")
