"""Unit and behavioural tests for the AdaptiveRunner (static graphs)."""

import pytest

from repro.core import AdaptiveConfig, AdaptiveRunner, EdgeBalance, run_to_convergence
from repro.generators import erdos_renyi_graph, mesh_3d
from repro.partitioning import (
    HashPartitioner,
    RandomPartitioner,
    balanced_capacities,
)


def hash_state(graph, k=4, slack=1.10):
    caps = balanced_capacities(graph.num_vertices, k, slack)
    return HashPartitioner().partition(graph, k, list(caps))


class TestConfig:
    def test_willingness_range(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(willingness=1.5)
        with pytest.raises(ValueError):
            AdaptiveConfig(willingness=-0.1)

    def test_heuristic_by_name(self):
        cfg = AdaptiveConfig(heuristic="greedy")
        assert cfg.heuristic.name == "greedy"

    def test_bad_heuristic_type(self):
        with pytest.raises(TypeError):
            AdaptiveConfig(heuristic=42)


class TestSingleStep:
    def test_step_produces_stats(self, small_mesh):
        state = hash_state(small_mesh)
        runner = AdaptiveRunner(small_mesh, state, AdaptiveConfig(seed=0))
        stats = runner.step()
        assert stats.iteration == 1
        assert stats.migrations >= 0
        assert stats.cut_edges == state.cut_edges
        assert stats.migrations <= stats.wanted_migrations

    def test_zero_willingness_freezes(self, small_mesh):
        state = hash_state(small_mesh)
        before = dict(state.assignment_items())
        runner = AdaptiveRunner(
            small_mesh, state, AdaptiveConfig(willingness=0.0, seed=0)
        )
        for _ in range(5):
            stats = runner.step()
            assert stats.migrations == 0
        assert dict(state.assignment_items()) == before

    def test_full_willingness_moves_each_round(self, small_mesh):
        state = hash_state(small_mesh)
        runner = AdaptiveRunner(
            small_mesh, state, AdaptiveConfig(willingness=1.0, seed=0)
        )
        stats = runner.step()
        assert stats.migrations > 0

    def test_migrations_never_overfill(self, small_mesh):
        # Hash loading may already exceed a tight capacity; the quota
        # mechanism guarantees migrations never push a partition *further*
        # over: each partition stays under max(capacity, initial size).
        from repro.core import VertexBalance

        state = hash_state(small_mesh, k=4, slack=1.05)
        initial_sizes = state.sizes
        runner = AdaptiveRunner(
            small_mesh,
            state,
            AdaptiveConfig(seed=1, balance=VertexBalance(slack=1.05)),
        )
        caps = runner.capacities
        for _ in range(40):
            runner.step()
            for pid in range(4):
                assert state.size(pid) <= max(caps[pid], initial_sizes[pid])

    def test_runner_syncs_state_capacities_with_policy(self, small_mesh):
        # The balance policy is the source of truth; a stale vector set by
        # the initial partitioner must be overwritten at construction.
        state = hash_state(small_mesh, k=4, slack=3.0)
        runner = AdaptiveRunner(small_mesh, state, AdaptiveConfig(seed=0))
        assert state.capacities == runner.capacities

    def test_cut_bookkeeping_stays_exact(self, small_mesh):
        state = hash_state(small_mesh)
        runner = AdaptiveRunner(small_mesh, state, AdaptiveConfig(seed=2))
        for _ in range(15):
            runner.step()
        assert state.cut_edges == state.recompute_cut_edges()


class TestConvergence:
    def test_converges_and_improves_mesh(self):
        graph = mesh_3d(8)
        state = hash_state(graph, k=4)
        initial = state.cut_ratio()
        runner, timeline = run_to_convergence(
            graph, state, AdaptiveConfig(seed=0, quiet_window=10)
        )
        assert runner.converged
        assert runner.convergence_time is not None
        assert state.cut_ratio() < 0.5 * initial
        # exponential decay: later iterations migrate less than early ones
        early = sum(s.migrations for s in timeline[:5])
        late = sum(s.migrations for s in timeline[-5:])
        assert late < early

    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            graph = mesh_3d(6)
            state = hash_state(graph)
            runner, _ = run_to_convergence(
                graph, state, AdaptiveConfig(seed=7, quiet_window=10)
            )
            results.append(
                (dict(state.assignment_items()), runner.convergence_time)
            )
        assert results[0] == results[1]

    def test_seeds_change_outcome(self):
        finals = set()
        for seed in (0, 1):
            graph = mesh_3d(6)
            state = hash_state(graph)
            run_to_convergence(
                graph, state, AdaptiveConfig(seed=seed, quiet_window=10)
            )
            finals.add(state.cut_edges)
        # different seeds explore different local optima (almost surely)
        assert len(finals) >= 1  # sanity; exact equality is not required

    def test_max_iterations_bound(self, small_mesh):
        state = hash_state(small_mesh)
        runner = AdaptiveRunner(
            small_mesh, state, AdaptiveConfig(seed=0, quiet_window=500)
        )
        runner.run_until_convergence(max_iterations=12)
        assert runner.iteration == 12
        assert not runner.converged

    def test_random_graph_barely_improves(self):
        # ER graphs have no locality to exploit; improvement stays modest.
        graph = erdos_renyi_graph(300, num_edges=1200, seed=0)
        state = hash_state(graph, k=4)
        initial = state.cut_ratio()
        run_to_convergence(graph, state, AdaptiveConfig(seed=0, quiet_window=10))
        mesh = mesh_3d(7)
        mesh_state = hash_state(mesh, k=4)
        mesh_initial = mesh_state.cut_ratio()
        run_to_convergence(
            mesh, mesh_state, AdaptiveConfig(seed=0, quiet_window=10)
        )
        er_gain = initial - state.cut_ratio()
        mesh_gain = mesh_initial - mesh_state.cut_ratio()
        assert mesh_gain > er_gain

    def test_initial_strategy_insensitivity(self):
        # §4.2.1: the heuristic reaches similar quality from HSH and RND.
        finals = []
        for partitioner in (HashPartitioner(), RandomPartitioner(seed=0)):
            graph = mesh_3d(7)
            caps = balanced_capacities(graph.num_vertices, 4)
            state = partitioner.partition(graph, 4, caps)
            run_to_convergence(
                graph, state, AdaptiveConfig(seed=0, quiet_window=10)
            )
            finals.append(state.cut_ratio())
        assert abs(finals[0] - finals[1]) < 0.10


class TestNeighbourChasing:
    """§2.3: 'Local symmetries in the graph may cause pairs ... of neighbour
    vertices [to] independently decide to "chase each other" in the same
    iteration'.  At s = 1 the pathology is permanent; at s = 0.5 it
    resolves."""

    def _pair_runner(self, willingness, seed=0):
        from repro.graph import Graph

        graph = Graph([("a", "b")])
        state = hash_state(graph, k=2, slack=2.0)
        # Force the symmetric configuration: a and b in different partitions.
        if state.partition_of("a") == state.partition_of("b"):
            state.move("b", 1 - state.partition_of("b"))
        from repro.core import VertexBalance

        return AdaptiveRunner(
            graph,
            state,
            AdaptiveConfig(
                willingness=willingness,
                seed=seed,
                quiet_window=10,
                balance=VertexBalance(slack=2.0),
            ),
        )

    def test_full_willingness_oscillates_forever(self):
        runner = self._pair_runner(willingness=1.0)
        for _ in range(50):
            stats = runner.step()
            assert stats.migrations == 2  # both vertices swap every round
        assert not runner.converged

    def test_intermediate_willingness_resolves(self):
        runner = self._pair_runner(willingness=0.5)
        runner.run_until_convergence(max_iterations=500)
        assert runner.converged
        state = runner.state
        assert state.partition_of("a") == state.partition_of("b")
        assert state.cut_edges == 0


class TestActiveSetOptimisation:
    def test_active_set_shrinks(self, small_mesh):
        state = hash_state(small_mesh)
        runner = AdaptiveRunner(small_mesh, state, AdaptiveConfig(seed=0))
        assert runner.active_count == small_mesh.num_vertices
        for _ in range(20):
            runner.step()
        assert runner.active_count < small_mesh.num_vertices

    def test_tracking_matches_full_sweep(self):
        # The optimisation must not change the result distribution; with a
        # fixed seed the two modes may differ in RNG consumption, so compare
        # final quality rather than exact assignments.
        outcomes = []
        for track in (True, False):
            graph = mesh_3d(6)
            state = hash_state(graph)
            run_to_convergence(
                graph,
                state,
                AdaptiveConfig(seed=3, quiet_window=10, track_active=track),
            )
            outcomes.append(state.cut_ratio())
        assert abs(outcomes[0] - outcomes[1]) < 0.1


class TestEdgeBalanceMode:
    def test_edge_loads_respected(self, small_powerlaw):
        k = 4
        policy = EdgeBalance(slack=1.2)
        caps = policy.capacities(small_powerlaw, k)
        state = HashPartitioner().partition(small_powerlaw, k, list(caps))
        runner = AdaptiveRunner(
            small_powerlaw,
            state,
            AdaptiveConfig(seed=0, balance=policy),
        )
        for _ in range(30):
            runner.step()
        for pid in range(k):
            assert runner.loads[pid] <= caps[pid] + 1e-6

    def test_edge_balance_evens_edge_distribution(self, small_powerlaw):
        k = 4
        policy = EdgeBalance(slack=1.1)
        caps = policy.capacities(small_powerlaw, k)
        state = HashPartitioner().partition(small_powerlaw, k, list(caps))
        runner = AdaptiveRunner(
            small_powerlaw, state, AdaptiveConfig(seed=0, balance=policy)
        )
        runner.run_until_convergence(max_iterations=120)
        loads = runner.loads
        mean_load = sum(loads) / k
        assert max(loads) <= 1.35 * mean_load
