"""Dynamic adaptation tests: the runner under graph mutations."""

import pytest

from repro.core import AdaptiveConfig, AdaptiveRunner
from repro.generators import forest_fire_expansion, mesh_3d
from repro.graph import AddEdge, AddVertex, RemoveEdge, RemoveVertex
from repro.partitioning import HashPartitioner, balanced_capacities


def converged_runner(graph, k=4, seed=0, quiet_window=10):
    caps = balanced_capacities(graph.num_vertices, k, slack=1.3)
    state = HashPartitioner().partition(graph, k, list(caps))
    runner = AdaptiveRunner(
        graph, state, AdaptiveConfig(seed=seed, quiet_window=quiet_window)
    )
    runner.run_until_convergence(max_iterations=400)
    assert runner.converged
    return runner


class TestEventApplication:
    def test_add_vertex_gets_placed(self, small_mesh):
        runner = converged_runner(small_mesh)
        runner.apply_events([AddVertex("new")])
        assert runner.state.partition_of_or_none("new") is not None
        assert not runner.converged  # window reset

    def test_add_edge_implicit_endpoints(self, small_mesh):
        runner = converged_runner(small_mesh)
        runner.apply_events([AddEdge("a", "b")])
        assert runner.state.partition_of_or_none("a") is not None
        assert runner.graph.has_edge("a", "b")

    def test_remove_vertex_cleans_state(self, small_mesh):
        runner = converged_runner(small_mesh)
        victim = next(iter(small_mesh.vertices()))
        runner.apply_events([RemoveVertex(victim)])
        assert victim not in runner.graph
        assert runner.state.partition_of_or_none(victim) is None
        assert runner.state.cut_edges == runner.state.recompute_cut_edges()

    def test_remove_edge(self, small_mesh):
        runner = converged_runner(small_mesh)
        u, v = next(iter(small_mesh.edges()))
        runner.apply_events([RemoveEdge(u, v)])
        assert not runner.graph.has_edge(u, v)
        assert runner.state.cut_edges == runner.state.recompute_cut_edges()

    def test_noop_events_do_not_reset_convergence(self, small_mesh):
        runner = converged_runner(small_mesh)
        existing = next(iter(small_mesh.vertices()))
        changed = runner.apply_events([AddVertex(existing)])
        assert changed == 0
        assert runner.converged

    def test_event_count_returned(self, small_mesh):
        runner = converged_runner(small_mesh)
        changed = runner.apply_events(
            [AddVertex("x"), AddVertex("x"), AddEdge("x", "y")]
        )
        assert changed == 2

    def test_unknown_event_rejected(self, small_mesh):
        runner = converged_runner(small_mesh)
        with pytest.raises(TypeError):
            runner.apply_events(["garbage"])


class TestReconvergence:
    def test_forest_fire_peak_absorbed(self):
        # The Fig. 7(b) scenario in miniature: converge, inject a 10 % forest
        # fire, observe a migration spike that decays back to convergence
        # with cut ratio near the pre-peak level.
        graph = mesh_3d(8)
        runner = converged_runner(graph, k=4, quiet_window=10)
        settled_ratio = runner.state.cut_ratio()
        events, _ = forest_fire_expansion(
            graph, int(0.1 * graph.num_vertices), seed=1
        )
        runner.apply_events(events)
        post_injection_ratio = runner.state.cut_ratio()
        assert post_injection_ratio > settled_ratio  # the peak
        runner.run_until_convergence(max_iterations=600)
        assert runner.converged
        assert runner.state.cut_ratio() < post_injection_ratio
        assert runner.state.cut_edges == runner.state.recompute_cut_edges()

    def test_migration_spike_then_decay(self):
        graph = mesh_3d(8)
        runner = converged_runner(graph, k=4, quiet_window=10)
        events, _ = forest_fire_expansion(
            graph, int(0.1 * graph.num_vertices), seed=2
        )
        runner.apply_events(events)
        spike = runner.step().migrations
        for _ in range(60):
            runner.step()
        tail = runner.timeline.last.migrations
        assert tail <= spike

    def test_capacities_refresh_after_growth(self):
        graph = mesh_3d(6)
        runner = converged_runner(graph, k=4)
        caps_before = runner.capacities
        events, _ = forest_fire_expansion(
            graph, graph.num_vertices // 2, seed=0
        )
        runner.apply_events(events)
        assert runner.capacities[0] > caps_before[0]

    def test_shrinking_graph(self):
        graph = mesh_3d(6)
        runner = converged_runner(graph, k=4)
        victims = list(graph.vertices())[:30]
        runner.apply_events([RemoveVertex(v) for v in victims])
        runner.run_until_convergence(max_iterations=300)
        assert runner.converged
        assert len(runner.state) == graph.num_vertices
        runner.state.validate()

    def test_loads_track_assignment_after_churn(self):
        graph = mesh_3d(6)
        runner = converged_runner(graph, k=4)
        events, _ = forest_fire_expansion(graph, 25, seed=3)
        runner.apply_events(events)
        for _ in range(10):
            runner.step()
        sizes = runner.state.sizes
        assert runner.loads == pytest.approx([float(s) for s in sizes])
