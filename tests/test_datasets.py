"""Tests for the Table-1 dataset catalog."""

import pytest

from repro.datasets import (
    CATALOG,
    build_dataset,
    dataset_names,
    table1_rows,
)

PAPER_TABLE_1 = {
    "1e4": (10000, 27900, "FEM"),
    "64kcube": (64000, 187200, "FEM"),
    "1e6": (10 ** 6, 2970000, "FEM"),
    "1e8": (10 ** 8, 297000000, "FEM"),
    "3elt": (4720, 13722, "FEM"),
    "4elt": (15606, 45878, "FEM"),
    "plc1000": (1000, 9879, "pwlaw"),
    "plc10000": (10000, 129774, "pwlaw"),
    "plc50000": (50000, 1249061, "pwlaw"),
    "wikivote": (7115, 103689, "pwlaw"),
    "epinion": (75879, 508837, "pwlaw"),
    "uk-2007-05-u": (10 ** 6, 41247159, "pwlaw"),
}


class TestCatalogContents:
    def test_every_table1_entry_present(self):
        assert set(dataset_names()) == set(PAPER_TABLE_1)

    def test_published_statistics_recorded(self):
        for name, (v, e, family) in PAPER_TABLE_1.items():
            spec = CATALOG[name]
            assert spec.paper_vertices == v
            assert spec.paper_edges == e
            assert spec.family == family


class TestBuilders:
    @pytest.mark.parametrize(
        "name", ["1e4", "3elt", "plc1000", "wikivote"]
    )
    def test_full_size_matches_published_vertices(self, name):
        graph = build_dataset(name)
        spec = CATALOG[name]
        assert abs(graph.num_vertices - spec.paper_vertices) < max(
            0.15 * spec.paper_vertices, 8
        )

    def test_scaled_build(self):
        graph = build_dataset("epinion", scale=0.05, seed=0)
        assert graph.num_vertices == pytest.approx(75879 * 0.05, rel=0.02)

    def test_max_vertices_cap(self):
        graph = build_dataset("64kcube", max_vertices=1000)
        assert graph.num_vertices <= 1200  # mesh rounding above the cap

    def test_average_degree_shape_epinion(self):
        # Epinions averages ~13.4; the stand-in must be in the ballpark.
        graph = build_dataset("epinion", scale=0.05)
        published = 2 * 508837 / 75879
        assert abs(graph.average_degree() - published) < 0.4 * published

    def test_fem_entries_are_meshes(self):
        graph = build_dataset("1e4", scale=0.3)
        # mesh degrees are bounded by 6
        assert max(graph.degree(v) for v in graph.vertices()) <= 6

    def test_pwlaw_entries_are_heavy_tailed(self):
        graph = build_dataset("plc10000", scale=0.2, seed=1)
        max_degree = max(graph.degree(v) for v in graph.vertices())
        assert max_degree > 3 * graph.average_degree()

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            build_dataset("unknown")

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            build_dataset("plc1000", scale=0)

    def test_determinism(self):
        a = build_dataset("plc1000", seed=3)
        b = build_dataset("plc1000", seed=3)
        assert sorted(a.edges()) == sorted(b.edges())


class TestTable1Rows:
    def test_rows_cover_catalog(self):
        rows = table1_rows(scale=0.05, max_vertices=2000)
        assert len(rows) == len(CATALOG)

    def test_skipped_entries_have_no_measurements(self):
        rows = table1_rows(scale=0.05, max_vertices=2000)
        by_name = {r[0]: r for r in rows}
        assert by_name["1e8"][4] is None
        assert by_name["plc1000"][4] is not None
