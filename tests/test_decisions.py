"""The shard-local decision phase: mode identity, keyed RNG, activation.

The tentpole contract of the decision refactor is that *where* migration
proposals are generated can never change *what* happens:

* ``decisions="shard"`` (the default, pinned against the golden fixtures by
  ``test_cluster_golden.py`` across every executor) and
  ``decisions="coordinator"`` replay byte-identical timelines — asserted
  here against the same fixtures, which makes the two modes transitively
  identical across all executors;
* the counter-split willingness RNG is a pure function of
  ``(lane, round, vertex)`` — invariant to shard count, chunking of the
  candidate set, evaluation order, and the scalar/vectorised path split;
* the vectorised :class:`~repro.core.sweep.ShardSweeper` and the portable
  :func:`~repro.pregel.compute.decide_block` produce identical proposals;
* shard placement mirrors track the authoritative assignment exactly under
  churn, migrations and faults.

``REPRO_CLUSTER_DECISIONS`` (comma-separated) narrows the decision-mode
axis the same way ``REPRO_CLUSTER_EXECUTORS`` narrows executors — the CI
matrix job uses both.
"""

import json
import os
from pathlib import Path

import pytest

from repro.apps.pagerank import PageRank
from repro.cluster import Coordinator, InlineExecutor
from repro.core.heuristic import (
    CapacityWeightedGreedy,
    DecisionContext,
    GreedyMaxNeighbours,
)
from repro.core.runner import AdaptiveConfig, AdaptiveRunner
from repro.core.sweep import make_shard_sweeper
from repro.generators import mesh_3d, powerlaw_cluster_graph
from repro.graph import GRAPH_BACKENDS
from repro.graph.events import AddEdge, AddVertex, RemoveEdge, RemoveVertex
from repro.partitioning.base import balanced_capacities
from repro.partitioning.hashing import HashPartitioner
from repro.pregel.compute import decide_block
from repro.pregel.fault import FaultPlan
from repro.pregel.system import PregelConfig, PregelSystem
from repro.scenarios import get_scenario, play_scenario
from repro.utils.rng import WillingnessSource, vertex_key

try:
    import numpy
except ImportError:  # pragma: no cover - numpy is optional
    numpy = None

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_SCENARIOS = ["mesh-growth", "grid-rewire", "cdr-weekly"]
DECISION_MODES = [
    name.strip()
    for name in os.environ.get(
        "REPRO_CLUSTER_DECISIONS", "shard,coordinator"
    ).split(",")
    if name.strip()
]


def _fixture(name):
    return json.loads(
        (GOLDEN_DIR / f"pregel-{name}.json").read_text(encoding="utf-8")
    )


# ----------------------------------------------------------------------
# Decision-mode identity against the golden superstep timelines
# ----------------------------------------------------------------------


@pytest.mark.parametrize("decisions", DECISION_MODES)
@pytest.mark.parametrize("name", GOLDEN_SCENARIOS)
def test_decision_modes_replay_the_golden_timeline(name, decisions):
    digest = play_scenario(
        get_scenario(name), engine="pregel", decisions=decisions
    ).superstep_digest()
    assert digest == _fixture(name), (
        f"{name} with decisions={decisions!r} diverged from the golden "
        "superstep timeline — the knob must move work, never results"
    )


def test_single_process_system_matches_the_sharded_default():
    """A shard-less PregelSystem runs the same decision pipeline."""

    def digest(reports):
        return [
            (
                r.superstep,
                r.migrations_requested,
                r.migrations_announced,
                r.migrations_blocked,
                r.cut_edges,
                tuple(r.sizes),
            )
            for r in reports
        ]

    config = PregelConfig(num_workers=4, seed=3, quiet_window=5)
    serial = PregelSystem(mesh_3d(5), PageRank(), config)
    serial.run(10)
    with Coordinator(
        mesh_3d(5), PageRank(), config, executor=InlineExecutor()
    ) as sharded:
        sharded.run(10)
        assert digest(serial.reports) == digest(sharded.reports)


def test_decisions_knob_validation():
    with pytest.raises(ValueError, match="decisions"):
        PregelConfig(decisions="oracle")
    with pytest.raises(ValueError, match="batch_events"):
        PregelConfig(batch_events="sometimes")


# ----------------------------------------------------------------------
# The counter-split willingness RNG
# ----------------------------------------------------------------------


class TestWillingnessSource:
    def test_draws_are_pure_functions_of_lane_round_vertex(self):
        a = WillingnessSource(7, "lane")
        b = WillingnessSource(7, "lane")
        assert [a.draw(r, v) for r in range(5) for v in range(20)] == [
            b.draw(r, v) for r in range(5) for v in range(20)
        ]

    def test_rounds_and_vertices_decorrelate(self):
        s = WillingnessSource(7, "lane")
        by_round = {s.draw(r, 11) for r in range(50)}
        by_vertex = {s.draw(3, v) for v in range(50)}
        assert len(by_round) == 50
        assert len(by_vertex) == 50
        for draw in by_round | by_vertex:
            assert 0.0 <= draw < 1.0

    def test_lanes_are_independent(self):
        assert WillingnessSource(7, "a").draw(1, 2) != WillingnessSource(
            7, "b"
        ).draw(1, 2)

    def test_non_int_ids_key_stably(self):
        s = WillingnessSource(7, "lane")
        assert s.draw(1, "alpha") == s.draw(1, "alpha")
        assert s.draw(1, "alpha") != s.draw(1, "beta")
        assert s.draw(1, ("a", 1)) != s.draw(1, ("a", 2))

    def test_bools_do_not_collide_with_ints(self):
        # bool is an int subclass; the key function must not conflate them
        # with 0/1 on one path only.
        assert vertex_key(True) != vertex_key(1)
        assert vertex_key(False) != vertex_key(0)

    @pytest.mark.skipif(numpy is None, reason="needs numpy")
    def test_vectorised_path_is_bit_identical_to_scalar(self):
        s = WillingnessSource(42, "pregel_willingness")
        ids = list(range(200)) + [2**40 + 3, 2**63 - 1]
        keys = numpy.array([vertex_key(v) for v in ids], dtype=numpy.uint64)
        assert s.draw_keys(9, keys).tolist() == [s.draw(9, v) for v in ids]

    def test_draws_are_chunking_invariant(self):
        """The shard-count-invariance property, at the source level.

        However the vertex set is split into shards, every vertex's draw is
        the same — the whole point of counter-splitting over stream RNG.
        """
        s = WillingnessSource(13, "lane")
        vertices = list(range(97))
        whole = {v: s.draw(4, v) for v in vertices}
        for num_shards in (1, 2, 3, 7, 96, 97):
            chunks = [vertices[i::num_shards] for i in range(num_shards)]
            split = {}
            for chunk in chunks:
                for v in chunk:
                    split[v] = s.draw(4, v)
            assert split == whole


# ----------------------------------------------------------------------
# decide_block: chunking invariance + sweeper equivalence
# ----------------------------------------------------------------------


class _DecisionHost:
    """Minimal decide_block host over explicit adjacency + placement."""

    def __init__(self, adj, placement, heuristic):
        self._adj = adj
        self.placement = placement
        self.heuristic = heuristic
        self.graph = self

    def neighbors(self, v):
        return self._adj[v]

    @property
    def placement_of(self):
        return self.placement.get


def _toy_decision_problem(seed=5):
    graph = powerlaw_cluster_graph(120, m=2, seed=seed)
    k = 4
    caps = balanced_capacities(graph.num_vertices, k, 1.1)
    state = HashPartitioner().partition(graph, k, list(caps))
    adj = {v: tuple(graph.neighbors(v)) for v in graph.vertices()}
    placement = dict(state.assignment_items())
    context = DecisionContext(
        round_index=3,
        remaining=tuple(float(c) for c in caps),
        willingness=0.5,
        lane=WillingnessSource(seed, "lane").lane,
    )
    return adj, placement, context


def test_decide_block_is_chunking_invariant():
    adj, placement, context = _toy_decision_problem()
    host = _DecisionHost(adj, placement, GreedyMaxNeighbours())
    candidates = sorted(adj)
    whole = decide_block(host, context, candidates)
    assert whole, "toy problem produced no movers; weaken the setup"
    for num_shards in (2, 3, 5):
        chunks = [candidates[i::num_shards] for i in range(num_shards)]
        merged = []
        for chunk in chunks:
            merged.extend(decide_block(host, context, sorted(chunk)))
        assert sorted(merged) == sorted(whole)


@pytest.mark.skipif(numpy is None, reason="needs numpy")
def test_shard_sweeper_matches_decide_block():
    adj, placement, context = _toy_decision_problem()
    host = _DecisionHost(adj, placement, GreedyMaxNeighbours())
    sweeper = make_shard_sweeper(GreedyMaxNeighbours())
    assert sweeper is not None
    for v, neighbours in adj.items():
        sweeper.admit(v, neighbours)
    for v, pid in placement.items():
        sweeper.place(v, pid)
    candidates = sorted(adj)
    assert sweeper.decisions(context, candidates) == decide_block(
        host, context, candidates
    )


@pytest.mark.skipif(numpy is None, reason="needs numpy")
def test_shard_sweeper_tracks_churn_and_compaction():
    """Admit/evict/re-admit churn (forcing block garbage) stays exact."""
    adj, placement, context = _toy_decision_problem()
    host = _DecisionHost(adj, placement, GreedyMaxNeighbours())
    sweeper = make_shard_sweeper(GreedyMaxNeighbours())
    sweeper._GROW = 8  # tiny arena: compaction triggers many times
    for v, neighbours in adj.items():
        sweeper.admit(v, neighbours)
    for v, pid in placement.items():
        sweeper.place(v, pid)
    # Rewrite every vertex's block a few times, evict/readmit half.
    for repeat in range(3):
        for v in list(adj):
            if v % 2 == repeat % 2:
                sweeper.evict(v)
                sweeper.admit(v, adj[v])
            else:
                sweeper.admit(v, adj[v])
    candidates = sorted(adj)
    assert sweeper.decisions(context, candidates) == decide_block(
        host, context, candidates
    )


@pytest.mark.skipif(numpy is None, reason="needs numpy")
def test_shard_sweeper_place_many_matches_place():
    """The bulk mirror-seeding path == per-vertex place, mixed ids too."""
    items = [(v, v % 3) for v in range(40)]
    items += [("gw-1", 0), (("rack", 7), 2), (-5, 1), (2**63 + 9, 2)]
    bulk = make_shard_sweeper(GreedyMaxNeighbours())
    bulk.place_many(items)
    single = make_shard_sweeper(GreedyMaxNeighbours())
    for vertex, pid in items:
        single.place(vertex, pid)
    assert bulk._slot == single._slot
    for vertex, slot in bulk._slot.items():
        assert bulk._keys[slot] == single._keys[single._slot[vertex]]
        assert bulk._place[slot] == single._place[single._slot[vertex]]


def test_arbitration_order_is_keyed_per_round():
    """Quota contention priority reshuffles every round (no fixed-id bias)
    but is a pure function of (lane, round, vertex)."""
    from repro.pregel.migration import sort_proposals

    proposals = [(v, 0, 1, True) for v in range(64)]
    lane = WillingnessSource(0, "pregel_willingness").lane
    source = WillingnessSource(lane, "arbitration")

    def order(round_index):
        return [
            p[0]
            for p in sort_proposals(
                proposals, priority=lambda v: source.draw(round_index, v)
            )
        ]

    assert order(1) == order(1)          # deterministic
    assert order(1) != order(2)          # round-specific permutation
    assert order(1) != sorted(range(64))  # not the canonical id order
    assert sorted(order(1)) == sorted(range(64))


def test_make_shard_sweeper_gates():
    class Subclassed(GreedyMaxNeighbours):
        pass

    if numpy is not None:
        assert make_shard_sweeper(GreedyMaxNeighbours()) is not None
    assert make_shard_sweeper(Subclassed()) is None
    assert make_shard_sweeper(CapacityWeightedGreedy()) is None
    assert make_shard_sweeper(None) is None


# ----------------------------------------------------------------------
# Placement mirrors + the full stack under churn
# ----------------------------------------------------------------------


def _churned_coordinator(backend="adjacency", **config_kw):
    graph_cls = GRAPH_BACKENDS[backend]
    graph = mesh_3d(6, graph_cls=graph_cls)
    config = PregelConfig(num_workers=4, seed=3, quiet_window=5, **config_kw)
    system = Coordinator(
        graph,
        PageRank(),
        config,
        fault_plan=FaultPlan().add(9, 2),
        executor=InlineExecutor(),
    )
    try:
        for step in range(14):
            if step == 4:
                system.inject_events(
                    [
                        AddVertex(1000),
                        AddEdge(1000, 0),
                        RemoveVertex(43),
                        AddEdge(1000, 87),
                        AddEdge(1001, 1002),
                        RemoveEdge(0, 1),
                    ]
                )
            if step == 7:
                system.inject_events([RemoveVertex(1001), AddEdge(1002, 5)])
            system.run_superstep()
            system.shard_consistency_check()  # includes the mirror check
        return [
            (
                r.superstep,
                r.migrations_requested,
                r.migrations_announced,
                r.migrations_blocked,
                r.cut_edges,
                tuple(r.sizes),
                r.computed_vertices,
                r.mutations_applied,
            )
            for r in system.reports
        ]
    finally:
        system.close()


def test_placement_mirrors_stay_exact_under_churn_and_faults():
    _churned_coordinator()


def test_non_int_vertex_ids_through_the_sharded_decision_phase():
    """String ids exercise the sha-keyed willingness path shard-side; both
    decision modes must still agree, and mirrors must stay exact."""

    def run(decisions):
        config = PregelConfig(
            num_workers=3, seed=1, quiet_window=5, decisions=decisions
        )
        system = Coordinator(
            mesh_3d(4), PageRank(), config, executor=InlineExecutor()
        )
        try:
            for step in range(8):
                if step == 2:
                    system.inject_events(
                        [
                            AddVertex("hub"),
                            AddEdge("hub", 0),
                            AddEdge("hub", 1),
                            AddEdge("spoke-a", "hub"),
                            RemoveEdge(0, 1),
                        ]
                    )
                system.run_superstep()
                system.shard_consistency_check()
            return [
                (
                    r.superstep,
                    r.migrations_requested,
                    r.migrations_announced,
                    r.cut_edges,
                    tuple(r.sizes),
                )
                for r in system.reports
            ]
        finally:
            system.close()

    assert run("shard") == run("coordinator")


def test_pregel_bulk_ingestion_is_loop_identical():
    """Compact backend (bulk edge runs) == adjacency backend (loop), and
    forcing the loop on compact changes nothing either."""
    reference = _churned_coordinator("adjacency")
    assert _churned_coordinator("compact") == reference
    assert _churned_coordinator("compact", batch_events="off") == reference


@pytest.mark.parametrize("backend", ["adjacency", "compact"])
def test_pregel_scenario_backends_identical(backend):
    """Scenario-level pin: the pregel engine's golden digest is
    backend-independent (the compact backend takes the bulk path)."""
    digest = play_scenario(
        get_scenario("mesh-growth"), backend=backend, engine="pregel"
    ).superstep_digest()
    assert digest == _fixture("mesh-growth")


# ----------------------------------------------------------------------
# Capacity-aware incremental activation (CapacityWeightedGreedy)
# ----------------------------------------------------------------------


class TestCapacityAwareActivation:
    def test_flag_is_set(self):
        assert CapacityWeightedGreedy.uses_capacity is True
        assert GreedyMaxNeighbours.uses_capacity is False

    def _runner(self, seed=2):
        graph = powerlaw_cluster_graph(200, m=2, seed=5)
        caps = balanced_capacities(graph.num_vertices, 4, 1.1)
        state = HashPartitioner().partition(graph, 4, list(caps))
        return graph, state, AdaptiveRunner(
            graph,
            state,
            AdaptiveConfig(seed=seed, heuristic=CapacityWeightedGreedy()),
        )

    def test_activation_is_sound(self):
        """Every vertex that wants to move is in the evaluated candidate
        set, every round — the exactness contract of the active set."""
        graph, state, runner = self._runner()
        heuristic = runner.config.heuristic
        for i in range(50):
            if i == 15:
                runner.apply_events(
                    [AddEdge(500, 3), AddEdge(500, 9), RemoveEdge(0, 1)]
                )
            remaining = runner.remaining_capacities()
            if runner._needs_full_sweep(remaining):
                candidates = set(graph.vertices())
            else:
                candidates = set(runner._active)
            for v in graph.vertices():
                current = state.partition_of_or_none(v)
                if current is None:
                    continue
                desired = heuristic.desired_partition(
                    current, state.neighbour_partition_counts(v), remaining
                )
                assert desired == current or v in candidates, (
                    f"round {i}: vertex {v} wants {current}->{desired} but "
                    "was not scheduled for evaluation"
                )
            runner.step()

    def test_quiet_rounds_skip_the_full_sweep(self):
        """Once migrations stop, capacities stop moving and the active set
        engages — the whole point of the capacity trigger."""
        graph, state, runner = self._runner()
        active_counts = [runner.step().active_vertices for _ in range(60)]
        assert active_counts[0] == graph.num_vertices
        assert active_counts[-1] < graph.num_vertices
        assert active_counts[-1] == runner.active_count

    def test_capacity_change_retriggers_full_sweep(self):
        graph, state, runner = self._runner()
        for _ in range(60):
            runner.step()
        assert runner.step().active_vertices < graph.num_vertices
        # Churn moves capacities (|V| changes -> balanced capacities move):
        # the next round must re-evaluate everything.
        runner.apply_events([AddVertex(9000), AddEdge(9000, 0)])
        assert runner.step().active_vertices == graph.num_vertices

    def test_pregel_capacity_heuristic_modes_identical(self):
        """The capacity-aware heuristic composes with the shard-local
        phase: both decision modes replay identical timelines."""

        def run(decisions):
            config = PregelConfig(
                num_workers=4,
                seed=3,
                quiet_window=5,
                heuristic=CapacityWeightedGreedy(),
                decisions=decisions,
            )
            with Coordinator(
                mesh_3d(5), PageRank(), config, executor=InlineExecutor()
            ) as system:
                for step in range(10):
                    if step == 4:
                        system.inject_events(
                            [AddEdge(700, 0), RemoveEdge(0, 1)]
                        )
                    system.run_superstep()
                return [
                    (
                        r.superstep,
                        r.migrations_requested,
                        r.migrations_announced,
                        r.migrations_blocked,
                        r.cut_edges,
                        tuple(r.sizes),
                    )
                    for r in system.reports
                ]

        assert run("shard") == run("coordinator")


class _CandidateSpy(InlineExecutor):
    """Records every candidate slice the coordinator ships to a shard."""

    def __init__(self):
        super().__init__()
        self.slices = []

    def step(self, tasks, patches):
        for task in tasks.values():
            if task.candidates is not None:
                self.slices.append(list(task.candidates))
        return super().step(tasks, patches)


def test_shipped_candidate_slices_are_canonically_ordered():
    """Regression for the DET001 fix in ``Coordinator._compute_phase``.

    Candidate slices are wire payload: their order must be a function of
    the graph, not of the active set's hash-table layout.  The vertex ids
    (multiples of 100) are chosen to collide in CPython's set table, so
    raw set iteration would ship them out of order — the receiving shard
    re-sorts before deciding, which is exactly why the divergence was
    silent until reprolint flagged it.
    """
    from repro.graph import Graph

    ids = [100 * i for i in range(24)]
    assert list(set(ids)) != sorted(ids)  # the ids do scramble
    graph = Graph(list(zip(ids, ids[1:])))
    spy = _CandidateSpy()
    config = PregelConfig(num_workers=3, seed=1, quiet_window=5)
    with Coordinator(graph, PageRank(), config, executor=spy) as system:
        system.run(8)
    assert any(len(s) > 1 for s in spy.slices), "vacuous run: no slices"
    for shipped in spy.slices:
        assert shipped == sorted(shipped)
