"""Execute the doctests embedded in module docstrings.

Public-API docstrings carry usage examples; a stale example is worse than
no example, so they run as tests.
"""

import doctest

import pytest

import repro.analysis.report
import repro.core.convergence
import repro.core.heuristic
import repro.datasets.catalog
import repro.generators.mesh
import repro.generators.powerlaw
import repro.graph.backend
import repro.graph.compact
import repro.graph.graph
import repro.graph.stream
import repro.partitioning.registry
import repro.utils.rng
import repro.utils.stats
import repro.viz.slices

MODULES = [
    repro.analysis.report,
    repro.core.convergence,
    repro.core.heuristic,
    repro.datasets.catalog,
    repro.generators.mesh,
    repro.generators.powerlaw,
    repro.graph.backend,
    repro.graph.compact,
    repro.graph.graph,
    repro.graph.stream,
    repro.partitioning.registry,
    repro.utils.rng,
    repro.utils.stats,
    repro.viz.slices,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
