"""Cross-cutting edge cases: degenerate graphs, single workers, empty
systems, and configuration corners that the main suites don't reach."""

import pytest

from repro.core import AdaptiveConfig, AdaptiveRunner, EdgeBalance
from repro.graph import AddEdge, AddVertex, Graph, RemoveVertex
from repro.partitioning import (
    HashPartitioner,
    MultilevelPartitioner,
    PartitionState,
    balanced_capacities,
)
from repro.pregel import PregelConfig, PregelSystem
from repro.pregel.vertex import VertexProgram


class Noop(VertexProgram):
    def initial_value(self, vertex_id, graph):
        return None

    def compute(self, ctx, messages):
        pass


class TestDegenerateGraphs:
    def test_runner_on_empty_graph(self):
        graph = Graph()
        state = PartitionState(graph, 3)
        runner = AdaptiveRunner(graph, state, AdaptiveConfig(seed=0))
        stats = runner.step()
        assert stats.migrations == 0
        assert stats.cut_edges == 0

    def test_runner_on_single_vertex(self):
        graph = Graph(vertices=["only"])
        state = PartitionState(graph, 2)
        state.assign("only", 0)
        runner = AdaptiveRunner(graph, state, AdaptiveConfig(seed=0))
        runner.run_until_convergence(max_iterations=50)
        assert runner.converged
        assert state.partition_of("only") == 0

    def test_runner_with_isolated_vertices(self):
        graph = Graph(vertices=range(10))
        caps = balanced_capacities(10, 2)
        state = HashPartitioner().partition(graph, 2, list(caps))
        runner = AdaptiveRunner(graph, state, AdaptiveConfig(seed=0))
        runner.run_until_convergence(max_iterations=100)
        assert runner.converged  # isolated vertices never want to move
        assert state.cut_edges == 0

    def test_single_partition_never_migrates(self, small_mesh):
        caps = balanced_capacities(small_mesh.num_vertices, 1)
        state = HashPartitioner().partition(small_mesh, 1, list(caps))
        runner = AdaptiveRunner(small_mesh, state, AdaptiveConfig(seed=0))
        for _ in range(5):
            assert runner.step().migrations == 0
        assert state.cut_edges == 0

    def test_star_graph_hub_stays_reasonable(self):
        graph = Graph([("hub", f"leaf{i}") for i in range(40)])
        caps = balanced_capacities(graph.num_vertices, 4, slack=1.2)
        state = HashPartitioner().partition(graph, 4, list(caps))
        runner = AdaptiveRunner(graph, state, AdaptiveConfig(seed=0))
        runner.run_until_convergence(max_iterations=300)
        # capacity keeps the star from collapsing into one partition
        assert max(state.sizes) <= caps[0]
        state.validate()

    def test_multilevel_on_tiny_graphs(self, triangle):
        state = MultilevelPartitioner(seed=0).partition(triangle, 2)
        assert len(state) == 3
        state.validate()

    def test_multilevel_k_exceeds_vertices(self):
        graph = Graph([(0, 1), (1, 2)])
        state = MultilevelPartitioner(seed=0).partition(graph, 5)
        assert len(state) == 3  # some partitions legitimately empty
        state.validate()


class TestPregelCorners:
    def test_system_on_empty_graph_grows_from_stream(self):
        system = PregelSystem(
            Graph(), Noop(), PregelConfig(num_workers=3, seed=0)
        )
        report = system.run_superstep()
        assert report.computed_vertices == 0
        system.inject_events([AddEdge("a", "b"), AddVertex("c")])
        report = system.run_superstep()
        assert report.mutations_applied == 2
        assert system.graph.num_vertices == 3

    def test_single_worker_system(self, small_mesh):
        system = PregelSystem(
            small_mesh, Noop(), PregelConfig(num_workers=1, seed=0)
        )
        reports = system.run(5)
        assert all(r.traffic.remote_messages == 0 for r in reports)
        assert all(r.migrations_announced == 0 for r in reports)
        assert system.state.cut_edges == 0

    def test_edge_balance_policy_in_system(self, small_powerlaw):
        system = PregelSystem(
            small_powerlaw,
            Noop(),
            PregelConfig(num_workers=4, seed=0, balance=EdgeBalance(slack=1.2)),
        )
        system.run(40)
        edge_loads = [0.0] * 4
        for v, pid in system.state.assignment_items():
            edge_loads[pid] += max(small_powerlaw.degree(v), 1)
        caps = system._capacities
        for pid in range(4):
            assert edge_loads[pid] <= caps[pid] + 1e-6
        system.state.validate()

    def test_removing_entire_graph_mid_run(self, small_mesh):
        system = PregelSystem(
            small_mesh, Noop(), PregelConfig(num_workers=3, seed=0)
        )
        system.run(2)
        system.inject_events(
            [RemoveVertex(v) for v in list(small_mesh.vertices())]
        )
        report = system.run_superstep()
        assert system.graph.num_vertices == 0
        assert len(system.state) == 0
        assert report.cut_edges == 0
        # system keeps running on the empty graph
        system.run(2)

    def test_failure_on_first_superstep(self, small_mesh):
        from repro.pregel import FaultPlan

        system = PregelSystem(
            small_mesh,
            Noop(),
            PregelConfig(num_workers=2, seed=0),
            fault_plan=FaultPlan().add(1, 0),
        )
        report = system.run_superstep()
        assert report.failed_worker == 0
        system.run(3)  # survives


class TestCliErrors:
    def test_missing_edgelist_file(self, tmp_path):
        from repro.cli import main

        with pytest.raises(FileNotFoundError):
            main(["partition", str(tmp_path / "missing.txt")])

    def test_generate_unknown_dataset(self, tmp_path):
        from repro.cli import main

        with pytest.raises(ValueError):
            main(["generate", "no-such-set", str(tmp_path / "out.txt")])
