"""Unit tests for the synthetic graph and stream generators."""

import math

import pytest

from repro.generators import (
    CdrStreamConfig,
    TweetStreamConfig,
    erdos_renyi_graph,
    forest_fire_expansion,
    forest_fire_graph,
    generate_cdr_stream,
    generate_tweet_stream,
    grid_2d,
    mesh_3d,
    mesh_with_vertex_count,
    paper_average_degree,
    powerlaw_cluster_graph,
    preferential_attachment_graph,
    ring_lattice,
    triangulated_grid_2d,
)
from repro.graph import AddEdge, AddVertex, Graph, RemoveVertex, apply_events


class TestMesh:
    def test_cube_counts(self):
        g = mesh_3d(4)
        assert g.num_vertices == 64
        # edges of an n^3 grid: 3 * n^2 * (n-1)
        assert g.num_edges == 3 * 16 * 3

    def test_rectangular(self):
        g = mesh_3d(2, 3, 4)
        assert g.num_vertices == 24
        g.validate()

    def test_interior_degree_is_six(self):
        g = mesh_3d(5)
        # interior vertex (2,2,2) -> id (2*5+2)*5+2
        interior = (2 * 5 + 2) * 5 + 2
        assert g.degree(interior) == 6

    def test_corner_degree_is_three(self):
        g = mesh_3d(5)
        assert g.degree(0) == 3

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            mesh_3d(0)

    def test_grid_2d(self):
        g = grid_2d(3)
        assert g.num_vertices == 9
        assert g.num_edges == 12

    def test_triangulated_grid_degree(self):
        g = triangulated_grid_2d(10)
        # average degree of a triangulated grid approaches 6 inside
        assert 4.0 < g.average_degree() < 6.0
        g.validate()

    def test_mesh_with_vertex_count_close(self):
        for target in (1000, 3000, 9900, 29700):
            g = mesh_with_vertex_count(target)
            assert abs(g.num_vertices - target) / target < 0.15

    def test_mesh_with_vertex_count_invalid(self):
        with pytest.raises(ValueError):
            mesh_with_vertex_count(0)

    def test_mesh_connected(self):
        g = mesh_3d(4)
        assert g.giant_component_fraction() == 1.0


class TestPowerlaw:
    def test_vertex_count(self):
        g = powerlaw_cluster_graph(500, m=3, seed=0)
        assert g.num_vertices == 500

    def test_edge_count_near_m_per_vertex(self):
        n, m = 800, 3
        g = powerlaw_cluster_graph(n, m=m, seed=1)
        # seed clique + ~m per added vertex
        expected = m * (m + 1) / 2 + m * (n - m - 1)
        assert abs(g.num_edges - expected) / expected < 0.05

    def test_deterministic_per_seed(self):
        a = powerlaw_cluster_graph(200, m=2, seed=5)
        b = powerlaw_cluster_graph(200, m=2, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_seeds_differ(self):
        a = powerlaw_cluster_graph(200, m=2, seed=1)
        b = powerlaw_cluster_graph(200, m=2, seed=2)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_heavy_tail_exists(self):
        g = powerlaw_cluster_graph(2000, m=2, seed=3)
        max_degree = max(g.degree(v) for v in g.vertices())
        assert max_degree > 10 * g.average_degree() / 2

    def test_triads_raise_clustering(self):
        # Holme-Kim with p=1 should close more triangles than p=0.
        def triangles(g):
            count = 0
            for u, v in g.edges():
                count += len(g.neighbors(u) & g.neighbors(v))
            return count

        low = powerlaw_cluster_graph(600, m=3, triad_probability=0.0, seed=4)
        high = powerlaw_cluster_graph(600, m=3, triad_probability=1.0, seed=4)
        assert triangles(high) > triangles(low)

    def test_paper_average_degree_rule(self):
        assert paper_average_degree(10000) == round(math.log(10000) / 2)
        with pytest.raises(ValueError):
            paper_average_degree(1)

    def test_default_m_uses_paper_rule(self):
        g = powerlaw_cluster_graph(1000, seed=0)
        assert g.average_degree() > 4.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            powerlaw_cluster_graph(10, m=0)
        with pytest.raises(ValueError):
            powerlaw_cluster_graph(3, m=5)
        with pytest.raises(ValueError):
            powerlaw_cluster_graph(10, m=2, triad_probability=1.5)

    def test_preferential_attachment_alias(self):
        g = preferential_attachment_graph(300, m=2, seed=0)
        assert g.num_vertices == 300

    def test_connected(self):
        g = powerlaw_cluster_graph(400, m=2, seed=9)
        assert g.giant_component_fraction() == 1.0


class TestRandomGraphs:
    def test_gnp_edge_probability(self):
        g = erdos_renyi_graph(100, edge_probability=0.1, seed=0)
        expected = 0.1 * 100 * 99 / 2
        assert abs(g.num_edges - expected) / expected < 0.3

    def test_gnm_exact_edges(self):
        g = erdos_renyi_graph(50, num_edges=100, seed=0)
        assert g.num_edges == 100

    def test_exactly_one_mode_required(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10)
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, edge_probability=0.5, num_edges=5)

    def test_gnm_too_many_edges(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(4, num_edges=100)

    def test_probability_range(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, edge_probability=1.5)

    def test_ring_lattice(self):
        g = ring_lattice(10, neighbours_each_side=2)
        assert g.num_vertices == 10
        assert g.num_edges == 20
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_ring_lattice_validation(self):
        with pytest.raises(ValueError):
            ring_lattice(2)
        with pytest.raises(ValueError):
            ring_lattice(5, neighbours_each_side=3)


class TestForestFire:
    def test_expansion_grows_by_requested_count(self):
        g = mesh_3d(4)
        events, new_ids = forest_fire_expansion(g, 20, seed=1)
        assert len(new_ids) == 20
        working = g.copy()
        apply_events(working, events)
        assert working.num_vertices == g.num_vertices + 20
        working.validate()

    def test_input_graph_unchanged(self):
        g = mesh_3d(3)
        before = g.num_vertices
        forest_fire_expansion(g, 10, seed=0)
        assert g.num_vertices == before

    def test_new_vertices_are_connected(self):
        g = mesh_3d(4)
        events, new_ids = forest_fire_expansion(g, 15, seed=2)
        working = g.copy()
        apply_events(working, events)
        for vid in new_ids:
            assert working.degree(vid) >= 1

    def test_events_start_with_vertex_then_edges(self):
        g = mesh_3d(3)
        events, _ = forest_fire_expansion(g, 1, seed=3)
        assert isinstance(events[0], AddVertex)
        assert all(isinstance(e, AddEdge) for e in events[1:])

    def test_deterministic(self):
        g = mesh_3d(3)
        a, _ = forest_fire_expansion(g, 5, seed=7)
        b, _ = forest_fire_expansion(g, 5, seed=7)
        assert a == b

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            forest_fire_expansion(Graph(), 5)

    def test_zero_growth(self):
        g = mesh_3d(3)
        events, ids = forest_fire_expansion(g, 0)
        assert events == [] and ids == []

    def test_burn_probability_validation(self):
        with pytest.raises(ValueError):
            forest_fire_expansion(mesh_3d(2), 1, burn_probability=1.0)

    def test_forest_fire_graph_from_scratch(self):
        g = forest_fire_graph(100, seed=0)
        assert g.num_vertices == 100
        assert g.giant_component_fraction() == 1.0


class TestTweetStream:
    def test_events_are_mentions(self):
        stream = generate_tweet_stream(
            TweetStreamConfig(duration=600.0, mean_rate=5.0, seed=0)
        )
        assert len(stream) > 0
        for te in stream:
            assert isinstance(te.event, AddEdge)
            assert te.event.u != te.event.v

    def test_rate_roughly_respected(self):
        cfg = TweetStreamConfig(duration=3600.0, mean_rate=10.0, seed=1)
        stream = generate_tweet_stream(cfg)
        # mean over one hour with diurnal modulation: within 2x band
        assert 0.4 * 36000 / 10 < len(stream) < 2.5 * 3600 * 10

    def test_deterministic(self):
        cfg = TweetStreamConfig(duration=300.0, mean_rate=5.0, seed=9)
        a = generate_tweet_stream(cfg)
        b = generate_tweet_stream(cfg)
        assert [(te.time, te.event) for te in a] == [
            (te.time, te.event) for te in b
        ]

    def test_burst_raises_local_rate(self):
        base = TweetStreamConfig(duration=7200.0, mean_rate=10.0, seed=2)
        burst = TweetStreamConfig(
            duration=7200.0, mean_rate=10.0, seed=2, burst_at=3600.0,
            burst_magnitude=5.0,
        )
        quiet = generate_tweet_stream(base)
        bursty = generate_tweet_stream(burst)
        window = (3000.0, 4200.0)
        assert len(bursty.window(*window)) > len(quiet.window(*window))

    def test_builds_powerlawish_graph(self):
        stream = generate_tweet_stream(
            TweetStreamConfig(duration=1800.0, mean_rate=20.0, seed=3)
        )
        g = Graph()
        stream.replay_into(g)
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        assert degrees[0] > 5 * (sum(degrees) / len(degrees))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            generate_tweet_stream(TweetStreamConfig(duration=0))


class TestCdrStream:
    def test_boundaries_weekly(self):
        _, boundaries = generate_cdr_stream(
            CdrStreamConfig(initial_subscribers=200, num_weeks=4, seed=0)
        )
        assert len(boundaries) == 4
        assert boundaries[1] - boundaries[0] == pytest.approx(7 * 24 * 3600.0)

    def test_churn_present(self):
        stream, _ = generate_cdr_stream(
            CdrStreamConfig(initial_subscribers=500, num_weeks=3, seed=1)
        )
        removals = [te for te in stream if isinstance(te.event, RemoveVertex)]
        additions = [te for te in stream if isinstance(te.event, AddEdge)]
        assert removals and additions
        # paper rates: ~2x more additions than removals per week
        assert len(removals) < len(additions)

    def test_replay_produces_community_graph(self):
        stream, boundaries = generate_cdr_stream(
            CdrStreamConfig(initial_subscribers=400, num_weeks=2, seed=2)
        )
        g = Graph()
        stream.replay_into(g, until=boundaries[1])
        assert g.num_vertices > 300
        assert g.average_degree() > 2.0

    def test_deterministic(self):
        cfg = CdrStreamConfig(initial_subscribers=100, num_weeks=2, seed=5)
        a, _ = generate_cdr_stream(cfg)
        b, _ = generate_cdr_stream(cfg)
        assert [(te.time, te.event) for te in a] == [
            (te.time, te.event) for te in b
        ]

    def test_too_small_population_rejected(self):
        with pytest.raises(ValueError):
            generate_cdr_stream(
                CdrStreamConfig(initial_subscribers=5, community_size=25)
            )
