"""Golden-timeline regression suite.

Three catalog scenarios are pinned as JSON fixtures: the exact per-round
``(events, changed, migrations, cut_edges, cut_ratio, sizes, |V|, |E|)``
record of a full scenario replay.  Every backend must reproduce the fixture
**exactly** (floats survive the JSON round-trip bit-for-bit), so any change
to the heuristic, the RNG pairing, the incremental metrics engine, the
sweeper, the event algebra or the churn generators that shifts dynamic
behaviour fails loudly here instead of drifting silently.

To regenerate after an *intentional* semantic change::

    python -m pytest tests/test_golden_timelines.py --regen-golden
    git diff tests/golden/   # review the drift before committing it
"""

import json
from pathlib import Path

import pytest

from repro.scenarios import get_scenario, play_scenario

GOLDEN_DIR = Path(__file__).parent / "golden"
# One per churn family shape: growth (continuous, vertices arriving),
# rewiring (continuous, constant size) and CDR (buffered, add+remove).
GOLDEN_SCENARIOS = ["mesh-growth", "grid-rewire", "cdr-weekly"]
BACKENDS = ["adjacency", "compact"]


def _fixture_path(name):
    return GOLDEN_DIR / f"{name}.json"


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", GOLDEN_SCENARIOS)
def test_golden_timeline(name, backend, regen_golden):
    digest = play_scenario(get_scenario(name), backend=backend).digest()
    path = _fixture_path(name)
    if regen_golden and backend == BACKENDS[0]:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(
            json.dumps(digest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    assert path.exists(), (
        f"missing fixture {path}; generate it with "
        "`python -m pytest tests/test_golden_timelines.py --regen-golden`"
    )
    expected = json.loads(path.read_text(encoding="utf-8"))
    assert digest == expected, (
        f"{name} on {backend} diverged from the golden timeline — if this "
        "change is intentional, regenerate with --regen-golden and commit "
        "the fixture diff"
    )


@pytest.mark.parametrize("name", GOLDEN_SCENARIOS)
def test_golden_fixture_is_nontrivial(name):
    """Fixtures must pin real dynamics, not an empty or frozen run."""
    expected = json.loads(_fixture_path(name).read_text(encoding="utf-8"))
    rounds = expected["rounds"]
    assert len(rounds) >= 10
    assert sum(r["changed"] for r in rounds) > 0, "no events ever applied"
    assert sum(r["migrations"] for r in rounds) > 0, "no adaptation recorded"
    # Sizes always partition the vertex set.
    for r in rounds:
        assert sum(r["sizes"]) == r["num_vertices"]


@pytest.mark.parametrize("name", GOLDEN_SCENARIOS)
def test_metrics_modes_match_golden(name):
    """The recompute cross-check mode replays the identical timeline."""
    digest = play_scenario(
        get_scenario(name), backend="compact", metrics="recompute"
    ).digest()
    expected = json.loads(_fixture_path(name).read_text(encoding="utf-8"))
    assert digest == expected
